#!/usr/bin/env sh
# Tier-1 verification: build, full test suite, and the survival battery
# pinned to three fixed seeds. Everything is offline and deterministic;
# a green run here is the repository's definition of "working".
set -eu

cd "$(dirname "$0")/.."

echo "== format (rustfmt --check) =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== workspace tests =="
cargo test -q --workspace

echo "== survival battery (pinned seeds) =="
SURVIVAL_SEEDS="3405691582,1122334455,987654321" cargo test -q --test survival

echo "== packet-storm battery (pinned seed, 1M packets) =="
PACKET_STORM_SEED=3405691582 cargo test -q --test packet_storm

echo "== recovery battery (crash points x workloads, fault-site exhaustiveness) =="
cargo test -q --test recovery

echo "== golden traces (fails on drift; UPDATE_GOLDENS=1 to regenerate) =="
cargo test -q --test trace_golden

echo "== golden metrics snapshots (fails on drift; UPDATE_GOLDENS=1 to regenerate) =="
cargo test -q --test metrics_golden

echo "== golden profile snapshots (fails on drift; UPDATE_GOLDENS=1 to regenerate) =="
cargo test -q --test profile_golden

echo "== golden timelines (fails on drift; UPDATE_GOLDENS=1 to regenerate) =="
cargo test -q --test timeline_golden

echo "== stale-golden guard (regenerated goldens must match the checked-in files) =="
UPDATE_GOLDENS=1 cargo test -q --test trace_golden --test metrics_golden \
    --test profile_golden --test timeline_golden --test repl_battery \
    --test causal_battery
git diff --exit-code -- tests/goldens

echo "== debugging plane (checkpoint/restore, bisect bound, shrinker minimality) =="
cargo test -q --test debug_battery

echo "== watch plane (SLO alerts, admission gate, golden alert streams) =="
cargo test -q --test watch_battery

echo "== replication battery (crash-point x loss-pattern convergence, failover byte-identity) =="
cargo test -q --test repl_battery

echo "== causal battery (cross-kernel spans, merge stability, lag-path reconciliation) =="
cargo test -q --test causal_battery

echo "== debugging-plane CLI self-test (bisect + checkpoint resume on the pinned seed) =="
cargo run -q --release -p vino-bench -- bisect --seed 3405691582 --steps 48
cargo run -q --release -p vino-bench -- checkpoints --seed 3405691582 --steps 48

echo "== watch-plane CLI self-test (hostile storm, byte-identical replay) =="
cargo run -q --release -p vino-bench -- watch --seed 3405691582 --hostile

echo "== replication CLI self-test (lossy-wire census, byte-identical replay) =="
cargo run -q --release -p vino-bench -- repl --seed 3405691582 --steps 24

echo "== lag-path CLI self-test (per-hop sum must reconcile with the lag-age gauge) =="
cargo run -q --release -p vino-bench -- lagpath --seed 3405691582 --steps 8

echo "== differential profile gate (fails on cost-model drift; --profdiff-write to rebase) =="
cargo run -q --release -p vino-bench -- --profdiff

echo "== trace-plane zero-allocation proof =="
cargo bench -p vino-bench --bench trace_plane

echo "== metrics-plane zero-allocation proof =="
cargo bench -p vino-bench --bench metrics_plane

echo "== profile-plane zero-allocation proof =="
cargo bench -p vino-bench --bench profile_plane

echo "== watch-plane zero-allocation proof =="
cargo bench -p vino-bench --bench watch_plane

echo "== lint (clippy, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs (rustdoc, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== ci.sh: all green =="

//! # VINO — surviving misbehaved kernel extensions
//!
//! A from-scratch Rust reproduction of the system described in
//! *"Dealing With Disaster: Surviving Misbehaved Kernel Extensions"*
//! (Seltzer, Endo, Small, Smith — OSDI 1996).
//!
//! VINO is an extensible kernel: applications download *grafts*
//! (extensions) into the kernel to replace policies (read-ahead, page
//! eviction, scheduling) or to add in-kernel services (HTTP/NFS-style
//! event handlers). Two mechanisms protect the kernel from buggy or
//! malicious grafts:
//!
//! 1. **Software fault isolation** — the [`misfit`] tool sandboxes every
//!    load/store a graft performs and checks every indirect call against
//!    a hash table of graft-callable functions; images are signed so the
//!    kernel only loads code that went through the tool.
//! 2. **Lightweight transactions** — every graft invocation runs inside a
//!    [`txn`] transaction with an undo call stack and two-phase locking;
//!    time-outs on contended locks and per-principal resource limits
//!    ([`rm`]) let the kernel abort and forcibly unload a hoarding graft
//!    while restoring all kernel state it touched.
//!
//! This facade crate re-exports every subsystem. Start with
//! [`core::Kernel`] and the `examples/` directory.
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`sim`] | `vino-sim` | virtual clock, calibrated cost model, stats |
//! | [`vm`] | `vino-vm` | GraftVM: the ISA grafts are compiled to |
//! | [`misfit`] | `vino-misfit` | SFI instrumentation, signing, linking |
//! | [`txn`] | `vino-txn` | transactions, undo stack, time-out locks |
//! | [`rm`] | `vino-rm` | per-principal resource limits and delegation |
//! | [`dev`] | `vino-dev` | simulated disk and NIC |
//! | [`sched`] | `vino-sched` | threads, run queue, schedule-delegate |
//! | [`mem`] | `vino-mem` | VAS, frames, two-level page eviction |
//! | [`fs`] | `vino-fs` | block FS, buffer cache, read-ahead grafts |
//! | [`core`] | `vino-core` | graft points, linker/loader, the kernel |
//! | [`net`] | `vino-net` | packet plane: RX rings, graftable filters |
//! | [`repl`] | `vino-repl` | primary/replica journal shipping, failover |

pub use vino_core as core;
pub use vino_dev as dev;

// The observability planes, flattened for examples and harnesses: one
// seeded fault plane and one trace plane attach to a whole kernel
// (`Kernel::attach_fault_plane` / `Kernel::attach_trace_plane`).
pub use vino_core::AttachError;
pub use vino_sim::fault::FaultPlane;
pub use vino_sim::trace::{AbortKind, PostMortem, TraceEvent, TracePlane, TraceStats};

pub use vino_fs as fs;
pub use vino_mem as mem;
pub use vino_misfit as misfit;
pub use vino_net as net;
pub use vino_repl as repl;
pub use vino_rm as rm;
pub use vino_sched as sched;
pub use vino_sim as sim;
pub use vino_txn as txn;
pub use vino_vm as vm;

//! Integration tests: one test per rule in Table 1 ("Rules for
//! Grafting"), each exercised end-to-end through the public kernel API
//! — compile with the real MiSFIT tool, load through the real loader,
//! run through the real transactional wrapper.

use vino::core::engine::{AbortedWhy, InvokeOutcome};
use vino::core::kernel::point_names;
use vino::core::{InstallError, InstallOpts, Kernel};
use vino::misfit::VerifyError;
use vino::rm::{Limits, ResourceKind};
use vino::txn::LockClass;

fn boot() -> std::rc::Rc<Kernel> {
    Kernel::boot()
}

fn app(k: &Kernel) -> vino::rm::PrincipalId {
    k.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 20),
        (ResourceKind::Memory, 1 << 24),
    ]))
}

fn with_file(k: &Kernel) -> vino::fs::Fd {
    k.fs.borrow_mut().create("t", 32 * 4096).unwrap();
    k.fs.borrow_mut().open("t").unwrap()
}

#[test]
fn rule1_grafts_must_be_preemptible() {
    // An infinite loop gets timeslices, is preempted at each boundary,
    // and is eventually aborted — it cannot monopolise the CPU.
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let fd = with_file(&k);
    let image = k.compile_graft("spinner", "spin: jmp spin").unwrap();
    let g = k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
    g.borrow_mut().max_slices = 3;
    k.fs.borrow_mut().read(fd, 0, 4096).unwrap();
    let stats = g.borrow().stats();
    assert_eq!(stats.preemptions, 3, "preempted at every timeslice boundary");
    assert!(g.borrow().is_dead());
}

#[test]
fn rule2_no_lock_hoarding() {
    // lock(resourceA); while(1); — the holder's transaction is aborted
    // when the contention time-out fires, and the waiter proceeds.
    let k = boot();
    let (_, lock_id) = k.engine.register_lock(LockClass::Buffer);
    let hoarder = k.spawn_thread("hoarder");
    let victim = k.spawn_thread("victim");
    k.engine.txn.borrow_mut().begin(hoarder);
    k.engine.txn.borrow_mut().lock(lock_id, hoarder);
    let (ok, events) = k.engine.txn.borrow_mut().lock_blocking(lock_id, victim, 3);
    assert!(ok, "the victim acquired the lock");
    assert!(!events.is_empty(), "a time-out fired");
    assert!(!k.engine.txn.borrow().in_txn(hoarder), "hoarder's txn aborted");
}

#[test]
fn rule2_no_resource_hoarding() {
    // A zero-limit graft cannot allocate; a budgeted graft is denied
    // exactly at its budget.
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let fd = with_file(&k);
    let image = k.compile_graft("hog", "const r1, 999999999\ncall $kalloc\nhalt r0").unwrap();
    let g = k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
    k.fs.borrow_mut().read(fd, 0, 4096).unwrap();
    assert!(g.borrow().is_dead(), "allocation denial aborted the graft");
    assert_eq!(k.engine.rm.borrow().used(g.borrow().principal, ResourceKind::KernelHeap), 0);
}

#[test]
fn rule3_no_illegal_memory_access() {
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let fd = with_file(&k);
    // Store to a kernel address and read it back from a graft: the
    // clamp confines both accesses to the graft's own segment.
    let image = k
        .compile_graft(
            "prober",
            "
            const r1, 0xC0000040
            const r2, 0xEV1L     ; (invalid hex caught at compile time)
            halt r0
            ",
        )
        .unwrap_err();
    assert!(image.contains("bad immediate"), "assembler rejects garbage: {image}");
    let image = k
        .compile_graft(
            "prober",
            "
            const r1, 0xC0000040
            const r2, 1162167621
            storew r2, [r1+0]
            loadw r0, [r1+0]
            halt r0
            ",
        )
        .unwrap();
    let g = k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
    k.fs.borrow_mut().read(fd, 0, 4096).unwrap();
    assert!(!g.borrow().is_dead(), "clamped accesses succeed inside the segment");
    assert_eq!(g.borrow().mem_ref().kernel_write_count(), 0, "kernel untouched");
}

#[test]
fn rule4_and_7_no_forbidden_functions() {
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let fd = with_file(&k);
    // Direct call to a data-returning function: rejected at link time.
    let direct = k.compile_graft("snoop", "call $read_user_data\nhalt r0").unwrap();
    assert!(matches!(
        k.install_ra_graft(fd, &direct, a, t, &InstallOpts::default()),
        Err(InstallError::Link(_))
    ));
    // Indirect call: trapped at run time by the CheckCall probe.
    let indirect = k.compile_graft("snoop2", "const r5, 101\ncalli r5\nhalt r0").unwrap();
    let g = k.install_ra_graft(fd, &indirect, a, t, &InstallOpts::default()).unwrap();
    k.fs.borrow_mut().read(fd, 0, 4096).unwrap();
    assert!(g.borrow().is_dead(), "indirect forbidden call aborted the graft");
}

#[test]
fn rule5_no_replacing_restricted_functions() {
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let image = k.compile_graft("takeover", "halt r1").unwrap();
    for point in [point_names::GLOBAL_SCHEDULER, point_names::SECURITY_POLICY] {
        let err =
            k.install_function_graft(point, &image, a, t, &InstallOpts::default()).unwrap_err();
        assert!(matches!(err, InstallError::Restricted { .. }), "{point}");
    }
    // A privileged user (who could build a new kernel anyway) may.
    let opts = InstallOpts { privileged: true, ..InstallOpts::default() };
    assert!(k.install_function_graft(point_names::GLOBAL_SCHEDULER, &image, a, t, &opts).is_ok());
}

#[test]
fn rule6_only_known_safe_code_runs() {
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let fd = with_file(&k);
    // Any tampering breaks the signature.
    let mut image = k.compile_graft("g", "halt r0").unwrap();
    image.bytes[8] ^= 1;
    assert!(matches!(
        k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()),
        Err(InstallError::Verify(VerifyError::BadSignature))
    ));
    // Code signed by an untrusted tool does not load either.
    let rogue_tool =
        vino::misfit::MisfitTool::new(vino::misfit::SigningKey::from_passphrase("rogue"));
    let prog = vino::vm::assemble("g", "halt r0", &vino::core::hostfn::symbols()).unwrap();
    let (rogue_image, _) = rogue_tool.process(&prog).unwrap();
    assert!(matches!(
        k.install_ra_graft(fd, &rogue_image, a, t, &InstallOpts::default()),
        Err(InstallError::Verify(VerifyError::BadSignature))
    ));
}

#[test]
fn rule8_malice_confined_to_consenting_applications() {
    // A hostile read-ahead graft on file A must not affect reads of
    // file B by an application that never opted in.
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    k.fs.borrow_mut().create("opted-in", 16 * 4096).unwrap();
    k.fs.borrow_mut().create("bystander", 16 * 4096).unwrap();
    let fd_in = k.fs.borrow_mut().open("opted-in").unwrap();
    let fd_by = k.fs.borrow_mut().open("bystander").unwrap();
    let image =
        k.compile_graft("hostile-ra", "const r1, 0\nconst r2, 0\ndiv r0, r1, r2\nhalt r0").unwrap();
    k.install_ra_graft(fd_in, &image, a, t, &InstallOpts::default()).unwrap();
    // The bystander's reads are completely unaffected.
    k.fs.borrow_mut().write(fd_by, 0, b"untouched").unwrap();
    let before = k.engine.txn.borrow().stats().aborts;
    let data = k.fs.borrow_mut().read(fd_by, 0, 9).unwrap();
    assert_eq!(data, b"untouched");
    assert_eq!(k.engine.txn.borrow().stats().aborts, before, "no graft ran for fd_by");
    // The opted-in file's read triggers (and survives) the abort.
    k.fs.borrow_mut().read(fd_in, 0, 4096).unwrap();
    assert_eq!(k.engine.txn.borrow().stats().aborts, before + 1);
}

#[test]
fn rule9_kernel_makes_progress_with_faulty_grafts_in_path() {
    // Every delegate position occupied by a faulty graft; the kernel
    // still reads files, evicts pages and schedules threads.
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let fd = with_file(&k);
    let crash = "const r1, 0\nconst r2, 0\ndiv r0, r1, r2\nhalt r0";
    let ra = k.compile_graft("bad-ra", crash).unwrap();
    k.install_ra_graft(fd, &ra, a, t, &InstallOpts::default()).unwrap();
    let vas = k.mem.borrow_mut().create_vas();
    let ev = k.compile_graft("bad-evict", crash).unwrap();
    k.install_evict_graft(vas, &ev, a, t, &InstallOpts::default()).unwrap();
    let sd = k.compile_graft("bad-sched", crash).unwrap();
    k.install_sched_graft(t, &sd, a, &InstallOpts::default()).unwrap();

    // File reads proceed (fall back to default read-ahead).
    assert!(k.fs.borrow_mut().read(fd, 0, 4096).is_ok());
    // Paging proceeds (fall back to the global victim).
    k.mem.borrow_mut().touch(vas, 0);
    k.mem.borrow_mut().touch(vas, 1);
    assert!(k.mem.borrow_mut().evict_one().is_some());
    // Scheduling proceeds (fall back to the default choice).
    assert!(k.sched.borrow_mut().pick_and_switch().is_some());
}

#[test]
fn aborted_graft_falls_back_to_default_function() {
    // §3.1: "returns a transaction abort error to the graft stub, which
    // then calls the default function". Verify the *default read-ahead
    // policy* actually operates after the graft dies.
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let fd = with_file(&k);
    let image = k.compile_graft("dies", "spin: jmp spin").unwrap();
    let g = k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
    g.borrow_mut().max_slices = 1;
    // First read: graft aborts, falls back.
    k.fs.borrow_mut().read(fd, 0, 4096).unwrap();
    assert!(g.borrow().is_dead());
    // Sequential reads now trigger the DEFAULT sequential prefetch.
    k.fs.borrow_mut().read(fd, 4096, 4096).unwrap();
    k.fs.borrow_mut().read(fd, 8192, 4096).unwrap();
    assert!(k.fs.borrow().stats().prefetches_issued >= 1, "default policy active");
}

#[test]
fn cpu_hog_abort_reports_cpuhog() {
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    let image = k.compile_graft("hog", "spin: jmp spin").unwrap();
    let fd = with_file(&k);
    let g = k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
    g.borrow_mut().max_slices = 2;
    let out = g.borrow_mut().invoke([0; 4]);
    assert!(matches!(out, InvokeOutcome::Aborted { why: AbortedWhy::CpuHog, .. }));
}

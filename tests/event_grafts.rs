//! The §3.5 event-graft scenario from `examples/http_server.rs`,
//! promoted to a real integration test: an in-kernel HTTP server whose
//! broken third handler is aborted and unloaded while the other two
//! keep serving every connection (Rule 9 — misbehaviour is contained,
//! service continues).

use vino::core::engine::{AbortedWhy, InvokeOutcome};
use vino::core::{InstallOpts, Kernel};
use vino::dev::nic::FIRST_CONN_FD;
use vino::dev::Port;
use vino::rm::{Limits, ResourceKind};
use vino::vm::interp::Trap;

#[test]
fn broken_handler_dies_while_the_server_keeps_serving() {
    let kernel = Kernel::boot();
    let app = kernel.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    kernel.define_event_point(Port(80));

    // Handler order 0: the access logger. Counts connections in
    // kernel-state slot 1 through the undo-logged accessor protocol.
    let logger = kernel
        .compile_graft(
            "access-log",
            "
            ; r1 = port, r2 = connection fd
            mov r6, r2
            const r1, 1
            call $kv_get        ; current count
            addi r2, r0, 1
            const r1, 1
            call $kv_set
            mov r1, r6          ; also log the fd we saw
            call $log
            halt r0
            ",
        )
        .unwrap();
    kernel.install_event_graft(Port(80), 0, &logger, app, &InstallOpts::default()).unwrap();

    // Handler order 1: the "server". Records the last fd served in
    // slot 2.
    let server = kernel
        .compile_graft(
            "http-server",
            "
            ; r1 = port, r2 = connection fd. 'Serve' the request.
            const r1, 2
            call $kv_set
            halt r2
            ",
        )
        .unwrap();
    kernel.install_event_graft(Port(80), 1, &server, app, &InstallOpts::default()).unwrap();

    // Handler order 2: malicious — an indirect call through a pointer
    // that is not on the graft-callable list. The CheckCall probe
    // traps it on the first event.
    let evil = kernel
        .compile_graft(
            "evil-handler",
            "
            const r5, 666
            calli r5
            halt r0
            ",
        )
        .unwrap();
    kernel.install_event_graft(Port(80), 2, &evil, app, &InstallOpts::default()).unwrap();

    for _ in 0..5 {
        kernel.nic.borrow_mut().inject_tcp_connect(Port(80));
    }
    let reports = kernel.dispatch_net_events();
    assert_eq!(reports.len(), 5, "every connection dispatched");

    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report.port, Port(80));
        // Event 0 visits all three handlers; the evil one is reaped
        // after its abort, so later events see only the two survivors.
        assert_eq!(report.handlers.len(), if i == 0 { 3 } else { 2 });
        let fd = FIRST_CONN_FD as u64 + i as u64;

        // The well-behaved handlers commit on every event.
        assert_eq!(report.handlers[0].graft, "access-log");
        assert!(matches!(report.handlers[0].outcome, InvokeOutcome::Ok { .. }));
        assert_eq!(report.handlers[1].graft, "http-server");
        match &report.handlers[1].outcome {
            InvokeOutcome::Ok { result, .. } => assert_eq!(*result, fd, "served this event's fd"),
            other => panic!("server must commit on event {i}: {other:?}"),
        }

        // The evil handler traps on event 0 and is forcibly unloaded.
        if i == 0 {
            assert_eq!(report.handlers[2].graft, "evil-handler");
            match &report.handlers[2].outcome {
                InvokeOutcome::Aborted {
                    why: AbortedWhy::Trap(Trap::ForbiddenCall { .. } | Trap::WildJump { .. }),
                    ..
                } => {}
                other => panic!("evil handler must trap on its first event: {other:?}"),
            }
        }
    }

    // Abort containment: the logger's undo-logged counter saw all five
    // connections, and the server recorded the last fd — the broken
    // handler corrupted nothing.
    assert_eq!(kernel.engine.kv_read(1), 5, "all five connections logged");
    assert_eq!(kernel.engine.kv_read(2), FIRST_CONN_FD as u64 + 4, "last fd served");
}

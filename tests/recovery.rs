//! The recovery battery: crash-consistent vino-fs under injected
//! kernel crashes.
//!
//! §3's survival argument is about grafts that misbehave; this battery
//! is about the kernel itself dying at the worst possible instants. The
//! write-ahead redo journal in `vino-fs` promises that whatever instant
//! power dies, a fresh kernel booted over the surviving disk image
//! ([`Kernel::boot_from_image`]) recovers to a consistent state:
//!
//! - **committed data is durable** — bytes written by operations that
//!   returned `Ok` before the crash read back intact;
//! - **uncommitted data is absent** — the operation in flight at the
//!   crash is all-or-nothing: its target blocks are entirely old or
//!   entirely new, never a mix, and never a torn block;
//! - **the ledgers conserve** — the fresh kernel starts with zero
//!   active transactions, an empty lock table, and a recovery report
//!   that accounts for every journal record found;
//! - **replay is deterministic** — two same-seed runs of any scenario
//!   produce byte-identical crash images, recovered images, and
//!   recovery reports.
//!
//! The battery runs the full cross-product of crash points
//! ([`CRASH_SITES`]: before the journal write, mid-journal with a torn
//! record, after the commit marker but before checkpoint, and
//! mid-checkpoint) × workloads (graft install, fs write-behind,
//! mid-undo graft abort, packet-path batch), each twice to prove the
//! same-seed replay invariant.
//!
//! Two satellites ride along: an exhaustiveness test proving every
//! [`FaultSite`] variant is exercised by at least one scenario (the
//! `match` has no wildcard — adding a site without a scenario fails to
//! compile), and media-fault tests proving recovery never half-applies
//! under [`FaultSite::DiskWrite`]/[`FaultSite::DiskStall`] retries and
//! that a replay torn by [`FaultSite::DiskTornWrite`] is repaired by
//! simply running recovery again (redo records are idempotent).

use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::{point_names, KernelConfig};
use vino::core::{InstallError, InstallOpts, Kernel};
use vino::dev::disk::{Disk, DiskImage};
use vino::dev::Port;
use vino::fs::{FileSystem, FsError, RecoveryReport, BLOCK_SIZE};
use vino::net::{verdict_code, Packet, PacketPlane};
use vino::repl::{ReplConfig, ReplHarness};
use vino::rm::{Limits, ResourceKind};
use vino::sim::fault::{FaultPlane, FaultSite, ALL_SITES, CRASH_SITES, REPL_SITES};
use vino::sim::{Cycles, VirtualClock};

/// The four kernel workloads a crash interrupts. Each drives a
/// different subsystem before (and around) the doomed file-system
/// write the armed crash site kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// Install and invoke a read-ahead graft, then crash during an fs
    /// write: graft bookkeeping must not leak into the recovered disk.
    GraftInstall,
    /// Pure file-system write-behind traffic: hot cache, interleaved
    /// reads and writes, then the doomed overwrite.
    WriteBehind,
    /// A graft aborts (div0) and its undo stack restores kernel state;
    /// the crash then hits the next fs write. Graft-transaction undo
    /// and fs-journal redo must not interfere.
    MidUndo,
    /// A packet batch flows through a filter graft; the crash hits the
    /// fs write that would have logged the tally.
    PacketBatch,
    /// A graft trips the reliability manager's quarantine (three traps)
    /// before the crash. Quarantine ledgers are volatile kernel state:
    /// the reboot must roll them back atomically — zero aborts on the
    /// ledger, the graft name welcome again, and no residue of the
    /// quarantine in the journal or on the platter.
    Quarantined,
}

const WORKLOADS: [Workload; 5] = [
    Workload::GraftInstall,
    Workload::WriteBehind,
    Workload::MidUndo,
    Workload::PacketBatch,
    Workload::Quarantined,
];

const DOOMED_BLOCKS: usize = 3;
const BASE_BYTES: &[u8] = b"committed before the crash; must survive it";

fn old_pattern() -> Vec<u8> {
    vec![0xAA; DOOMED_BLOCKS * BLOCK_SIZE]
}

fn new_pattern() -> Vec<u8> {
    vec![0xBB; DOOMED_BLOCKS * BLOCK_SIZE]
}

/// Everything one crash scenario leaves behind, for same-seed replay
/// comparison. `DiskImage` is `PartialEq`, so equality here is
/// byte-identity of every surviving block.
#[derive(PartialEq)]
struct Outcome {
    crash_image: DiskImage,
    recovered_image: DiskImage,
    report: RecoveryReport,
}

/// Runs one scenario: boot, commit base state, run the workload, arm
/// `site`, crash during the doomed overwrite, boot a fresh kernel over
/// the survivors, and assert every recovery invariant.
fn run_scenario(site: FaultSite, workload: Workload, seed: u64) -> Outcome {
    let k = Kernel::boot();
    let plane = FaultPlane::seeded(seed);
    k.attach_fault_plane(Rc::clone(&plane)).unwrap();

    // Committed state that must survive any crash.
    {
        let mut fs = k.fs.borrow_mut();
        fs.create("base", 2 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("base").unwrap();
        fs.write(fd, 0, BASE_BYTES).unwrap();
        fs.create("doomed", (DOOMED_BLOCKS * BLOCK_SIZE) as u64).unwrap();
        let dfd = fs.open("doomed").unwrap();
        fs.write(dfd, 0, &old_pattern()).unwrap();
    }

    let app = k.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 20),
        (ResourceKind::Memory, 1 << 24),
    ]));
    let thread = k.spawn_thread("battery");

    match workload {
        Workload::GraftInstall => {
            // A read-ahead graft goes in and serves a read before the
            // crash; its installation must leave no partial disk state.
            let fd = k.fs.borrow_mut().open("base").unwrap();
            let image = k
                .compile_graft(
                    "ra-next",
                    "add r1, r1, r2\nconst r2, 4096\ncall $ra_submit\nhalt r0",
                )
                .unwrap();
            k.install_ra_graft(fd, &image, app, thread, &InstallOpts::default()).unwrap();
            k.fs.borrow_mut().read(fd, 0, 64).unwrap();
            assert_eq!(k.fs.borrow().stats().ra_graft_calls, 1);
        }
        Workload::WriteBehind => {
            // Heat the cache with interleaved traffic so the doomed
            // write hits a warm (dirty) buffer cache.
            let mut fs = k.fs.borrow_mut();
            fs.create("hot", 4 * BLOCK_SIZE as u64).unwrap();
            let fd = fs.open("hot").unwrap();
            for i in 0..4u64 {
                fs.write(fd, i * BLOCK_SIZE as u64, &[i as u8; 128]).unwrap();
                fs.read(fd, i * BLOCK_SIZE as u64, 128).unwrap();
            }
        }
        Workload::MidUndo => {
            // The §5.1 corruptor: writes kernel state then divides by
            // zero. The abort undo restores the slot; the subsequent
            // crash must find nothing of it on disk.
            let image = k
                .compile_graft(
                    "div0",
                    "const r1, 6\nconst r2, 99\ncall $kv_set\nconst r1, 0\ndiv r0, r1, r1\nhalt r0",
                )
                .unwrap();
            let g = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    app,
                    thread,
                    &InstallOpts::default(),
                )
                .unwrap();
            let out = g.borrow_mut().invoke([1, 2, 0, 0]);
            assert!(matches!(out, InvokeOutcome::Aborted { .. }));
            assert_eq!(k.engine.kv_read(6), 0, "undo must restore slot 6");
        }
        Workload::PacketBatch => {
            // A filter graft takes a batch; the crash hits the fs write
            // that would have journalled the tally.
            let pp = PacketPlane::new(Rc::clone(&k));
            let image = k.compile_graft("accept", "halt r0").unwrap();
            pp.install_filter(Port(10), &image, app, thread, &InstallOpts::default()).unwrap();
            for i in 0..32u32 {
                pp.rx(Packet::udp(i, 1, Port(10), vec![0x42; 16]));
            }
            pp.pump();
            let delivered = pp.drain_delivered(Port(10)).len();
            assert_eq!(delivered, 32, "the batch must flow before the crash");
        }
        Workload::Quarantined => {
            // Three traps quarantine the graft; stretch the backoff so
            // the quarantine is still active when the crash lands.
            k.reliability().set_policy(vino::core::reliability::QuarantinePolicy {
                base_backoff: Cycles::from_ms(60_000),
                max_backoff: Cycles::from_ms(600_000),
                ..vino::core::reliability::QuarantinePolicy::default()
            });
            let image = k.compile_graft("flaky", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
            for _ in 0..3 {
                let g = k
                    .install_function_graft(
                        point_names::COMPUTE_RA,
                        &image,
                        app,
                        thread,
                        &InstallOpts::default(),
                    )
                    .unwrap();
                assert!(matches!(g.borrow_mut().invoke([0; 4]), InvokeOutcome::Aborted { .. }));
            }
            let err = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    app,
                    thread,
                    &InstallOpts::default(),
                )
                .unwrap_err();
            assert!(matches!(err, InstallError::Quarantined { .. }));
            assert_eq!(k.reliability().total_aborts(), 3);
        }
    }

    // Arm the crash at this site's next visit, then run the doomed
    // overwrite. The kernel dies mid-operation.
    plane.arm(site, plane.visits(site) + 1);
    let injected_before = plane.injected(site);
    let crash_err = {
        let mut fs = k.fs.borrow_mut();
        let dfd = fs.open("doomed").unwrap();
        fs.write(dfd, 0, &new_pattern())
    };
    assert_eq!(crash_err, Err(FsError::PowerFailure), "{site:?}/{workload:?}: no crash");
    assert!(k.fs.borrow().halted(), "{site:?}/{workload:?}: fs still alive after the crash");
    assert_eq!(plane.injected(site), injected_before + 1);

    // The dead instance stays dead: no operation sneaks through.
    assert_eq!(k.fs.borrow_mut().create("late", 1), Err(FsError::PowerFailure));

    // Boot a fresh kernel over the surviving image. Mount runs journal
    // recovery before any subsystem touches the volume.
    let crash_image = k.crash_image();
    let k2 = Kernel::boot_from_image(KernelConfig::default(), crash_image.clone())
        .unwrap_or_else(|e| panic!("{site:?}/{workload:?}: remount failed: {e}"));
    let recovered_image = k2.crash_image();
    let report = k2.recovery_report().expect("recovered boot must carry a report");

    // ---- Recovery-to-consistent-state invariants ----

    // Committed data durable.
    {
        let mut fs = k2.fs.borrow_mut();
        let fd = fs.open("base").unwrap();
        assert_eq!(
            fs.read(fd, 0, BASE_BYTES.len() as u64).unwrap(),
            BASE_BYTES,
            "{site:?}/{workload:?}: committed bytes lost"
        );

        // The doomed write is all-or-nothing, and which side is
        // deterministic per crash point: before the commit marker the
        // transaction never happened; after it, redo completes it.
        let dfd = fs.open("doomed").unwrap();
        let got = fs.read(dfd, 0, (DOOMED_BLOCKS * BLOCK_SIZE) as u64).unwrap();
        let want = match site {
            FaultSite::KernelCrashBeforeJournal | FaultSite::KernelCrashMidJournal => old_pattern(),
            FaultSite::KernelCrashAfterCommit | FaultSite::KernelCrashMidCheckpoint => {
                new_pattern()
            }
            other => panic!("not a crash site: {other:?}"),
        };
        assert_eq!(got, want, "{site:?}/{workload:?}: doomed write not all-or-nothing");
        // No torn block visible: every byte agrees with one side, so no
        // block mixes old and new (the patterns differ in every byte).
    }

    // Mid-journal crashes tear a journal record; recovery must have
    // found and discarded the torn tail.
    if site == FaultSite::KernelCrashMidJournal {
        assert!(report.discarded_txns >= 1, "{workload:?}: torn tail not discarded");
    }
    if matches!(site, FaultSite::KernelCrashAfterCommit | FaultSite::KernelCrashMidCheckpoint) {
        assert!(report.replayed_txns >= 1, "{workload:?}: committed txn not replayed");
        assert!(report.replayed_blocks >= DOOMED_BLOCKS as u64);
    }

    // Ledger conservation on the fresh kernel: nothing in flight.
    let txn = k2.engine.txn.borrow();
    assert_eq!(txn.active_txns(), 0, "{site:?}/{workload:?}: transaction leaked across reboot");
    assert_eq!(txn.lock_table().held_count(), 0, "{site:?}/{workload:?}: lock leaked");
    assert_eq!(txn.lock_table().waiter_count(), 0, "{site:?}/{workload:?}: waiter leaked");
    drop(txn);

    // Quarantine ledgers are volatile: the reboot rolls them back
    // atomically. No abort count survives, and the graft name that was
    // refused with a far-future deadline before the crash installs
    // cleanly on the fresh kernel — checkpoint/restore (the debugging
    // plane) is the path that *preserves* quarantines; the platter
    // never does.
    if workload == Workload::Quarantined {
        assert_eq!(
            k2.reliability().total_aborts(),
            0,
            "{site:?}: quarantine ledger leaked across the reboot"
        );
        let app2 = k2.create_app(Limits::of(&[
            (ResourceKind::KernelHeap, 1 << 20),
            (ResourceKind::Memory, 1 << 24),
        ]));
        let thread2 = k2.spawn_thread("post-crash");
        let image = k2.compile_graft("flaky", "halt r0").unwrap();
        k2.install_function_graft(
            point_names::COMPUTE_RA,
            &image,
            app2,
            thread2,
            &InstallOpts::default(),
        )
        .unwrap_or_else(|e| {
            panic!("{site:?}: fresh kernel still refuses the once-quarantined name: {e}")
        });
    }

    Outcome { crash_image, recovered_image, report }
}

/// The tentpole: every crash point × every workload, each run twice
/// with the same seed to prove byte-identical replay.
#[test]
fn crash_battery_full_cross_product() {
    for &site in CRASH_SITES {
        for workload in WORKLOADS {
            let a = run_scenario(site, workload, 0xD15A57E5);
            let b = run_scenario(site, workload, 0xD15A57E5);
            assert!(
                a.crash_image == b.crash_image,
                "{site:?}/{workload:?}: same-seed crash images differ"
            );
            assert!(
                a.recovered_image == b.recovered_image,
                "{site:?}/{workload:?}: same-seed recovered images differ"
            );
            assert_eq!(
                a.report, b.report,
                "{site:?}/{workload:?}: same-seed recovery reports differ"
            );
        }
    }
}

/// Different seeds tear journal records at different prefixes, so the
/// surviving crash images differ — but recovery converges both to the
/// same consistent file contents. The tear is aimed at a *payload*
/// block (second mid-journal visit) where old and new bytes differ at
/// every offset, so the prefix length is visible on the platter.
#[test]
fn mid_journal_tears_differ_but_recovery_converges() {
    let run = |seed: u64| {
        let k = Kernel::boot();
        let plane = FaultPlane::seeded(seed);
        k.attach_fault_plane(Rc::clone(&plane)).unwrap();
        {
            let mut fs = k.fs.borrow_mut();
            fs.create("doomed", (DOOMED_BLOCKS * BLOCK_SIZE) as u64).unwrap();
            let fd = fs.open("doomed").unwrap();
            fs.write(fd, 0, &old_pattern()).unwrap();
        }
        let site = FaultSite::KernelCrashMidJournal;
        plane.arm(site, plane.visits(site) + 2); // descriptor, then *payload*
        let err = {
            let mut fs = k.fs.borrow_mut();
            let fd = fs.open("doomed").unwrap();
            fs.write(fd, 0, &new_pattern())
        };
        assert_eq!(err, Err(FsError::PowerFailure));
        let crash_image = k.crash_image();
        let k2 = Kernel::boot_from_image(KernelConfig::default(), crash_image.clone()).unwrap();
        let mut fs = k2.fs.borrow_mut();
        let fd = fs.open("doomed").unwrap();
        let got = fs.read(fd, 0, (DOOMED_BLOCKS * BLOCK_SIZE) as u64).unwrap();
        assert_eq!(got, old_pattern(), "a torn payload must void the whole transaction");
        crash_image
    };
    assert!(run(1) != run(2), "different tear prefixes must differ on disk");
}

// ---------------------------------------------------------------------
// Satellite: fault-site exhaustiveness.
// ---------------------------------------------------------------------

/// Boots a kernel with a seeded plane and one committed file.
fn boot_faulted(seed: u64) -> (Rc<Kernel>, Rc<FaultPlane>) {
    let k = Kernel::boot();
    let plane = FaultPlane::seeded(seed);
    k.attach_fault_plane(Rc::clone(&plane)).unwrap();
    let mut fs = k.fs.borrow_mut();
    fs.create("f", 4 * BLOCK_SIZE as u64).unwrap();
    let fd = fs.open("f").unwrap();
    fs.write(fd, 0, b"seed data").unwrap();
    drop(fs);
    (k, plane)
}

fn graft_harness(k: &Kernel) -> (vino::rm::PrincipalId, vino::sim::ThreadId) {
    let app = k.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 20),
        (ResourceKind::Memory, 1 << 24),
    ]));
    (app, k.spawn_thread("exh"))
}

/// Arms or rates `site`, drives a minimal scenario that visits it, and
/// returns how many times the plane injected it.
fn exercise(site: FaultSite) -> u64 {
    if REPL_SITES.contains(&site) {
        return exercise_repl_site(site);
    }
    let (k, plane) = boot_faulted(0xE0);
    match site {
        FaultSite::DiskRead | FaultSite::DiskStall => {
            plane.set_rate(site, 1, 1);
            plane.set_stall(Cycles(10_000));
            let mut fs = k.fs.borrow_mut();
            let fd = fs.open("f").unwrap();
            // An uncached block, so the read goes to the platter.
            fs.read(fd, 3 * BLOCK_SIZE as u64, 64).unwrap();
        }
        FaultSite::DiskWrite => {
            plane.set_rate(site, 1, 1);
            let mut fs = k.fs.borrow_mut();
            let fd = fs.open("f").unwrap();
            fs.write(fd, 0, b"retry me").unwrap();
        }
        FaultSite::DiskTornWrite => {
            // A lost write: the driver is not told. The journal is why
            // this is survivable — see the media-fault tests below.
            plane.arm(site, plane.visits(site) + 1);
            let mut fs = k.fs.borrow_mut();
            let fd = fs.open("f").unwrap();
            fs.write(fd, 0, b"torn").unwrap();
        }
        FaultSite::VmTrap => {
            plane.arm(site, 1);
            let (app, thread) = graft_harness(&k);
            let image = k.compile_graft("ok", "halt r0").unwrap();
            let g = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    app,
                    thread,
                    &InstallOpts::default(),
                )
                .unwrap();
            assert!(matches!(g.borrow_mut().invoke([0; 4]), InvokeOutcome::Aborted { .. }));
        }
        FaultSite::ImageCorrupt => {
            plane.arm(site, 1);
            let (app, thread) = graft_harness(&k);
            let image = k.compile_graft("c", "halt r0").unwrap();
            let err = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    app,
                    thread,
                    &InstallOpts::default(),
                )
                .unwrap_err();
            assert!(matches!(err, InstallError::Verify(_)));
        }
        FaultSite::ResourceExhaust => {
            plane.set_rate(site, 1, 1);
            let (app, thread) = graft_harness(&k);
            let image = k.compile_graft("alloc", "const r1, 4096\ncall $kalloc\nhalt r0").unwrap();
            let g = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    app,
                    thread,
                    &InstallOpts::default(),
                )
                .unwrap();
            assert!(matches!(g.borrow_mut().invoke([0; 4]), InvokeOutcome::Aborted { .. }));
        }
        FaultSite::LockTimeoutStorm => {
            plane.set_rate(site, 1, 1);
            let (app, thread) = graft_harness(&k);
            let (_h, _lock_id) = k.engine.register_lock(vino::txn::locks::LockClass::Buffer);
            let image =
                k.compile_graft("locker", "const r1, 0\ncall $lock\nspin: jmp spin").unwrap();
            let g = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    app,
                    thread,
                    &InstallOpts::default(),
                )
                .unwrap();
            g.borrow_mut().max_slices = 4;
            assert!(matches!(g.borrow_mut().invoke([0; 4]), InvokeOutcome::Aborted { .. }));
        }
        FaultSite::NetRxOverflow => {
            plane.set_rate(site, 1, 1);
            let pp = PacketPlane::new(Rc::clone(&k));
            pp.open_port(Port(60), 64);
            pp.rx(Packet::udp(1, 2, Port(60), vec![0; 8]));
        }
        FaultSite::NetFilterTrap => {
            plane.arm(site, 1);
            let pp = PacketPlane::new(Rc::clone(&k));
            let (app, thread) = graft_harness(&k);
            let image = k.compile_graft("accept", "halt r0").unwrap();
            pp.install_filter(Port(10), &image, app, thread, &InstallOpts::default()).unwrap();
            pp.rx(Packet::udp(1, 2, Port(10), vec![0; 8]));
            pp.pump();
        }
        FaultSite::NetSteerLoop => {
            plane.arm(site, 1);
            let pp = PacketPlane::new(Rc::clone(&k));
            let (app, thread) = graft_harness(&k);
            pp.open_port(Port(61), 64);
            let image = k
                .compile_graft(
                    "steer",
                    &format!("const r5, {}\nhalt r5", verdict_code::steer_to(61)),
                )
                .unwrap();
            pp.install_filter(Port(10), &image, app, thread, &InstallOpts::default()).unwrap();
            pp.rx(Packet::udp(1, 2, Port(10), vec![0; 8]));
            pp.pump();
        }
        FaultSite::KernelCrashBeforeJournal
        | FaultSite::KernelCrashMidJournal
        | FaultSite::KernelCrashAfterCommit
        | FaultSite::KernelCrashMidCheckpoint => {
            // Already covered by the full battery; here we just prove
            // the site fires in its minimal form.
            plane.arm(site, plane.visits(site) + 1);
            let mut fs = k.fs.borrow_mut();
            let fd = fs.open("f").unwrap();
            assert_eq!(fs.write(fd, 0, b"doomed"), Err(FsError::PowerFailure));
        }
        FaultSite::ReplShipDrop
        | FaultSite::ReplShipReorder
        | FaultSite::ReplAckLoss
        | FaultSite::ReplPrimaryCrash
        | FaultSite::ReplReplicaCrash => unreachable!("repl sites are handled above"),
    }
    plane.injected(site)
}

/// The repl sites fire inside the replication plane's schedule, which
/// owns its own two-kernel pair — arm the site there and drive the
/// standard shipping workload until it is visited.
fn exercise_repl_site(site: FaultSite) -> u64 {
    let mut h = ReplHarness::new(0xE0, ReplConfig::default());
    let plane = Rc::clone(h.fault_plane());
    plane.arm(site, plane.visits(site) + 1);
    h.run(6);
    plane.injected(site)
}

/// Every named fault site is exercised by at least one battery
/// scenario. The `match` in [`exercise`] has no wildcard arm, so adding
/// a `FaultSite` variant without teaching the battery about it is a
/// compile error here — exhaustiveness is structural, not aspirational.
#[test]
fn every_fault_site_is_exercised() {
    assert_eq!(ALL_SITES.len(), 20, "keep this battery in sync with the fault plane");
    for &site in ALL_SITES {
        let injected = exercise(site);
        assert!(injected > 0, "site {site:?} never fired in its scenario");
    }
}

// ---------------------------------------------------------------------
// Satellite: media faults during journal replay.
// ---------------------------------------------------------------------

/// Builds a crash image with one committed-but-not-checkpointed
/// transaction waiting in the journal (the after-commit crash).
fn image_with_pending_redo(seed: u64) -> DiskImage {
    let clock = VirtualClock::new();
    let disk = Disk::new(Rc::clone(&clock));
    let mut fs = FileSystem::format(Rc::clone(&clock), disk, 8, 64);
    fs.create("r", 4 * BLOCK_SIZE as u64).unwrap();
    let fd = fs.open("r").unwrap();
    fs.write(fd, 0, &vec![0x11; 2 * BLOCK_SIZE]).unwrap();
    let plane = FaultPlane::seeded(seed);
    plane.arm(
        FaultSite::KernelCrashAfterCommit,
        plane.visits(FaultSite::KernelCrashAfterCommit) + 1,
    );
    fs.set_fault_plane(plane);
    assert_eq!(fs.write(fd, 0, &vec![0x22; 2 * BLOCK_SIZE]), Err(FsError::PowerFailure));
    fs.disk_image()
}

/// Mounts (and thereby recovers) `image` with an optional fault plane
/// wired to the disk *before* recovery runs, so injected media faults
/// hit the replay path itself.
fn recover_with(image: DiskImage, plane: Option<Rc<FaultPlane>>) -> (DiskImage, RecoveryReport) {
    let clock = VirtualClock::new();
    let mut disk = Disk::from_image(Rc::clone(&clock), image).unwrap();
    if let Some(p) = plane {
        disk.set_fault_plane(p);
    }
    let mut fs = FileSystem::mount(clock, disk, 8).unwrap();
    let report = fs.recovery_report().unwrap();
    let fd = fs.open("r").unwrap();
    assert_eq!(fs.read(fd, 0, 16).unwrap(), vec![0x22; 16], "redo must complete the commit");
    (fs.disk_image(), report)
}

/// Media retries and stalls during replay cost time, never bytes: the
/// recovered image under a storm of `DiskWrite`/`DiskRead`/`DiskStall`
/// faults is byte-identical to a clean recovery. Recovery never
/// half-applies.
#[test]
fn replay_under_media_faults_is_byte_identical() {
    let image = image_with_pending_redo(77);
    let (clean_img, clean_report) = recover_with(image.clone(), None);

    let fp = FaultPlane::seeded(99);
    fp.set_rate(FaultSite::DiskWrite, 1, 1);
    fp.set_rate(FaultSite::DiskRead, 1, 2);
    fp.set_rate(FaultSite::DiskStall, 1, 2);
    fp.set_stall(Cycles(50_000));
    let (faulted_img, faulted_report) = recover_with(image, Some(Rc::clone(&fp)));

    assert!(fp.injected(FaultSite::DiskWrite) > 0, "no write fault ever fired during replay");
    assert!(fp.injected(FaultSite::DiskStall) > 0, "no stall ever fired during replay");
    assert!(clean_img == faulted_img, "media faults during replay changed recovered bytes");
    assert_eq!(clean_report, faulted_report);
}

/// A torn write *during replay itself* (power flickers while recovery
/// is checkpointing) leaves a torn home block — and because redo
/// records are idempotent and the journal survives until overwritten,
/// simply running recovery again repairs it to the clean image.
#[test]
fn torn_replay_is_repaired_by_rerunning_recovery() {
    let image = image_with_pending_redo(77);
    let (clean_img, _) = recover_with(image.clone(), None);

    let fp = FaultPlane::seeded(5);
    fp.arm(FaultSite::DiskTornWrite, 1);
    let clock = VirtualClock::new();
    let mut disk = Disk::from_image(Rc::clone(&clock), image).unwrap();
    disk.set_fault_plane(Rc::clone(&fp));
    let mut fs = FileSystem::mount(clock, disk, 8).unwrap();
    assert_eq!(fp.injected(FaultSite::DiskTornWrite), 1, "the replay write must tear");

    // Second pass, fault disarmed: idempotent redo completes.
    fs.recover();
    assert!(fs.disk_image() == clean_img, "second recovery pass must repair the torn block");
}

// ---------------------------------------------------------------------
// Satellite: journal-full backpressure under the packet storm.
// ---------------------------------------------------------------------

/// A write wider than the journal splits into per-capacity chunks, each
/// atomic on its own — that is the journal-full backpressure contract.
/// With a packet storm churning the same kernel, a crash *between*
/// chunks (the per-chunk after-commit site) must leave a clean prefix:
/// whole chunks of new bytes up to an exact chunk boundary, old bytes
/// beyond it, never a mix — and the whole scenario replays
/// byte-identically under the same seed.
#[test]
fn journal_full_backpressure_under_packet_storm() {
    let run = |seed: u64| {
        let k = Kernel::boot();
        let plane = FaultPlane::seeded(seed);
        k.attach_fault_plane(Rc::clone(&plane)).unwrap();

        let cap = k.fs.borrow().journal_capacity();
        let wide_blocks = cap + 3; // Cannot fit one journal transaction.
        {
            let mut fs = k.fs.borrow_mut();
            fs.create("wide", (wide_blocks * BLOCK_SIZE) as u64).unwrap();
            let fd = fs.open("wide").unwrap();
            fs.write(fd, 0, &vec![0xAA; wide_blocks * BLOCK_SIZE]).unwrap();
        }

        // The storm: a filter graft chews a packet batch on the same
        // kernel, so graft transactions and journal traffic interleave
        // right up to the crash.
        let app = k.create_app(Limits::of(&[
            (ResourceKind::KernelHeap, 1 << 20),
            (ResourceKind::Memory, 1 << 24),
        ]));
        let thread = k.spawn_thread("storm");
        let pp = PacketPlane::new(Rc::clone(&k));
        let image = k.compile_graft("accept", "halt r0").unwrap();
        pp.install_filter(Port(10), &image, app, thread, &InstallOpts::default()).unwrap();
        for i in 0..64u32 {
            pp.rx(Packet::udp(i, 1, Port(10), vec![0x55; 32]));
        }
        pp.pump();
        assert_eq!(pp.drain_delivered(Port(10)).len(), 64, "the storm must flow pre-crash");

        // Crash after the *first* chunk's commit marker: chunk 1 is
        // durable (redo will finish its checkpoint), chunks 2+ never
        // reached the journal.
        let site = FaultSite::KernelCrashAfterCommit;
        plane.arm(site, plane.visits(site) + 1);
        let err = {
            let mut fs = k.fs.borrow_mut();
            let fd = fs.open("wide").unwrap();
            fs.write(fd, 0, &vec![0xBB; wide_blocks * BLOCK_SIZE])
        };
        assert_eq!(err, Err(FsError::PowerFailure));

        let crash_image = k.crash_image();
        let k2 = Kernel::boot_from_image(KernelConfig::default(), crash_image.clone()).unwrap();
        let report = k2.recovery_report().expect("recovered boot must carry a report");
        assert!(report.replayed_txns >= 1, "the committed first chunk must replay");

        // The clean-prefix contract, at an exact chunk boundary.
        let mut fs = k2.fs.borrow_mut();
        let fd = fs.open("wide").unwrap();
        let got = fs.read(fd, 0, (wide_blocks * BLOCK_SIZE) as u64).unwrap();
        assert_eq!(
            &got[..cap * BLOCK_SIZE],
            &vec![0xBB; cap * BLOCK_SIZE][..],
            "first journal chunk must be durable"
        );
        assert_eq!(
            &got[cap * BLOCK_SIZE..],
            &vec![0xAA; 3 * BLOCK_SIZE][..],
            "blocks past the journal-full boundary must keep their old bytes"
        );
        drop(fs);
        (crash_image, k2.crash_image())
    };
    let (a_crash, a_rec) = run(0xBACC);
    let (b_crash, b_rec) = run(0xBACC);
    assert!(a_crash == b_crash, "same-seed crash images differ under the storm");
    assert!(a_rec == b_rec, "same-seed recovered images differ under the storm");
}

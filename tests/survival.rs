//! The survival battery: the whole-kernel robustness argument.
//!
//! §5.1 drives VINO with "a suite of misbehaved grafts" — hoarders,
//! spinners, corruptors — and the claim defended is not that grafts
//! fail gracefully but that the *kernel* survives every one of them.
//! This battery replays that experiment at scale: ≥1000 seeded
//! graft × fault scenarios, mixing a zoo of misbehaved grafts with
//! deterministic fault injection at every instrumented site (disk
//! errors and stalls, VM traps, lock-timeout storms, resource
//! exhaustion, image corruption), and asserts after every scenario:
//!
//! - kernel state was restored or legitimately committed (never torn),
//! - no transaction leaked (`active_txns == 0`),
//! - no lock leaked (`held_count == 0`, `waiter_count == 0`),
//! - no resource counter leaked on the abort path,
//! - the default code path still serves (§3.6: "new invocations of the
//!   call use normal kernel code"),
//! - and nothing panicked.
//!
//! Seeds come from `SURVIVAL_SEEDS` (comma-separated u64s) or default
//! to three fixed seeds, so CI runs are reproducible bit-for-bit.

use std::rc::Rc;

use vino::core::engine::{AbortedWhy, InvokeOutcome};
use vino::core::kernel::point_names;
use vino::core::reliability::FailureKind;
use vino::core::{InstallError, InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::fault::{FaultPlane, FaultSite};
use vino::sim::metrics::{Counter, MetricsPlane};
use vino::sim::profile::ProfilePlane;
use vino::sim::trace::TracePlane;
use vino::sim::{Cycles, SplitMix64};
use vino::txn::locks::LockClass;

/// Scenarios per seed; three seeds make ≥1000 total.
const SCENARIOS_PER_SEED: usize = 350;

fn seeds() -> Vec<u64> {
    match std::env::var("SURVIVAL_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|x| x.trim().parse().expect("SURVIVAL_SEEDS must be comma-separated u64s"))
            .collect(),
        Err(_) => vec![0xC0FFEE, 0xDEAD_BEEF, 42],
    }
}

/// The zoo of §5.1-style misbehaved grafts (plus one well-behaved
/// control). Each entry: name, whether it is expected to be capable of
/// committing, and the kernel-state slot it writes (if any).
struct ZooEntry {
    name: &'static str,
    image: vino::misfit::SignedImage,
    /// Slot the graft writes through the accessor protocol, if any.
    slot: Option<usize>,
    /// CPU-slice budget for instances of this graft.
    max_slices: u32,
}

fn build_zoo(k: &Kernel) -> Vec<ZooEntry> {
    let z = |name: &str, src: &str| k.compile_graft(name, src).unwrap();
    vec![
        // Well-behaved control: writes slot 5 = args[0], commits.
        ZooEntry {
            name: "good-kv",
            image: z("good-kv", "mov r2, r1\nconst r1, 5\ncall $kv_set\nhalt r2"),
            slot: Some(5),
            max_slices: 16,
        },
        // Mutates slot 6 then divides by zero: the §5.1 corruptor.
        ZooEntry {
            name: "div0",
            image: z(
                "div0",
                "
                const r1, 6
                const r2, 99
                call $kv_set
                const r3, 0
                div r0, r3, r3
                halt r0
                ",
            ),
            slot: Some(6),
            max_slices: 16,
        },
        // Allocates args[0] bytes then frees them: commits when given
        // budget, aborts on the zero-limit default (§3.2 hoarder).
        ZooEntry {
            name: "alloc",
            image: z("alloc", "call $kalloc\ncall $kfree\nhalt r0"),
            slot: None,
            max_slices: 16,
        },
        // Allocates and never frees: the hoarder whose allocation must
        // be released by the undo stack when a later fault aborts it.
        ZooEntry {
            name: "hoard",
            image: z("hoard", "call $kalloc\nhalt r0"),
            slot: None,
            max_slices: 16,
        },
        // Un-instrumented wild store at kernel memory: Mem trap.
        ZooEntry {
            name: "wild",
            image: k
                .compile_graft_unsafe(
                    "wild",
                    "
                    const r1, 0xC0000000
                    const r2, 0x41414141
                    storew r2, [r1+0]
                    halt r0
                    ",
                )
                .unwrap(),
            slot: None,
            max_slices: 16,
        },
        // Takes lock handle 0 and halts: exercises the storm site.
        ZooEntry {
            name: "locker",
            image: z("locker", "const r1, 0\ncall $lock\nhalt r0"),
            slot: None,
            max_slices: 16,
        },
        // Takes lock handle 0 and spins: the §2.2 `while(1)` holding a
        // resource. Expensive to run (full timeslices), so the mix
        // keeps it rare; killed by CpuHog or a storm-stolen txn.
        ZooEntry {
            name: "lock-spin",
            image: z("lock-spin", "const r1, 0\ncall $lock\nspin: jmp spin"),
            slot: None,
            max_slices: 2,
        },
    ]
}

struct Tally {
    commits: u64,
    aborts: u64,
    install_refusals: u64,
    quarantine_releases: u64,
    /// The canonical serialization of the battery's trace ring — the
    /// replay-determinism witness (two same-seed runs must agree byte
    /// for byte).
    trace: String,
    /// The metrics plane's full snapshot — the second determinism
    /// witness, and the cross-plane reconciliation substrate.
    metrics: String,
    /// The profile plane's full snapshot (folded stacks, hot functions,
    /// Chrome trace) — the third determinism witness.
    profile: String,
}

/// One kernel survives `SCENARIOS_PER_SEED` consecutive fault
/// scenarios — surviving means every invariant holds after every one.
fn run_battery(seed: u64) -> Tally {
    let k = Kernel::boot();
    let plane = FaultPlane::seeded(seed);
    k.attach_fault_plane(Rc::clone(&plane)).unwrap();
    let tp = TracePlane::with_capacity(Rc::clone(&k.clock), 1 << 14);
    k.attach_trace_plane(Rc::clone(&tp)).unwrap();
    let mp = MetricsPlane::new(Rc::clone(&k.clock));
    k.attach_metrics_plane(Rc::clone(&mp)).unwrap();
    let pp = ProfilePlane::with_capacity(Rc::clone(&k.clock), 32, 1 << 16);
    k.attach_profile_plane(Rc::clone(&pp)).unwrap();
    let app = k.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 30),
        (ResourceKind::Memory, 1 << 30),
    ]));
    let thread = k.spawn_thread("battery");
    let (_lock_handle, lock_id) = k.engine.register_lock(LockClass::Buffer);
    let zoo = build_zoo(&k);

    // The default-path probe: a real file read must succeed (faults
    // disarmed) after every scenario, whatever just died.
    k.fs.borrow_mut().create("probe", 16 * 4096).unwrap();
    let fd = k.fs.borrow_mut().open("probe").unwrap();

    // Model of the kernel-state slots the zoo writes: commits update
    // it, aborts must leave the real state equal to it.
    let mut model = [0u64; 64];
    let mut rng = SplitMix64::new(seed ^ 0x5eed);
    let mut tally = Tally {
        commits: 0,
        aborts: 0,
        install_refusals: 0,
        quarantine_releases: 0,
        trace: String::new(),
        metrics: String::new(),
        profile: String::new(),
    };

    for i in 0..SCENARIOS_PER_SEED {
        // Spread scenarios across the quarantine window so the same
        // graft name quarantines, expires, and reinstalls many times.
        k.clock.charge(Cycles::from_ms(rng.below(120)));

        // Fault configuration for this scenario (one of eight, some
        // benign). Rates persist for the scenario, one-shots are armed
        // relative to the site's current visit count.
        plane.disarm_all();
        match rng.below(8) {
            0 => plane.arm(FaultSite::VmTrap, plane.visits(FaultSite::VmTrap) + 1 + rng.below(40)),
            1 => plane.set_rate(FaultSite::ResourceExhaust, 1, 2),
            2 => plane.set_rate(FaultSite::DiskRead, 1, 3),
            3 => plane.set_rate(FaultSite::DiskWrite, 1, 3),
            4 => plane.arm(FaultSite::ImageCorrupt, plane.visits(FaultSite::ImageCorrupt) + 1),
            5 => plane.set_rate(FaultSite::LockTimeoutStorm, 1, 1),
            6 => plane.set_rate(FaultSite::DiskStall, 1, 4),
            _ => {} // No injection: the zoo misbehaves on its own.
        }

        // Pick a graft: spinners are expensive (whole timeslices), so
        // keep them rare; everything else uniform.
        let pick = if rng.chance(1, 50) {
            zoo.iter().position(|z| z.name == "lock-spin").unwrap()
        } else {
            rng.below((zoo.len() - 1) as u64) as usize
        };
        let entry = &zoo[pick];

        // Sometimes fund the graft so the alloc/hoard paths commit.
        let opts = if rng.chance(1, 2) {
            InstallOpts {
                billing: vino::core::BillingMode::Transfer(vec![(ResourceKind::KernelHeap, 8192)]),
                ..InstallOpts::default()
            }
        } else {
            InstallOpts::default()
        };

        // Install. Quarantine and injected image corruption are valid
        // refusals: the kernel said no and kept running. A quarantine
        // must expire by the clock — prove it, then proceed.
        let graft = match k.install_function_graft(
            point_names::COMPUTE_RA,
            &entry.image,
            app,
            thread,
            &opts,
        ) {
            Ok(g) => Some(g),
            Err(InstallError::Quarantined { graft, until }) => {
                assert_eq!(graft, entry.name);
                assert!(
                    k.reliability().ledger(entry.name).unwrap().episodes > 0,
                    "quarantine without an episode"
                );
                tally.install_refusals += 1;
                k.clock.advance_to(until);
                let retried = k.install_function_graft(
                    point_names::COMPUTE_RA,
                    &entry.image,
                    app,
                    thread,
                    &opts,
                );
                match retried {
                    Ok(g) => {
                        tally.quarantine_releases += 1;
                        Some(g)
                    }
                    // The armed ImageCorrupt one-shot may hit the retry.
                    Err(InstallError::Verify(_)) => {
                        tally.install_refusals += 1;
                        None
                    }
                    Err(e) => panic!("reinstall after backoff must succeed: {e}"),
                }
            }
            Err(InstallError::Verify(_)) => {
                // Injected image corruption; the loader refused (Rule 6).
                tally.install_refusals += 1;
                None
            }
            Err(e) => panic!("scenario {i}: unexpected install refusal: {e}"),
        };

        if let Some(g) = graft {
            g.borrow_mut().max_slices = entry.max_slices;
            let arg = rng.range(1, 4096);
            let principal = g.borrow().principal;
            let used_before = k.engine.rm.borrow().used(principal, ResourceKind::KernelHeap);
            let out = g.borrow_mut().invoke([arg, i as u64, 0, 0]);
            match out {
                InvokeOutcome::Ok { .. } => {
                    tally.commits += 1;
                    if let Some(slot) = entry.slot {
                        model[slot] = match entry.name {
                            "good-kv" => arg,
                            "div0" => 99,
                            _ => model[slot],
                        };
                    }
                }
                InvokeOutcome::Aborted { why, report } => {
                    tally.aborts += 1;
                    assert!(g.borrow().is_dead(), "abort forcibly unloads (§3.6)");
                    // No resource-counter leak: everything the aborted
                    // run charged was released by the undo stack.
                    let used_after = k.engine.rm.borrow().used(principal, ResourceKind::KernelHeap);
                    assert_eq!(
                        used_before, used_after,
                        "scenario {i} ({}): abort leaked heap ({why:?}, {report:?})",
                        entry.name
                    );
                }
                InvokeOutcome::Dead => panic!("fresh install cannot be dead"),
            }
            // Unload bookkeeping: limits return to the installer.
            k.engine.rm.borrow_mut().destroy(principal, Some(app));
        }

        // Drive the disk while injection is live: reads may fail (an
        // I/O error is a legal answer) but must never wedge the cache
        // or the kernel.
        let _ = k.fs.borrow_mut().read(fd, rng.below(16) * 4096, 4096);

        // ---- Per-scenario survival invariants ----
        let txn = k.engine.txn.borrow();
        assert_eq!(txn.active_txns(), 0, "scenario {i}: transaction leaked");
        assert_eq!(txn.lock_table().held_count(), 0, "scenario {i}: lock leaked");
        assert_eq!(txn.lock_table().waiter_count(), 0, "scenario {i}: waiter leaked");
        assert_eq!(txn.lock_table().holder(lock_id), None);
        drop(txn);
        for slot in [5usize, 6] {
            assert_eq!(
                k.engine.kv_read(slot),
                model[slot],
                "scenario {i}: kernel slot {slot} torn"
            );
        }
        // The default path still serves, with injection quiesced.
        plane.disarm_all();
        let off = rng.below(16) * 4096;
        k.fs.borrow_mut().read(fd, off, 4096).expect("default read path must serve");
    }

    // The battery must actually have exercised the disaster paths.
    assert!(tally.aborts > SCENARIOS_PER_SEED as u64 / 4, "too few aborts: {}", tally.aborts);
    assert!(tally.commits > 0, "the well-behaved control never committed");
    assert!(plane.total_injected() > 0, "no fault ever fired");
    assert_eq!(k.reliability().total_aborts(), tally.aborts);
    assert!(k.engine.rm.borrow().blame(app) > 0, "aborts billed blame to the installer");
    let ts = tp.stats();
    assert_eq!(
        ts.vm + ts.txn + ts.rm + ts.fs + ts.graft + ts.net,
        ts.total,
        "per-subsystem trace counters must sum to the total"
    );
    assert_eq!(ts.net, 0, "this battery drives no packet plane");

    // ---- Cross-plane reconciliation ----
    // Every reconciling metrics counter is incremented at the same
    // code site as its trace-event twin, so each subsystem's trace
    // count must equal the sum of that subsystem's counters. (The
    // measurement-only counters — VmInstrs, MutexAcquires — have no
    // trace twin and are excluded.)
    let g = |c| mp.get(c);
    assert_eq!(
        ts.vm,
        g(Counter::VmWindows) + g(Counter::SfiClamps) + g(Counter::SfiCallchecks),
        "vm trace events must reconcile with vm counters"
    );
    assert_eq!(
        ts.txn,
        g(Counter::TxnBegins)
            + g(Counter::TxnCommits)
            + g(Counter::TxnNestedCommits)
            + g(Counter::TxnAborts)
            + g(Counter::TxnLockAcquires)
            + g(Counter::LockWaits)
            + g(Counter::LockTimeouts)
            + g(Counter::LockSteals)
            + g(Counter::UndoPushes)
            + g(Counter::UndoRuns),
        "txn trace events must reconcile with txn counters"
    );
    assert_eq!(
        ts.rm,
        g(Counter::RmGrants) + g(Counter::RmDenials) + g(Counter::RmReleases),
        "rm trace events must reconcile with rm counters"
    );
    assert_eq!(
        ts.fs,
        g(Counter::FsReads)
            + g(Counter::FsWrites)
            + g(Counter::FsPrefetches)
            + g(Counter::FsJournalAppends)
            + g(Counter::FsJournalCommits)
            + g(Counter::FsCheckpoints)
            + g(Counter::FsRecoveryReplays)
            + g(Counter::FsRecoveryDiscards),
        "fs trace events must reconcile with fs counters"
    );
    assert_eq!(
        ts.graft,
        g(Counter::GraftInstalls)
            + g(Counter::GraftInvocations)
            + g(Counter::GraftCommits)
            + g(Counter::GraftAborts)
            + g(Counter::GraftQuarantines)
            + g(Counter::GraftFallbacks),
        "graft trace events must reconcile with graft counters"
    );
    // The planes also agree with the battery's own tally.
    assert_eq!(g(Counter::GraftCommits), tally.commits);
    assert_eq!(g(Counter::GraftAborts), tally.aborts);

    // The profile plane watched the same charge sites as the metrics
    // plane, so the two ledgers must agree exactly — for every graft in
    // the zoo and for the kernel's own components.
    for ptag in pp.tags_in_order() {
        let name = pp.name_of(ptag);
        let mtag = mp.tag(&name);
        assert_eq!(
            pp.attribution(ptag),
            mp.attribution(mtag),
            "{name}: profile and metrics attribution diverged"
        );
    }
    assert_eq!(pp.kernel_attribution(), mp.kernel_attribution());

    tally.trace = tp.serialize();
    tally.metrics = mp.snapshot();
    tally.profile = pp.snapshot();
    tally
}

#[test]
fn survival_battery_1000_scenarios() {
    let seeds = seeds();
    let mut quarantine_cycles = 0;
    for seed in &seeds {
        let tally = run_battery(*seed);
        quarantine_cycles += tally.quarantine_releases;
    }
    assert!(seeds.len() * SCENARIOS_PER_SEED >= 1000, "battery must cover at least 1000 scenarios");
    assert!(quarantine_cycles > 0, "no seed ever drove a graft through quarantine-and-release");
}

#[test]
fn survival_battery_is_deterministic() {
    // Same seed, same kernel, same disasters: the tallies agree.
    let a = run_battery(7);
    let b = run_battery(7);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.aborts, b.aborts);
    assert_eq!(a.install_refusals, b.install_refusals);
    assert_eq!(a.quarantine_releases, b.quarantine_releases);
    // The strong form: not just the tallies — the two runs' event
    // streams (sequence numbers, cycle stamps, payloads) are
    // byte-identical under the same seed.
    assert!(!a.trace.is_empty(), "the battery emitted no trace events");
    assert_eq!(a.trace, b.trace, "same-seed replay must produce a byte-identical trace");
    // And the same holds for the metrics plane: counters, attribution
    // ledgers, latency quantiles and health rows are all derived from
    // the virtual clock, so two same-seed runs snapshot byte-for-byte
    // identically.
    assert!(!a.metrics.is_empty(), "the battery recorded no metrics");
    assert_eq!(a.metrics, b.metrics, "same-seed replay must produce a byte-identical snapshot");
    // Third witness: the profile plane's folded stacks, hot-function
    // report and Chrome trace replay byte-for-byte too.
    assert!(!a.profile.is_empty(), "the battery recorded no profile");
    assert_eq!(a.profile, b.profile, "same-seed replay must produce a byte-identical profile");
}

#[test]
fn quarantine_blocks_reinstall_with_exponential_backoff() {
    // The reliability manager end to end: three aborts quarantine the
    // graft; reinstall is refused until the deadline, permitted after;
    // a second episode doubles the backoff.
    let k = Kernel::boot();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let image = k.compile_graft("flaky", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();

    let crash = |n: u32| {
        for _ in 0..n {
            let g = k
                .install_function_graft(
                    point_names::COMPUTE_RA,
                    &image,
                    app,
                    t,
                    &InstallOpts::default(),
                )
                .expect("not quarantined yet");
            let out = g.borrow_mut().invoke([0; 4]);
            assert!(matches!(out, InvokeOutcome::Aborted { .. }));
        }
    };

    crash(3);
    let refused = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap_err();
    let InstallError::Quarantined { until: until1, .. } = refused else {
        panic!("expected quarantine, got {refused}");
    };
    let backoff1 = until1.saturating_sub(k.clock.now());
    assert!(backoff1 > Cycles::ZERO);

    // Deadline passes → reinstall permitted; three more crashes trip
    // episode two with double the backoff.
    k.clock.advance_to(until1);
    crash(3);
    let refused = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap_err();
    let InstallError::Quarantined { until: until2, .. } = refused else {
        panic!("expected second quarantine, got {refused}");
    };
    let backoff2 = until2.saturating_sub(k.clock.now());
    assert_eq!(backoff2.get(), backoff1.get() * 2, "exponential backoff doubles");
    assert_eq!(k.reliability().ledger("flaky").unwrap().episodes, 2);
    assert_eq!(k.reliability().ledger("flaky").unwrap().count(FailureKind::DivByZero), 6);

    // After the (longer) second deadline the graft is welcome again —
    // quarantine is backoff, not a death sentence.
    k.clock.advance_to(until2);
    k.install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .expect("second backoff expired");
}

#[test]
fn storm_stolen_transaction_does_not_panic_the_wrapper() {
    // The audited fire_due_timeouts interaction, end to end: a storm
    // schedules a phantom waiter against the spinning graft's lock; the
    // fired time-out aborts the wrapper's transaction from under the
    // running graft. The wrapper must observe the theft (not panic),
    // classify it as a lock time-out, and leave no residue.
    let k = Kernel::boot();
    let plane = FaultPlane::seeded(9);
    plane.set_rate(FaultSite::LockTimeoutStorm, 1, 1);
    k.attach_fault_plane(Rc::clone(&plane)).unwrap();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let (_h, lock_id) = k.engine.register_lock(LockClass::Buffer);
    let image = k.compile_graft("storm-victim", "const r1, 0\ncall $lock\nspin: jmp spin").unwrap();
    let g = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap();
    g.borrow_mut().max_slices = 4;

    let out = g.borrow_mut().invoke([0; 4]);
    let InvokeOutcome::Aborted { why, .. } = out else {
        panic!("storm must abort the holder, got {out:?}");
    };
    assert_eq!(why, AbortedWhy::LockTimeout, "theft classified as a lock time-out");
    assert!(g.borrow().is_dead());
    let txn = k.engine.txn.borrow();
    assert_eq!(txn.active_txns(), 0);
    assert_eq!(txn.lock_table().holder(lock_id), None, "stolen lock released exactly once");
    assert_eq!(txn.lock_table().held_count(), 0);
    drop(txn);
    assert_eq!(k.reliability().ledger("storm-victim").unwrap().count(FailureKind::LockTimeout), 1);
}

#[test]
fn callee_disasters_never_abort_the_caller() {
    // §3.1: "any graft can abort without aborting its calling graft."
    // A caller invokes a crashing subgraft 3 times: every call returns
    // the CALLEE_ABORTED sentinel (dead callee included) and the caller
    // commits every time.
    let k = Kernel::boot();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let callee_img = k.compile_graft("callee", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
    let callee = k
        .install_function_graft(
            point_names::PICK_VICTIM,
            &callee_img,
            app,
            t,
            &InstallOpts::default(),
        )
        .unwrap();
    let handle = k.engine.register_subgraft(Rc::clone(&callee));
    let caller_img = k
        .compile_graft("caller", &format!("const r1, {handle}\ncall $call_graft\nhalt r0"))
        .unwrap();
    let caller = k
        .install_function_graft(
            point_names::COMPUTE_RA,
            &caller_img,
            app,
            t,
            &InstallOpts::default(),
        )
        .unwrap();

    for _ in 0..3 {
        caller.borrow_mut().revive();
        let out = caller.borrow_mut().invoke([0; 4]);
        let InvokeOutcome::Ok { result, .. } = out else {
            panic!("caller must commit despite callee disaster: {out:?}");
        };
        assert_eq!(result, vino::core::engine::CALLEE_ABORTED);
        assert_eq!(k.engine.txn.borrow().active_txns(), 0);
    }
    assert_eq!(caller.borrow().stats().commits, 3);
    assert_eq!(callee.borrow().stats().aborts, 1, "callee died once, then was Dead");
}

//! Golden profile-snapshot battery: the canonical profile plane
//! output, frozen.
//!
//! The same three scenarios as the golden-trace and golden-metrics
//! batteries run with a profile plane attached and compare the full
//! snapshot (folded flamegraph stacks + hot-function report + Chrome
//! trace JSON) against checked-in golden files in `tests/goldens/`.
//! Any change to per-PC billing, call-graph folding, span placement,
//! or the rendered formats shows up as a diff here. If the change is
//! intentional, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test profile_golden
//! ```
//!
//! and commit the updated `.prof` files alongside the change that
//! caused them. See `docs/PROFILING.md` for the snapshot format.

use std::path::PathBuf;
use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::point_names;
use vino::core::{InstallError, InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::fault::{FaultPlane, FaultSite};
use vino::sim::profile::ProfilePlane;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.prof"))
}

/// Compares `got` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS=1`. On mismatch the panic message carries a line
/// diff small enough to read in CI output.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test profile_golden",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "profile drifted from golden {name} — if intentional, rerun with UPDATE_GOLDENS=1\n{diff}"
        );
    }
}

fn boot_profiled() -> (Rc<Kernel>, Rc<ProfilePlane>) {
    let k = Kernel::boot();
    let pp = ProfilePlane::new(Rc::clone(&k.clock));
    k.attach_profile_plane(Rc::clone(&pp)).unwrap();
    (k, pp)
}

/// Scenario 1: a well-behaved graft installs, runs, and commits. The
/// golden pins the clean-path folded stacks (envelope components +
/// per-function self/SFI cycles), the hot-function ranking, and a span
/// tree with txn-begin and txn-commit nested inside one invocation.
#[test]
fn golden_clean_commit_profile() {
    let (k, pp) = boot_profiled();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let image =
        k.compile_graft("good-kv", "mov r2, r1\nconst r1, 5\ncall $kv_set\nhalt r2").unwrap();
    let g = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap();
    let out = g.borrow_mut().invoke([41, 0, 0, 0]);
    assert!(matches!(out, InvokeOutcome::Ok { result: 41, .. }));
    check_golden("clean_commit", &pp.snapshot());
}

/// Scenario 2: a lock-timeout storm steals the wrapper transaction out
/// from under a spinning graft. The golden pins the abort-side profile:
/// the invocation span named `!abort`, the abort/undo spans, and cycles
/// in the Abort rather than TxnCommit component.
#[test]
fn golden_lock_timeout_abort_profile() {
    let (k, pp) = boot_profiled();
    let plane = FaultPlane::seeded(9);
    plane.set_rate(FaultSite::LockTimeoutStorm, 1, 1);
    k.attach_fault_plane(plane).unwrap();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let _ = k.engine.register_lock(vino::txn::locks::LockClass::Buffer);
    let image = k.compile_graft("storm-victim", "const r1, 0\ncall $lock\nspin: jmp spin").unwrap();
    let g = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap();
    g.borrow_mut().max_slices = 4;
    let out = g.borrow_mut().invoke([0; 4]);
    assert!(matches!(out, InvokeOutcome::Aborted { .. }));
    let snap = pp.snapshot();
    assert!(snap.contains("!abort"), "the aborted invocation is named in the trace");
    check_golden("lock_timeout", &snap);
}

/// Scenario 3: three straight traps trip quarantine. The golden pins
/// three aborted invocations' worth of per-PC cycles and spans, all
/// billed to the same graft name across reinstalls.
#[test]
fn golden_quarantine_trip_profile() {
    let (k, pp) = boot_profiled();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let image = k.compile_graft("div0", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
    for _ in 0..3 {
        let g = k
            .install_function_graft(
                point_names::COMPUTE_RA,
                &image,
                app,
                t,
                &InstallOpts::default(),
            )
            .unwrap();
        let out = g.borrow_mut().invoke([0; 4]);
        assert!(matches!(out, InvokeOutcome::Aborted { .. }));
    }
    let refused = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap_err();
    assert!(matches!(refused, InstallError::Quarantined { .. }));
    let attr = pp.attribution(pp.tag("div0")).unwrap();
    assert_eq!(attr.invocations, 3, "reinstalls share one profile tag");
    check_golden("quarantine", &pp.snapshot());
}

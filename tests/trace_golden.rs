//! Golden-trace battery: the canonical event stream, frozen.
//!
//! Three scenarios run a freshly booted kernel under a fixed seed with
//! a trace plane attached and compare the serialized event stream (and,
//! for the abort scenarios, the flight-recorder post-mortem) against
//! checked-in golden files in `tests/goldens/`. Any change to event
//! ordering, cycle accounting, lock time-outs, or the canonical line
//! format shows up as a diff here — that is the point. If the change is
//! intentional, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test trace_golden
//! ```
//!
//! and commit the updated `.trace` files alongside the change that
//! caused them. See `docs/TRACING.md` for the line format.

use std::path::PathBuf;
use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::point_names;
use vino::core::{InstallError, InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::fault::{FaultPlane, FaultSite};
use vino::sim::trace::TracePlane;
use vino::sim::ThreadId;
use vino::txn::locks::LockClass;
use vino::txn::manager::LockOutcome;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.trace"))
}

/// Compares `got` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS=1`. On mismatch the panic message carries a line
/// diff small enough to read in CI output.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test trace_golden",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "trace drifted from golden {name} — if intentional, rerun with UPDATE_GOLDENS=1\n{diff}"
        );
    }
}

fn boot_traced() -> (Rc<Kernel>, Rc<TracePlane>) {
    let k = Kernel::boot();
    let tp = TracePlane::with_capacity(Rc::clone(&k.clock), 4096);
    k.attach_trace_plane(Rc::clone(&tp)).unwrap();
    (k, tp)
}

/// Scenario 1: a well-behaved graft installs, runs, and commits. The
/// golden pins the full install → invoke → begin → window → commit
/// sequence and its cycle accounting.
#[test]
fn golden_clean_commit() {
    let (k, tp) = boot_traced();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let image =
        k.compile_graft("good-kv", "mov r2, r1\nconst r1, 5\ncall $kv_set\nhalt r2").unwrap();
    let g = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap();
    let out = g.borrow_mut().invoke([41, 0, 0, 0]);
    assert!(matches!(out, InvokeOutcome::Ok { result: 41, .. }));
    assert!(tp.post_mortem().is_none(), "clean commit leaves no post-mortem");
    check_golden("clean_commit", &tp.serialize());
}

/// Scenario 2: a lock-timeout storm steals the wrapper transaction out
/// from under a spinning graft. The golden pins the timeout → undo →
/// abort → steal sequence (whose cycle stamps depend directly on the
/// `LockClass::Buffer` time-out constant) plus the rendered
/// flight-recorder post-mortem.
#[test]
fn golden_lock_timeout_abort() {
    let (k, tp) = boot_traced();
    let plane = FaultPlane::seeded(9);
    plane.set_rate(FaultSite::LockTimeoutStorm, 1, 1);
    k.attach_fault_plane(plane).unwrap();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let _ = k.engine.register_lock(LockClass::Buffer);
    let image = k.compile_graft("storm-victim", "const r1, 0\ncall $lock\nspin: jmp spin").unwrap();
    let g = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap();
    g.borrow_mut().max_slices = 4;
    let out = g.borrow_mut().invoke([0; 4]);
    assert!(matches!(out, InvokeOutcome::Aborted { .. }));
    let pm = k.post_mortem().expect("storm abort leaves a post-mortem");

    // Epilogue: a genuine contended-lock time-out (no storm). The
    // blocked waiter's deadline is `now + LockClass::Buffer.timeout()`
    // tick-rounded, so the `txn.timeout` / `txn.abort` stamps below
    // move if anyone touches that constant — the golden is a tripwire
    // on the time-out table itself.
    let (holder, waiter) = (ThreadId(8), ThreadId(9));
    let lock = k.engine.txn.borrow_mut().create_lock(LockClass::Buffer);
    let mut m = k.engine.txn.borrow_mut();
    m.begin(holder);
    assert_eq!(m.lock(lock, holder), LockOutcome::Granted);
    let LockOutcome::Blocked { deadline, .. } = m.lock(lock, waiter) else {
        panic!("second taker must block");
    };
    drop(m);
    k.clock.advance_to(deadline);
    let fired = k.engine.txn.borrow_mut().fire_due_timeouts();
    assert!(!fired.is_empty(), "the contended time-out fired");

    let got = format!("{}\n{pm}", tp.serialize());
    check_golden("lock_timeout", &got);
}

/// Scenario 3: three straight traps trip quarantine. The golden pins
/// three install/invoke/abort cycles, the `graft.quarantine` event with
/// its backoff deadline, and the last abort's post-mortem.
#[test]
fn golden_quarantine_trip() {
    let (k, tp) = boot_traced();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let image = k.compile_graft("div0", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
    for _ in 0..3 {
        let g = k
            .install_function_graft(
                point_names::COMPUTE_RA,
                &image,
                app,
                t,
                &InstallOpts::default(),
            )
            .unwrap();
        let out = g.borrow_mut().invoke([0; 4]);
        assert!(matches!(out, InvokeOutcome::Aborted { .. }));
    }
    let refused = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap_err();
    assert!(matches!(refused, InstallError::Quarantined { .. }));
    let pm = k.post_mortem().expect("the third trap leaves a post-mortem");
    let got = format!("{}\n{pm}", tp.serialize());
    check_golden("quarantine", &got);
}

/// Scenario 4: a kernel crash after the journal commit marker, then a
/// fresh kernel booted over the surviving image. The golden pins the
/// retroactively flushed recovery events (`fs.recovery_replay`,
/// emitted at plane-attach time because recovery runs at mount, before
/// any plane can be wired) followed by a post-recovery journaled write
/// (`fs.journal_append` → `fs.journal_commit` → `fs.checkpoint`).
#[test]
fn golden_crash_recovery() {
    use vino::core::kernel::KernelConfig;
    use vino::fs::{FsError, BLOCK_SIZE};

    let k = Kernel::boot();
    let plane = FaultPlane::seeded(0xCAFE);
    k.attach_fault_plane(Rc::clone(&plane)).unwrap();
    {
        let mut fs = k.fs.borrow_mut();
        fs.create("wal", 2 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("wal").unwrap();
        fs.write(fd, 0, b"committed").unwrap();
        let site = FaultSite::KernelCrashAfterCommit;
        plane.arm(site, plane.visits(site) + 1);
        assert_eq!(fs.write(fd, 0, b"in flight"), Err(FsError::PowerFailure));
    }
    let k2 = Kernel::boot_from_image(KernelConfig::default(), k.crash_image()).unwrap();
    assert!(k2.recovery_report().unwrap().replayed_txns >= 1);
    let tp = TracePlane::with_capacity(Rc::clone(&k2.clock), 4096);
    k2.attach_trace_plane(Rc::clone(&tp)).unwrap();
    {
        let mut fs = k2.fs.borrow_mut();
        let fd = fs.open("wal").unwrap();
        assert_eq!(fs.read(fd, 0, 9).unwrap(), b"in flight");
        fs.write(fd, 0, b"post-recovery write").unwrap();
    }
    check_golden("crash_recovery", &tp.serialize());
}

//! End-to-end graft lifecycle and cross-subsystem integration tests.

use vino::core::engine::InvokeOutcome;
use vino::core::{InstallOpts, Kernel};
use vino::dev::Port;
use vino::rm::{Limits, ResourceKind};
use vino::sim::Cycles;

fn boot() -> std::rc::Rc<Kernel> {
    Kernel::boot()
}

fn app(k: &Kernel) -> vino::rm::PrincipalId {
    k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]))
}

#[test]
fn full_lifecycle_compile_install_invoke_unload() {
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    k.fs.borrow_mut().create("f", 16 * 4096).unwrap();
    let fd = k.fs.borrow_mut().open("f").unwrap();

    // Compile: assemble + instrument + sign.
    let image =
        k.compile_graft("ra", "add r1, r1, r2\nconst r2, 4096\ncall $ra_submit\nhalt r0").unwrap();
    // Install: verify + link-audit + principal + attach.
    let g = k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
    assert_eq!(g.borrow().name, "ra");
    assert!(!g.borrow().is_dead());

    // Invoke via the real read path, several times.
    for i in 0..5 {
        k.fs.borrow_mut().read(fd, i * 4096, 4096).unwrap();
    }
    let stats = g.borrow().stats();
    assert_eq!(stats.invocations, 5);
    assert_eq!(stats.commits, 5);
    assert_eq!(stats.aborts, 0);

    // Replace: installing a new graft supersedes the old delegate.
    let image2 = k.compile_graft("ra2", "halt r0").unwrap();
    let g2 = k.install_ra_graft(fd, &image2, a, t, &InstallOpts::default()).unwrap();
    k.fs.borrow_mut().read(fd, 0, 4096).unwrap();
    assert_eq!(g.borrow().stats().invocations, 5, "old graft no longer called");
    assert_eq!(g2.borrow().stats().invocations, 1);

    // Remove: clearing the delegate restores the default policy.
    k.fs.borrow_mut().clear_ra_delegate(fd);
    k.fs.borrow_mut().read(fd, 4096, 4096).unwrap();
    assert_eq!(g2.borrow().stats().invocations, 1, "no graft called after removal");
}

#[test]
fn nested_grafts_via_event_handlers_share_undo_correctly() {
    // Two handlers mutate adjacent kernel slots; one aborts. Only the
    // aborted handler's mutation is undone (transaction isolation
    // between handlers, each in its own wrapper transaction).
    let k = boot();
    let a = app(&k);
    k.define_event_point(Port(9));
    let good = k.compile_graft("good", "const r1, 20\nconst r2, 1\ncall $kv_set\nhalt r0").unwrap();
    let bad = k
        .compile_graft(
            "bad",
            "
            const r1, 21
            const r2, 1
            call $kv_set      ; mutates, then crashes
            const r3, 0
            div r0, r3, r3
            halt r0
            ",
        )
        .unwrap();
    k.install_event_graft(Port(9), 0, &good, a, &InstallOpts::default()).unwrap();
    k.install_event_graft(Port(9), 1, &bad, a, &InstallOpts::default()).unwrap();
    k.nic.borrow_mut().inject_udp(Port(9), vec![1, 2, 3]);
    k.dispatch_net_events();
    assert_eq!(k.engine.kv_read(20), 1, "good handler's write committed");
    assert_eq!(k.engine.kv_read(21), 0, "bad handler's write undone");
}

#[test]
fn udp_payload_marshalled_into_handler_segment() {
    let k = boot();
    let a = app(&k);
    k.define_event_point(Port(2049));
    // An NFS-ish handler: read the first payload byte from the shared
    // region and store it in kernel slot 30.
    let handler = k
        .compile_graft(
            "nfs",
            "
            call $shared_base
            mov r5, r0
            loadb r2, [r5+1024]   ; first payload byte (APP_BUF)
            const r1, 30
            call $kv_set
            halt r0
            ",
        )
        .unwrap();
    k.install_event_graft(Port(2049), 0, &handler, a, &InstallOpts::default()).unwrap();
    k.nic.borrow_mut().inject_udp(Port(2049), vec![0xAB, 1, 2]);
    let reports = k.dispatch_net_events();
    assert!(matches!(reports[0].handlers[0].outcome, InvokeOutcome::Ok { .. }));
    assert_eq!(k.engine.kv_read(30), 0xAB);
}

#[test]
fn eviction_graft_protects_hot_pages_through_real_vm_system() {
    // A VAS with 8 frames of capacity; the graft protects pages 0-1.
    let k = Kernel::boot_with(vino::core::kernel::KernelConfig {
        memory_pages: 8,
        ..Default::default()
    });
    let a = app(&k);
    let t = k.spawn_thread("app");
    let vas = k.mem.borrow_mut().create_vas();
    // Touch pages 0..8 (fills memory); pages 0 and 1 are critical.
    for vpn in 0..8 {
        k.mem.borrow_mut().touch(vas, vpn);
    }
    // Protect the page ids of vpn 0 and 1 by posting them in the
    // graft's shared buffer.
    let p0 = k.mem.borrow().pages_of(vas)[0];
    let p1 = k.mem.borrow().pages_of(vas)[1];
    let image = k
        .compile_graft(
            "protect",
            "
            ; victim in r1; protected ids in shared buf at 1024/1028.
            call $shared_base
            mov r5, r0
            loadw r6, [r5+1024]
            loadw r7, [r5+1028]
            beq r1, r6, spare
            beq r1, r7, spare
            mov r0, r1          ; victim is fine
            halt r0
            spare:
            ; return the 3rd resident page instead
            loadw r0, [r5+16]   ; resident[2]
            halt r0
            ",
        )
        .unwrap();
    let g = k.install_evict_graft(vas, &image, a, t, &InstallOpts::default()).unwrap();
    g.borrow_mut().mem().graft_write_u32(1024, p0.0 as u32);
    g.borrow_mut().mem().graft_write_u32(1028, p1.0 as u32);
    // Fault in more pages; the criticals must survive every eviction.
    for vpn in 8..20 {
        k.mem.borrow_mut().touch(vas, vpn);
    }
    let pages = k.mem.borrow().pages_of(vas);
    assert!(pages.contains(&p0), "critical page 0 resident");
    assert!(pages.contains(&p1), "critical page 1 resident");
    assert!(k.mem.borrow().stats().graft_overrules >= 2);
}

#[test]
fn simulated_time_is_deterministic() {
    // Two identical kernels running identical work read identical
    // clocks — the reproducibility the whole methodology rests on.
    let elapsed = |seed: u64| {
        let k = boot();
        let a = app(&k);
        let t = k.spawn_thread("app");
        k.fs.borrow_mut().create("f", 32 * 4096).unwrap();
        let fd = k.fs.borrow_mut().open("f").unwrap();
        let image = k
            .compile_graft("ra", "add r1, r1, r2\nconst r2, 4096\ncall $ra_submit\nhalt r0")
            .unwrap();
        k.install_ra_graft(fd, &image, a, t, &InstallOpts::default()).unwrap();
        let mut rng = vino::sim::SplitMix64::new(seed);
        for _ in 0..50 {
            let b = rng.below(32) * 4096;
            k.fs.borrow_mut().read(fd, b, 4096).unwrap();
            k.clock.charge(Cycles::from_us(100));
        }
        k.clock.now().get()
    };
    assert_eq!(elapsed(7), elapsed(7));
    assert_ne!(elapsed(7), elapsed(8), "different workloads, different time");
}

#[test]
fn resource_accounting_spans_install_run_unload() {
    let k = boot();
    let a = app(&k);
    let t = k.spawn_thread("app");
    k.fs.borrow_mut().create("f", 4096).unwrap();
    let fd = k.fs.borrow_mut().open("f").unwrap();
    let image = k.compile_graft("alloc", "const r1, 1024\ncall $kalloc\nhalt r0").unwrap();
    let opts = InstallOpts {
        billing: vino::core::BillingMode::Transfer(vec![(ResourceKind::KernelHeap, 4096)]),
        ..InstallOpts::default()
    };
    let g = k.install_ra_graft(fd, &image, a, t, &opts).unwrap();
    let installer_before = k.engine.rm.borrow().limit(a, ResourceKind::KernelHeap);
    // Four successful allocations fit the budget; the fifth aborts.
    for i in 0..5 {
        g.borrow_mut().revive();
        let out = g.borrow_mut().invoke([0; 4]);
        if i < 4 {
            assert!(matches!(out, InvokeOutcome::Ok { .. }), "alloc {i}");
        } else {
            assert!(matches!(out, InvokeOutcome::Aborted { .. }), "alloc {i} over budget");
        }
    }
    assert_eq!(k.engine.rm.borrow().used(g.borrow().principal, ResourceKind::KernelHeap), 4096);
    // Unload: the graft's allocations die with it and its limits return
    // to the installer in full.
    let principal = g.borrow().principal;
    k.engine.rm.borrow_mut().destroy(principal, Some(a));
    let installer_after = k.engine.rm.borrow().limit(a, ResourceKind::KernelHeap);
    assert_eq!(installer_after, installer_before + 4096, "limits returned on unload");
}

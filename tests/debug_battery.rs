//! The debugging-plane battery (`docs/DEBUGGING.md`): checkpoint/
//! restore resumes byte-identically, the fault bisector pinpoints the
//! first invariant-flipping injection in O(log n) replays, and the
//! delta-debugging shrinker emits a 1-minimal reproducer that replays
//! byte-identically.
//!
//! Everything here runs the deterministic debug storm
//! (`vino_bench::debug`): a distilled survival battery whose random
//! draws are all made up front, so the fault plane's injection cap and
//! step subsets are the only degrees of freedom.

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::{point_names, KernelConfig};
use vino::core::reliability::QuarantinePolicy;
use vino::core::{InstallError, InstallOpts};
use vino::sim::Cycles;
use vino_bench::debug::{
    bisect, linear_scan, parse_reproducer, resume_storm, run_storm, serialize_reproducer, shrink,
    DebugWorld, StormOpts, StormSpec,
};

/// The battery's known-bad scenario: under this seed the uncapped storm
/// violates `abort-free` with the culprit injection mid-schedule, so
/// both the bisector and the shrinker have real work to do.
const SEED: u64 = 3_405_691_582;
const STEPS: usize = 48;

fn cfg() -> KernelConfig {
    KernelConfig { trace_capacity: 1 << 14, ..KernelConfig::default() }
}

fn opts() -> StormOpts {
    StormOpts { cfg: cfg(), ..StormOpts::default() }
}

/// ⌈log₂ n⌉ for n ≥ 1.
fn ceil_log2(n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros() as u64
    }
}

/// The tentpole: a checkpointed run can be resumed from any checkpoint
/// and the resumed run's trace and metrics are byte-identical to the
/// uninterrupted run's — replay reaches any instant without paying for
/// the prefix.
#[test]
fn checkpointed_storm_resumes_byte_identically() {
    let spec = StormSpec::generate(SEED, STEPS);
    let o = StormOpts { checkpoints: true, ..opts() };
    let full = run_storm(&spec, &o);
    assert!(
        full.checkpoints.len() >= 3,
        "cadence produced only {} checkpoints",
        full.checkpoints.len()
    );

    // Satellite: a freshly restored world's trace and metrics snapshots
    // equal the originals at the same virtual cycle, before any
    // further step runs.
    let mid = &full.checkpoints[full.checkpoints.len() / 2];
    let restored = DebugWorld::restore(mid, spec.seed, &o.cfg);
    assert_eq!(restored.k.clock.now(), mid.cycle, "restored clock aligns to the capture cycle");
    assert_eq!(
        restored.mp.snapshot(),
        mid.metrics_snapshot,
        "restored metrics snapshot must equal the original's at the same cycle"
    );
    assert_eq!(
        restored.tp.serialize(),
        mid.trace_snapshot,
        "restored trace must equal the original's at the same cycle"
    );
    assert_eq!(
        restored.wp.serialize(),
        mid.watch_snapshot,
        "restored alert stream must equal the original's at the same cycle"
    );

    // Resume from the first, a middle, and the last checkpoint: every
    // resumed run must finish with byte-identical planes and tally.
    let picks =
        [&full.checkpoints[0], mid, full.checkpoints.last().expect("at least one checkpoint")];
    for cp in picks {
        let resumed = resume_storm(&spec, cp, &o);
        assert_eq!(resumed.trace, full.trace, "trace diverged resuming from step {}", cp.at_step);
        assert_eq!(
            resumed.metrics, full.metrics,
            "metrics diverged resuming from step {}",
            cp.at_step
        );
        assert_eq!(
            resumed.alerts, full.alerts,
            "alert stream diverged resuming from step {}",
            cp.at_step
        );
        assert_eq!(
            resumed.admission, full.admission,
            "admission decisions diverged resuming from step {}",
            cp.at_step
        );
        assert_eq!(resumed.tally, full.tally, "tally diverged resuming from step {}", cp.at_step);
        assert_eq!(resumed.violation, full.violation);
    }
}

/// Satellite (small fix): the checkpoint cadence is a `KernelConfig`
/// knob, not a constant — halving the interval roughly doubles the
/// captures, and zero disables them.
#[test]
fn checkpoint_cadence_follows_kernel_config() {
    let spec = StormSpec::generate(SEED, STEPS);
    let at = |interval_ms: u64| {
        let o = StormOpts {
            checkpoints: true,
            cfg: KernelConfig { checkpoint_interval_ms: interval_ms, ..cfg() },
            ..StormOpts::default()
        };
        run_storm(&spec, &o).checkpoints.len()
    };
    let coarse = at(500);
    let fine = at(125);
    assert!(fine > coarse, "a finer cadence must capture more checkpoints ({fine} vs {coarse})");
    assert_eq!(at(0), 0, "a zero interval disables checkpointing");
}

/// The bisector pinpoints the first invariant-flipping injection in
/// ≤ ⌈log₂ n⌉ + 1 capped replays, and the linear ground-truth scan
/// agrees on the culprit while spending strictly more replays.
#[test]
fn bisect_finds_first_bad_injection_in_log_replays() {
    let spec = StormSpec::generate(SEED, STEPS);
    let c = cfg();
    let b = bisect(&spec, &c).expect("the known-bad storm violates an invariant");
    assert_eq!(b.invariant, "abort-free");
    let n = b.total_injections;
    assert!(n >= 4, "schedule too thin to make bisection meaningful: {n}");
    assert_eq!(
        b.culprit,
        b.baseline.schedule[b.culprit_cap as usize - 1],
        "culprit must be the schedule entry at the flip cap"
    );

    // O(log n), against the ground truth's O(n).
    assert!(
        b.replays <= ceil_log2(n) + 1,
        "bisect spent {} replays on {n} injections (bound {})",
        b.replays,
        ceil_log2(n) + 1
    );
    let (linear_cap, linear_replays) = linear_scan(&spec, &c).expect("linear scan agrees it fails");
    assert_eq!(linear_cap, b.culprit_cap, "bisect and linear scan must name the same culprit");
    assert_eq!(linear_replays, linear_cap, "the scan replays once per cap up to the culprit");
    assert!(
        b.replays < linear_replays,
        "bisect ({}) must beat the linear scan ({})",
        b.replays,
        linear_replays
    );
}

/// The flip is a genuine boundary: capping one injection below the
/// culprit leaves every invariant intact, capping at the culprit
/// violates `abort-free`.
#[test]
fn culprit_cap_is_an_exact_boundary() {
    let spec = StormSpec::generate(SEED, STEPS);
    let b = bisect(&spec, &cfg()).expect("the known-bad storm violates an invariant");
    let below = run_storm(&spec, &StormOpts { cap: Some(b.culprit_cap - 1), ..opts() });
    assert_eq!(below.violation, None, "one injection below the culprit must run clean");
    let at = run_storm(&spec, &StormOpts { cap: Some(b.culprit_cap), ..opts() });
    assert_eq!(at.violation.expect("culprit cap must violate").invariant, "abort-free");
}

/// The shrinker minimizes the failing storm to a 1-minimal reproducer
/// that (a) still violates the same invariant, (b) survives a
/// serialize → parse round trip byte-identically, and (c) replays
/// byte-identically twice.
#[test]
fn shrinker_emits_minimal_byte_identical_reproducer() {
    let spec = StormSpec::generate(SEED, STEPS);
    let c = cfg();
    let s = shrink(&spec, &c).expect("the known-bad storm violates an invariant");
    assert_eq!(s.invariant, "abort-free");
    assert!(!s.spec.steps.is_empty());
    assert!(
        s.spec.steps.len() < spec.steps.len() / 2,
        "shrinker left {} of {} steps",
        s.spec.steps.len(),
        spec.steps.len()
    );

    // 1-minimality: no single remaining step can be dropped.
    for i in 0..s.spec.steps.len() {
        let mut fewer = s.spec.steps.clone();
        fewer.remove(i);
        if fewer.is_empty() {
            continue;
        }
        let r = run_storm(&StormSpec { seed: spec.seed, steps: fewer }, &opts());
        assert_ne!(
            r.violation.as_ref().map(|v| v.invariant),
            Some("abort-free"),
            "dropping step {i} still reproduces — the result is not 1-minimal"
        );
    }

    // Reproducer file: byte-identical round trip …
    let text = serialize_reproducer(&s.spec, s.invariant);
    let (parsed, invariant) = parse_reproducer(&text).expect("reproducer parses");
    assert_eq!(parsed, s.spec);
    assert_eq!(invariant, s.invariant);
    assert_eq!(serialize_reproducer(&parsed, &invariant), text, "round trip is byte-identical");

    // … and byte-identical double replay, still violating the same
    // invariant.
    let a = run_storm(&parsed, &opts());
    let b = run_storm(&parsed, &opts());
    assert_eq!(a.violation.as_ref().map(|v| v.invariant), Some("abort-free"));
    assert_eq!(a.trace, b.trace, "reproducer replays must produce byte-identical traces");
    assert_eq!(a.metrics, b.metrics, "reproducer replays must produce byte-identical metrics");
}

/// Quarantine state is durable across a checkpoint: a graft quarantined
/// before the capture is still refused by the restored kernel with the
/// same deadline, and welcome again once the (restored) deadline
/// passes.
#[test]
fn checkpoint_preserves_active_quarantine() {
    let c = cfg();
    let mut w = DebugWorld::boot(77, &c);
    // The default 250 ms backoff would expire inside the checkpoint's
    // alignment slack; stretch it so the quarantine straddles the
    // capture. The counting window stretches too: the traps below are
    // spaced out so the watch plane's 1000 ms abort-storm alert never
    // fires (this test is about the *reactive* quarantine, not the
    // proactive admission gate), and the quarantine window must still
    // hold all three.
    w.k.reliability().set_policy(QuarantinePolicy {
        window: Cycles::from_ms(10_000),
        base_backoff: Cycles::from_ms(10_000),
        max_backoff: Cycles::from_ms(60_000),
        ..QuarantinePolicy::default()
    });
    let image = w.k.compile_graft("flaky", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
    let install = |w: &DebugWorld| {
        w.k.install_function_graft(
            point_names::COMPUTE_RA,
            &image,
            w.app,
            w.thread,
            &InstallOpts::default(),
        )
    };
    for _ in 0..3 {
        let g = install(&w).expect("not quarantined yet");
        assert!(matches!(g.borrow_mut().invoke([0; 4]), InvokeOutcome::Aborted { .. }));
        w.k.clock.charge(Cycles::from_ms(600));
    }
    let Err(InstallError::Quarantined { until, .. }) = install(&w) else {
        panic!("three traps must quarantine the graft");
    };

    let cp = w.capture(0);
    assert!(cp.cycle < until, "the quarantine must still be active at the checkpoint");

    let w2 = DebugWorld::restore(&cp, 77, &c);
    let Err(InstallError::Quarantined { until: until2, .. }) = install(&w2) else {
        panic!("the restored kernel must still refuse the quarantined graft");
    };
    assert_eq!(until2, until, "the restored quarantine keeps its deadline");
    assert_eq!(w2.k.reliability().total_aborts(), 3, "the failure ledgers survived the restore");

    w2.k.clock.advance_to(until2);
    install(&w2).expect("the backoff expired on the restored kernel too");
}

//! Golden metrics-snapshot battery: the canonical metrics plane
//! output, frozen.
//!
//! The same three scenarios as the golden-trace battery run with a
//! metrics plane attached and compare the full snapshot (Prometheus
//! exposition + per-graft attribution ledgers + health view) against
//! checked-in golden files in `tests/goldens/`. Any change to counter
//! placement, cycle attribution, histogram bucketing, or the rendered
//! formats shows up as a diff here. If the change is intentional,
//! regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test metrics_golden
//! ```
//!
//! and commit the updated `.metrics` files alongside the change that
//! caused them. See `docs/METRICS.md` for the snapshot format.

use std::path::PathBuf;
use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::point_names;
use vino::core::{InstallError, InstallOpts, Kernel};
use vino::rm::{Limits, ResourceKind};
use vino::sim::fault::{FaultPlane, FaultSite};
use vino::sim::metrics::MetricsPlane;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.metrics"))
}

/// Compares `got` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS=1`. On mismatch the panic message carries a line
/// diff small enough to read in CI output.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test metrics_golden",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "metrics drifted from golden {name} — if intentional, rerun with UPDATE_GOLDENS=1\n{diff}"
        );
    }
}

fn boot_metered() -> (Rc<Kernel>, Rc<MetricsPlane>) {
    let k = Kernel::boot();
    let mp = MetricsPlane::new(Rc::clone(&k.clock));
    k.attach_metrics_plane(Rc::clone(&mp)).unwrap();
    (k, mp)
}

/// Scenario 1: a well-behaved graft installs, runs, and commits. The
/// golden pins the clean-path counter census, the full attribution
/// ledger (txn envelope + lock + graft fn + indirection), and a
/// single-commit health row.
#[test]
fn golden_clean_commit_metrics() {
    let (k, mp) = boot_metered();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let image =
        k.compile_graft("good-kv", "mov r2, r1\nconst r1, 5\ncall $kv_set\nhalt r2").unwrap();
    let g = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap();
    let out = g.borrow_mut().invoke([41, 0, 0, 0]);
    assert!(matches!(out, InvokeOutcome::Ok { result: 41, .. }));
    check_golden("clean_commit", &mp.snapshot());
}

/// Scenario 2: a lock-timeout storm steals the wrapper transaction out
/// from under a spinning graft. The golden pins the timeout / steal /
/// abort counters and the abort-side attribution (undo + abort rows
/// non-zero, commit row zero).
#[test]
fn golden_lock_timeout_abort_metrics() {
    let (k, mp) = boot_metered();
    let plane = FaultPlane::seeded(9);
    plane.set_rate(FaultSite::LockTimeoutStorm, 1, 1);
    k.attach_fault_plane(plane).unwrap();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let _ = k.engine.register_lock(vino::txn::locks::LockClass::Buffer);
    let image = k.compile_graft("storm-victim", "const r1, 0\ncall $lock\nspin: jmp spin").unwrap();
    let g = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap();
    g.borrow_mut().max_slices = 4;
    let out = g.borrow_mut().invoke([0; 4]);
    assert!(matches!(out, InvokeOutcome::Aborted { .. }));
    check_golden("lock_timeout", &mp.snapshot());
}

/// Scenario 3: three straight traps trip quarantine. The golden pins
/// three install/invoke/abort cycles, the quarantine counter, a 100%
/// abort rate, and the `quarantined@` state in the health view.
#[test]
fn golden_quarantine_trip_metrics() {
    let (k, mp) = boot_metered();
    let app = k.create_app(Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]));
    let t = k.spawn_thread("app");
    let image = k.compile_graft("div0", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
    for _ in 0..3 {
        let g = k
            .install_function_graft(
                point_names::COMPUTE_RA,
                &image,
                app,
                t,
                &InstallOpts::default(),
            )
            .unwrap();
        let out = g.borrow_mut().invoke([0; 4]);
        assert!(matches!(out, InvokeOutcome::Aborted { .. }));
    }
    let refused = k
        .install_function_graft(point_names::COMPUTE_RA, &image, app, t, &InstallOpts::default())
        .unwrap_err();
    assert!(matches!(refused, InstallError::Quarantined { .. }));
    assert_eq!(mp.get(vino::sim::metrics::Counter::GraftQuarantines), 1);
    assert!(mp.snapshot().contains("quarantined@"), "health shows the backoff deadline");
    check_golden("quarantine", &mp.snapshot());
}

/// Scenario 4: the trace battery's crash-recovery scenario with a
/// metrics plane on the recovered kernel. The golden pins the
/// retroactively flushed `vino_fs_recovery_replays_total`, the
/// journal counters for a post-recovery write, and the `vino_disk_*`
/// census (reads/writes/seeks) the remounted volume generates — plus
/// the `disk:` and `journal:` footer lines of the health view.
#[test]
fn golden_crash_recovery_metrics() {
    use vino::core::kernel::KernelConfig;
    use vino::fs::{FsError, BLOCK_SIZE};
    use vino::sim::fault::FaultSite;

    let k = Kernel::boot();
    let plane = FaultPlane::seeded(0xCAFE);
    k.attach_fault_plane(Rc::clone(&plane)).unwrap();
    {
        let mut fs = k.fs.borrow_mut();
        fs.create("wal", 2 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("wal").unwrap();
        fs.write(fd, 0, b"committed").unwrap();
        let site = FaultSite::KernelCrashAfterCommit;
        plane.arm(site, plane.visits(site) + 1);
        assert_eq!(fs.write(fd, 0, b"in flight"), Err(FsError::PowerFailure));
    }
    let k2 = Kernel::boot_from_image(KernelConfig::default(), k.crash_image()).unwrap();
    let mp = MetricsPlane::new(Rc::clone(&k2.clock));
    k2.attach_metrics_plane(Rc::clone(&mp)).unwrap();
    {
        let mut fs = k2.fs.borrow_mut();
        let fd = fs.open("wal").unwrap();
        assert_eq!(fs.read(fd, 0, 9).unwrap(), b"in flight");
        fs.write(fd, 0, b"post-recovery write").unwrap();
    }
    let got = mp.snapshot();
    assert!(got.contains("vino_fs_recovery_replays_total 1"), "replay flushed to metrics");
    assert!(got.contains("disk: "), "health carries the disk census");
    check_golden("crash_recovery", &got);
}

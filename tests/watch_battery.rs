//! The watch-plane battery (`docs/WATCH.md`): sliding-window SLOs over
//! the virtual clock, the canonical alert stream, and metrics-driven
//! admission control, end to end.
//!
//! The acceptance scenario is the multi-tenant storm: a hostile tenant
//! whose grafts abort until the `abort-storm` window fires, next to a
//! benign tenant whose grafts commit. The battery asserts that
//!
//! - the admission controller deterministically refuses the hostile
//!   tenant's next install (with an exact backoff deadline) while the
//!   benign tenant's installs proceed untouched,
//! - the alert stream is golden-pinned (`tests/goldens/*.alerts`) and
//!   byte-identical across same-seed replays — including the full
//!   debug storm with fault injection live,
//! - and the watch plane's attribution reconciles *exactly* with the
//!   metrics plane's counters, event for event.
//!
//! Regenerate goldens with `UPDATE_GOLDENS=1 cargo test --test
//! watch_battery`.

use std::path::PathBuf;
use std::rc::Rc;

use vino::core::engine::InvokeOutcome;
use vino::core::kernel::point_names;
use vino::core::{AdmissionPolicy, InstallError, InstallOpts, Kernel};
use vino::rm::{Limits, PrincipalId, ResourceKind};
use vino::sim::metrics::{Counter, MetricsPlane};
use vino::sim::trace::TracePlane;
use vino::sim::watch::WatchPlane;
use vino::sim::Cycles;
use vino_bench::debug::{run_storm_world, FaultChoice, StormOpts, StormSpec, StormStep};

/// Same known-bad seed as the debug battery, so the full-storm
/// reconciliation below runs the scenario the rest of the repo pins.
const SEED: u64 = 3_405_691_582;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.alerts"))
}

/// Compares `got` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS=1`. Same contract as the trace/metrics goldens.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test watch_battery",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "alert stream drifted from golden {name} — if intentional, rerun with UPDATE_GOLDENS=1\n{diff}"
        );
    }
}

/// A kernel with trace, metrics and watch planes attached (in that
/// order — the watch plane mirrors alert edges into the trace), plus a
/// hostile and a benign tenant.
struct World {
    k: Rc<Kernel>,
    wp: Rc<WatchPlane>,
    mp: Rc<MetricsPlane>,
    hostile: PrincipalId,
    benign: PrincipalId,
    thread: vino::sim::ThreadId,
    crasher: vino::misfit::SignedImage,
    good: vino::misfit::SignedImage,
}

fn boot() -> World {
    let k = Kernel::boot();
    let tp = TracePlane::with_capacity(Rc::clone(&k.clock), 1 << 12);
    k.attach_trace_plane(Rc::clone(&tp)).unwrap();
    let mp = MetricsPlane::new(Rc::clone(&k.clock));
    k.attach_metrics_plane(Rc::clone(&mp)).unwrap();
    let wp = WatchPlane::new(Rc::clone(&k.clock));
    k.attach_watch_plane(Rc::clone(&wp)).unwrap();
    let limits = || Limits::of(&[(ResourceKind::KernelHeap, 1 << 20)]);
    let hostile = k.create_app(limits());
    let benign = k.create_app(limits());
    let thread = k.spawn_thread("tenants");
    let crasher = k.compile_graft("crasher", "const r1, 0\ndiv r0, r1, r1\nhalt r0").unwrap();
    let good =
        k.compile_graft("good-kv", "mov r2, r1\nconst r1, 5\ncall $kv_set\nhalt r2").unwrap();
    World { k, wp, mp, hostile, benign, thread, crasher, good }
}

impl World {
    fn install(
        &self,
        image: &vino::misfit::SignedImage,
        tenant: PrincipalId,
    ) -> Result<vino::core::adapters::SharedGraft, InstallError> {
        self.k.install_function_graft(
            point_names::COMPUTE_RA,
            image,
            tenant,
            self.thread,
            &InstallOpts::default(),
        )
    }

    /// Installs and invokes one crasher for the hostile tenant,
    /// asserting the abort.
    fn hostile_abort(&self) {
        let g = self.install(&self.crasher, self.hostile).expect("crasher installs while clean");
        assert!(matches!(g.borrow_mut().invoke([0; 4]), InvokeOutcome::Aborted { .. }));
    }
}

/// The acceptance storm: three hostile aborts inside the 1000 ms
/// `abort-storm` window fire the alert, and the very next hostile
/// install is refused with the policy's exact base-backoff deadline —
/// while the benign tenant, asked at the same virtual instant, installs
/// and commits untouched.
#[test]
fn hostile_tenant_is_denied_while_benign_proceeds() {
    let w = boot();
    for _ in 0..3 {
        w.hostile_abort();
    }
    assert!(w.wp.principal_firing(w.hostile.0), "three windowed aborts fire abort-storm");
    assert!(!w.wp.principal_firing(w.benign.0), "blame is per-principal");

    // The hostile tenant's next install: refused, deterministically.
    let now = w.k.clock.now();
    let err = w.install(&w.crasher, w.hostile).unwrap_err();
    let InstallError::AdmissionDenied { principal, until } = err else {
        panic!("expected AdmissionDenied, got {err}");
    };
    assert_eq!(principal, w.hostile);
    assert_eq!(until, now + AdmissionPolicy::default().base_backoff, "exact base backoff");
    assert_eq!(
        w.k.admission().deny_until(w.hostile, w.k.clock.now()),
        Some(until),
        "the deny deadline is inspectable"
    );

    // Same instant, benign tenant: allowed, and the graft commits.
    let g = w.install(&w.good, w.benign).expect("the benign tenant is untouched");
    assert!(matches!(g.borrow_mut().invoke([41, 0, 0, 0]), InvokeOutcome::Ok { result: 41, .. }));

    // Retrying before the deadline is refused with the *same* deadline
    // (the backoff is a contract, not a sliding target).
    let InstallError::AdmissionDenied { until: again, .. } =
        w.install(&w.crasher, w.hostile).unwrap_err()
    else {
        panic!("still inside the backoff");
    };
    assert_eq!(again, until);

    // Once the window has decayed and the backoff passed, the alert
    // resolves and the hostile tenant is admitted again.
    w.k.clock.advance_to(until + Cycles::from_ms(1000));
    assert!(!w.wp.principal_firing(w.hostile.0), "the abort window decayed");
    w.install(&w.crasher, w.hostile).expect("a clean bill of health admits again");

    let stats = w.k.admission().stats();
    assert_eq!(stats.denies, 2);
    assert!(stats.allows >= 5, "three crashers + good-kv + the readmit");
}

/// The tenant scenario's alert stream is canonical: golden-pinned and
/// byte-identical across replays, with firing and resolved edges both
/// blaming the hostile principal.
#[test]
fn tenant_storm_alert_stream_is_golden_and_replayable() {
    let run = || {
        let w = boot();
        for _ in 0..3 {
            w.hostile_abort();
        }
        let _ = w.install(&w.crasher, w.hostile); // The denied install.
        let g = w.install(&w.good, w.benign).unwrap();
        let _ = g.borrow_mut().invoke([41, 0, 0, 0]);
        w.k.clock.advance_to(w.k.clock.now() + Cycles::from_ms(2000));
        w.wp.poll(); // Records the resolved edge.
        (w.wp.serialize(), w.wp.stats())
    };
    let (stream, stats) = run();
    let (replay, _) = run();
    assert_eq!(stream, replay, "same-seed replays must be byte-identical");
    assert_eq!(stats.fired, 1);
    assert_eq!(stats.resolved, 1);
    let hostile_blamed =
        stream.lines().filter(|l| l.contains("rule=abort-storm principal=")).count();
    assert_eq!(hostile_blamed, 2, "both edges carry per-principal blame");
    check_golden("tenant_storm", &stream);
}

/// A dense hostile storm: one-shot VM traps on three back-to-back
/// steps, so three injection-caused aborts land inside the 1000 ms
/// `abort-storm` window and the debug world's own install loop runs
/// into the admission gate. The alert stream carries real firing and
/// resolved edges, the gate records real denies, and both are
/// byte-identical across same-seed replays and golden-pinned.
#[test]
fn debug_storm_alert_stream_is_golden_and_replayable() {
    let trap = StormStep {
        pre_ms: 1,
        fault: FaultChoice::VmTrap { offset: 0 },
        graft: 0,
        arg: 7,
        funded: true,
        read_block: 0,
    };
    let calm = StormStep { fault: FaultChoice::None, pre_ms: 50, ..trap };
    let spec = StormSpec { seed: SEED, steps: vec![trap, trap, trap, calm, calm, calm] };
    let run = || {
        let (w, _) = run_storm_world(&spec, &StormOpts::default());
        let admission = w.k.admission().stats();
        (w.wp.serialize(), admission, w.wp.stats())
    };
    let (stream, admission, stats) = run();
    let (replay, admission2, _) = run();
    assert_eq!(stream, replay, "storm replays must be byte-identical");
    assert_eq!(admission, admission2);
    assert!(stats.fired > 0, "three dense aborts must fire abort-storm");
    assert!(stats.resolved > 0, "the calm tail must resolve it");
    assert!(admission.denies > 0, "the storm's install loop hit the admission gate");
    assert!(admission.allows > 0, "the storm recovers once the window decays");
    check_golden("debug_storm", &stream);
}

/// Exact reconciliation between the watch plane's attribution and the
/// metrics plane's counters — on the full debug storm, so every
/// subsystem tap (engine, fs, txn) is exercised under fault injection.
#[test]
fn watch_attribution_reconciles_with_metrics_counters() {
    let spec = StormSpec::generate(SEED, 48);
    let (w, _) = run_storm_world(&spec, &StormOpts::default());
    let s = w.wp.stats();
    let c = |x| w.mp.get(x);
    assert_eq!(s.installs, c(Counter::GraftInstalls), "installs");
    assert_eq!(
        s.invocations,
        c(Counter::GraftCommits) + c(Counter::GraftAborts),
        "every completed invocation, commit or abort"
    );
    assert_eq!(s.aborts, c(Counter::GraftAborts), "aborts");
    assert_eq!(s.quarantines, c(Counter::GraftQuarantines), "quarantine trips");
    assert_eq!(s.sheds, c(Counter::NetRxSheds) + c(Counter::NetRxOverflows), "RX sheds");
    assert_eq!(s.journal_appends, c(Counter::FsJournalAppends), "journal appends");
    assert_eq!(s.lock_timeouts, c(Counter::LockTimeouts), "lock time-outs");
    assert!(s.aborts > 0, "the known-bad storm aborts — the reconciliation is not vacuous");

    // The admission mirror: controller stats equal the metrics counters.
    let a = w.k.admission().stats();
    assert_eq!(a.allows, c(Counter::AdmissionAllows));
    assert_eq!(a.denies, c(Counter::AdmissionDenies));
}

/// The tenant scenario reconciles too — no fault plane, so the counts
/// are small and human-checkable.
#[test]
fn tenant_scenario_reconciles_and_counts_are_exact() {
    let w = boot();
    for _ in 0..3 {
        w.hostile_abort();
    }
    let _ = w.install(&w.crasher, w.hostile); // Denied: not an install.
    let g = w.install(&w.good, w.benign).unwrap();
    assert!(matches!(g.borrow_mut().invoke([9, 0, 0, 0]), InvokeOutcome::Ok { .. }));

    let s = w.wp.stats();
    assert_eq!(s.installs, 4, "three crashers + good-kv; the denied attempt never installs");
    assert_eq!(s.invocations, 4);
    assert_eq!(s.aborts, 3);
    assert_eq!(s.quarantines, 1, "the third crasher abort trips the name quarantine");
    assert_eq!(s.installs, w.mp.get(Counter::GraftInstalls));
    assert_eq!(s.aborts, w.mp.get(Counter::GraftAborts));
    assert_eq!(s.quarantines, w.mp.get(Counter::GraftQuarantines));
    assert_eq!(w.mp.get(Counter::AdmissionDenies), 1);
}

//! The packet-survival battery: a pinned-seed packet storm against a
//! mix of well-behaved and hostile packet filters.
//!
//! §5.1 drives VINO with "a suite of misbehaved grafts"; this battery
//! does the same to the packet plane. One kernel takes a ≥1M-packet
//! deterministic storm across eleven ports while five filter grafts
//! misbehave in the paper's canonical ways — an infinite loop (CPU
//! hog), a wild store (SFI Mem trap), a steering cycle (cut by the hop
//! budget, then condemned), a heap hoarder (resource-limit denial), and
//! an injected trap. Surviving means:
//!
//! - every hostile filter ends up forcibly unloaded, and repeated
//!   reinstallation of one trips quarantine;
//! - the accept-all default filter takes over each victim port and
//!   traffic keeps flowing;
//! - no packet is ever delivered twice (batch atomicity across aborts);
//! - packet accounting balances exactly: every admission is eventually
//!   accepted, dropped, steered, or cut, and the planes agree;
//! - two same-seed runs produce byte-identical trace and metrics
//!   snapshots.
//!
//! The small fixed-size variant is frozen as
//! `tests/goldens/packet_storm.{trace,metrics}`; regenerate with
//! `UPDATE_GOLDENS=1 cargo test --test packet_storm`.
//!
//! Seed and storm size are pinned but overridable:
//! `PACKET_STORM_SEED=… PACKET_STORM_PACKETS=… cargo test --test packet_storm`.

use std::collections::HashSet;
use std::path::PathBuf;
use std::rc::Rc;

use vino::core::adapters::SharedGraft;
use vino::core::{InstallError, InstallOpts, Kernel};
use vino::dev::Port;
use vino::net::{verdict_code, Packet, PacketPlane};
use vino::rm::{Limits, PrincipalId, ResourceKind};
use vino::sim::fault::{FaultPlane, FaultSite};
use vino::sim::metrics::{Counter, MetricsPlane};
use vino::sim::trace::TracePlane;
use vino::sim::{SplitMix64, ThreadId};

const DEFAULT_SEED: u64 = 3_405_691_582; // 0xCAFEBABE
const DEFAULT_PACKETS: u64 = 1_000_000;

/// The port map: one well-behaved filter, five hostiles, bulk default
/// traffic on 60..68.
const WELL: Port = Port(10);
const DOOMED: Port = Port(15);
const SPIN: Port = Port(20);
const WILD: Port = Port(30);
const CYCLE: Port = Port(40);
const HOARD: Port = Port(50);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Everything one storm run leaves behind.
struct StormTally {
    delivered: u64,
    trace: String,
    metrics: String,
}

struct Rig {
    kernel: Rc<Kernel>,
    plane: Rc<PacketPlane>,
    mp: Rc<MetricsPlane>,
    tp: Rc<TracePlane>,
    app: PrincipalId,
    thread: ThreadId,
}

fn boot_rig(seed: u64) -> Rig {
    let kernel = Kernel::boot();
    let fp = FaultPlane::seeded(seed);
    // Occasional forced ring overflows keep the shed/overflow paths
    // hot without drowning the storm.
    fp.set_rate(FaultSite::NetRxOverflow, 1, 8192);
    kernel.attach_fault_plane(fp).unwrap();
    let tp = TracePlane::with_capacity(Rc::clone(&kernel.clock), 1 << 14);
    kernel.attach_trace_plane(Rc::clone(&tp)).unwrap();
    let mp = MetricsPlane::new(Rc::clone(&kernel.clock));
    kernel.attach_metrics_plane(Rc::clone(&mp)).unwrap();
    let app = kernel.create_app(Limits::of(&[
        (ResourceKind::KernelHeap, 1 << 20),
        (ResourceKind::Memory, 1 << 24),
    ]));
    let thread = kernel.spawn_thread("storm");
    let plane = PacketPlane::new(Rc::clone(&kernel));
    Rig { kernel, plane, mp, tp, app, thread }
}

fn install(rig: &Rig, port: Port, name: &str, src: &str) -> SharedGraft {
    let image = rig.kernel.compile_graft(name, src).unwrap();
    rig.plane.install_filter(port, &image, rig.app, rig.thread, &InstallOpts::default()).unwrap()
}

/// Pumps the plane dry and drains every delivery, asserting the
/// no-double-delivery invariant as ids stream past.
fn pump_and_drain(rig: &Rig, seen: &mut HashSet<u64>) -> u64 {
    rig.plane.pump();
    let mut drained = 0;
    for port in rig.plane.open_ports() {
        for pkt in rig.plane.drain_delivered(port) {
            assert!(seen.insert(pkt.id), "packet {} delivered twice (port {})", pkt.id, port.0);
            drained += 1;
        }
    }
    drained
}

fn run_storm(seed: u64, n_packets: u64) -> StormTally {
    let rig = boot_rig(seed);
    let spin_src = "spin: jmp spin";

    // The filter zoo. WELL survives the battery; the other five are
    // §5.1-style hostiles.
    let well = install(
        &rig,
        WELL,
        "well-drop-odd",
        "andi r5, r3, 1\nbne r5, r0, t\nhalt r0\nt: const r5, 1\nhalt r5",
    );
    let doomed = install(&rig, DOOMED, "doomed-accept", "halt r0");
    let spin = install(&rig, SPIN, "spin-filter", spin_src);
    spin.borrow_mut().max_slices = 4;
    let wild_image = rig
        .kernel
        .compile_graft_unsafe(
            "wild-filter",
            "const r1, 0xC0000000\nconst r2, 0x41414141\nstorew r2, [r1+0]\nhalt r0",
        )
        .unwrap();
    let wild = rig
        .plane
        .install_filter(WILD, &wild_image, rig.app, rig.thread, &InstallOpts::default())
        .unwrap();
    let cycle = install(
        &rig,
        CYCLE,
        "cycle-filter",
        &format!("const r5, {}\nhalt r5", verdict_code::steer_to(CYCLE.0)),
    );
    let hoard = install(&rig, HOARD, "hoard-filter", "const r1, 65536\nlp: call $kalloc\njmp lp");
    for p in 0..8u16 {
        rig.plane.open_port(Port(60 + p), 1024);
    }

    let mut seen: HashSet<u64> = HashSet::new();
    let mut fresh: u64 = 0; // every plane.rx() this run makes
    let mut delivered: u64 = 0;

    // Phase A — the injected trap: arm NetFilterTrap so the doomed
    // filter's first batch trips a VM trap mid-run and the whole batch
    // falls back to the default path.
    {
        let fp = rig.kernel.engine.fault_plane().unwrap();
        fp.arm(FaultSite::NetFilterTrap, 1);
    }
    for i in 0..32u32 {
        rig.plane.rx(Packet::udp(i, 1, DOOMED, vec![0x42; 8]));
        fresh += 1;
    }
    delivered += pump_and_drain(&rig, &mut seen);
    assert!(doomed.borrow().is_dead(), "injected trap killed the doomed filter");
    assert!(rig.plane.fallback_active(DOOMED));

    // Phase B — the storm proper.
    let mut rng = SplitMix64::new(seed ^ 0x5EED_F00D);
    for i in 0..n_packets {
        let r = rng.below(100);
        let port = match r {
            0..=69 => Port(60 + rng.below(8) as u16),
            70..=81 => WELL,
            82..=85 => SPIN,
            86..=89 => WILD,
            90..=93 => CYCLE,
            94..=97 => HOARD,
            _ => DOOMED, // now fallback traffic
        };
        let src = rng.next_u64() as u32;
        let dst = rng.next_u64() as u32;
        let len = rng.below(32) as usize;
        let pkt = if rng.below(2) == 0 {
            Packet::udp(src, dst, port, vec![0xA5; len])
        } else {
            Packet::tcp(src, dst, port, vec![0x5A; len])
        };
        rig.plane.rx(pkt);
        fresh += 1;
        if i % 512 == 511 {
            delivered += pump_and_drain(&rig, &mut seen);
        }
    }
    delivered += pump_and_drain(&rig, &mut seen);

    // Phase C — a burst: flood one bulk ring past its high watermark
    // (and past capacity) with no pump in between, so backpressure
    // actually engages: watermark shedding first, hard overflow at the
    // top.
    for i in 0..1500u32 {
        rig.plane.rx(Packet::udp(i, 4, Port(60), vec![1; 4]));
        fresh += 1;
    }
    delivered += pump_and_drain(&rig, &mut seen);

    // Every hostile filter is dead; the well-behaved one survived.
    assert!(spin.borrow().is_dead(), "CPU hog aborted");
    assert!(wild.borrow().is_dead(), "wild store trapped");
    assert!(cycle.borrow().is_dead(), "steer cycle condemned");
    assert!(hoard.borrow().is_dead(), "heap hoarder hit its limit");
    assert!(!well.borrow().is_dead(), "the well-behaved filter survived the battery");
    for port in [DOOMED, SPIN, WILD, CYCLE, HOARD] {
        assert!(rig.plane.fallback_active(port), "port {} fell back to accept-all", port.0);
        assert_eq!(rig.plane.port_stats(port).unwrap().filter_live, Some(false));
    }
    assert!(!rig.plane.fallback_active(WELL));

    // Victim ports keep serving through the default filter (Rule 9).
    let before = rig.plane.port_stats(SPIN).unwrap().delivered;
    for i in 0..10u32 {
        rig.plane.rx(Packet::udp(i, 2, SPIN, vec![7; 4]));
        fresh += 1;
    }
    delivered += pump_and_drain(&rig, &mut seen);
    assert!(
        rig.plane.port_stats(SPIN).unwrap().delivered > before,
        "default path serves the spinner's port after its death"
    );

    // Repeated reinstall-and-abort of the spinner trips quarantine.
    let spin_image = rig.kernel.compile_graft("spin-filter", spin_src).unwrap();
    let mut quarantined = false;
    for _ in 0..4 {
        match rig.plane.install_filter(
            SPIN,
            &spin_image,
            rig.app,
            rig.thread,
            &InstallOpts::default(),
        ) {
            Ok(g) => {
                g.borrow_mut().max_slices = 4;
                for i in 0..8u32 {
                    rig.plane.rx(Packet::udp(i, 3, SPIN, vec![9; 4]));
                    fresh += 1;
                }
                delivered += pump_and_drain(&rig, &mut seen);
                assert!(g.borrow().is_dead(), "the reinstalled spinner dies again");
            }
            Err(InstallError::Quarantined { .. }) => {
                quarantined = true;
                break;
            }
            Err(e) => panic!("unexpected install error: {e:?}"),
        }
    }
    assert!(quarantined, "repeated spinner aborts must trip quarantine");

    // Rings are dry, and the books balance exactly.
    for port in rig.plane.open_ports() {
        assert_eq!(rig.plane.port_stats(port).unwrap().depth, 0, "ring {} drained", port.0);
    }
    let g = |c| rig.mp.get(c);
    assert_eq!(
        g(Counter::NetRxPackets) + g(Counter::NetRxSheds) + g(Counter::NetRxOverflows),
        fresh + g(Counter::NetSteerHops),
        "every admission attempt is a fresh packet or a steer re-entry"
    );
    assert_eq!(
        g(Counter::NetRxPackets),
        g(Counter::NetAccepts) + g(Counter::NetDrops) + g(Counter::NetSteers),
        "every admitted packet gets exactly one verdict"
    );
    assert_eq!(
        g(Counter::NetSteers),
        g(Counter::NetSteerHops) + g(Counter::NetLoopCuts),
        "every steer verdict is a re-entry or a loop cut"
    );
    assert_eq!(g(Counter::NetAccepts), delivered, "accepts equal deliveries");
    assert_eq!(delivered, seen.len() as u64);
    assert!(g(Counter::NetRxSheds) > 0, "watermark shedding engaged under load");
    assert!(g(Counter::NetRxOverflows) > 0, "injected overflows fired");
    assert!(g(Counter::NetLoopCuts) > 0, "the hop budget cut the steering cycle");
    assert!(g(Counter::GraftAborts) >= 4, "each trapping hostile aborted at least once");

    // Trace arithmetic: net events are tracked, and the category sums
    // still reconcile.
    let ts = rig.tp.stats();
    assert!(ts.net > 0);
    assert_eq!(ts.vm + ts.txn + ts.rm + ts.fs + ts.graft + ts.net, ts.total);

    StormTally { delivered, trace: rig.tp.serialize(), metrics: rig.mp.snapshot() }
}

/// The full battery, twice: surviving is asserted inside `run_storm`,
/// and the two same-seed runs must agree byte for byte on both planes.
#[test]
fn storm_survives_hostile_filters_and_replays_identically() {
    let seed = env_u64("PACKET_STORM_SEED", DEFAULT_SEED);
    let n = env_u64("PACKET_STORM_PACKETS", DEFAULT_PACKETS);
    let a = run_storm(seed, n);
    let b = run_storm(seed, n);
    assert!(a.delivered > n / 2, "the plane delivered the bulk of the storm");
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.trace, b.trace, "same-seed replay: traces must be byte-identical");
    assert_eq!(a.metrics, b.metrics, "same-seed replay: metrics must be byte-identical");
}

// ---- Golden snapshot ----

fn golden_path(ext: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("packet_storm.{ext}"))
}

/// Compares `got` against the golden file, or rewrites it when
/// `UPDATE_GOLDENS=1`, mirroring the trace/metrics golden batteries.
fn check_golden(ext: &str, got: &str) {
    let path = golden_path(ext);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test packet_storm",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "packet storm drifted from golden .{ext} — if intentional, rerun with UPDATE_GOLDENS=1\n{diff}"
        );
    }
}

/// A small fixed-size storm (seed 9, 600 packets — never env-tuned),
/// frozen on both planes. Any change to packet-path event ordering,
/// verdict accounting, or cycle charging shows up as a diff here.
#[test]
fn golden_packet_storm() {
    let tally = run_storm(9, 600);
    check_golden("trace", &tally.trace);
    check_golden("metrics", &tally.metrics);
}

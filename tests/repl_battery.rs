//! The replication convergence battery (`docs/REPLICATION.md`):
//! crash-point × loss-pattern cross-products over the
//! [`ReplHarness`], each proving crash-anywhere convergence.
//!
//! Every scenario drives the standard two-kernel workload with one
//! victim crash armed — the primary or the replica, landed on each of
//! the four PR 6 `KernelCrash*` points — under one of four wire
//! conditions (clean, frame drops, window reorders, ack loss). The
//! acceptance contract, asserted per scenario:
//!
//! - the replica's disk stays a byte-identical prefix of the primary's
//!   committed state (reconstructed on the harness's shadow volume),
//! - after failover the promoted replica's committed state is
//!   byte-identical to the dead (or surviving) primary's,
//! - and the whole two-kernel run — trace stream, metrics exposition,
//!   final images — replays byte-identically under the same seed.
//!
//! A stalled replica also has to be *noticed*: the last test pins the
//! `replication-lag` SLO's alert stream as a golden
//! (`tests/goldens/repl_stall.alerts`). Regenerate with
//! `UPDATE_GOLDENS=1 cargo test --test repl_battery`.

use std::path::PathBuf;
use std::rc::Rc;

use vino::repl::{committed_state_fingerprint, ReplConfig, ReplHarness};
use vino::sim::fault::{FaultSite, CRASH_SITES};

/// Which node the scenario kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Victim {
    Primary,
    Replica,
}

/// Wire conditions the cross-product runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loss {
    Clean,
    Drops,
    Reorders,
    LostAcks,
}

const LOSSES: [Loss; 4] = [Loss::Clean, Loss::Drops, Loss::Reorders, Loss::LostAcks];

/// One scenario end to end. Returns a digest of the whole two-kernel
/// run for the same-seed replay check: the trace stream, the metrics
/// exposition, and the promoted image's committed-state fingerprint.
fn scenario(seed: u64, crash_site: FaultSite, loss: Loss, victim: Victim) -> (String, String, u64) {
    let cfg = ReplConfig { crash_site, ..Default::default() };
    let mut h = ReplHarness::new(seed, cfg);
    let plane = Rc::clone(h.fault_plane());
    match loss {
        Loss::Clean => {}
        Loss::Drops => plane.set_rate(FaultSite::ReplShipDrop, 1, 3),
        Loss::Reorders => plane.set_rate(FaultSite::ReplShipReorder, 1, 2),
        Loss::LostAcks => plane.set_rate(FaultSite::ReplAckLoss, 1, 2),
    }
    match victim {
        Victim::Primary => plane.arm(FaultSite::ReplPrimaryCrash, 4),
        Victim::Replica => plane.arm(FaultSite::ReplReplicaCrash, 2),
    }
    let report = h.run(10);
    match victim {
        Victim::Primary => {
            assert!(report.primary_died, "the armed primary crash must land ({crash_site:?})");
        }
        Victim::Replica => {
            assert_eq!(report.replica_crashes, 1, "the armed replica crash must land");
            assert_eq!(h.replica_reboots(), 1, "the dead replica reboots through recovery");
        }
    }
    // Mid-run: whatever the replica holds is a byte-identical prefix
    // of the primary's committed history.
    h.assert_replica_matches_committed_prefix();
    // Failover finishes replay, asserts byte-identical committed
    // state, and promotes the replica over `boot_from_image`.
    let promoted = h.failover();
    let fp_primary = committed_state_fingerprint(&h.primary().fs.borrow().disk_image());
    let fp_promoted = committed_state_fingerprint(&promoted.fs.borrow().disk_image());
    assert_eq!(
        fp_primary, fp_promoted,
        "promoted replica diverged ({crash_site:?}, {loss:?}, {victim:?})"
    );
    // The promoted kernel actually serves the replicated workload.
    let mut fs = promoted.fs.borrow_mut();
    let fd = fs.open("repl.dat").expect("the workload file survived failover");
    fs.read(fd, 0, 64).expect("and is readable");
    drop(fs);
    let digest = (h.merged_trace().serialize(), h.metrics_plane().expose(), fp_promoted);
    digest
}

/// The full cross-product: 4 crash points × 4 wire conditions × 2
/// victims, every combination converging to byte-identical committed
/// state, plus the byte-identical same-seed replay of each run.
#[test]
fn crash_point_by_loss_pattern_cross_product_converges() {
    for (i, &crash_site) in CRASH_SITES.iter().enumerate() {
        for (j, &loss) in LOSSES.iter().enumerate() {
            for (v, &victim) in [Victim::Primary, Victim::Replica].iter().enumerate() {
                let seed = 0x5EED_0000 + (i * 8 + j * 2 + v) as u64;
                let first = scenario(seed, crash_site, loss, victim);
                let replay = scenario(seed, crash_site, loss, victim);
                assert_eq!(
                    first, replay,
                    "same-seed replay diverged ({crash_site:?}, {loss:?}, {victim:?})"
                );
            }
        }
    }
}

/// Both directions of loss at once, with both victims armed in one
/// run: the replica dies early, recovers, and the primary dies later;
/// failover still converges byte-identically.
#[test]
fn double_fault_with_lossy_wire_still_converges() {
    let cfg = ReplConfig { crash_site: FaultSite::KernelCrashMidJournal, ..Default::default() };
    let mut h = ReplHarness::new(0xD0_0B_1E, cfg);
    let plane = Rc::clone(h.fault_plane());
    plane.set_rate(FaultSite::ReplShipDrop, 1, 4);
    plane.set_rate(FaultSite::ReplAckLoss, 1, 3);
    plane.arm(FaultSite::ReplReplicaCrash, 2);
    plane.arm(FaultSite::ReplPrimaryCrash, 7);
    let report = h.run(12);
    assert_eq!(report.replica_crashes, 1);
    assert!(report.primary_died);
    h.assert_replica_matches_committed_prefix();
    let promoted = h.failover();
    assert_eq!(
        committed_state_fingerprint(&h.primary().fs.borrow().disk_image()),
        committed_state_fingerprint(&promoted.fs.borrow().disk_image()),
    );
}

// ---------------------------------------------------------------------
// Satellite: the stalled-replica SLO, golden-pinned.
// ---------------------------------------------------------------------

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.alerts"))
}

/// Compares `got` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS=1`. Same contract as the watch battery's goldens.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test repl_battery",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "alert stream drifted from golden {name} — if intentional, rerun with UPDATE_GOLDENS=1\n{diff}"
        );
    }
}

/// A replica that stops acking is a replica that stops replicating:
/// with every ack lost, the primary's unacked window climbs past the
/// `replication-lag` threshold and the SLO fires deterministically;
/// when the wire heals and the window drains, it resolves. The stream
/// is golden-pinned and byte-identical across same-seed replays.
#[test]
fn stalled_replica_fires_the_replication_lag_slo() {
    let run = || {
        let mut h = ReplHarness::new(0x57A1, ReplConfig { window: 2, ..Default::default() });
        let plane = Rc::clone(h.fault_plane());
        plane.set_rate(FaultSite::ReplAckLoss, 1, 1);
        h.run(8);
        assert!(h.lag() >= 8, "a stalled ack path must pile up unacked records");
        assert!(
            h.watch_plane().firing().iter().any(|r| r.0 == "replication-lag"),
            "the replication-lag SLO must fire"
        );
        // Heal the wire; the drain resolves the alert.
        plane.set_rate(FaultSite::ReplAckLoss, 0, 1);
        for _ in 0..24 {
            if h.lag() == 0 {
                break;
            }
            h.ship_round();
        }
        assert_eq!(h.lag(), 0, "a healed wire drains the window");
        assert!(
            !h.watch_plane().firing().iter().any(|r| r.0 == "replication-lag"),
            "convergence resolves the alert"
        );
        h.watch_plane().serialize()
    };
    let stream = run();
    assert_eq!(stream, run(), "same-seed replays must be byte-identical");
    assert!(stream.contains("rule=replication-lag"), "the stream names the rule:\n{stream}");
    check_golden("repl_stall", &stream);
}

//! The causal cross-kernel tracing battery (`docs/TRACING.md`).
//!
//! Exercises the tentpole contract end to end on the two-kernel
//! replication harness:
//!
//! - every kernel's trace stream keeps strictly monotonic per-node
//!   sequence numbers, before and after the merge,
//! - [`TracePlane::merge_streams`] is a *total* order — merging the
//!   planes in either argument order yields a byte-identical stream,
//! - the merged stream (with a replica crash and reboot in the
//!   schedule) replays byte-identically under the same seed and is
//!   pinned as a golden, as is its rendered cross-kernel timeline,
//! - and the lag-path walker's per-hop virtual-cycle breakdown sums
//!   *exactly* to the watch plane's cycles-valued replication-lag
//!   gauge for the same window, reconciled against the metrics ledger.
//!
//! Regenerate goldens with `UPDATE_GOLDENS=1 cargo test --test
//! causal_battery`.

use std::path::PathBuf;
use std::rc::Rc;

use vino::repl::{lag_path, ReplConfig, ReplHarness};
use vino::sim::fault::FaultSite;
use vino::sim::metrics::Counter;
use vino::sim::trace::TracePlane;
use vino::sim::{render_merged_timeline, TimelineOpts};

const SEED: u64 = 0xCA05_A117;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

/// Compares `got` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS=1`. Same contract as the other golden batteries.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test causal_battery",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
                if diff.len() > 2000 {
                    break;
                }
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "stream drifted from golden {name} — if intentional, rerun with UPDATE_GOLDENS=1\n{diff}"
        );
    }
}

/// The standard battery scenario: ten workload steps over a lossy wire
/// with a replica crash (and its reboot through recovery) landed
/// mid-journal — so the merged stream contains torn applies, recovery
/// replay, retransmissions, and cross-kernel links under fire.
fn crashy_harness() -> ReplHarness {
    let cfg = ReplConfig { crash_site: FaultSite::KernelCrashMidJournal, ..Default::default() };
    let mut h = ReplHarness::new(SEED, cfg);
    let plane = Rc::clone(h.fault_plane());
    plane.set_rate(FaultSite::ReplShipDrop, 1, 5);
    plane.arm(FaultSite::ReplReplicaCrash, 3);
    h.run(10);
    assert_eq!(h.replica_reboots(), 1, "the armed replica crash must land");
    h
}

/// Per-kernel trace sequences are strictly monotonic on each plane and
/// stay so for each node inside the merged stream.
#[test]
fn per_kernel_sequences_are_strictly_monotonic() {
    let h = crashy_harness();
    for (name, tp) in [("primary", h.primary_trace()), ("replica", h.replica_trace())] {
        let recs = tp.records();
        assert!(!recs.is_empty(), "{name} must have traced");
        for w in recs.windows(2) {
            assert!(w[0].seq < w[1].seq, "{name} seq not strictly monotonic");
        }
    }
    let merged = h.merged_trace();
    let mut last = std::collections::BTreeMap::new();
    for m in merged.records() {
        if let Some(&prev) = last.get(&m.node) {
            assert!(m.rec.seq > prev, "merged stream broke {}'s seq order", m.node);
        }
        last.insert(m.node, m.rec.seq);
    }
    assert_eq!(last.len(), 2, "both kernels appear in the merge");
}

/// The merge is a total order: either argument order produces a
/// byte-identical stream.
#[test]
fn merge_is_stable_under_argument_order() {
    let h = crashy_harness();
    let (p, r) = (h.primary_trace().as_ref(), h.replica_trace().as_ref());
    let ab = TracePlane::merge_streams(&[p, r]).serialize();
    let ba = TracePlane::merge_streams(&[r, p]).serialize();
    assert_eq!(ab, ba, "merge_streams must not depend on argument order");
}

/// The merged cross-kernel stream — crash and reboot included — is a
/// pure function of the seed, pinned as a golden, and its rendered
/// multi-node timeline is pinned alongside it.
#[test]
fn merged_stream_replays_byte_identically_and_matches_golden() {
    let a = crashy_harness();
    let b = crashy_harness();
    let (sa, sb) = (a.merged_trace().serialize(), b.merged_trace().serialize());
    assert_eq!(sa, sb, "same-seed merged streams diverged");
    check_golden("causal_merged.trace", &sa);
    let opts = TimelineOpts { width: 72, ..TimelineOpts::default() };
    let ta =
        render_merged_timeline(&[a.primary_trace().as_ref(), a.replica_trace().as_ref()], &opts);
    let tb =
        render_merged_timeline(&[b.primary_trace().as_ref(), b.replica_trace().as_ref()], &opts);
    assert_eq!(ta, tb, "same-seed merged timelines diverged");
    check_golden("causal_merged.timeline", &ta);
}

/// The acceptance contract for lag attribution: the per-hop breakdown
/// partitions the oldest unacked record's age exactly, and its total
/// equals — byte for byte — both the harness's cycles-valued lag age
/// and the watch plane's replication-lag-age gauge observed in the
/// same ship round, with the attempt counts reconciled against the
/// metrics ledger.
#[test]
fn lag_path_breakdown_sums_exactly_to_the_lag_gauge() {
    let mut h = ReplHarness::new(SEED ^ 0xFF, ReplConfig { window: 2, ..Default::default() });
    let plane = Rc::clone(h.fault_plane());
    plane.set_rate(FaultSite::ReplAckLoss, 1, 1);
    h.run(6);
    assert!(h.lag() > 0, "a stalled ack path must leave unacked records");

    let report = lag_path(&h).expect("lag > 0 must produce a path");
    assert_eq!(report.seq, h.acked() + 1, "the path targets the oldest unacked record");
    let hop_sum: u64 = report.hops.iter().map(|hop| hop.cycles.0).sum();
    assert_eq!(hop_sum, report.total.0, "hops must partition the record's age");
    assert_eq!(report.total, h.repl_lag_age(), "trace-walk total != ledger-derived age");
    assert_eq!(
        report.total,
        h.watch_plane().repl_lag_age(),
        "trace-walk total != watch plane's replication-lag-age gauge"
    );

    // Ledger reconciliation: the walker's per-seq attempt counts are
    // bounded by the global counters, and the shipping snapshot agrees
    // with the harness cursors.
    let ships = h.metrics_plane().get(Counter::ReplShips);
    let drops = h.metrics_plane().get(Counter::ReplFrameDrops);
    assert!(report.ships <= ships, "per-seq ships exceed the ledger");
    assert!(report.drops <= drops, "per-seq drops exceed the ledger");
    let state = h.shipping_state();
    assert_eq!(state.lag, h.lag());
    assert_eq!(state.last_acked, h.acked());
    assert_eq!(state.applied, h.applied());
    assert_eq!(state.in_flight, h.lag().min(state.window));
    assert_eq!(state.retransmits, h.metrics_plane().get(Counter::ReplRetransmits));

    // And the whole attribution replays byte-identically.
    let replay = {
        let mut h2 = ReplHarness::new(SEED ^ 0xFF, ReplConfig { window: 2, ..Default::default() });
        let plane = Rc::clone(h2.fault_plane());
        plane.set_rate(FaultSite::ReplAckLoss, 1, 1);
        h2.run(6);
        lag_path(&h2).expect("same seed, same lag").render()
    };
    assert_eq!(report.render(), replay, "same-seed lag paths diverged");
}

//! Golden-timeline battery: the ASCII Gantt renderer, frozen.
//!
//! Two scenarios pin the renderer's exact output — the debug storm's
//! full timeline and a range/lane-filtered slice of it — against
//! checked-in golden files in `tests/goldens/`. Any change to lane
//! assignment, glyph choice, span fills, column scaling, or the legend
//! shows up as a diff here. If the change is intentional, regenerate
//! with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test timeline_golden
//! ```
//!
//! and commit the updated `.timeline` files. A third, structural test
//! proves every [`TraceEvent`] variant renders: the variant list below
//! is kept exhaustive by a wildcard-free `match`, so adding an event
//! without teaching the timeline about it fails to compile here.

use std::path::PathBuf;
use std::rc::Rc;

use vino::core::kernel::KernelConfig;
use vino::repl::{ReplConfig, ReplHarness};
use vino::sim::clock::VirtualClock;
use vino::sim::fault::FaultSite;
use vino::sim::trace::{
    AbortKind, SfiKind, ShedKind, TraceEvent, TracePlane, VerdictKind, VmExitKind,
};
use vino::sim::{render_merged_timeline, render_timeline, Cycles, TimelineOpts};
use vino_bench::debug::{storm_timeline, FaultChoice, StormSpec, StormStep};

/// Mirrors the debug battery's known-bad scenario so the golden shows a
/// timeline with real aborts, quarantines, and fallbacks in it.
const SEED: u64 = 3_405_691_582;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(format!("{name}.timeline"))
}

/// Compares `got` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS=1`. Same contract as the trace/metrics goldens.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test timeline_golden",
            path.display()
        )
    });
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diff.push_str(&format!("line {}:\n  golden: {w}\n  got:    {g}\n", i + 1));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            diff.push_str(&format!("line counts differ: golden {wl}, got {gl}\n"));
        }
        panic!(
            "timeline golden mismatch for `{name}`:\n{diff}\
             regenerate with UPDATE_GOLDENS=1 cargo test --test timeline_golden if intentional"
        );
    }
}

#[test]
fn storm_timeline_matches_golden() {
    let spec = StormSpec::generate(SEED, 8);
    let opts = TimelineOpts { width: 72, ..TimelineOpts::default() };
    check_golden("storm_timeline", &storm_timeline(&spec, &KernelConfig::default(), &opts));
}

/// The filters compose: a virtual-cycle window plus a lane allowlist
/// still renders with the full-run time scale.
#[test]
fn filtered_storm_timeline_matches_golden() {
    let spec = StormSpec::generate(SEED, 8);
    let opts = TimelineOpts {
        width: 72,
        range: Some((114_000_000, 160_000_000)),
        lanes: Some(vec!["txn".to_string(), "fs".to_string(), "rm".to_string()]),
    };
    check_golden(
        "storm_timeline_filtered",
        &storm_timeline(&spec, &KernelConfig::default(), &opts),
    );
}

/// The watch lane, under fire: three back-to-back one-shot VM traps
/// abort three invocations inside the `abort-storm` window, so the
/// timeline shows the alert firing (`f`), the admission gate's vetoes
/// (`V`) and admits (`a`), and the resolved edge (`z`) once the calm
/// tail decays the window.
#[test]
fn watch_alert_timeline_matches_golden() {
    let trap = StormStep {
        pre_ms: 1,
        fault: FaultChoice::VmTrap { offset: 0 },
        graft: 0,
        arg: 7,
        funded: true,
        read_block: 0,
    };
    let calm = StormStep { fault: FaultChoice::None, pre_ms: 50, ..trap };
    let spec = StormSpec { seed: SEED, steps: vec![trap, trap, trap, calm, calm, calm] };
    let opts = TimelineOpts { width: 72, ..TimelineOpts::default() };
    let out = storm_timeline(&spec, &KernelConfig::default(), &opts);
    let lane = |name: &str| -> String { out.lines().filter(|l| l.starts_with(name)).collect() };
    for glyph in ["f", "z"] {
        assert!(lane("watch").contains(glyph), "watch lane is missing `{glyph}`:\n{out}");
    }
    for glyph in ["a", "V"] {
        assert!(lane("admission").contains(glyph), "admission lane is missing `{glyph}`:\n{out}");
    }
    check_golden("watch_alert_timeline", &out);
}

/// The repl lanes, under fire, on the *merged cross-kernel* timeline:
/// the primary's ships and retransmissions (`>`), frames lost to the
/// wire (`L`) and cumulative acks (`K`) on its `n0:` lanes, the
/// replica's applies (`+`) and — after the armed primary crash — the
/// failover promotion (`P`) on its `n1:` lanes, with the shared `wire`
/// lane marking every cross-kernel span link.
#[test]
fn repl_timeline_matches_golden() {
    // Window of 1 so each round puts exactly one record on the wire:
    // wire faults within a round all land at the round-start cycle —
    // the same timeline column, where the latest glyph wins — so a
    // dropped frame is only visible when nothing else ships that round.
    let cfg = ReplConfig {
        window: 1,
        crash_site: FaultSite::KernelCrashAfterCommit,
        ..Default::default()
    };
    let mut h = ReplHarness::new(SEED, cfg);
    let plane = Rc::clone(h.fault_plane());
    // Round 2 loses both its single in-flight frame and its ack: its
    // only repl mark is the `L`.
    plane.arm(FaultSite::ReplShipDrop, 2);
    plane.arm(FaultSite::ReplAckLoss, 2);
    plane.arm(FaultSite::ReplPrimaryCrash, 6);
    // Six rounds: the primary dies at the top of the last one, so the
    // records committed just before death (including the doomed
    // crash-victim transaction — the crash point is after its commit
    // block) are drained by failover, not the live wire: the drain's
    // applies render in their own columns after the last live ship.
    h.run(6);
    h.failover();
    let opts = TimelineOpts { width: 72, ..TimelineOpts::default() };
    let out =
        render_merged_timeline(&[h.primary_trace().as_ref(), h.replica_trace().as_ref()], &opts);
    let lane = |name: &str| -> String { out.lines().filter(|l| l.starts_with(name)).collect() };
    for glyph in [">", "K", "L"] {
        assert!(lane("n0:repl").contains(glyph), "primary repl lane is missing `{glyph}`:\n{out}");
    }
    for glyph in ["+", "P"] {
        assert!(lane("n1:repl").contains(glyph), "replica repl lane is missing `{glyph}`:\n{out}");
    }
    for glyph in ["\\", "/"] {
        assert!(lane("wire").contains(glyph), "wire lane is missing `{glyph}`:\n{out}");
    }
    check_golden("repl_timeline", &out);
}

/// One exemplar of every [`TraceEvent`] variant, in declaration order.
///
/// The paired `variant_index` match is wildcard-free, so this list (and
/// the timeline's `lane_of`/`glyph_of`) must grow in lockstep with the
/// enum — a new variant breaks the build here until it renders.
fn one_of_each(tp: &TracePlane) -> Vec<TraceEvent> {
    let g = tp.tag("zoo");
    let rule = tp.tag("abort-storm");
    vec![
        TraceEvent::VmWindow { instrs: 100, exit: VmExitKind::Halt },
        TraceEvent::SfiCheck { kind: SfiKind::Clamp, pc: 4 },
        TraceEvent::TxnBegin { thread: 1, txn: 1, depth: 1 },
        TraceEvent::TxnCommit { thread: 1, txn: 1, nested: false, locks: 1 },
        TraceEvent::TxnAbort { thread: 1, txn: 2, locks: 0 },
        TraceEvent::LockAcquire { lock: 7, thread: 1 },
        TraceEvent::LockBlocked { lock: 7, waiter: 2, holder: 1 },
        TraceEvent::LockTimeout { lock: 7, holder: 1 },
        TraceEvent::LockSteal { thread: 1, txn: 3 },
        TraceEvent::UndoPush { thread: 1, depth: 1 },
        TraceEvent::UndoRun { thread: 1, ops: 1 },
        TraceEvent::ResGrant { principal: 1, kind: 0, amount: 64 },
        TraceEvent::ResRelease { principal: 1, kind: 0, amount: 64 },
        TraceEvent::ResLimitHit { principal: 1, kind: 0, requested: 1 << 40 },
        TraceEvent::FsRead { fd: 3, len: 4096 },
        TraceEvent::FsWrite { fd: 3, len: 4096 },
        TraceEvent::FsPrefetch { fd: 3 },
        TraceEvent::FsJournalAppend { seq: 1, blocks: 2 },
        TraceEvent::FsJournalCommit { seq: 1 },
        TraceEvent::FsCheckpoint { seq: 1, blocks: 2 },
        TraceEvent::FsRecoveryReplay { seq: 1, blocks: 2 },
        TraceEvent::FsRecoveryDiscard { seq: 2 },
        TraceEvent::GraftInstall { graft: g },
        TraceEvent::GraftInvoke { graft: g },
        TraceEvent::GraftCommit { graft: g },
        TraceEvent::GraftAbort { graft: g, kind: AbortKind::Trap },
        TraceEvent::GraftQuarantine { graft: g, until: 1 << 30 },
        TraceEvent::FallbackServed { graft: g },
        TraceEvent::NetRx { port: 80, len: 64 },
        TraceEvent::NetShed { port: 80, kind: ShedKind::Overflow },
        TraceEvent::NetVerdict { port: 80, verdict: VerdictKind::Accept },
        TraceEvent::NetSteer { from: 80, to: 81 },
        TraceEvent::NetLoopCut { port: 81 },
        TraceEvent::NetBatch { port: 80, n: 8 },
        TraceEvent::WatchAlertFiring { rule, principal: 7 },
        TraceEvent::WatchAlertResolved { rule, principal: 7 },
        TraceEvent::AdmissionAllow { principal: 7 },
        TraceEvent::AdmissionDeny { principal: 7, until: 1 << 30 },
        TraceEvent::ReplShip { seq: 1, frags: 2 },
        TraceEvent::ReplAck { acked: 1 },
        TraceEvent::ReplApply { seq: 1, blocks: 2 },
        TraceEvent::ReplFrameDrop { seq: 2 },
        TraceEvent::ReplPromote { seq: 3 },
    ]
}

/// Wildcard-free: the compiler rejects this test the moment a
/// [`TraceEvent`] variant exists that `one_of_each` could omit.
fn variant_index(ev: &TraceEvent) -> usize {
    use TraceEvent::*;
    match ev {
        VmWindow { .. } => 0,
        SfiCheck { .. } => 1,
        TxnBegin { .. } => 2,
        TxnCommit { .. } => 3,
        TxnAbort { .. } => 4,
        LockAcquire { .. } => 5,
        LockBlocked { .. } => 6,
        LockTimeout { .. } => 7,
        LockSteal { .. } => 8,
        UndoPush { .. } => 9,
        UndoRun { .. } => 10,
        ResGrant { .. } => 11,
        ResRelease { .. } => 12,
        ResLimitHit { .. } => 13,
        FsRead { .. } => 14,
        FsWrite { .. } => 15,
        FsPrefetch { .. } => 16,
        FsJournalAppend { .. } => 17,
        FsJournalCommit { .. } => 18,
        FsCheckpoint { .. } => 19,
        FsRecoveryReplay { .. } => 20,
        FsRecoveryDiscard { .. } => 21,
        GraftInstall { .. } => 22,
        GraftInvoke { .. } => 23,
        GraftCommit { .. } => 24,
        GraftAbort { .. } => 25,
        GraftQuarantine { .. } => 26,
        FallbackServed { .. } => 27,
        NetRx { .. } => 28,
        NetShed { .. } => 29,
        NetVerdict { .. } => 30,
        NetSteer { .. } => 31,
        NetLoopCut { .. } => 32,
        NetBatch { .. } => 33,
        WatchAlertFiring { .. } => 34,
        WatchAlertResolved { .. } => 35,
        AdmissionAllow { .. } => 36,
        AdmissionDeny { .. } => 37,
        ReplShip { .. } => 38,
        ReplAck { .. } => 39,
        ReplApply { .. } => 40,
        ReplFrameDrop { .. } => 41,
        ReplPromote { .. } => 42,
    }
}

#[test]
fn every_trace_event_variant_renders_in_the_timeline() {
    let clock = VirtualClock::new();
    let tp = TracePlane::with_capacity(std::rc::Rc::clone(&clock), 256);
    let events = one_of_each(&tp);

    // The list is complete (every index hit exactly once) and every
    // variant's glyph is globally unique, so finding a glyph in the
    // rendered chart is finding that variant.
    let mut seen_idx = vec![false; events.len()];
    let mut glyphs = Vec::new();
    for ev in &events {
        let idx = variant_index(ev);
        assert!(!seen_idx[idx], "variant {idx} listed twice");
        seen_idx[idx] = true;
        let glyph = vino::sim::debug::glyph_of(ev);
        assert!(!glyphs.contains(&glyph), "glyph `{glyph}` is not unique");
        glyphs.push(glyph);
    }
    assert!(seen_idx.iter().all(|&s| s), "one_of_each skipped a variant index");

    // Spread the events across the clock so no marker overwrites
    // another within a column, then demand every glyph in the chart.
    for ev in &events {
        tp.emit(*ev);
        clock.charge(Cycles(250_000));
    }
    let out =
        render_timeline(&tp, &TimelineOpts { width: events.len() * 2, ..TimelineOpts::default() });
    let chart: String = out.lines().filter(|l| l.contains(" |")).collect();
    for (ev, glyph) in events.iter().zip(&glyphs) {
        assert!(
            chart.contains(*glyph),
            "variant {:?} (glyph `{glyph}`) did not render in:\n{out}",
            variant_index(ev)
        );
    }
}

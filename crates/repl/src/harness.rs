//! Two kernels, one clock: the deterministic replication harness.
//!
//! The [`ReplHarness`] boots a primary and a replica
//! [`Kernel`] off a single shared [`VirtualClock`] and one seeded
//! [`FaultPlane`], so every interleaving of writes, shipping, faults
//! and crashes is a pure function of the seed — replayable byte for
//! byte.
//!
//! Protocol, per [`ReplHarness::ship_round`]:
//!
//! 1. The shipper tails the primary's retained committed records
//!    ([`FileSystem::committed_records`]) from the cumulative ack and
//!    takes at most [`ReplConfig::window`] of them — the bounded
//!    in-flight window. Unacked records are re-shipped every round
//!    (go-back-N); retransmission is the only loss repair.
//! 2. Wire faults fire at their schedule points: [`ReplShipDrop`] per
//!    frame, [`ReplShipReorder`] between adjacent frames in the
//!    window, [`ReplAckLoss`] on the return path.
//! 3. Surviving frames are fragmented (see [`crate::frame`]),
//!    injected into the replica's packet plane on the reserved
//!    [`REPL_PORT`] — which no graft-installed filter can reach — and
//!    applied via [`FileSystem::ingest_replicated`], the same commit
//!    pipeline (and the same crash points) a local transaction runs.
//! 4. The replica acks cumulatively; the primary prunes its retained
//!    tail and gauges replication lag into the watch plane.
//!
//! Node deaths land at PR 6 crash-point granularity:
//! [`ReplPrimaryCrash`] and [`ReplReplicaCrash`] are schedule points
//! owned by this plane, and when one fires the harness arms the
//! configured `KernelCrash*` site so the victim dies *inside* a
//! journal pipeline — before the descriptor, mid-journal, after the
//! commit block, or mid-checkpoint. A dead replica is rebooted from
//! its crash image through mount-time recovery; a dead primary is
//! survived by [`ReplHarness::failover`].
//!
//! [`ReplShipDrop`]: FaultSite::ReplShipDrop
//! [`ReplShipReorder`]: FaultSite::ReplShipReorder
//! [`ReplAckLoss`]: FaultSite::ReplAckLoss
//! [`ReplPrimaryCrash`]: FaultSite::ReplPrimaryCrash
//! [`ReplReplicaCrash`]: FaultSite::ReplReplicaCrash

use std::collections::BTreeSet;
use std::rc::Rc;

use vino_core::kernel::{Kernel, KernelConfig};
use vino_dev::{BlockAddr, Disk, DiskImage};
use vino_fs::layout::checksum64;
use vino_fs::{Fd, FileSystem, FsError, IngestOutcome, JournalRecord, SuperBlock, BLOCK_SIZE};
use vino_net::{Packet, PacketPlane, REPL_PORT};
use vino_sim::clock::{Cycles, VirtualClock};
use vino_sim::fault::{FaultPlane, FaultSite};
use vino_sim::metrics::{Counter, MetricsPlane};
use vino_sim::trace::{CauseCtx, MergedTrace, NodeId, SpanId, TraceEvent, TracePlane};
use vino_sim::watch::WatchPlane;

use crate::frame;

/// Network addresses the two nodes ship under (cosmetic — the packet
/// plane routes by port).
const PRIMARY_ADDR: u32 = 1;
const REPLICA_ADDR: u32 = 2;

/// RX-ring capacity on the reserved port; comfortably above the
/// fragment count of the largest record shipped per pump.
const RING_CAP: usize = 64;

/// Deterministic one-way wire latency charged on the shared clock per
/// injected frame (either direction). Besides modelling propagation,
/// it guarantees cross-kernel child events land strictly *after* their
/// cross-kernel parents, which the merged-stream causal order relies
/// on.
pub const WIRE_CYCLES: Cycles = Cycles(60);

/// The standard workload file and its extent, in blocks.
const WORKLOAD: &str = "repl.dat";
const WORKLOAD_BLOCKS: u64 = 48;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Kernel configuration for both nodes (and the shadow volume the
    /// prefix check reconstructs against).
    pub kernel: KernelConfig,
    /// Maximum committed-but-unacked records shipped per round.
    pub window: u64,
    /// Which PR 6 crash point a [`FaultSite::ReplPrimaryCrash`] or
    /// [`FaultSite::ReplReplicaCrash`] lands on: must be one of the
    /// `KernelCrash*` sites. The repl sites pick *when* a node dies;
    /// this picks *where inside the journal pipeline*.
    pub crash_site: FaultSite,
}

impl Default for ReplConfig {
    fn default() -> ReplConfig {
        ReplConfig {
            kernel: KernelConfig::default(),
            window: 4,
            crash_site: FaultSite::KernelCrashMidJournal,
        }
    }
}

/// Which node an armed repl crash site killed during a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeDeath {
    /// Nobody died.
    #[default]
    None,
    /// The primary died; call [`ReplHarness::failover`].
    Primary,
    /// The replica died mid-apply and was rebooted through recovery.
    Replica,
}

/// What one [`ReplHarness::ship_round`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundReport {
    /// Record frames injected into the wire.
    pub shipped: u64,
    /// Frames that were re-ships of an already-shipped sequence.
    pub retransmits: u64,
    /// Frames dropped by [`FaultSite::ReplShipDrop`].
    pub dropped: u64,
    /// Records applied on the replica this round.
    pub applied: u64,
    /// Cumulative ack after the round.
    pub acked: u64,
    /// Committed-but-unacked records left on the primary.
    pub lag: u64,
    /// Whether a node died this round.
    pub death: NodeDeath,
}

/// Aggregate of a [`ReplHarness::run`] workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadReport {
    /// Ship rounds driven.
    pub rounds: u64,
    /// Record frames injected (including retransmissions).
    pub shipped: u64,
    /// Re-shipped frames.
    pub retransmits: u64,
    /// Frames lost to [`FaultSite::ReplShipDrop`].
    pub dropped: u64,
    /// Records applied on the replica.
    pub applied: u64,
    /// Cumulative ack at the end of the run.
    pub acked: u64,
    /// Replication lag at the end of the run.
    pub final_lag: u64,
    /// The primary died during the run.
    pub primary_died: bool,
    /// Replica deaths (each one rebooted through recovery).
    pub replica_crashes: u64,
}

/// A point-in-time snapshot of the shipping pipeline, for status
/// surfaces like the `vino_top` example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShippingState {
    /// Configured in-flight window, in records per round.
    pub window: u64,
    /// Records currently occupying the window (`min(lag, window)`).
    pub in_flight: u64,
    /// Highest sequence ever put on the wire.
    pub last_shipped: u64,
    /// Cumulative ack the primary holds.
    pub last_acked: u64,
    /// Highest sequence applied on the replica.
    pub applied: u64,
    /// Committed-but-unacked records on the primary.
    pub lag: u64,
    /// Lifetime re-shipped frames, from the metrics ledger.
    pub retransmits: u64,
    /// Lifetime frames lost to [`FaultSite::ReplShipDrop`].
    pub frame_drops: u64,
    /// Whether the primary has died.
    pub primary_dead: bool,
    /// Replica crash/reboot count.
    pub replica_reboots: u64,
}

/// The two-kernel replication harness. See the module docs.
pub struct ReplHarness {
    cfg: ReplConfig,
    clock: Rc<VirtualClock>,
    fault: Rc<FaultPlane>,
    p_trace: Rc<TracePlane>,
    r_trace: Rc<TracePlane>,
    metrics: Rc<MetricsPlane>,
    watch: Rc<WatchPlane>,
    primary: Rc<Kernel>,
    replica: Rc<Kernel>,
    p_plane: Rc<PacketPlane>,
    r_plane: Rc<PacketPlane>,
    reasm: frame::Reassembler,
    /// Highest sequence the replica holds applied (harness-tracked:
    /// the replica's own in-memory high-water mark does not survive
    /// its reboots).
    applied: u64,
    /// Cumulative ack the primary has seen.
    acked: u64,
    /// Highest sequence ever put on the wire, for retransmit counting.
    high_shipped: u64,
    /// The replica's most recent successful ingest context; rides the
    /// ack frame so the primary's `ReplAck` chains cross-kernel.
    last_ingest_ctx: CauseCtx,
    primary_dead: bool,
    replica_reboots: u64,
    /// An ideal replica: every committed record applied in order on a
    /// private volume (own clock, no faults), so mid-run prefix checks
    /// have ground truth even after the primary prunes its tail.
    shadow: FileSystem,
    workload_fd: Option<Fd>,
}

impl ReplHarness {
    /// Boots a primary and a replica off one fresh virtual clock and
    /// one fault plane seeded with `seed`, wires a per-kernel trace
    /// plane into each node (node 0 primary, node 1 replica) and a
    /// shared metrics plane into both, a watch plane into the primary,
    /// and opens the reserved replication port on both packet planes.
    pub fn new(seed: u64, cfg: ReplConfig) -> ReplHarness {
        assert!(cfg.window > 0, "a zero window ships nothing");
        assert!(
            vino_sim::fault::CRASH_SITES.contains(&cfg.crash_site),
            "crash_site must be a KernelCrash* point, got {:?}",
            cfg.crash_site
        );
        let clock = VirtualClock::new();
        let primary = Kernel::boot_with_clock(cfg.kernel.clone(), Rc::clone(&clock));
        let replica = Kernel::boot_with_clock(cfg.kernel.clone(), Rc::clone(&clock));
        let fault = FaultPlane::seeded(seed);
        let p_trace = TracePlane::with_node(Rc::clone(&clock), 1 << 14, NodeId(0));
        let r_trace = TracePlane::with_node(Rc::clone(&clock), 1 << 14, NodeId(1));
        let metrics = MetricsPlane::new(Rc::clone(&clock));
        let watch = WatchPlane::new(Rc::clone(&clock));
        for k in [&primary, &replica] {
            k.attach_fault_plane(Rc::clone(&fault)).expect("fresh kernel");
            k.attach_metrics_plane(Rc::clone(&metrics)).expect("fresh kernel");
        }
        primary.attach_trace_plane(Rc::clone(&p_trace)).expect("fresh kernel");
        replica.attach_trace_plane(Rc::clone(&r_trace)).expect("fresh kernel");
        primary.attach_watch_plane(Rc::clone(&watch)).expect("fresh kernel");
        let p_plane = PacketPlane::new(Rc::clone(&primary));
        let r_plane = PacketPlane::new(Rc::clone(&replica));
        p_plane.open_port(REPL_PORT, RING_CAP);
        r_plane.open_port(REPL_PORT, RING_CAP);
        let shadow_clock = VirtualClock::new();
        let shadow = FileSystem::format(
            Rc::clone(&shadow_clock),
            Disk::new(shadow_clock),
            cfg.kernel.cache_blocks,
            cfg.kernel.max_files,
        );
        ReplHarness {
            cfg,
            clock,
            fault,
            p_trace,
            r_trace,
            metrics,
            watch,
            primary,
            replica,
            p_plane,
            r_plane,
            reasm: frame::Reassembler::new(),
            applied: 0,
            acked: 0,
            high_shipped: 0,
            last_ingest_ctx: CauseCtx::NONE,
            primary_dead: false,
            replica_reboots: 0,
            shadow,
            workload_fd: None,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Rc<VirtualClock> {
        &self.clock
    }

    /// The shared fault plane — arm or rate the `Repl*` sites here.
    pub fn fault_plane(&self) -> &Rc<FaultPlane> {
        &self.fault
    }

    /// The primary's trace plane (node 0).
    pub fn primary_trace(&self) -> &Rc<TracePlane> {
        &self.p_trace
    }

    /// The replica's trace plane (node 1; it survives replica reboots
    /// — a rebooted kernel is re-attached to the same plane).
    pub fn replica_trace(&self) -> &Rc<TracePlane> {
        &self.r_trace
    }

    /// The deterministically merged cross-kernel stream — total order
    /// `(tick, node, seq)`, causal parents before children. See
    /// [`TracePlane::merge_streams`].
    pub fn merged_trace(&self) -> MergedTrace {
        TracePlane::merge_streams(&[&self.p_trace, &self.r_trace])
    }

    /// The shared metrics plane.
    pub fn metrics_plane(&self) -> &Rc<MetricsPlane> {
        &self.metrics
    }

    /// The primary's watch plane (carries the replication-lag SLO).
    pub fn watch_plane(&self) -> &Rc<WatchPlane> {
        &self.watch
    }

    /// The primary kernel.
    pub fn primary(&self) -> &Rc<Kernel> {
        &self.primary
    }

    /// The replica kernel (replaced on every replica reboot).
    pub fn replica(&self) -> &Rc<Kernel> {
        &self.replica
    }

    /// Highest sequence applied on the replica.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Cumulative ack the primary has seen.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Highest committed sequence on the primary.
    pub fn primary_committed(&self) -> u64 {
        self.primary.fs.borrow().last_committed_seq()
    }

    /// Committed-but-unacked records on the primary.
    pub fn lag(&self) -> u64 {
        self.primary_committed().saturating_sub(self.acked)
    }

    /// Whether the primary has died.
    pub fn primary_dead(&self) -> bool {
        self.primary_dead
    }

    /// How many times the replica crashed and was rebooted.
    pub fn replica_reboots(&self) -> u64 {
        self.replica_reboots
    }

    /// A point-in-time snapshot of the shipping pipeline.
    pub fn shipping_state(&self) -> ShippingState {
        ShippingState {
            window: self.cfg.window,
            in_flight: self.lag().min(self.cfg.window),
            last_shipped: self.high_shipped,
            last_acked: self.acked,
            applied: self.applied,
            lag: self.lag(),
            retransmits: self.metrics.get(Counter::ReplRetransmits),
            frame_drops: self.metrics.get(Counter::ReplFrameDrops),
            primary_dead: self.primary_dead,
            replica_reboots: self.replica_reboots,
        }
    }

    /// Age of the oldest committed-but-unacked record — now minus its
    /// seal instant — or zero cycles when fully converged. This is the
    /// cycles-valued replication-lag gauge that the lag-path report's
    /// per-hop breakdown telescopes to exactly.
    pub fn repl_lag_age(&self) -> Cycles {
        if self.lag() == 0 {
            return Cycles(0);
        }
        match self.primary.fs.borrow().seal_info_of(self.acked + 1) {
            Some((_, sealed_at)) => self.clock.now().saturating_sub(sealed_at),
            None => Cycles(0),
        }
    }

    /// The seal span of committed record `seq` on the primary, if the
    /// retained journal tail still holds it.
    fn seal_span_of(&self, seq: u64) -> SpanId {
        self.primary.fs.borrow().seal_info_of(seq).map(|(span, _)| span).unwrap_or(SpanId::NONE)
    }

    /// One protocol round: window → wire faults → ship → apply → ack.
    /// See the module docs for the schedule points.
    pub fn ship_round(&mut self) -> RoundReport {
        let mut rep = RoundReport::default();
        if !self.primary_dead && self.fault.fire(FaultSite::ReplPrimaryCrash) {
            self.kill_primary();
            rep.death = NodeDeath::Primary;
            rep.acked = self.acked;
            rep.lag = self.lag();
            return rep;
        }
        // 1. The in-flight window: committed but unacked, oldest first.
        let window: Vec<JournalRecord> = {
            let fs = self.primary.fs.borrow();
            fs.committed_records(self.acked + 1).take(self.cfg.window as usize).cloned().collect()
        };
        // 2. Wire faults: whole-frame drops, then reorders between
        // adjacent frames still in the window.
        let mut batch = Vec::with_capacity(window.len());
        for rec in window {
            if self.fault.fire(FaultSite::ReplShipDrop) {
                let drop_ctx = self.p_trace.mint_span(self.seal_span_of(rec.seq));
                self.p_trace.emit_with_ctx(TraceEvent::ReplFrameDrop { seq: rec.seq }, drop_ctx);
                self.metrics.inc(Counter::ReplFrameDrops);
                rep.dropped += 1;
                continue;
            }
            batch.push(rec);
        }
        let mut i = 0;
        while i + 1 < batch.len() {
            if self.fault.fire(FaultSite::ReplShipReorder) {
                batch.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        // 3. Ship each frame: fragment, inject, pump, reassemble,
        // apply. An out-of-order frame lands as a Gap and is repaired
        // by next round's retransmission.
        for rec in &batch {
            if rec.seq <= self.high_shipped {
                self.metrics.inc(Counter::ReplRetransmits);
                rep.retransmits += 1;
            }
            self.high_shipped = self.high_shipped.max(rec.seq);
            // The ship span is a child of the record's seal span and
            // rides every fragment of the frame in-band.
            let ship_ctx = self.p_trace.mint_span(self.seal_span_of(rec.seq));
            let frags = frame::fragment(rec, ship_ctx);
            self.p_trace.emit_with_ctx(
                TraceEvent::ReplShip { seq: rec.seq, frags: frags.len() as u64 },
                ship_ctx,
            );
            self.metrics.inc(Counter::ReplShips);
            rep.shipped += 1;
            for f in frags {
                self.clock.charge(WIRE_CYCLES);
                self.r_plane.rx(Packet::repl(PRIMARY_ADDR, REPLICA_ADDR, f).with_ctx(ship_ctx));
            }
            self.r_plane.pump();
            let mut completed = Vec::new();
            for pkt in self.r_plane.drain_delivered(REPL_PORT) {
                if let Some(rc) = self.reasm.accept(&pkt.payload) {
                    completed.push(rc);
                }
            }
            for (r, ship) in completed {
                if r.seq == self.applied + 1 && self.fault.fire(FaultSite::ReplReplicaCrash) {
                    self.crash_replica_mid_apply(&r, ship);
                    rep.death = NodeDeath::Replica;
                    continue;
                }
                // The ingest span — a child of the ship span that
                // carried the frame — is in force on the replica for
                // the whole apply, so the replica's own journal events
                // chain off it.
                let ingest_ctx = self.r_trace.mint_span(ship.span);
                let prev = self.r_trace.set_ctx(ingest_ctx);
                let out = self.replica.fs.borrow_mut().ingest_replicated(&r);
                self.r_trace.set_ctx(prev);
                match out {
                    Ok(IngestOutcome::Applied { blocks }) => {
                        self.applied = self.applied.max(r.seq);
                        self.last_ingest_ctx = ingest_ctx;
                        self.r_trace.emit_with_ctx(
                            TraceEvent::ReplApply { seq: r.seq, blocks },
                            ingest_ctx,
                        );
                        self.metrics.inc(Counter::ReplApplies);
                        rep.applied += 1;
                    }
                    Ok(IngestOutcome::Duplicate | IngestOutcome::Gap { .. }) => {}
                    Err(FsError::PowerFailure) => {
                        unreachable!("replica crashes are scheduled by the harness")
                    }
                    // A refused frame (it cannot happen through the
                    // sealed wire, but the contract allows it) is
                    // simply retransmitted next round.
                    Err(_) => {}
                }
            }
        }
        // 4. Cumulative ack, one small frame on the return path. It
        // carries the replica's latest ingest context so the primary's
        // ReplAck span chains cross-kernel.
        if self.applied > 0 && !self.fault.fire(FaultSite::ReplAckLoss) {
            let ack_ctx = self.last_ingest_ctx;
            self.clock.charge(WIRE_CYCLES);
            self.p_plane.rx(Packet::repl(
                REPLICA_ADDR,
                PRIMARY_ADDR,
                frame::encode_ack(self.applied, ack_ctx),
            )
            .with_ctx(ack_ctx));
            self.p_plane.pump();
            for pkt in self.p_plane.drain_delivered(REPL_PORT) {
                if let Some((acked, ctx)) = frame::decode_ack(&pkt.payload) {
                    if acked > self.acked {
                        // Advance the shadow before pruning: pruned
                        // records are gone from the primary's tail.
                        self.sync_shadow(acked);
                        self.acked = acked;
                        let ack_span = self.p_trace.mint_span(ctx.span);
                        self.p_trace.emit_with_ctx(TraceEvent::ReplAck { acked }, ack_span);
                        self.metrics.inc(Counter::ReplAcks);
                        self.primary.fs.borrow_mut().prune_committed(acked);
                    }
                }
            }
        }
        if !self.primary_dead {
            self.watch.observe_repl_lag(self.lag());
            self.watch.observe_repl_lag_age(self.repl_lag_age());
        }
        rep.acked = self.acked;
        rep.lag = self.lag();
        rep
    }

    /// The standard workload driver: two primary writes then one ship
    /// round per step (two, so multi-record windows exist and
    /// reorder schedule points are actually visited), all offsets and
    /// fill bytes a pure function of the step index.
    pub fn run(&mut self, steps: usize) -> WorkloadReport {
        let mut report = WorkloadReport::default();
        self.ensure_workload_file();
        for step in 0..steps as u64 {
            if !self.primary_dead {
                self.workload_write(step * 2);
                self.workload_write(step * 2 + 1);
            }
            let r = self.ship_round();
            report.rounds += 1;
            report.shipped += r.shipped;
            report.retransmits += r.retransmits;
            report.dropped += r.dropped;
            report.applied += r.applied;
            match r.death {
                NodeDeath::Primary => report.primary_died = true,
                NodeDeath::Replica => report.replica_crashes += 1,
                NodeDeath::None => {}
            }
        }
        report.acked = self.acked;
        report.final_lag = self.lag();
        report
    }

    /// Fails over to the replica: finish replay from the primary's
    /// retained journal history (the post-mortem drain is reliable —
    /// the wire faults model the live link, and a real operator reads
    /// the dead primary's durable journal), assert byte-identical
    /// committed state, and promote the replica by booting a fresh
    /// kernel from its disk image. Returns the promoted kernel.
    pub fn failover(&mut self) -> Rc<Kernel> {
        let pending: Vec<JournalRecord> = {
            let fs = self.primary.fs.borrow();
            fs.committed_records(self.applied + 1).cloned().collect()
        };
        for rec in pending {
            // No ship leg here — the drain reads the durable journal
            // directly, so the ingest span chains straight off the
            // record's seal span.
            let ingest_ctx = self.r_trace.mint_span(self.seal_span_of(rec.seq));
            let prev = self.r_trace.set_ctx(ingest_ctx);
            let out = self
                .replica
                .fs
                .borrow_mut()
                .ingest_replicated(&rec)
                .expect("the failover drain is fault-free");
            self.r_trace.set_ctx(prev);
            match out {
                IngestOutcome::Applied { blocks } => {
                    self.applied = self.applied.max(rec.seq);
                    self.last_ingest_ctx = ingest_ctx;
                    self.r_trace
                        .emit_with_ctx(TraceEvent::ReplApply { seq: rec.seq, blocks }, ingest_ctx);
                    self.metrics.inc(Counter::ReplApplies);
                }
                IngestOutcome::Duplicate => {}
                IngestOutcome::Gap { expected } => {
                    panic!("drain out of order: expected {expected}, got {}", rec.seq)
                }
            }
        }
        assert_committed_states_match(
            &self.primary.fs.borrow().disk_image(),
            &self.replica.fs.borrow().disk_image(),
        );
        let image = self.replica.fs.borrow().disk_image();
        let promoted = Kernel::boot_from_image_with_clock(
            self.cfg.kernel.clone(),
            Rc::clone(&self.clock),
            image,
        )
        .expect("a converged replica image must boot");
        let promote_ctx = self.r_trace.mint_span(self.last_ingest_ctx.span);
        self.r_trace.emit_with_ctx(TraceEvent::ReplPromote { seq: self.applied }, promote_ctx);
        self.metrics.inc(Counter::ReplPromotions);
        promoted
    }

    /// Mid-run invariant: the replica's disk is byte-identical to the
    /// primary's committed prefix at the replica's applied sequence,
    /// reconstructed record-by-record on the harness's shadow volume.
    pub fn assert_replica_matches_committed_prefix(&mut self) {
        self.sync_shadow(self.applied);
        assert_committed_states_match(
            &self.shadow.disk_image(),
            &self.replica.fs.borrow().disk_image(),
        );
    }

    /// Arms the configured crash point and lands the primary on it
    /// inside one more local transaction.
    fn kill_primary(&mut self) {
        let site = self.cfg.crash_site;
        self.fault.arm(site, self.fault.visits(site) + 1);
        let res = self.primary.fs.borrow_mut().create(".crash-victim", 64);
        assert_eq!(res, Err(FsError::PowerFailure), "armed crash point must kill the primary");
        self.primary_dead = true;
    }

    /// Arms the configured crash point under `rec`'s apply, lets the
    /// replica die inside the commit pipeline — with the doomed
    /// ingest's span in force, so the torn journal events still chain
    /// off `ship` — and reboots it from its crash image through
    /// mount-time recovery.
    fn crash_replica_mid_apply(&mut self, rec: &JournalRecord, ship: CauseCtx) {
        let site = self.cfg.crash_site;
        self.fault.arm(site, self.fault.visits(site) + 1);
        let ingest_ctx = self.r_trace.mint_span(ship.span);
        let prev = self.r_trace.set_ctx(ingest_ctx);
        let res = self.replica.fs.borrow_mut().ingest_replicated(rec);
        self.r_trace.set_ctx(prev);
        assert_eq!(res, Err(FsError::PowerFailure), "armed crash point must kill the replica");
        self.reboot_replica();
    }

    /// Boots a fresh replica kernel over the crash image and reconciles
    /// the shipping cursor with what recovery found.
    fn reboot_replica(&mut self) {
        let image = self.replica.crash_image();
        let k = Kernel::boot_from_image_with_clock(
            self.cfg.kernel.clone(),
            Rc::clone(&self.clock),
            image,
        )
        .expect("a replica crash image must remount");
        k.attach_fault_plane(Rc::clone(&self.fault)).expect("fresh kernel");
        k.attach_trace_plane(Rc::clone(&self.r_trace)).expect("fresh kernel");
        k.attach_metrics_plane(Rc::clone(&self.metrics)).expect("fresh kernel");
        let report = k.recovery_report().expect("mounted from an image");
        if report.replayed_txns > 0 {
            // The torn record committed before the crash; recovery
            // rolled it forward, so the replica holds it.
            self.applied = self.applied.max(report.next_seq - 1);
        }
        if report.next_seq > self.applied + 1 {
            // Recovery discarded a torn, half-applied record and
            // advanced the sequence past it; re-open the cursor so the
            // retransmission is accepted rather than skipped.
            k.fs.borrow_mut().rewind_replication_cursor(self.applied);
        }
        let plane = PacketPlane::new(Rc::clone(&k));
        plane.open_port(REPL_PORT, RING_CAP);
        self.r_plane = plane;
        self.replica = k;
        // In-flight fragments died with the old packet plane.
        self.reasm.clear();
        self.replica_reboots += 1;
    }

    /// Applies committed records onto the shadow volume up to `upto`.
    fn sync_shadow(&mut self, upto: u64) {
        let recs: Vec<JournalRecord> = {
            let fs = self.primary.fs.borrow();
            fs.committed_records(self.shadow.last_committed_seq() + 1)
                .take_while(|r| r.seq <= upto)
                .cloned()
                .collect()
        };
        for rec in recs {
            let out = self.shadow.ingest_replicated(&rec).expect("the shadow volume never faults");
            assert!(
                matches!(out, IngestOutcome::Applied { .. }),
                "the shadow applies strictly in order"
            );
        }
    }

    /// Creates and opens the workload file on the primary, once.
    fn ensure_workload_file(&mut self) {
        if self.workload_fd.is_some() || self.primary_dead {
            return;
        }
        let mut fs = self.primary.fs.borrow_mut();
        match fs.create(WORKLOAD, WORKLOAD_BLOCKS * BLOCK_SIZE as u64) {
            Ok(()) => {}
            Err(FsError::PowerFailure) => {
                self.primary_dead = true;
                return;
            }
            Err(e) => panic!("workload create failed: {e:?}"),
        }
        self.workload_fd = Some(fs.open(WORKLOAD).expect("just created"));
    }

    /// One deterministic workload write: 256 bytes whose offset and
    /// fill are pure functions of `tick`.
    fn workload_write(&mut self, tick: u64) {
        let Some(fd) = self.workload_fd else { return };
        let mut data = [0u8; 256];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (tick as u8).wrapping_mul(31).wrapping_add(i as u8);
        }
        let offset = (tick % WORKLOAD_BLOCKS) * BLOCK_SIZE as u64;
        match self.primary.fs.borrow_mut().write(fd, offset, &data) {
            Ok(()) => {}
            Err(FsError::PowerFailure) => self.primary_dead = true,
            Err(e) => panic!("workload write failed: {e:?}"),
        }
    }
}

/// Recovers `image` on a private clock (roll the journal tail forward
/// or discard it, exactly as a post-crash mount would) and returns the
/// recovered image plus its superblock.
fn recovered_image(image: &DiskImage) -> (DiskImage, SuperBlock) {
    let clock = VirtualClock::new();
    let disk = Disk::from_image(Rc::clone(&clock), image.clone())
        .expect("snapshot images are geometry-consistent");
    let fs = FileSystem::mount(clock, disk, 16).expect("the image must be recoverable");
    let img = fs.disk_image();
    let sb = SuperBlock::decode(&img.block(BlockAddr(0))).expect("recovered superblock");
    (img, sb)
}

/// Block addresses worth comparing between two recovered images: the
/// union of their written sets, minus the journal staging region
/// `[journal_start, data_start)` — the journal holds whichever record
/// each node saw last and is mechanism, not state.
fn comparable_blocks(a: &DiskImage, b: &DiskImage, sb: &SuperBlock) -> BTreeSet<u64> {
    a.written()
        .chain(b.written())
        .map(|addr| addr.0)
        .filter(|&blk| blk < sb.journal_start as u64 || blk >= sb.data_start as u64)
        .collect()
}

/// Asserts two disk images hold byte-identical *committed state*:
/// after each side's journal recovery, every block outside the journal
/// staging region is equal (unwritten blocks read as zeros). Panics
/// with the first diverging block address otherwise.
pub fn assert_committed_states_match(primary: &DiskImage, replica: &DiskImage) {
    let (p_img, p_sb) = recovered_image(primary);
    let (r_img, r_sb) = recovered_image(replica);
    assert_eq!(
        (p_sb.journal_start, p_sb.data_start, p_sb.total_blocks),
        (r_sb.journal_start, r_sb.data_start, r_sb.total_blocks),
        "volume geometry diverged"
    );
    for blk in comparable_blocks(&p_img, &r_img, &p_sb) {
        assert!(
            p_img.block(BlockAddr(blk)) == r_img.block(BlockAddr(blk)),
            "block {blk} diverged between primary and replica committed state"
        );
    }
}

/// An FNV-1a fingerprint of an image's committed state (same recovery
/// and same exclusions as [`assert_committed_states_match`]) — a cheap
/// equality witness for same-seed replay checks. All-zero blocks are
/// skipped so a written-as-zeros block equals a never-written one.
pub fn committed_state_fingerprint(image: &DiskImage) -> u64 {
    let (img, sb) = recovered_image(image);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for blk in comparable_blocks(&img, &img, &sb) {
        let block = img.block(BlockAddr(blk));
        if block.iter().all(|&byte| byte == 0) {
            continue;
        }
        mix(blk);
        mix(checksum64(&block));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_run_converges_and_promotes() {
        let mut h = ReplHarness::new(0xA1, ReplConfig::default());
        let report = h.run(8);
        assert!(report.shipped > 0, "the workload must commit and ship records");
        assert_eq!(report.final_lag, 0, "a fault-free wire converges every round");
        assert_eq!(h.applied(), h.primary_committed());
        h.assert_replica_matches_committed_prefix();
        let promoted = h.failover();
        // The promoted kernel serves the workload file.
        let mut fs = promoted.fs.borrow_mut();
        let fd = fs.open("repl.dat").expect("promoted replica has the workload file");
        let bytes = fs.read(fd, 0, 256).expect("readable");
        assert_eq!(bytes.len(), 256);
        drop(fs);
        assert_eq!(
            committed_state_fingerprint(&h.primary().fs.borrow().disk_image()),
            committed_state_fingerprint(&promoted.fs.borrow().disk_image()),
        );
    }

    #[test]
    fn lossy_wire_retransmits_until_convergence() {
        let mut h = ReplHarness::new(0xB2, ReplConfig::default());
        let plane = Rc::clone(h.fault_plane());
        plane.set_rate(FaultSite::ReplShipDrop, 1, 4);
        plane.set_rate(FaultSite::ReplAckLoss, 1, 4);
        let report = h.run(12);
        assert!(report.dropped > 0, "a 1/4 drop rate over 12 rounds must lose frames");
        assert!(report.retransmits > 0, "loss without retransmission cannot converge");
        // Quiesce the wire and drain.
        plane.set_rate(FaultSite::ReplShipDrop, 0, 1);
        plane.set_rate(FaultSite::ReplAckLoss, 0, 1);
        for _ in 0..16 {
            if h.lag() == 0 {
                break;
            }
            h.ship_round();
        }
        assert_eq!(h.lag(), 0, "retransmission must drain the window");
        h.assert_replica_matches_committed_prefix();
        h.failover();
    }

    #[test]
    fn replica_torn_apply_rewinds_and_reaccepts_the_retransmission() {
        // MidJournal tears the record on the replica: recovery discards
        // the tail and skips its sequence, and the cursor rewind is
        // what lets the retransmission through.
        let cfg = ReplConfig { crash_site: FaultSite::KernelCrashMidJournal, ..Default::default() };
        let mut h = ReplHarness::new(0xC3, cfg);
        let plane = Rc::clone(h.fault_plane());
        plane.arm(FaultSite::ReplReplicaCrash, 2);
        let report = h.run(8);
        assert_eq!(report.replica_crashes, 1);
        assert_eq!(h.replica_reboots(), 1);
        for _ in 0..8 {
            if h.lag() == 0 {
                break;
            }
            h.ship_round();
        }
        assert_eq!(h.lag(), 0);
        assert_eq!(h.applied(), h.primary_committed());
        h.assert_replica_matches_committed_prefix();
        h.failover();
    }

    #[test]
    fn primary_death_fails_over_to_a_byte_identical_replica() {
        let cfg =
            ReplConfig { crash_site: FaultSite::KernelCrashAfterCommit, ..Default::default() };
        let mut h = ReplHarness::new(0xD4, cfg);
        let plane = Rc::clone(h.fault_plane());
        plane.arm(FaultSite::ReplPrimaryCrash, 4);
        let report = h.run(10);
        assert!(report.primary_died);
        assert!(h.primary_dead());
        // failover() drains the unacked tail — including the doomed
        // transaction the primary committed right before dying — and
        // asserts byte-identity before promoting.
        let promoted = h.failover();
        assert_eq!(
            committed_state_fingerprint(&h.primary().fs.borrow().disk_image()),
            committed_state_fingerprint(&promoted.fs.borrow().disk_image()),
        );
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let run = || {
            let cfg = ReplConfig {
                crash_site: FaultSite::KernelCrashMidCheckpoint,
                ..Default::default()
            };
            let mut h = ReplHarness::new(0xE5, cfg);
            let plane = Rc::clone(h.fault_plane());
            plane.set_rate(FaultSite::ReplShipDrop, 1, 5);
            plane.arm(FaultSite::ReplReplicaCrash, 3);
            h.run(10);
            let digest = (
                h.merged_trace().serialize(),
                h.metrics_plane().expose(),
                committed_state_fingerprint(&h.replica().fs.borrow().disk_image()),
            );
            digest
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "trace streams diverged across same-seed runs");
        assert_eq!(a.1, b.1, "metrics diverged across same-seed runs");
        assert_eq!(a.2, b.2, "replica images diverged across same-seed runs");
    }
}

//! Wire frames for the replication plane.
//!
//! A committed [`JournalRecord`] travels as one *record frame*: the
//! entry table and payload blocks re-marshalled for the wire, with a
//! fresh FNV-1a seal computed at ship time and xor-bound to the
//! record's sequence — so a frame replayed under the wrong sequence, or
//! corrupted in flight, is refused at reassembly rather than applied.
//! The journal's own on-disk seals never leave the primary; the wire
//! carries its own.
//!
//! A record frame is bigger than the packet plane allows (one payload
//! block alone is [`BLOCK_SIZE`] = 4096 bytes against a
//! [`PAYLOAD_CAP`] of 2048), so frames are split into fragments, each
//! carrying `(kind, seq, index, count)` ahead of its chunk. The
//! [`Reassembler`] tolerates fragments arriving in any order and
//! interleaved across sequences; a record surfaces only when its last
//! missing fragment lands and its seal verifies.
//!
//! Acks are a single small frame: the cumulative applied sequence plus
//! a seal. There is no negative ack — loss in either direction is
//! repaired by the shipper's go-back-N retransmission.

use std::collections::BTreeMap;

use vino_fs::layout::checksum64;
use vino_fs::{JournalRecord, BLOCK_SIZE};
use vino_net::PAYLOAD_CAP;
use vino_sim::trace::CauseCtx;

/// Frame kind tag: a fragment of a marshalled record.
pub const KIND_RECORD: u8 = 1;
/// Frame kind tag: a cumulative acknowledgement.
pub const KIND_ACK: u8 = 2;

/// Per-fragment header: kind (1) + record sequence (8) + fragment
/// index (2) + fragment count (2) + causal context (16 — the ship
/// span propagated in-band, [`CauseCtx::WIRE_BYTES`]).
pub const FRAG_HEADER: usize = 13 + CauseCtx::WIRE_BYTES;

/// Chunk bytes carried per fragment.
const CHUNK: usize = PAYLOAD_CAP - FRAG_HEADER;

/// Marshals a record body: entry count, entry table, payload blocks,
/// and a trailing seal — FNV-1a over everything before it, xor-bound
/// to the record's sequence (the "re-seal on ship").
pub fn marshal(rec: &JournalRecord) -> Vec<u8> {
    let n = rec.entries.len();
    let mut out = Vec::with_capacity(4 + n * 16 + n * BLOCK_SIZE + 8);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for (home, sum) in &rec.entries {
        out.extend_from_slice(&home.to_le_bytes());
        out.extend_from_slice(&sum.to_le_bytes());
    }
    for payload in &rec.payloads {
        out.extend_from_slice(payload);
    }
    let seal = checksum64(&out) ^ rec.seq;
    out.extend_from_slice(&seal.to_le_bytes());
    out
}

/// Parses a marshalled record body back under sequence `seq`. `None`
/// if the seal does not verify for these bytes and this sequence, or
/// the shape is wrong.
pub fn unmarshal(seq: u64, body: &[u8]) -> Option<JournalRecord> {
    if body.len() < 4 + 8 {
        return None;
    }
    let (sealed, seal_bytes) = body.split_at(body.len() - 8);
    let seal = u64::from_le_bytes(seal_bytes.try_into().ok()?);
    if checksum64(sealed) ^ seq != seal {
        return None;
    }
    let n = u32::from_le_bytes(sealed[0..4].try_into().ok()?) as usize;
    if sealed.len() != 4 + n * 16 + n * BLOCK_SIZE || n == 0 {
        return None;
    }
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let at = 4 + i * 16;
        let home = u64::from_le_bytes(sealed[at..at + 8].try_into().ok()?);
        let sum = u64::from_le_bytes(sealed[at + 8..at + 16].try_into().ok()?);
        entries.push((home, sum));
    }
    let mut payloads = Vec::with_capacity(n);
    let base = 4 + n * 16;
    for i in 0..n {
        let at = base + i * BLOCK_SIZE;
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(&sealed[at..at + BLOCK_SIZE]);
        payloads.push(block);
    }
    Some(JournalRecord { seq, entries, payloads })
}

/// Splits a record into packet-sized fragments, each under
/// [`PAYLOAD_CAP`].
/// Every fragment carries `ctx` — the ship span — so the receiver can
/// chain its enqueue/ingest spans to the sender's whichever fragment
/// completes the record.
pub fn fragment(rec: &JournalRecord, ctx: CauseCtx) -> Vec<Vec<u8>> {
    let body = marshal(rec);
    let total = body.chunks(CHUNK).count();
    assert!(total <= u16::MAX as usize, "record too large for the fragment header");
    body.chunks(CHUNK)
        .enumerate()
        .map(|(i, chunk)| {
            let mut f = Vec::with_capacity(FRAG_HEADER + chunk.len());
            f.push(KIND_RECORD);
            f.extend_from_slice(&rec.seq.to_le_bytes());
            f.extend_from_slice(&(i as u16).to_le_bytes());
            f.extend_from_slice(&(total as u16).to_le_bytes());
            f.extend_from_slice(&ctx.to_bytes());
            f.extend_from_slice(chunk);
            f
        })
        .collect()
}

/// Ack frame length: kind (1) + acked (8) + causal context (16) +
/// seal (8).
pub const ACK_LEN: usize = 1 + 8 + CauseCtx::WIRE_BYTES + 8;

/// Encodes a cumulative ack: every sequence `<= acked` is applied.
/// `ctx` is the replica's ack span, propagated in-band so the primary
/// can chain its `repl.ack` event to the replica's apply story.
pub fn encode_ack(acked: u64, ctx: CauseCtx) -> Vec<u8> {
    let mut f = Vec::with_capacity(ACK_LEN);
    f.push(KIND_ACK);
    f.extend_from_slice(&acked.to_le_bytes());
    f.extend_from_slice(&ctx.to_bytes());
    let seal = checksum64(&f);
    f.extend_from_slice(&seal.to_le_bytes());
    f
}

/// Parses an ack frame; `None` for anything malformed or corrupted.
pub fn decode_ack(payload: &[u8]) -> Option<(u64, CauseCtx)> {
    if payload.len() != ACK_LEN || payload[0] != KIND_ACK {
        return None;
    }
    let (sealed, seal_bytes) = payload.split_at(ACK_LEN - 8);
    let seal = u64::from_le_bytes(seal_bytes.try_into().ok()?);
    if checksum64(sealed) != seal {
        return None;
    }
    let acked = u64::from_le_bytes(sealed[1..9].try_into().ok()?);
    let ctx = CauseCtx::from_bytes(sealed[9..9 + CauseCtx::WIRE_BYTES].try_into().ok()?);
    Some((acked, ctx))
}

/// Collects record fragments delivered by the packet plane and yields
/// each record once complete and seal-verified. Fragments may arrive
/// in any order, interleaved across sequences; a fragment that
/// disagrees with its peers (wrong count, bad index) is dropped.
#[derive(Default)]
pub struct Reassembler {
    parts: BTreeMap<u64, Vec<Option<Vec<u8>>>>,
}

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Feeds one delivered packet payload. Returns the finished record
    /// and the ship context its fragments carried when this was its
    /// last missing fragment.
    pub fn accept(&mut self, payload: &[u8]) -> Option<(JournalRecord, CauseCtx)> {
        if payload.len() < FRAG_HEADER || payload[0] != KIND_RECORD {
            return None;
        }
        let seq = u64::from_le_bytes(payload[1..9].try_into().ok()?);
        let idx = u16::from_le_bytes(payload[9..11].try_into().ok()?) as usize;
        let total = u16::from_le_bytes(payload[11..13].try_into().ok()?) as usize;
        if total == 0 || idx >= total {
            return None;
        }
        let ctx = CauseCtx::from_bytes(payload[13..13 + CauseCtx::WIRE_BYTES].try_into().ok()?);
        let slots = self.parts.entry(seq).or_insert_with(|| vec![None; total]);
        if slots.len() != total {
            return None;
        }
        slots[idx] = Some(payload[FRAG_HEADER..].to_vec());
        if slots.iter().any(|s| s.is_none()) {
            return None;
        }
        let slots = self.parts.remove(&seq).expect("just completed");
        let body: Vec<u8> = slots.into_iter().flatten().flatten().collect();
        unmarshal(seq, &body).map(|rec| (rec, ctx))
    }

    /// Drops all partial state — e.g. when the receiving node reboots
    /// and its in-flight fragments are lost with it.
    pub fn clear(&mut self) {
        self.parts.clear();
    }

    /// Sequences with fragments outstanding.
    pub fn pending(&self) -> usize {
        self.parts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, blocks: usize) -> JournalRecord {
        let mut entries = Vec::new();
        let mut payloads = Vec::new();
        for i in 0..blocks {
            let mut block = [0u8; BLOCK_SIZE];
            for (j, b) in block.iter_mut().enumerate() {
                *b = (seq as u8).wrapping_mul(7).wrapping_add(i as u8).wrapping_add(j as u8);
            }
            entries.push((100 + i as u64, checksum64(&block)));
            payloads.push(block);
        }
        JournalRecord { seq, entries, payloads }
    }

    #[test]
    fn marshal_round_trips_and_binds_the_sequence() {
        let rec = record(7, 3);
        let body = marshal(&rec);
        assert_eq!(unmarshal(7, &body), Some(rec.clone()));
        // The seal is bound to the sequence: the same bytes under a
        // different sequence are refused.
        assert_eq!(unmarshal(8, &body), None);
        // Any flipped byte is refused.
        let mut bent = body.clone();
        bent[10] ^= 0x40;
        assert_eq!(unmarshal(7, &bent), None);
    }

    #[test]
    fn fragments_respect_the_payload_cap_and_reassemble_out_of_order() {
        use vino_sim::trace::{NodeId, SpanId};
        let rec = record(3, 2);
        let ctx = CauseCtx { span: SpanId::new(NodeId(0), 7), parent: SpanId::new(NodeId(0), 2) };
        let frags = fragment(&rec, ctx);
        assert!(frags.len() > 1, "a multi-block record cannot fit one packet");
        for f in &frags {
            assert!(f.len() <= PAYLOAD_CAP);
        }
        let mut r = Reassembler::new();
        // Deliver in reverse order; the record completes on the last
        // fragment and not before, carrying the in-band ship context.
        let mut done = None;
        for f in frags.iter().rev() {
            assert!(done.is_none());
            done = r.accept(f);
        }
        assert_eq!(done, Some((rec, ctx)));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembler_interleaves_sequences_and_drops_corrupt_frames() {
        let a = record(1, 1);
        let b = record(2, 2);
        let fa = fragment(&a, CauseCtx::NONE);
        let fb = fragment(&b, CauseCtx::NONE);
        let mut r = Reassembler::new();
        assert_eq!(r.accept(&fb[0]), None);
        // Feed all of record 1 but corrupt its final fragment: the
        // frame completes, the seal fails, nothing surfaces.
        for f in &fa[..fa.len() - 1] {
            assert_eq!(r.accept(f), None);
        }
        let mut corrupt = fa.last().expect("non-empty").clone();
        *corrupt.last_mut().expect("non-empty") ^= 0xff;
        assert_eq!(r.accept(&corrupt), None);
        // Record 2 still completes despite the interleaving.
        let mut done = None;
        for f in &fb[1..] {
            assert_eq!(done, None);
            done = r.accept(f);
        }
        assert_eq!(done, Some((b, CauseCtx::NONE)));
        // Record 1 retransmitted clean reassembles from scratch.
        let mut done = None;
        for f in &fa {
            done = r.accept(f);
        }
        assert_eq!(done, Some((a, CauseCtx::NONE)));
    }

    #[test]
    fn ack_frames_round_trip_and_refuse_corruption() {
        use vino_sim::trace::{NodeId, SpanId};
        let ctx = CauseCtx { span: SpanId::new(NodeId(1), 3), parent: SpanId::new(NodeId(1), 1) };
        let f = encode_ack(42, ctx);
        assert_eq!(f.len(), ACK_LEN);
        assert!(f.len() <= PAYLOAD_CAP);
        assert_eq!(decode_ack(&f), Some((42, ctx)));
        let mut bent = f.clone();
        bent[3] ^= 1;
        assert_eq!(decode_ack(&bent), None);
        assert_eq!(decode_ack(&[]), None);
    }
}

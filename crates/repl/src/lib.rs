//! vino-repl: deterministic primary/replica journal shipping.
//!
//! The journaling plane (PR 6) made every mutation a sequenced,
//! checksummed, idempotently-replayable record. This crate closes the
//! loop the paper's recovery story implies: if a record can be replayed
//! on the machine that crashed, it can be replayed on a *different*
//! machine — and then a misbehaving kernel is survivable not just by
//! rebooting it, but by failing over past it.
//!
//! - [`frame`] — the wire contract: a committed
//!   [`JournalRecord`](vino_fs::JournalRecord) marshalled into a record
//!   frame (entry table + payload blocks + a fresh FNV-1a seal bound to
//!   the sequence), fragmented under the packet plane's
//!   [`PAYLOAD_CAP`](vino_net::PAYLOAD_CAP), plus the cumulative-ack
//!   frame and the reassembler.
//! - [`harness`] — the [`ReplHarness`]: two kernels off one virtual
//!   clock, a bounded in-flight shipping window with go-back-N
//!   retransmission over cumulative acks, wire faults
//!   ([`REPL_SITES`](vino_sim::fault::REPL_SITES)) consulted at every
//!   schedule point, node crashes landed on PR 6 crash-point
//!   granularity, and failover that proves the replica's disk is a
//!   byte-identical prefix of the primary's committed state before
//!   promoting it. Each kernel owns a per-node trace plane; causal
//!   context ([`CauseCtx`](vino_sim::trace::CauseCtx)) is minted at the
//!   journal seal, carried in-band by every fragment and ack frame, and
//!   re-chained on the far side, so
//!   [`ReplHarness::merged_trace`] yields one deterministic
//!   cross-kernel stream.
//! - [`lagpath`] — critical-path lag attribution: walks the merged
//!   span DAG for the oldest unacked record and splits its age into
//!   per-hop virtual-cycle intervals that sum *exactly* to the watch
//!   plane's cycles-valued replication-lag gauge.
//!
//! Everything is single-threaded and seeded: the same seed produces the
//! same interleaving, the same faults, the same traces and the same
//! final images, byte for byte. See `docs/REPLICATION.md`.

pub mod frame;
pub mod harness;
pub mod lagpath;

pub use frame::{decode_ack, encode_ack, fragment, marshal, unmarshal, Reassembler};
pub use harness::{
    assert_committed_states_match, committed_state_fingerprint, NodeDeath, ReplConfig, ReplHarness,
    RoundReport, ShippingState, WorkloadReport, WIRE_CYCLES,
};
pub use lagpath::{lag_path, LagHop, LagPathReport};

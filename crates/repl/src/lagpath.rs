//! Critical-path lag attribution: where the replication lag *is*.
//!
//! [`lag_path`] walks the merged cross-kernel span DAG for the oldest
//! committed-but-unacked record and splits its age into consecutive
//! per-hop intervals — seal → ship → wire delivery → apply → pending —
//! each anchored at a real trace timestamp. Because the hops partition
//! `[sealed_at, observed_at]` exactly, their sum telescopes to the
//! cycles-valued replication-lag gauge
//! ([`ReplHarness::repl_lag_age`]) for the same instant: call it right
//! after a [`ReplHarness::ship_round`], before anything else charges
//! the clock, and `total` equals the gauge byte for byte.
//!
//! The walk is pure trace-reading — it re-derives the seal instant
//! from the primary's `fs.journal_commit` record rather than asking
//! the filesystem, so a disagreement between the trace and the ledger
//! shows up as a reconciliation failure instead of being papered over.

use vino_sim::clock::Cycles;
use vino_sim::trace::{SpanId, TraceEvent};

use crate::harness::ReplHarness;

/// One interval on the oldest-unacked record's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LagHop {
    /// What this interval covers (e.g. `"seal->ship"`).
    pub label: &'static str,
    /// Virtual instant the interval ends at.
    pub at: Cycles,
    /// Interval width in virtual cycles.
    pub cycles: Cycles,
}

/// The per-hop lag breakdown for the oldest unacked record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagPathReport {
    /// The oldest committed-but-unacked sequence.
    pub seq: u64,
    /// When the primary sealed it (from the trace, not the ledger).
    pub sealed_at: Cycles,
    /// The observation instant the breakdown runs to.
    pub observed_at: Cycles,
    /// Consecutive intervals partitioning `[sealed_at, observed_at]`.
    pub hops: Vec<LagHop>,
    /// Sum of the hops — the record's age.
    pub total: Cycles,
    /// Ship attempts seen for this sequence (re-ships included).
    pub ships: u64,
    /// Whole-frame drops seen for this sequence.
    pub drops: u64,
}

impl LagPathReport {
    /// Renders the breakdown as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== lag path: seq={} (oldest unacked), age {} cyc ==\n  sealed     @{:012}\n",
            self.seq, self.total.0, self.sealed_at.0
        );
        for h in &self.hops {
            out.push_str(&format!("  {:<10} @{:012} +{} cyc\n", h.label, h.at.0, h.cycles.0));
        }
        out.push_str(&format!(
            "  total      {} cyc over {} ship(s), {} drop(s)\n",
            self.total.0, self.ships, self.drops
        ));
        out
    }
}

/// Computes the lag-path breakdown for the oldest unacked record, or
/// `None` when replication is fully converged (lag zero). See the
/// module docs for the exact-reconciliation contract.
pub fn lag_path(h: &ReplHarness) -> Option<LagPathReport> {
    if h.lag() == 0 {
        return None;
    }
    let seq = h.acked() + 1;
    let merged = h.merged_trace();
    let observed_at = h.clock().now();

    let primary = h.primary_trace().node();
    let replica = h.replica_trace().node();
    let mut sealed: Option<Cycles> = None;
    let mut first_ship: Option<Cycles> = None;
    let mut ship_spans: Vec<SpanId> = Vec::new();
    let mut rx_at: Option<Cycles> = None;
    let mut apply_at: Option<Cycles> = None;
    let mut ships = 0u64;
    let mut drops = 0u64;
    // Milestones are the *earliest* occurrence of each stage, which
    // keeps the hop chain monotone under go-back-N: re-ships of an
    // already-applied record only land Duplicates and must not unwind
    // the path.
    for m in merged.records() {
        match m.rec.event {
            TraceEvent::FsJournalCommit { seq: s }
                if s == seq && m.node == primary && sealed.is_none() =>
            {
                sealed = Some(m.rec.at);
            }
            TraceEvent::ReplShip { seq: s, .. } if s == seq => {
                ships += 1;
                if first_ship.is_none() {
                    first_ship = Some(m.rec.at);
                }
                ship_spans.push(m.rec.ctx.span);
            }
            TraceEvent::ReplFrameDrop { seq: s } if s == seq => drops += 1,
            TraceEvent::NetRx { .. }
                if m.node == replica
                    && rx_at.is_none()
                    && ship_spans.contains(&m.rec.ctx.parent) =>
            {
                rx_at = Some(m.rec.at);
            }
            TraceEvent::ReplApply { seq: s, .. }
                if s == seq && m.node == replica && apply_at.is_none() =>
            {
                apply_at = Some(m.rec.at);
            }
            _ => {}
        }
    }

    let sealed_at = sealed?;
    let mut hops = Vec::new();
    let mut cursor = sealed_at;
    let mut push = |label: &'static str, at: Cycles, cursor: &mut Cycles| {
        hops.push(LagHop { label, at, cycles: at.saturating_sub(*cursor) });
        *cursor = at;
    };
    if let Some(at) = first_ship {
        push("seal->ship", at, &mut cursor);
        if let Some(at) = rx_at {
            push("ship->rx", at, &mut cursor);
            if let Some(at) = apply_at {
                push("rx->apply", at, &mut cursor);
            }
        }
    }
    // Whatever remains is waiting on the next protocol step: the first
    // ship, a retransmission after a drop, or the lost ack.
    push("pending", observed_at, &mut cursor);
    let total = observed_at.saturating_sub(sealed_at);
    debug_assert_eq!(
        hops.iter().map(|hop| hop.cycles.0).sum::<u64>(),
        total.0,
        "hops must partition the record's age"
    );
    Some(LagPathReport { seq, sealed_at, observed_at, hops, total, ships, drops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{ReplConfig, ReplHarness};
    use vino_sim::fault::FaultSite;

    #[test]
    fn converged_harness_has_no_lag_path() {
        let mut h = ReplHarness::new(0x11, ReplConfig::default());
        h.run(4);
        assert_eq!(h.lag(), 0);
        assert!(lag_path(&h).is_none());
    }

    #[test]
    fn stalled_ack_path_reconciles_with_the_lag_age_gauge() {
        let mut h = ReplHarness::new(0x22, ReplConfig::default());
        let plane = std::rc::Rc::clone(h.fault_plane());
        plane.set_rate(FaultSite::ReplAckLoss, 1, 1);
        h.run(5);
        assert!(h.lag() > 0, "a lossy ack path must leave unacked records");
        let report = lag_path(&h).expect("lag > 0 must produce a path");
        assert_eq!(report.seq, h.acked() + 1);
        // Exact reconciliation: the per-hop sum IS the gauge.
        assert_eq!(report.total, h.repl_lag_age());
        assert_eq!(report.total, h.watch_plane().repl_lag_age());
        let sum: u64 = report.hops.iter().map(|hop| hop.cycles.0).sum();
        assert_eq!(sum, report.total.0);
        // The record was shipped and applied — only the ack is missing.
        assert!(report.ships > 0);
        assert!(report.hops.iter().any(|hop| hop.label == "rx->apply"));
        let rendered = report.render();
        assert!(rendered.contains("lag path"));
        assert!(rendered.contains("pending"));
    }

    #[test]
    fn dropped_frames_show_up_in_the_attribution() {
        let mut h = ReplHarness::new(0x33, ReplConfig::default());
        let plane = std::rc::Rc::clone(h.fault_plane());
        plane.set_rate(FaultSite::ReplShipDrop, 1, 1);
        h.run(3);
        assert!(h.lag() > 0);
        let report = lag_path(&h).expect("lag > 0 must produce a path");
        assert!(report.drops > 0, "every ship attempt was dropped");
        assert_eq!(report.ships, 0);
        // With no ship the whole age is one pending hop.
        assert_eq!(report.hops.len(), 1);
        assert_eq!(report.total, h.repl_lag_age());
    }
}

//! On-disk structures: superblock, inode table and allocation bitmap.
//!
//! A deliberately simple extent-based layout (files are allocated
//! first-fit and usually occupy a single contiguous extent, which is
//! also what makes the sequential/random distinction of the read-ahead
//! experiments physically meaningful):
//!
//! ```text
//! block 0                superblock
//! blocks 1..=I           inode table (16 inodes per 4 KB block)
//! blocks I+1..=I+B       allocation bitmap (1 bit per data block)
//! blocks I+B+1..         data
//! ```

/// File-system block size; "4KB is our file system block size" (§4.1.3).
pub const BLOCK_SIZE: usize = 4096;

/// Bytes per on-disk inode record.
pub const INODE_SIZE: usize = 256;

/// Inodes per table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;

/// Maximum file-name bytes stored in an inode.
pub const MAX_NAME: usize = 64;

/// Maximum extents per file; first-fit contiguous allocation keeps real
/// files at one.
pub const MAX_EXTENTS: usize = 4;

/// Magic number identifying a formatted volume.
pub const FS_MAGIC: u32 = 0x56_49_4E_4F; // "VINO"

/// The superblock, stored in block 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBlock {
    /// Must equal [`FS_MAGIC`].
    pub magic: u32,
    /// Total blocks on the volume.
    pub total_blocks: u32,
    /// Number of inode-table blocks.
    pub inode_blocks: u32,
    /// Number of bitmap blocks.
    pub bitmap_blocks: u32,
    /// First data block.
    pub data_start: u32,
}

impl SuperBlock {
    /// Computes a layout for a volume of `total_blocks`, with room for
    /// `max_files` inodes.
    pub fn for_volume(total_blocks: u32, max_files: u32) -> SuperBlock {
        let inode_blocks = max_files.div_ceil(INODES_PER_BLOCK as u32).max(1);
        let bitmap_blocks = total_blocks.div_ceil((BLOCK_SIZE * 8) as u32).max(1);
        SuperBlock {
            magic: FS_MAGIC,
            total_blocks,
            inode_blocks,
            bitmap_blocks,
            data_start: 1 + inode_blocks + bitmap_blocks,
        }
    }

    /// Serializes into the first bytes of a block.
    pub fn encode(&self) -> [u8; BLOCK_SIZE] {
        let mut b = [0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&self.magic.to_le_bytes());
        b[4..8].copy_from_slice(&self.total_blocks.to_le_bytes());
        b[8..12].copy_from_slice(&self.inode_blocks.to_le_bytes());
        b[12..16].copy_from_slice(&self.bitmap_blocks.to_le_bytes());
        b[16..20].copy_from_slice(&self.data_start.to_le_bytes());
        b
    }

    /// Parses a superblock; `None` when the magic does not match.
    pub fn decode(b: &[u8; BLOCK_SIZE]) -> Option<SuperBlock> {
        let word = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let sb = SuperBlock {
            magic: word(0),
            total_blocks: word(4),
            inode_blocks: word(8),
            bitmap_blocks: word(12),
            data_start: word(16),
        };
        (sb.magic == FS_MAGIC).then_some(sb)
    }

    /// Inode capacity of the volume.
    pub fn max_inodes(&self) -> u32 {
        self.inode_blocks * INODES_PER_BLOCK as u32
    }
}

/// A contiguous run of data blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskExtent {
    /// First block (absolute).
    pub start: u32,
    /// Number of blocks.
    pub len: u32,
}

/// An on-disk inode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Inode {
    /// Whether this slot is allocated.
    pub used: bool,
    /// File name (≤ [`MAX_NAME`] bytes).
    pub name: String,
    /// Logical size in bytes.
    pub size: u64,
    /// The file's extents.
    pub extents: Vec<DiskExtent>,
}

impl Inode {
    /// Total blocks backing this file.
    pub fn block_count(&self) -> u32 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Absolute disk block backing logical block `lbn`, if any.
    pub fn block_of(&self, lbn: u32) -> Option<u32> {
        let mut remaining = lbn;
        for e in &self.extents {
            if remaining < e.len {
                return Some(e.start + remaining);
            }
            remaining -= e.len;
        }
        None
    }

    /// Serializes into an [`INODE_SIZE`]-byte record.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        b[0] = self.used as u8;
        let name = self.name.as_bytes();
        let n = name.len().min(MAX_NAME);
        b[1] = n as u8;
        b[2..2 + n].copy_from_slice(&name[..n]);
        b[72..80].copy_from_slice(&self.size.to_le_bytes());
        b[80] = self.extents.len().min(MAX_EXTENTS) as u8;
        for (i, e) in self.extents.iter().take(MAX_EXTENTS).enumerate() {
            let off = 88 + i * 8;
            b[off..off + 4].copy_from_slice(&e.start.to_le_bytes());
            b[off + 4..off + 8].copy_from_slice(&e.len.to_le_bytes());
        }
        b
    }

    /// Parses an inode record.
    pub fn decode(b: &[u8; INODE_SIZE]) -> Inode {
        let used = b[0] != 0;
        let n = (b[1] as usize).min(MAX_NAME);
        let name = String::from_utf8_lossy(&b[2..2 + n]).into_owned();
        let size = u64::from_le_bytes(b[72..80].try_into().expect("8 bytes"));
        let count = (b[80] as usize).min(MAX_EXTENTS);
        let mut extents = Vec::with_capacity(count);
        for i in 0..count {
            let off = 88 + i * 8;
            extents.push(DiskExtent {
                start: u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes")),
                len: u32::from_le_bytes(b[off + 4..off + 8].try_into().expect("4 bytes")),
            });
        }
        Inode { used, name, size, extents }
    }
}

/// An in-memory view of the allocation bitmap.
#[derive(Debug, Clone)]
pub struct Bitmap {
    bits: Vec<u8>,
    blocks: u32,
}

impl Bitmap {
    /// An all-free bitmap covering `blocks` data blocks.
    pub fn new(blocks: u32) -> Bitmap {
        Bitmap { bits: vec![0; (blocks as usize).div_ceil(8)], blocks }
    }

    /// Rebuilds a bitmap from its on-disk bytes.
    pub fn from_bytes(bytes: Vec<u8>, blocks: u32) -> Bitmap {
        Bitmap { bits: bytes, blocks }
    }

    /// The raw bytes (for writing back to disk).
    pub fn bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Whether block `b` is allocated.
    pub fn is_set(&self, b: u32) -> bool {
        self.bits[b as usize / 8] & (1 << (b % 8)) != 0
    }

    /// Marks block `b` allocated.
    pub fn set(&mut self, b: u32) {
        self.bits[b as usize / 8] |= 1 << (b % 8);
    }

    /// Marks block `b` free.
    pub fn clear(&mut self, b: u32) {
        self.bits[b as usize / 8] &= !(1 << (b % 8));
    }

    /// First-fit search for `len` contiguous free blocks; returns the
    /// starting block, or `None` when no run is long enough.
    pub fn find_run(&self, len: u32) -> Option<u32> {
        let mut run_start = 0u32;
        let mut run_len = 0u32;
        for b in 0..self.blocks {
            if self.is_set(b) {
                run_len = 0;
                run_start = b + 1;
            } else {
                run_len += 1;
                if run_len == len {
                    return Some(run_start);
                }
            }
        }
        None
    }

    /// Number of free blocks.
    pub fn free_count(&self) -> u32 {
        (0..self.blocks).filter(|b| !self.is_set(*b)).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_round_trip() {
        let sb = SuperBlock::for_volume(65_536, 64);
        let back = SuperBlock::decode(&sb.encode()).unwrap();
        assert_eq!(sb, back);
        assert!(sb.max_inodes() >= 64);
        assert!(sb.data_start > sb.inode_blocks);
    }

    #[test]
    fn superblock_bad_magic_rejected() {
        let mut b = SuperBlock::for_volume(1024, 16).encode();
        b[0] = 0;
        assert!(SuperBlock::decode(&b).is_none());
    }

    #[test]
    fn inode_round_trip() {
        let ino = Inode {
            used: true,
            name: "database.db".to_string(),
            size: 12 * 1024 * 1024,
            extents: vec![
                DiskExtent { start: 100, len: 2000 },
                DiskExtent { start: 5000, len: 1072 },
            ],
        };
        let back = Inode::decode(&ino.encode());
        assert_eq!(ino, back);
        assert_eq!(back.block_count(), 3072);
    }

    #[test]
    fn inode_block_mapping_across_extents() {
        let ino = Inode {
            used: true,
            name: "f".into(),
            size: 0,
            extents: vec![DiskExtent { start: 10, len: 3 }, DiskExtent { start: 100, len: 2 }],
        };
        assert_eq!(ino.block_of(0), Some(10));
        assert_eq!(ino.block_of(2), Some(12));
        assert_eq!(ino.block_of(3), Some(100));
        assert_eq!(ino.block_of(4), Some(101));
        assert_eq!(ino.block_of(5), None);
    }

    #[test]
    fn inode_name_truncated_to_max() {
        let long = "x".repeat(200);
        let ino = Inode { used: true, name: long, size: 0, extents: vec![] };
        let back = Inode::decode(&ino.encode());
        assert_eq!(back.name.len(), MAX_NAME);
    }

    #[test]
    fn bitmap_set_clear_find() {
        let mut bm = Bitmap::new(64);
        assert_eq!(bm.free_count(), 64);
        bm.set(0);
        bm.set(1);
        bm.set(5);
        assert_eq!(bm.find_run(3), Some(2), "first fit skips the 2-run at 2..4? no: 2,3,4 free");
        assert_eq!(bm.find_run(60), None);
        bm.clear(0);
        assert!(!bm.is_set(0));
        assert_eq!(bm.free_count(), 62);
    }

    #[test]
    fn bitmap_run_at_start_and_end() {
        let mut bm = Bitmap::new(16);
        assert_eq!(bm.find_run(16), Some(0));
        for b in 0..15 {
            bm.set(b);
        }
        assert_eq!(bm.find_run(1), Some(15));
        bm.set(15);
        assert_eq!(bm.find_run(1), None);
    }

    #[test]
    fn bitmap_bytes_round_trip() {
        let mut bm = Bitmap::new(32);
        bm.set(7);
        bm.set(31);
        let back = Bitmap::from_bytes(bm.bytes().to_vec(), 32);
        assert!(back.is_set(7));
        assert!(back.is_set(31));
        assert!(!back.is_set(8));
    }
}

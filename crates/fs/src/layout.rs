//! On-disk structures: superblock, inode table and allocation bitmap.
//!
//! A deliberately simple extent-based layout (files are allocated
//! first-fit and usually occupy a single contiguous extent, which is
//! also what makes the sequential/random distinction of the read-ahead
//! experiments physically meaningful):
//!
//! ```text
//! block 0                superblock
//! blocks 1..=I           inode table (16 inodes per 4 KB block)
//! blocks I+1..=I+B       allocation bitmap (1 bit per data block)
//! blocks I+B+1..=I+B+J   write-ahead journal (redo log)
//! blocks I+B+J+1..       data
//! ```
//!
//! The journal region holds one redo transaction at a time — a
//! descriptor block naming the home locations and carrying per-payload
//! checksums, the payload blocks themselves, and a commit block whose
//! durable arrival is the commit point. Because every in-place update
//! flows through the journal and each transaction overwrites the region
//! from its start, mount-time recovery only ever has the latest
//! transaction to consider: roll it forward if its commit block and
//! checksums validate, discard it as a torn tail otherwise. See
//! `docs/RECOVERY.md` for the byte-level story.

/// File-system block size; "4KB is our file system block size" (§4.1.3).
pub const BLOCK_SIZE: usize = 4096;

/// Bytes per on-disk inode record.
pub const INODE_SIZE: usize = 256;

/// Inodes per table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;

/// Maximum file-name bytes stored in an inode.
pub const MAX_NAME: usize = 64;

/// Maximum extents per file; first-fit contiguous allocation keeps real
/// files at one.
pub const MAX_EXTENTS: usize = 4;

/// Magic number identifying a formatted volume.
pub const FS_MAGIC: u32 = 0x56_49_4E_4F; // "VINO"

/// Magic number opening a journal descriptor block.
pub const JOURNAL_MAGIC: u32 = 0x4A_52_4E_4C; // "JRNL"

/// Magic number opening a journal commit block.
pub const COMMIT_MAGIC: u32 = 0x43_4D_49_54; // "CMIT"

/// Smallest journal region a volume is formatted with (descriptor +
/// commit + at least six payload slots).
pub const MIN_JOURNAL_BLOCKS: u32 = 8;

/// Largest journal region; one transaction never needs more.
pub const MAX_JOURNAL_BLOCKS: u32 = 64;

/// The superblock, stored in block 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBlock {
    /// Must equal [`FS_MAGIC`].
    pub magic: u32,
    /// Total blocks on the volume.
    pub total_blocks: u32,
    /// Number of inode-table blocks.
    pub inode_blocks: u32,
    /// Number of bitmap blocks.
    pub bitmap_blocks: u32,
    /// First journal block.
    pub journal_start: u32,
    /// Number of journal blocks (descriptor + payloads + commit).
    pub journal_blocks: u32,
    /// First data block.
    pub data_start: u32,
}

impl SuperBlock {
    /// Computes a layout for a volume of `total_blocks`, with room for
    /// `max_files` inodes.
    pub fn for_volume(total_blocks: u32, max_files: u32) -> SuperBlock {
        let inode_blocks = max_files.div_ceil(INODES_PER_BLOCK as u32).max(1);
        let bitmap_blocks = total_blocks.div_ceil((BLOCK_SIZE * 8) as u32).max(1);
        let journal_blocks = (total_blocks / 1024).clamp(MIN_JOURNAL_BLOCKS, MAX_JOURNAL_BLOCKS);
        let journal_start = 1 + inode_blocks + bitmap_blocks;
        SuperBlock {
            magic: FS_MAGIC,
            total_blocks,
            inode_blocks,
            bitmap_blocks,
            journal_start,
            journal_blocks,
            data_start: journal_start + journal_blocks,
        }
    }

    /// Serializes into the first bytes of a block.
    pub fn encode(&self) -> [u8; BLOCK_SIZE] {
        let mut b = [0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&self.magic.to_le_bytes());
        b[4..8].copy_from_slice(&self.total_blocks.to_le_bytes());
        b[8..12].copy_from_slice(&self.inode_blocks.to_le_bytes());
        b[12..16].copy_from_slice(&self.bitmap_blocks.to_le_bytes());
        b[16..20].copy_from_slice(&self.journal_start.to_le_bytes());
        b[20..24].copy_from_slice(&self.journal_blocks.to_le_bytes());
        b[24..28].copy_from_slice(&self.data_start.to_le_bytes());
        b
    }

    /// Parses a superblock; `None` when the magic does not match.
    pub fn decode(b: &[u8; BLOCK_SIZE]) -> Option<SuperBlock> {
        let word = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let sb = SuperBlock {
            magic: word(0),
            total_blocks: word(4),
            inode_blocks: word(8),
            bitmap_blocks: word(12),
            journal_start: word(16),
            journal_blocks: word(20),
            data_start: word(24),
        };
        (sb.magic == FS_MAGIC).then_some(sb)
    }

    /// Inode capacity of the volume.
    pub fn max_inodes(&self) -> u32 {
        self.inode_blocks * INODES_PER_BLOCK as u32
    }

    /// Payload blocks one journal transaction can carry (the region
    /// minus the descriptor and commit slots).
    pub fn journal_capacity(&self) -> usize {
        (self.journal_blocks as usize).saturating_sub(2)
    }
}

/// FNV-1a over `data` — the journal's integrity check. Not
/// cryptographic; it only needs to catch torn prefixes and stale tail
/// bytes, and it must be dependency-free and deterministic.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The journal descriptor: names the home location and payload checksum
/// of every block the transaction will rewrite.
///
/// On-disk form (all little-endian):
///
/// ```text
/// 0..4        JOURNAL_MAGIC
/// 4..12       sequence number
/// 12..16      entry count n
/// 16..16+16n  n × (home block u64, payload FNV-1a u64)
/// 4088..4096  header checksum over bytes 0..4088
/// ```
///
/// The header checksum lives in the block's final eight bytes, past the
/// longest prefix a torn write can persist, so a tear never forges a
/// valid descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDescriptor {
    /// Transaction sequence number.
    pub seq: u64,
    /// `(home block, payload checksum)` per payload, in journal order.
    pub entries: Vec<(u64, u64)>,
}

impl JournalDescriptor {
    /// Most entries one descriptor block can carry.
    pub const MAX_ENTRIES: usize = (BLOCK_SIZE - 16 - 8) / 16;

    /// Serializes the descriptor, sealing it with the header checksum.
    pub fn encode(&self) -> [u8; BLOCK_SIZE] {
        assert!(self.entries.len() <= Self::MAX_ENTRIES, "descriptor overflow");
        let mut b = [0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&JOURNAL_MAGIC.to_le_bytes());
        b[4..12].copy_from_slice(&self.seq.to_le_bytes());
        b[12..16].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (i, (home, sum)) in self.entries.iter().enumerate() {
            let off = 16 + i * 16;
            b[off..off + 8].copy_from_slice(&home.to_le_bytes());
            b[off + 8..off + 16].copy_from_slice(&sum.to_le_bytes());
        }
        let seal = checksum64(&b[..BLOCK_SIZE - 8]);
        b[BLOCK_SIZE - 8..].copy_from_slice(&seal.to_le_bytes());
        b
    }

    /// Parses a descriptor; `None` when the magic or header checksum
    /// does not hold (unwritten region, torn write, stale bytes).
    pub fn decode(b: &[u8; BLOCK_SIZE]) -> Option<JournalDescriptor> {
        let magic = u32::from_le_bytes(b[0..4].try_into().expect("4 bytes"));
        if magic != JOURNAL_MAGIC {
            return None;
        }
        let seal = u64::from_le_bytes(b[BLOCK_SIZE - 8..].try_into().expect("8 bytes"));
        if seal != checksum64(&b[..BLOCK_SIZE - 8]) {
            return None;
        }
        let seq = u64::from_le_bytes(b[4..12].try_into().expect("8 bytes"));
        let n = u32::from_le_bytes(b[12..16].try_into().expect("4 bytes")) as usize;
        if n > Self::MAX_ENTRIES {
            return None;
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let off = 16 + i * 16;
            entries.push((
                u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes")),
                u64::from_le_bytes(b[off + 8..off + 16].try_into().expect("8 bytes")),
            ));
        }
        Some(JournalDescriptor { seq, entries })
    }

    /// Whether the descriptor block looks like a journal record at all
    /// (magic present), regardless of checksum validity — used to tell
    /// "torn record" apart from "journal never written".
    pub fn has_magic(b: &[u8; BLOCK_SIZE]) -> bool {
        u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")) == JOURNAL_MAGIC
    }

    /// The raw sequence field, readable even from a torn record (it
    /// sits inside the minimum torn prefix), for diagnostics.
    pub fn raw_seq(b: &[u8; BLOCK_SIZE]) -> u64 {
        u64::from_le_bytes(b[4..12].try_into().expect("8 bytes"))
    }
}

/// Serializes a commit block: magic, sequence, the endorsed
/// descriptor's header checksum (so a stale commit block left deep in
/// the journal can never endorse a newer, uncommitted record), and a
/// seal over all of it. The commit's meaningful 28 bytes fit inside the
/// smallest torn prefix, so a commit write is effectively atomic —
/// exactly the property a commit point needs.
pub fn encode_commit(seq: u64, desc_seal: u64) -> [u8; BLOCK_SIZE] {
    let mut b = [0u8; BLOCK_SIZE];
    b[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
    b[4..12].copy_from_slice(&seq.to_le_bytes());
    b[12..20].copy_from_slice(&desc_seal.to_le_bytes());
    let seal = checksum64(&b[..20]);
    b[20..28].copy_from_slice(&seal.to_le_bytes());
    b
}

/// Whether `b` is a valid commit block for sequence `seq` endorsing the
/// descriptor whose header checksum is `desc_seal`.
pub fn decode_commit(b: &[u8; BLOCK_SIZE], seq: u64, desc_seal: u64) -> bool {
    let magic = u32::from_le_bytes(b[0..4].try_into().expect("4 bytes"));
    let got_seq = u64::from_le_bytes(b[4..12].try_into().expect("8 bytes"));
    let got_desc = u64::from_le_bytes(b[12..20].try_into().expect("8 bytes"));
    let seal = u64::from_le_bytes(b[20..28].try_into().expect("8 bytes"));
    magic == COMMIT_MAGIC && got_seq == seq && got_desc == desc_seal && seal == checksum64(&b[..20])
}

/// The header checksum a descriptor block seals itself with — what
/// [`encode_commit`] binds to. Computable from any encoded descriptor.
pub fn descriptor_seal(b: &[u8; BLOCK_SIZE]) -> u64 {
    u64::from_le_bytes(b[BLOCK_SIZE - 8..].try_into().expect("8 bytes"))
}

/// A contiguous run of data blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskExtent {
    /// First block (absolute).
    pub start: u32,
    /// Number of blocks.
    pub len: u32,
}

/// An on-disk inode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Inode {
    /// Whether this slot is allocated.
    pub used: bool,
    /// File name (≤ [`MAX_NAME`] bytes).
    pub name: String,
    /// Logical size in bytes.
    pub size: u64,
    /// The file's extents.
    pub extents: Vec<DiskExtent>,
}

impl Inode {
    /// Total blocks backing this file.
    pub fn block_count(&self) -> u32 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Absolute disk block backing logical block `lbn`, if any.
    pub fn block_of(&self, lbn: u32) -> Option<u32> {
        let mut remaining = lbn;
        for e in &self.extents {
            if remaining < e.len {
                return Some(e.start + remaining);
            }
            remaining -= e.len;
        }
        None
    }

    /// Serializes into an [`INODE_SIZE`]-byte record.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        b[0] = self.used as u8;
        let name = self.name.as_bytes();
        let n = name.len().min(MAX_NAME);
        b[1] = n as u8;
        b[2..2 + n].copy_from_slice(&name[..n]);
        b[72..80].copy_from_slice(&self.size.to_le_bytes());
        b[80] = self.extents.len().min(MAX_EXTENTS) as u8;
        for (i, e) in self.extents.iter().take(MAX_EXTENTS).enumerate() {
            let off = 88 + i * 8;
            b[off..off + 4].copy_from_slice(&e.start.to_le_bytes());
            b[off + 4..off + 8].copy_from_slice(&e.len.to_le_bytes());
        }
        b
    }

    /// Parses an inode record.
    pub fn decode(b: &[u8; INODE_SIZE]) -> Inode {
        let used = b[0] != 0;
        let n = (b[1] as usize).min(MAX_NAME);
        let name = String::from_utf8_lossy(&b[2..2 + n]).into_owned();
        let size = u64::from_le_bytes(b[72..80].try_into().expect("8 bytes"));
        let count = (b[80] as usize).min(MAX_EXTENTS);
        let mut extents = Vec::with_capacity(count);
        for i in 0..count {
            let off = 88 + i * 8;
            extents.push(DiskExtent {
                start: u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes")),
                len: u32::from_le_bytes(b[off + 4..off + 8].try_into().expect("4 bytes")),
            });
        }
        Inode { used, name, size, extents }
    }
}

/// An in-memory view of the allocation bitmap.
#[derive(Debug, Clone)]
pub struct Bitmap {
    bits: Vec<u8>,
    blocks: u32,
}

impl Bitmap {
    /// An all-free bitmap covering `blocks` data blocks.
    pub fn new(blocks: u32) -> Bitmap {
        Bitmap { bits: vec![0; (blocks as usize).div_ceil(8)], blocks }
    }

    /// Rebuilds a bitmap from its on-disk bytes.
    pub fn from_bytes(bytes: Vec<u8>, blocks: u32) -> Bitmap {
        Bitmap { bits: bytes, blocks }
    }

    /// The raw bytes (for writing back to disk).
    pub fn bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Whether block `b` is allocated.
    pub fn is_set(&self, b: u32) -> bool {
        self.bits[b as usize / 8] & (1 << (b % 8)) != 0
    }

    /// Marks block `b` allocated.
    pub fn set(&mut self, b: u32) {
        self.bits[b as usize / 8] |= 1 << (b % 8);
    }

    /// Marks block `b` free.
    pub fn clear(&mut self, b: u32) {
        self.bits[b as usize / 8] &= !(1 << (b % 8));
    }

    /// First-fit search for `len` contiguous free blocks; returns the
    /// starting block, or `None` when no run is long enough.
    pub fn find_run(&self, len: u32) -> Option<u32> {
        let mut run_start = 0u32;
        let mut run_len = 0u32;
        for b in 0..self.blocks {
            if self.is_set(b) {
                run_len = 0;
                run_start = b + 1;
            } else {
                run_len += 1;
                if run_len == len {
                    return Some(run_start);
                }
            }
        }
        None
    }

    /// Number of free blocks.
    pub fn free_count(&self) -> u32 {
        (0..self.blocks).filter(|b| !self.is_set(*b)).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_round_trip() {
        let sb = SuperBlock::for_volume(65_536, 64);
        let back = SuperBlock::decode(&sb.encode()).unwrap();
        assert_eq!(sb, back);
        assert!(sb.max_inodes() >= 64);
        assert!(sb.data_start > sb.inode_blocks);
    }

    #[test]
    fn superblock_reserves_a_journal_region() {
        let sb = SuperBlock::for_volume(65_536, 64);
        assert_eq!(sb.journal_start, 1 + sb.inode_blocks + sb.bitmap_blocks);
        assert_eq!(sb.data_start, sb.journal_start + sb.journal_blocks);
        assert!(sb.journal_blocks >= MIN_JOURNAL_BLOCKS);
        assert!(sb.journal_blocks <= MAX_JOURNAL_BLOCKS);
        assert_eq!(sb.journal_capacity(), sb.journal_blocks as usize - 2);
        // Tiny volumes still get the floor.
        assert_eq!(SuperBlock::for_volume(64, 16).journal_blocks, MIN_JOURNAL_BLOCKS);
    }

    #[test]
    fn journal_descriptor_round_trip() {
        let d = JournalDescriptor { seq: 42, entries: vec![(7, 0xDEAD), (9, 0xBEEF)] };
        let b = d.encode();
        assert!(JournalDescriptor::has_magic(&b));
        assert_eq!(JournalDescriptor::raw_seq(&b), 42);
        assert_eq!(JournalDescriptor::decode(&b).unwrap(), d);
    }

    #[test]
    fn torn_descriptor_fails_its_seal() {
        let d = JournalDescriptor { seq: 1, entries: vec![(100, checksum64(b"payload"))] };
        let mut b = d.encode();
        // A torn write persists a prefix over stale bytes: clobber the
        // tail (where the seal lives) with garbage.
        for byte in &mut b[2048..] {
            *byte = 0xAA;
        }
        assert!(JournalDescriptor::decode(&b).is_none());
        assert!(JournalDescriptor::has_magic(&b), "the prefix still looks journal-ish");
    }

    #[test]
    fn commit_block_binds_to_sequence_and_descriptor() {
        let d = JournalDescriptor { seq: 7, entries: vec![(3, 0x1234)] };
        let seal = descriptor_seal(&d.encode());
        let b = encode_commit(7, seal);
        assert!(decode_commit(&b, 7, seal));
        assert!(!decode_commit(&b, 8, seal), "a stale commit must not endorse a newer seq");
        assert!(
            !decode_commit(&b, 7, seal ^ 1),
            "a stale commit must not endorse a different descriptor"
        );
        assert!(!decode_commit(&[0u8; BLOCK_SIZE], 7, seal));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum64(b"vino"), checksum64(b"vino"));
        assert_ne!(checksum64(b"vino"), checksum64(b"vinO"));
        assert_ne!(checksum64(&[0u8; 4096]), 0, "all-zero block must not seal as zero");
    }

    #[test]
    fn superblock_bad_magic_rejected() {
        let mut b = SuperBlock::for_volume(1024, 16).encode();
        b[0] = 0;
        assert!(SuperBlock::decode(&b).is_none());
    }

    #[test]
    fn inode_round_trip() {
        let ino = Inode {
            used: true,
            name: "database.db".to_string(),
            size: 12 * 1024 * 1024,
            extents: vec![
                DiskExtent { start: 100, len: 2000 },
                DiskExtent { start: 5000, len: 1072 },
            ],
        };
        let back = Inode::decode(&ino.encode());
        assert_eq!(ino, back);
        assert_eq!(back.block_count(), 3072);
    }

    #[test]
    fn inode_block_mapping_across_extents() {
        let ino = Inode {
            used: true,
            name: "f".into(),
            size: 0,
            extents: vec![DiskExtent { start: 10, len: 3 }, DiskExtent { start: 100, len: 2 }],
        };
        assert_eq!(ino.block_of(0), Some(10));
        assert_eq!(ino.block_of(2), Some(12));
        assert_eq!(ino.block_of(3), Some(100));
        assert_eq!(ino.block_of(4), Some(101));
        assert_eq!(ino.block_of(5), None);
    }

    #[test]
    fn inode_name_truncated_to_max() {
        let long = "x".repeat(200);
        let ino = Inode { used: true, name: long, size: 0, extents: vec![] };
        let back = Inode::decode(&ino.encode());
        assert_eq!(back.name.len(), MAX_NAME);
    }

    #[test]
    fn bitmap_set_clear_find() {
        let mut bm = Bitmap::new(64);
        assert_eq!(bm.free_count(), 64);
        bm.set(0);
        bm.set(1);
        bm.set(5);
        assert_eq!(bm.find_run(3), Some(2), "first fit skips the 2-run at 2..4? no: 2,3,4 free");
        assert_eq!(bm.find_run(60), None);
        bm.clear(0);
        assert!(!bm.is_set(0));
        assert_eq!(bm.free_count(), 62);
    }

    #[test]
    fn bitmap_run_at_start_and_end() {
        let mut bm = Bitmap::new(16);
        assert_eq!(bm.find_run(16), Some(0));
        for b in 0..15 {
            bm.set(b);
        }
        assert_eq!(bm.find_run(1), Some(15));
        bm.set(15);
        assert_eq!(bm.find_run(1), None);
    }

    #[test]
    fn bitmap_bytes_round_trip() {
        let mut bm = Bitmap::new(32);
        bm.set(7);
        bm.set(31);
        let back = Bitmap::from_bytes(bm.bytes().to_vec(), 32);
        assert!(back.is_set(7));
        assert!(back.is_set(31));
        assert!(!back.is_set(8));
    }
}

//! The buffer cache, with asynchronous-completion modelling.
//!
//! Each cached block carries a `ready_at` timestamp. Synchronous reads
//! are ready immediately (the caller already paid the disk latency);
//! prefetched blocks become ready when the simulated disk arm gets to
//! them, on a separate *disk-busy* timeline that overlaps the caller's
//! computation. A later reader that arrives after `ready_at` hits for
//! free — the entire benefit case of the §4.1 read-ahead analysis — and
//! one that arrives early waits only for the remainder.

use std::collections::HashMap;

use std::rc::Rc;
use vino_dev::disk::{BlockAddr, Disk};
use vino_sim::{Cycles, VirtualClock};

/// Cost of a buffer-cache lookup hit (hash probe plus LRU bump).
pub const CACHE_HIT_COST: Cycles = Cycles(60);

/// Outcome of a prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// An I/O was issued on the disk-busy timeline.
    Issued,
    /// The block is already cached; nothing to do.
    AlreadyCached,
    /// The read-ahead quota is exhausted; the caller should keep the
    /// request queued and retry later (§4.1.2's "as memory becomes
    /// available").
    NoRoom,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a ready block.
    pub hits: u64,
    /// Lookups that found a block still in flight (partial wait).
    pub late_hits: u64,
    /// Lookups that went to disk synchronously.
    pub misses: u64,
    /// Prefetch I/Os issued.
    pub prefetches: u64,
    /// Prefetched blocks that were evicted unread (wasted I/O).
    pub prefetch_waste: u64,
}

#[derive(Debug)]
struct Entry {
    data: [u8; 4096],
    ready_at: Cycles,
    /// For waste accounting: true until first read after prefetch.
    prefetched_unread: bool,
    /// LRU stamp.
    stamp: u64,
}

/// A fixed-capacity LRU buffer cache over the simulated disk.
#[derive(Debug)]
pub struct BufferCache {
    clock: Rc<VirtualClock>,
    capacity: usize,
    /// Maximum buffers that may hold prefetched-but-unread blocks at
    /// once. This is the mechanism that stops a 100 MB `compute-ra`
    /// request from stealing all of memory (§4.1.2): read-ahead may
    /// recycle LRU buffers, but only up to this footprint.
    prefetch_quota: usize,
    entries: HashMap<BlockAddr, Entry>,
    tick: u64,
    /// When the disk arm becomes free for background work.
    disk_busy_until: Cycles,
    stats: CacheStats,
}

impl BufferCache {
    /// Creates a cache holding at most `capacity` blocks.
    pub fn new(clock: Rc<VirtualClock>, capacity: usize) -> BufferCache {
        assert!(capacity > 0, "cache needs at least one buffer");
        BufferCache {
            clock,
            capacity,
            prefetch_quota: (capacity / 4).max(1),
            entries: HashMap::new(),
            tick: 0,
            disk_busy_until: Cycles::ZERO,
            stats: CacheStats::default(),
        }
    }

    /// Buffers currently holding prefetched-but-unread blocks.
    pub fn prefetched_unread(&self) -> usize {
        self.entries.values().filter(|e| e.prefetched_unread).count()
    }

    /// The read-ahead footprint bound.
    pub fn prefetch_quota(&self) -> usize {
        self.prefetch_quota
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free buffer slots — the "memory available for read-ahead" that
    /// gates prefetch-queue draining (§4.1.2).
    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len().min(self.capacity)
    }

    /// Drops every cached block and rewinds the LRU clock and the
    /// disk-busy timeline to their fresh-boot values. Part of the
    /// checkpoint quiesce: a restored kernel starts with a cold cache,
    /// so the capture side must go cold at the same instant for the two
    /// runs to stay byte-identical. Stats are left in place (they are
    /// monotone diagnostics, not replayed state).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.disk_busy_until = Cycles::ZERO;
    }

    /// Reads `addr` through the cache, charging the caller's clock for
    /// hit cost, residual prefetch wait, or a full synchronous I/O.
    pub fn read(&mut self, disk: &mut Disk, addr: BlockAddr) -> [u8; 4096] {
        self.tick += 1;
        let tick = self.tick;
        let now = self.clock.now();
        if let Some(e) = self.entries.get_mut(&addr) {
            e.stamp = tick;
            e.prefetched_unread = false;
            if e.ready_at <= now {
                self.stats.hits += 1;
                self.clock.charge(CACHE_HIT_COST);
            } else {
                // In flight: wait out the remainder — the prefetch
                // started early, so the wait is shorter than a full I/O.
                self.stats.late_hits += 1;
                let ready = e.ready_at;
                self.clock.advance_to(ready);
                self.clock.charge(CACHE_HIT_COST);
            }
            return self.entries[&addr].data;
        }
        // Miss: synchronous disk read, full mechanical latency. The arm
        // is shared with background prefetch: wait for it if busy.
        self.stats.misses += 1;
        if self.disk_busy_until > now {
            self.clock.advance_to(self.disk_busy_until);
        }
        let data = disk.read(addr);
        self.disk_busy_until = self.clock.now();
        self.insert(addr, data, self.clock.now(), false);
        data
    }

    /// Issues a background prefetch of `addr` unless the block is
    /// already cached or the read-ahead quota is exhausted. Prefetch
    /// may recycle LRU buffers, but at most [`Self::prefetch_quota`]
    /// buffers hold unread prefetched data at any moment — the §4.1.2
    /// bound. The caller's clock is *not* charged — the I/O runs on the
    /// disk-busy timeline.
    pub fn prefetch(&mut self, disk: &mut Disk, addr: BlockAddr) -> PrefetchOutcome {
        if self.entries.contains_key(&addr) {
            return PrefetchOutcome::AlreadyCached;
        }
        if self.prefetched_unread() >= self.prefetch_quota {
            return PrefetchOutcome::NoRoom;
        }
        let (data, cost) = disk.read_with_cost(addr);
        let start = self.disk_busy_until.max(self.clock.now());
        let ready = start + cost;
        self.disk_busy_until = ready;
        self.insert(addr, data, ready, true);
        self.stats.prefetches += 1;
        PrefetchOutcome::Issued
    }

    /// Writes `addr` through the cache to disk (write-through).
    pub fn write(&mut self, disk: &mut Disk, addr: BlockAddr, data: &[u8; 4096]) {
        self.tick += 1;
        disk.write(addr, data);
        let stamp = self.tick;
        match self.entries.get_mut(&addr) {
            Some(e) => {
                e.data = *data;
                e.ready_at = self.clock.now();
                e.stamp = stamp;
                e.prefetched_unread = false;
            }
            None => self.insert(addr, *data, self.clock.now(), false),
        }
    }

    /// Drops a block from the cache (used by tests and invalidation).
    pub fn invalidate(&mut self, addr: BlockAddr) {
        if let Some(e) = self.entries.remove(&addr) {
            if e.prefetched_unread {
                self.stats.prefetch_waste += 1;
            }
        }
    }

    fn insert(&mut self, addr: BlockAddr, data: [u8; 4096], ready_at: Cycles, prefetched: bool) {
        while self.entries.len() >= self.capacity {
            // Evict the LRU entry.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(a, _)| *a)
                .expect("nonempty");
            self.invalidate(victim);
        }
        self.tick += 1;
        self.entries.insert(
            addr,
            Entry { data, ready_at, prefetched_unread: prefetched, stamp: self.tick },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cap: usize) -> (BufferCache, Disk, Rc<VirtualClock>) {
        let clock = VirtualClock::new();
        let cache = BufferCache::new(Rc::clone(&clock), cap);
        let disk = Disk::new(Rc::clone(&clock));
        (cache, disk, clock)
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut d, clock) = setup(4);
        let mut data = [0u8; 4096];
        data[0] = 7;
        d.write(BlockAddr(3), &data);
        let t0 = clock.now();
        let r1 = c.read(&mut d, BlockAddr(3));
        let miss_cost = clock.since(t0);
        assert_eq!(r1[0], 7);
        let t1 = clock.now();
        let r2 = c.read(&mut d, BlockAddr(3));
        let hit_cost = clock.since(t1);
        assert_eq!(r2[0], 7);
        assert_eq!(hit_cost, CACHE_HIT_COST);
        assert!(miss_cost.get() > hit_cost.get() * 100, "miss {miss_cost} vs hit {hit_cost}");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn prefetch_overlaps_computation() {
        // The §4.1.1 benefit model: prefetch block B, compute for longer
        // than the I/O takes, then read B for (almost) free.
        let (mut c, mut d, clock) = setup(8);
        c.prefetch(&mut d, BlockAddr(1000));
        assert_eq!(c.stats().prefetches, 1);
        // "Compute" for 100 ms — far longer than one I/O.
        clock.charge(Cycles::from_ms(100));
        let t0 = clock.now();
        c.read(&mut d, BlockAddr(1000));
        assert_eq!(clock.since(t0), CACHE_HIT_COST, "fully overlapped prefetch is a free hit");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn early_read_waits_only_remainder() {
        let (mut c, mut d, clock) = setup(8);
        c.prefetch(&mut d, BlockAddr(1000));
        // Compute only 1 ms; the I/O (several ms) is still in flight.
        clock.charge(Cycles::from_ms(1));
        let t0 = clock.now();
        c.read(&mut d, BlockAddr(1000));
        let wait = clock.since(t0);
        // Strictly less than a cold random I/O would have been, and
        // nonzero because we arrived early.
        assert!(wait.get() > CACHE_HIT_COST.get());
        assert!(wait.as_ms() < 25.0);
        assert_eq!(c.stats().late_hits, 1);
    }

    #[test]
    fn prefetch_respects_quota() {
        let (mut c, mut d, _) = setup(8); // Quota: 2.
        assert_eq!(c.prefetch(&mut d, BlockAddr(1)), PrefetchOutcome::Issued);
        assert_eq!(c.prefetch(&mut d, BlockAddr(2)), PrefetchOutcome::Issued);
        // Quota full: request refused, queue stays with the caller.
        assert_eq!(c.prefetch(&mut d, BlockAddr(3)), PrefetchOutcome::NoRoom);
        assert_eq!(c.stats().prefetches, 2);
        // Consuming a prefetched block frees quota.
        c.read(&mut d, BlockAddr(1));
        assert_eq!(c.prefetch(&mut d, BlockAddr(3)), PrefetchOutcome::Issued);
    }

    #[test]
    fn prefetch_dedupes() {
        let (mut c, mut d, _) = setup(4);
        assert_eq!(c.prefetch(&mut d, BlockAddr(1)), PrefetchOutcome::Issued);
        assert_eq!(c.prefetch(&mut d, BlockAddr(1)), PrefetchOutcome::AlreadyCached);
    }

    #[test]
    fn lru_eviction_and_waste_accounting() {
        let (mut c, mut d, _) = setup(2);
        c.prefetch(&mut d, BlockAddr(1)); // Never read: waste when evicted.
        c.read(&mut d, BlockAddr(2));
        c.read(&mut d, BlockAddr(3)); // Evicts LRU = block 1.
        assert_eq!(c.stats().prefetch_waste, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.prefetched_unread(), 0);
    }

    #[test]
    fn write_through_updates_cache_and_disk() {
        let (mut c, mut d, _) = setup(4);
        let mut data = [0u8; 4096];
        data[10] = 42;
        c.write(&mut d, BlockAddr(5), &data);
        // Cache hit returns new data.
        assert_eq!(c.read(&mut d, BlockAddr(5))[10], 42);
        // Disk has it too.
        assert_eq!(d.read(BlockAddr(5))[10], 42);
    }

    #[test]
    fn sync_read_waits_for_busy_arm() {
        let (mut c, mut d, clock) = setup(8);
        // Queue a prefetch to a far block: the arm is busy for a while.
        c.prefetch(&mut d, BlockAddr(60_000));
        let busy_until = c.disk_busy_until;
        assert!(busy_until > clock.now());
        // A synchronous miss must wait for the arm first.
        let t0 = clock.now();
        c.read(&mut d, BlockAddr(500));
        assert!(clock.now() >= busy_until, "sync read waited for the arm");
        assert!(clock.since(t0) > Cycles::ZERO);
    }
}

//! The VINO file system: a block FS with a buffer cache, per-file
//! prefetch queues, and a graftable read-ahead (`compute-ra`) policy.
//!
//! §4.1.2: "Whenever a user issues a read request, the corresponding
//! method on the open-file handles the read, and then calls its
//! compute-ra method to determine which (if any) additional file blocks
//! should be prefetched. This function is passed a descriptor describing
//! the offset and size of the current read request, and is allowed to
//! provide a list of additional file extents that should be prefetched.
//! These prefetch requests are passed to the underlying file system
//! where they are added to a per-file prefetch queue. The file system
//! removes prefetch requests from this queue and issues them to the I/O
//! system as memory becomes available for read-ahead."
//!
//! The default policy prefetches only on detected sequential access
//! (§4.1.2); applications replace it by grafting a new `compute-ra`
//! function onto their open-file object.
//!
//! Modules: [`layout`] (on-disk structures), [`cache`] (the buffer
//! cache, with asynchronous-completion modelling so prefetch overlaps
//! computation), [`fs`] (the file system proper and the open-file
//! objects with the `compute-ra` hook).

pub mod cache;
pub mod fs;
pub mod layout;

pub use cache::{BufferCache, CacheStats};
pub use fs::{
    Extent, Fd, FileSystem, FsError, FsStats, IngestOutcome, JournalRecord, RaRequest,
    ReadAheadDelegate, RecoveryReport,
};
pub use layout::{Inode, JournalDescriptor, SuperBlock, BLOCK_SIZE};

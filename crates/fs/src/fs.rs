//! The file system proper: volumes, files, open-file objects and the
//! graftable `compute-ra` read-ahead policy.
//!
//! "In VINO, application level file descriptors are handles for kernel
//! level open-file objects. Traditional file-related system calls are
//! translated to method invocations on the appropriate open-file"
//! (§4.1.2). The open-file object is where the read-ahead graft hangs.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use vino_dev::disk::{BlockAddr, Disk, DiskImage};
use vino_sim::fault::{FaultPlane, FaultSite};
use vino_sim::trace::SpanId;
use vino_sim::{Cycles, VirtualClock};

use crate::cache::BufferCache;
use crate::layout::{
    checksum64, decode_commit, descriptor_seal, encode_commit, Bitmap, DiskExtent, Inode,
    JournalDescriptor, SuperBlock, BLOCK_SIZE, INODES_PER_BLOCK, INODE_SIZE, MAX_EXTENTS, MAX_NAME,
};

/// A handle to an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u64);

/// File-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file by that name.
    NotFound(String),
    /// A file by that name already exists.
    Exists(String),
    /// The name exceeds the inode's capacity.
    NameTooLong,
    /// Free space exists but not in few enough contiguous runs.
    TooFragmented,
    /// Not enough free blocks.
    NoSpace,
    /// All inode slots are in use.
    VolumeFull,
    /// Unknown descriptor.
    BadFd(Fd),
    /// A read or write extends past end-of-file.
    PastEof,
    /// The volume's superblock is missing or corrupt.
    BadVolume,
    /// Power died mid-operation (an injected kernel crash). The mounted
    /// instance is dead; the surviving disk image must be remounted and
    /// recovered.
    PowerFailure,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(n) => write!(f, "no such file: {n}"),
            FsError::Exists(n) => write!(f, "file exists: {n}"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::TooFragmented => write!(f, "free space too fragmented"),
            FsError::NoSpace => write!(f, "no space on volume"),
            FsError::VolumeFull => write!(f, "inode table full"),
            FsError::BadFd(fd) => write!(f, "bad file descriptor {fd:?}"),
            FsError::PastEof => write!(f, "access past end of file"),
            FsError::BadVolume => write!(f, "not a VINO volume"),
            FsError::PowerFailure => write!(f, "power failure: kernel crashed mid-operation"),
        }
    }
}

impl std::error::Error for FsError {}

/// The descriptor passed to `compute-ra`: "a descriptor describing the
/// offset and size of the current read request" (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaRequest {
    /// Byte offset of the read just performed.
    pub offset: u64,
    /// Byte length of the read.
    pub len: u64,
    /// Whether this read sequentially followed the previous one.
    pub sequential: bool,
    /// File size, so policies can avoid requesting past EOF.
    pub file_size: u64,
}

/// A file extent (byte-addressed) that a read-ahead policy asks to have
/// prefetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset within the file.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
}

/// The `compute-ra` hook (§4.1.2). The grafting layer implements this by
/// running the grafted GraftVM function; the default sequential policy
/// and tests implement it natively.
pub trait ReadAheadDelegate {
    /// Returns the extents to queue for prefetch after a read.
    fn compute_ra(&mut self, req: &RaRequest) -> Vec<Extent>;
}

impl<F: FnMut(&RaRequest) -> Vec<Extent>> ReadAheadDelegate for F {
    fn compute_ra(&mut self, req: &RaRequest) -> Vec<Extent> {
        self(req)
    }
}

/// File-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Read operations served.
    pub reads: u64,
    /// Write operations served.
    pub writes: u64,
    /// `compute-ra` invocations that went to a grafted policy.
    pub ra_graft_calls: u64,
    /// Prefetch extents accepted into queues.
    pub ra_accepted: u64,
    /// Prefetch extents rejected by validation (past EOF, zero-length).
    pub ra_rejected: u64,
    /// Prefetch I/Os issued from queues.
    pub prefetches_issued: u64,
}

struct OpenFile {
    inode_idx: usize,
    /// End offset of the previous read, for sequential detection.
    last_end: Option<u64>,
    /// The per-file prefetch queue (§4.1.2), in logical block numbers.
    prefetch_q: VecDeque<u32>,
    ra: Option<Box<dyn ReadAheadDelegate>>,
}

/// What mount-time recovery found and did. Deterministic for a given
/// disk image, so same-seed crash/recover runs compare equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal blocks examined.
    pub scanned_blocks: u64,
    /// Committed transactions rolled forward.
    pub replayed_txns: u64,
    /// Home-location blocks rewritten by replay.
    pub replayed_blocks: u64,
    /// Torn (uncommitted) journal tails discarded.
    pub discarded_txns: u64,
    /// The next journal sequence number after recovery.
    pub next_seq: u64,
}

/// One committed journal transaction, retained in memory for
/// replication shipping: the home addresses with their payload
/// checksums (exactly the descriptor's entry table), plus the payload
/// blocks themselves. [`FileSystem::committed_records`] tails these in
/// sequence order; a replica applies them via
/// [`FileSystem::ingest_replicated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The transaction's journal sequence number.
    pub seq: u64,
    /// `(home block, payload checksum)` pairs, in journal order.
    pub entries: Vec<(u64, u64)>,
    /// Payload blocks, parallel to `entries`.
    pub payloads: Vec<[u8; BLOCK_SIZE]>,
}

/// Outcome of [`FileSystem::ingest_replicated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The record was journalled and checkpointed at its sequence.
    Applied {
        /// Home blocks rewritten.
        blocks: u64,
    },
    /// The record's sequence was already applied; nothing was done.
    Duplicate,
    /// The record skips ahead of the next expected sequence; the
    /// shipper must retransmit the gap first.
    Gap {
        /// The sequence this replica expects next.
        expected: u64,
    },
}

/// A recovery action noted before observability planes were attached,
/// replayed into them at attach time (recovery runs at mount, which
/// precedes plane wiring in the kernel boot sequence).
#[derive(Debug, Clone, Copy)]
enum RecoveryNote {
    Replay { seq: u64, blocks: u64 },
    Discard { seq: u64 },
}

/// Bound on a per-file prefetch queue: "if a graft of the compute-ra
/// function asks for 100MB to be prefetched, it will not steal all of
/// the system's memory pages. Instead, the 100MB will be prefetched in
/// order, as pages become available" (§4.1.2). The queue holds the
/// not-yet-issued tail.
pub const MAX_PREFETCH_QUEUE: usize = 4096;

/// The mounted file system.
pub struct FileSystem {
    clock: Rc<VirtualClock>,
    disk: Disk,
    cache: BufferCache,
    sb: SuperBlock,
    inodes: Vec<Inode>,
    bitmap: Bitmap,
    open: HashMap<Fd, OpenFile>,
    next_fd: u64,
    stats: FsStats,
    trace: Option<Rc<vino_sim::trace::TracePlane>>,
    metrics: Option<Rc<vino_sim::metrics::MetricsPlane>>,
    profile: Option<Rc<vino_sim::profile::ProfilePlane>>,
    watch: Option<Rc<vino_sim::watch::WatchPlane>>,
    fault: Option<Rc<FaultPlane>>,
    /// Power died: every subsequent operation fails with
    /// [`FsError::PowerFailure`].
    halted: bool,
    /// Next journal transaction sequence number.
    next_seq: u64,
    /// Committed journal records retained for replication shipping,
    /// sequence-ordered. Pruned by cumulative acks
    /// ([`prune_committed`](Self::prune_committed)).
    committed: Vec<JournalRecord>,
    /// Highest committed sequence ever retained (survives pruning).
    last_committed: u64,
    /// Per-sequence seal spans: the causal span minted at each
    /// `fs.journal_commit` plus the commit's virtual-clock stamp, kept
    /// while the record is retained for shipping so the replication
    /// layer can chain ship spans (and age the lag gauge) off the seal.
    seal_spans: BTreeMap<u64, (SpanId, Cycles)>,
    /// What mount-time recovery found on this volume.
    recovery: Option<RecoveryReport>,
    /// Recovery actions awaiting a trace / metrics plane.
    pending_trace: Vec<RecoveryNote>,
    pending_metrics: Vec<RecoveryNote>,
}

impl FileSystem {
    /// Formats `disk` and mounts the fresh volume. `cache_blocks` sizes
    /// the buffer cache; `max_files` sizes the inode table.
    pub fn format(
        clock: Rc<VirtualClock>,
        mut disk: Disk,
        cache_blocks: usize,
        max_files: u32,
    ) -> FileSystem {
        let sb = SuperBlock::for_volume(disk.block_count() as u32, max_files);
        disk.write(BlockAddr(0), &sb.encode());
        let zero = [0u8; BLOCK_SIZE];
        for b in 1..sb.data_start {
            disk.write(BlockAddr(b as u64), &zero);
        }
        let data_blocks = sb.total_blocks - sb.data_start;
        FileSystem {
            cache: BufferCache::new(Rc::clone(&clock), cache_blocks),
            clock,
            disk,
            inodes: vec![Inode::default(); sb.max_inodes() as usize],
            bitmap: Bitmap::new(data_blocks),
            sb,
            open: HashMap::new(),
            next_fd: 3,
            stats: FsStats::default(),
            trace: None,
            metrics: None,
            profile: None,
            watch: None,
            fault: None,
            halted: false,
            next_seq: 1,
            committed: Vec::new(),
            last_committed: 0,
            seal_spans: BTreeMap::new(),
            recovery: None,
            pending_trace: Vec::new(),
            pending_metrics: Vec::new(),
        }
    }

    /// Mounts an existing volume: runs journal recovery
    /// ([`FileSystem::recover`]) over the raw disk, then rebuilds
    /// in-memory metadata from the recovered blocks.
    pub fn mount(
        clock: Rc<VirtualClock>,
        mut disk: Disk,
        cache_blocks: usize,
    ) -> Result<FileSystem, FsError> {
        let sb = SuperBlock::decode(&disk.read(BlockAddr(0))).ok_or(FsError::BadVolume)?;
        let data_blocks = sb.total_blocks - sb.data_start;
        let mut fs = FileSystem {
            cache: BufferCache::new(Rc::clone(&clock), cache_blocks),
            clock,
            disk,
            inodes: Vec::new(),
            bitmap: Bitmap::new(data_blocks),
            sb,
            open: HashMap::new(),
            next_fd: 3,
            stats: FsStats::default(),
            trace: None,
            metrics: None,
            profile: None,
            watch: None,
            fault: None,
            halted: false,
            next_seq: 1,
            committed: Vec::new(),
            last_committed: 0,
            seal_spans: BTreeMap::new(),
            recovery: None,
            pending_trace: Vec::new(),
            pending_metrics: Vec::new(),
        };
        fs.recover();
        Ok(fs)
    }

    /// Scans the journal and restores crash consistency: a committed
    /// transaction (valid descriptor, payload checksums, commit block)
    /// is rolled forward to its home locations; a torn tail is
    /// discarded. In-memory metadata is rebuilt from the recovered
    /// blocks afterwards, so this is safe — and idempotent — to call on
    /// a mounted volume. [`FileSystem::mount`] calls it automatically.
    pub fn recover(&mut self) -> RecoveryReport {
        let mut report = self.scan_and_replay();
        report.next_seq = self.next_seq;
        self.reload_metadata();
        self.recovery = Some(report);
        report
    }

    /// The journal-recovery pass: validate, then roll forward or
    /// discard. See `docs/RECOVERY.md` for the decision table.
    fn scan_and_replay(&mut self) -> RecoveryReport {
        let js = self.sb.journal_start as u64;
        let mut report = RecoveryReport::default();
        let desc_block = self.disk.read(BlockAddr(js));
        report.scanned_blocks += 1;
        let Some(desc) = JournalDescriptor::decode(&desc_block) else {
            if JournalDescriptor::has_magic(&desc_block) {
                // Torn descriptor: the record began but its seal never
                // made it — discard. The raw sequence field survives
                // any tear (it sits inside the minimum torn prefix).
                let seq = JournalDescriptor::raw_seq(&desc_block);
                self.next_seq = self.next_seq.max(seq.wrapping_add(1));
                self.discard_tail(seq, &mut report);
            }
            return report;
        };
        let seq = desc.seq;
        self.next_seq = self.next_seq.max(seq + 1);
        let n = desc.entries.len();
        let mut payloads = Vec::with_capacity(n);
        let mut valid = n <= self.sb.journal_capacity();
        if valid {
            for (i, (_home, sum)) in desc.entries.iter().enumerate() {
                let b = self.disk.read(BlockAddr(js + 1 + i as u64));
                report.scanned_blocks += 1;
                if checksum64(&b) != *sum {
                    valid = false;
                    break;
                }
                payloads.push(b);
            }
        }
        if valid {
            let commit = self.disk.read(BlockAddr(js + 1 + n as u64));
            report.scanned_blocks += 1;
            valid = decode_commit(&commit, seq, descriptor_seal(&desc.encode()));
        }
        if !valid {
            self.discard_tail(seq, &mut report);
            return report;
        }
        // Committed: roll the whole transaction forward. Replay is
        // idempotent redo — rewriting an already-checkpointed block
        // with the same bytes is harmless, so recovery itself can crash
        // and re-run.
        for ((home, _sum), data) in desc.entries.iter().zip(&payloads) {
            self.disk.write(BlockAddr(*home), data);
            self.cache.invalidate(BlockAddr(*home));
        }
        report.replayed_txns += 1;
        report.replayed_blocks += n as u64;
        self.retain_committed(JournalRecord { seq, entries: desc.entries.clone(), payloads });
        self.note_recovery(RecoveryNote::Replay { seq, blocks: n as u64 });
        report
    }

    /// Invalidates a torn journal record so later mounts see an empty
    /// journal rather than re-discarding the same tail.
    fn discard_tail(&mut self, seq: u64, report: &mut RecoveryReport) {
        self.disk.write(BlockAddr(self.sb.journal_start as u64), &[0u8; BLOCK_SIZE]);
        report.discarded_txns += 1;
        self.note_recovery(RecoveryNote::Discard { seq });
    }

    /// Emits a recovery action to the attached planes, or parks it for
    /// attach-time flushing (recovery runs before planes are wired).
    fn note_recovery(&mut self, note: RecoveryNote) {
        match &self.trace {
            Some(tp) => tp.emit(recovery_trace_event(note)),
            None => self.pending_trace.push(note),
        }
        match &self.metrics {
            Some(mp) => mp.inc(recovery_counter(note)),
            None => self.pending_metrics.push(note),
        }
    }

    /// Rebuilds in-memory inode table and allocation bitmap from disk.
    fn reload_metadata(&mut self) {
        let sb = self.sb;
        let mut inodes = Vec::with_capacity(sb.max_inodes() as usize);
        for b in 0..sb.inode_blocks {
            let block = self.disk.read(BlockAddr(1 + b as u64));
            for i in 0..INODES_PER_BLOCK {
                let rec: [u8; INODE_SIZE] =
                    block[i * INODE_SIZE..(i + 1) * INODE_SIZE].try_into().expect("exact");
                inodes.push(Inode::decode(&rec));
            }
        }
        let data_blocks = sb.total_blocks - sb.data_start;
        let mut bytes = Vec::new();
        for b in 0..sb.bitmap_blocks {
            bytes.extend_from_slice(&self.disk.read(BlockAddr((1 + sb.inode_blocks + b) as u64)));
        }
        bytes.truncate((data_blocks as usize).div_ceil(8));
        self.inodes = inodes;
        self.bitmap = Bitmap::from_bytes(bytes, data_blocks);
    }

    /// Counters.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Disk counters.
    pub fn disk_stats(&self) -> vino_dev::disk::DiskStats {
        self.disk.stats()
    }

    /// Attaches a fault plane to the underlying disk (injected media
    /// errors, stalls and torn writes) and to the file system's own
    /// crash points (the `KernelCrash*` site family; see
    /// Payload blocks one journal transaction can carry. Writes wider
    /// than this split into multiple transactions — each atomic on its
    /// own, so a crash between chunks leaves a clean prefix durable
    /// (the journal-full backpressure contract; see `journal_txn`).
    pub fn journal_capacity(&self) -> usize {
        self.sb.journal_capacity()
    }

    /// `vino_sim::fault` and `docs/RECOVERY.md`).
    pub fn set_fault_plane(&mut self, plane: Rc<vino_sim::fault::FaultPlane>) {
        self.disk.set_fault_plane(Rc::clone(&plane));
        self.fault = Some(plane);
    }

    /// Wires a trace plane: served reads/writes, issued prefetches and
    /// journal/checkpoint/recovery steps emit `fs.*` events (see
    /// `docs/TRACING.md`). Recovery actions from mount (which precedes
    /// plane wiring) are flushed retroactively here.
    pub fn set_trace_plane(&mut self, plane: Rc<vino_sim::trace::TracePlane>) {
        for note in self.pending_trace.drain(..) {
            plane.emit(recovery_trace_event(note));
        }
        self.trace = Some(plane);
    }

    /// Wires a metrics plane: reads/writes/prefetches and
    /// journal/recovery steps bump their counters, the underlying disk
    /// ticks its `vino_disk_*` series, and the `compute-ra` dispatch
    /// indirection cost is attributed to the graft it dispatches (see
    /// `docs/METRICS.md`). Recovery actions from mount are flushed
    /// retroactively here.
    pub fn set_metrics_plane(&mut self, plane: Rc<vino_sim::metrics::MetricsPlane>) {
        for note in self.pending_metrics.drain(..) {
            plane.inc(recovery_counter(note));
        }
        self.disk.set_metrics_plane(Rc::clone(&plane));
        self.metrics = Some(plane);
    }

    /// Wires a profile plane: the `compute-ra` dispatch indirection is
    /// charged to the invocation it produces and recorded as an
    /// `fs-dispatch` span in its span tree (see `docs/PROFILING.md`).
    pub fn set_profile_plane(&mut self, plane: Rc<vino_sim::profile::ProfilePlane>) {
        self.profile = Some(plane);
    }

    /// Wires a watch plane: every journal append feeds the
    /// journal-occupancy gauge (blocks the transaction left in the
    /// journal region, against its capacity), so the `journal-full`
    /// SLO rule sees pressure the moment it builds (see
    /// `docs/WATCH.md`).
    pub fn set_watch_plane(&mut self, plane: Rc<vino_sim::watch::WatchPlane>) {
        self.watch = Some(plane);
    }

    fn emit(&self, ev: vino_sim::trace::TraceEvent) {
        if let Some(tp) = &self.trace {
            tp.emit(ev);
        }
    }

    fn minc(&self, c: vino_sim::metrics::Counter) {
        if let Some(mp) = &self.metrics {
            mp.inc(c);
        }
    }

    /// Whether power has died on this instance.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// What mount-time (or the last explicit) recovery found, if any
    /// recovery has run on this instance.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// The persistent disk state as of now — what a power cut at this
    /// instant would leave behind. Works on a halted instance; this is
    /// the simulation harness reading the platters, not an I/O.
    pub fn disk_image(&self) -> DiskImage {
        self.disk.snapshot()
    }

    /// Quiesces the volume so a checkpoint capture and its restore see
    /// identical file-system state: invalidates the journal descriptor
    /// on disk (so mounting the captured image finds a clean journal —
    /// the same write the recovery scan's tail discard issues),
    /// empties the buffer cache, forgets per-descriptor read-ahead
    /// state, parks the disk mechanism and rewinds the journal sequence
    /// to its fresh-mount value. Called on *both* sides of a
    /// checkpoint: at capture (so the continuing run matches what a
    /// restore rebuilds) and after the restoring mount (harmless
    /// re-zeroing) — that symmetry is what makes the two runs
    /// byte-identical from the checkpoint on.
    ///
    /// # Panics
    ///
    /// Panics if called with power off or a journal transaction
    /// mid-flight (checkpoints are taken at operation boundaries).
    pub fn quiesce_for_checkpoint(&mut self) {
        assert!(!self.halted, "cannot checkpoint a halted file system");
        self.disk.write(BlockAddr(self.sb.journal_start as u64), &[0u8; BLOCK_SIZE]);
        for f in self.open.values_mut() {
            f.prefetch_q.clear();
            f.last_end = None;
        }
        self.cache.invalidate_all();
        self.disk.reset_mechanism();
        self.next_seq = 1;
        self.committed.clear();
        self.last_committed = 0;
    }

    fn check_power(&self) -> Result<(), FsError> {
        if self.halted {
            Err(FsError::PowerFailure)
        } else {
            Ok(())
        }
    }

    /// A named power-cut point in the commit pipeline: if the armed
    /// crash site fires, the kernel is dead — mark the instance halted
    /// and fail the operation. Nothing after this point executes.
    fn crash_point(&mut self, site: FaultSite) -> Result<(), FsError> {
        if let Some(p) = &self.fault {
            if p.fire(site) {
                self.halted = true;
                return Err(FsError::PowerFailure);
            }
        }
        Ok(())
    }

    /// Writes one journal block, honouring the mid-journal crash site:
    /// if it fires, the block persists only as a torn prefix and power
    /// dies with it.
    fn journal_write(&mut self, addr: BlockAddr, data: &[u8; BLOCK_SIZE]) -> Result<(), FsError> {
        if let Some(p) = self.fault.clone() {
            if p.fire(FaultSite::KernelCrashMidJournal) {
                self.disk.write_torn(addr, data, p.torn_prefix());
                self.halted = true;
                return Err(FsError::PowerFailure);
            }
        }
        self.disk.write(addr, data);
        Ok(())
    }

    /// The write-ahead commit pipeline: journal the new contents of
    /// every `(home block, data)` target (descriptor, payloads, commit
    /// marker), then checkpoint them in place. Targets beyond the
    /// journal's capacity are split into multiple transactions — each
    /// atomic on its own, so a crash between chunks leaves a clean
    /// prefix of the update durable.
    ///
    /// `through_cache` routes checkpoint writes through the buffer
    /// cache (data blocks, which later reads will want warm); metadata
    /// blocks bypass it.
    fn journal_txn(
        &mut self,
        targets: &[(u64, [u8; BLOCK_SIZE])],
        through_cache: bool,
    ) -> Result<(), FsError> {
        self.check_power()?;
        self.crash_point(FaultSite::KernelCrashBeforeJournal)?;
        let cap = self.sb.journal_capacity().max(1);
        for chunk in targets.chunks(cap) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.commit_record(seq, chunk, through_cache)?;
        }
        Ok(())
    }

    /// Journals and checkpoints one transaction at `seq`: descriptor,
    /// payload blocks, commit marker, then the in-place checkpoint.
    /// Shared by local transactions ([`journal_txn`](Self::journal_txn))
    /// and replicated ones
    /// ([`ingest_replicated`](Self::ingest_replicated)), so both honour
    /// the same crash points.
    fn commit_record(
        &mut self,
        seq: u64,
        chunk: &[(u64, [u8; BLOCK_SIZE])],
        through_cache: bool,
    ) -> Result<(), FsError> {
        let cap = self.sb.journal_capacity().max(1);
        let js = self.sb.journal_start as u64;
        let desc = JournalDescriptor {
            seq,
            entries: chunk.iter().map(|(home, data)| (*home, checksum64(data))).collect(),
        };
        let desc_block = desc.encode();
        self.journal_write(BlockAddr(js), &desc_block)?;
        for (i, (_home, data)) in chunk.iter().enumerate() {
            self.journal_write(BlockAddr(js + 1 + i as u64), data)?;
        }
        let n = chunk.len() as u64;
        self.emit(vino_sim::trace::TraceEvent::FsJournalAppend { seq, blocks: n });
        self.minc(vino_sim::metrics::Counter::FsJournalAppends);
        if let Some(wp) = &self.watch {
            // Occupancy while this transaction sits in the journal
            // region: descriptor + payload blocks + commit marker.
            wp.observe_journal(n + 2, cap as u64 + 2);
        }
        // The commit point: once this block is durable the
        // transaction survives any crash. Its meaningful bytes fit
        // within the smallest torn prefix, so the write is
        // effectively atomic.
        self.disk.write(BlockAddr(js + 1 + n), &encode_commit(seq, descriptor_seal(&desc_block)));
        // The seal is an event origin: mint the record's causal span
        // (child of whatever invocation context is in force) and keep
        // it with the commit stamp so replication chains off it.
        let seal_ctx = self.trace.as_ref().map(|tp| {
            let ctx = tp.mint_span(tp.ctx().span);
            tp.emit_with_ctx(vino_sim::trace::TraceEvent::FsJournalCommit { seq }, ctx);
            ctx
        });
        if let Some(ctx) = seal_ctx {
            self.seal_spans.insert(seq, (ctx.span, self.clock.now()));
        }
        self.minc(vino_sim::metrics::Counter::FsJournalCommits);
        // Commit is durable: retain the record for replication shipping
        // before any later crash point can interrupt the checkpoint.
        self.retain_committed(JournalRecord {
            seq,
            entries: desc.entries.clone(),
            payloads: chunk.iter().map(|(_home, data)| *data).collect(),
        });
        self.crash_point(FaultSite::KernelCrashAfterCommit)?;
        for (home, data) in chunk {
            self.crash_point(FaultSite::KernelCrashMidCheckpoint)?;
            let addr = BlockAddr(*home);
            if through_cache {
                self.cache.write(&mut self.disk, addr, data);
            } else {
                self.disk.write(addr, data);
            }
        }
        // The checkpoint belongs to the same causal story as its seal.
        if let (Some(tp), Some(ctx)) = (&self.trace, seal_ctx) {
            tp.emit_with_ctx(vino_sim::trace::TraceEvent::FsCheckpoint { seq, blocks: n }, ctx);
        } else {
            self.emit(vino_sim::trace::TraceEvent::FsCheckpoint { seq, blocks: n });
        }
        self.minc(vino_sim::metrics::Counter::FsCheckpoints);
        Ok(())
    }

    /// Retains one committed record for the replication tail,
    /// idempotently by sequence (recovery may re-commit a sequence the
    /// tail already holds).
    fn retain_committed(&mut self, rec: JournalRecord) {
        if self.last_committed >= rec.seq {
            return;
        }
        self.last_committed = rec.seq;
        self.committed.push(rec);
    }

    /// Tails the retained committed journal records with `seq >=
    /// seq_from`, in sequence order. Torn (uncommitted) tails are never
    /// retained, so everything yielded here is durable. Readable even
    /// on a halted instance — this is the replication harness reading
    /// the commit history, not an I/O.
    pub fn committed_records(&self, seq_from: u64) -> impl Iterator<Item = &JournalRecord> + '_ {
        let start = self.committed.partition_point(|r| r.seq < seq_from);
        self.committed[start..].iter()
    }

    /// Drops retained records with `seq <= upto` — the shipper calls
    /// this as cumulative acks advance, bounding retention to the
    /// unacked window.
    pub fn prune_committed(&mut self, upto: u64) {
        let keep = self.committed.partition_point(|r| r.seq <= upto);
        self.committed.drain(..keep);
        self.seal_spans = self.seal_spans.split_off(&(upto + 1));
    }

    /// The seal span and commit stamp of a retained record's
    /// `fs.journal_commit`, if a trace plane was attached when it
    /// sealed. Pruned with the record
    /// ([`prune_committed`](Self::prune_committed)).
    pub fn seal_info_of(&self, seq: u64) -> Option<(SpanId, Cycles)> {
        self.seal_spans.get(&seq).copied()
    }

    /// Highest committed journal sequence (0 before the first commit).
    /// Survives pruning.
    pub fn last_committed_seq(&self) -> u64 {
        self.last_committed
    }

    /// Applies one replicated journal record shipped from a primary:
    /// exact-next sequences are journalled and checkpointed through the
    /// same commit pipeline (and crash points) as a local transaction,
    /// already-applied sequences are skipped, and a sequence gap is
    /// refused so the shipper retransmits. Payload checksums are
    /// re-verified against the record's entry table before any write.
    /// In-memory metadata is rebuilt after a successful apply, so the
    /// replica stays mountable-equivalent to its own disk.
    pub fn ingest_replicated(&mut self, rec: &JournalRecord) -> Result<IngestOutcome, FsError> {
        self.check_power()?;
        if rec.seq < self.next_seq {
            return Ok(IngestOutcome::Duplicate);
        }
        if rec.seq > self.next_seq {
            return Ok(IngestOutcome::Gap { expected: self.next_seq });
        }
        if rec.entries.len() != rec.payloads.len()
            || rec.entries.is_empty()
            || rec.entries.len() > self.sb.journal_capacity()
        {
            return Err(FsError::BadVolume);
        }
        for ((_home, sum), data) in rec.entries.iter().zip(&rec.payloads) {
            if checksum64(data) != *sum {
                return Err(FsError::BadVolume);
            }
        }
        self.crash_point(FaultSite::KernelCrashBeforeJournal)?;
        self.next_seq = rec.seq + 1;
        let chunk: Vec<(u64, [u8; BLOCK_SIZE])> =
            rec.entries.iter().zip(&rec.payloads).map(|((home, _), data)| (*home, *data)).collect();
        self.commit_record(rec.seq, &chunk, false)?;
        for (home, _) in &chunk {
            self.cache.invalidate(BlockAddr(*home));
        }
        self.reload_metadata();
        Ok(IngestOutcome::Applied { blocks: chunk.len() as u64 })
    }

    /// Re-opens the replication cursor after mount-time recovery
    /// discarded a torn, half-ingested record. Recovery advances
    /// `next_seq` past a tear — correct on a primary, whose local
    /// transaction simply failed and will re-run under a fresh
    /// sequence — but a replica that tore while applying sequence `n`
    /// must accept `n` again when the shipper retransmits it, not skip
    /// it as a duplicate. `applied` is the highest sequence the replica
    /// actually holds; the discarded descriptor was zeroed by
    /// the recovery scan's tail discard, so reusing the torn
    /// sequence is safe.
    pub fn rewind_replication_cursor(&mut self, applied: u64) {
        assert!(
            applied < self.next_seq,
            "cursor can only rewind: applied {applied} vs next_seq {}",
            self.next_seq
        );
        self.next_seq = applied + 1;
    }

    /// The journalled image of inode slot `idx`'s table block.
    fn inode_block_target(&mut self, idx: usize) -> (u64, [u8; BLOCK_SIZE]) {
        let block_no = 1 + (idx / INODES_PER_BLOCK) as u64;
        let mut block = self.disk.read(BlockAddr(block_no));
        let off = (idx % INODES_PER_BLOCK) * INODE_SIZE;
        block[off..off + INODE_SIZE].copy_from_slice(&self.inodes[idx].encode());
        (block_no, block)
    }

    /// The journalled images of every allocation-bitmap block.
    fn bitmap_targets(&self) -> Vec<(u64, [u8; BLOCK_SIZE])> {
        let start = 1 + self.sb.inode_blocks as u64;
        self.bitmap
            .bytes()
            .chunks(BLOCK_SIZE)
            .enumerate()
            .map(|(i, chunk)| {
                let mut block = [0u8; BLOCK_SIZE];
                block[..chunk.len()].copy_from_slice(chunk);
                (start + i as u64, block)
            })
            .collect()
    }

    /// Creates a file of `size` bytes, pre-allocated (extent-based
    /// first-fit, at most [`MAX_EXTENTS`] runs).
    pub fn create(&mut self, name: &str, size: u64) -> Result<(), FsError> {
        self.check_power()?;
        if name.len() > MAX_NAME {
            return Err(FsError::NameTooLong);
        }
        if self.lookup(name).is_some() {
            return Err(FsError::Exists(name.to_string()));
        }
        let idx = self.inodes.iter().position(|i| !i.used).ok_or(FsError::VolumeFull)?;
        let mut needed = (size.div_ceil(BLOCK_SIZE as u64)) as u32;
        if self.bitmap.free_count() < needed {
            return Err(FsError::NoSpace);
        }
        // First-fit: grab the largest prefix run repeatedly.
        let mut extents = Vec::new();
        while needed > 0 {
            if extents.len() == MAX_EXTENTS {
                // Roll back partial allocation.
                for e in &extents {
                    let de: &DiskExtent = e;
                    for b in de.start..de.start + de.len {
                        self.bitmap.clear(b - self.sb.data_start);
                    }
                }
                return Err(FsError::TooFragmented);
            }
            // Find the longest run up to `needed`.
            let mut take = needed;
            let start = loop {
                match self.bitmap.find_run(take) {
                    Some(s) => break s,
                    None => {
                        take /= 2;
                        if take == 0 {
                            for e in &extents {
                                let de: &DiskExtent = e;
                                for b in de.start..de.start + de.len {
                                    self.bitmap.clear(b - self.sb.data_start);
                                }
                            }
                            return Err(FsError::NoSpace);
                        }
                    }
                }
            };
            for b in start..start + take {
                self.bitmap.set(b);
            }
            extents.push(DiskExtent { start: start + self.sb.data_start, len: take });
            needed -= take;
        }
        // Zero the allocated blocks: reused blocks must not leak a
        // previous file's data (the §2.1 "reading another user's data"
        // hazard, at the file-system level). Zeroing runs before — and
        // outside — the metadata transaction: until the transaction
        // commits, the durable bitmap still shows these blocks free, so
        // a crash here leaves a consistent volume without the file.
        let zero = [0u8; BLOCK_SIZE];
        for e in &extents {
            for b in e.start..e.start + e.len {
                self.disk.write(BlockAddr(b as u64), &zero);
                self.cache.invalidate(BlockAddr(b as u64));
            }
        }
        self.inodes[idx] = Inode { used: true, name: name.to_string(), size, extents };
        let mut targets = vec![self.inode_block_target(idx)];
        targets.extend(self.bitmap_targets());
        self.journal_txn(&targets, false)
    }

    /// Deletes a file, freeing its blocks. Open descriptors go stale.
    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        self.check_power()?;
        let idx = self.lookup(name).ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let extents = self.inodes[idx].extents.clone();
        for e in extents {
            for b in e.start..e.start + e.len {
                self.bitmap.clear(b - self.sb.data_start);
                self.cache.invalidate(BlockAddr(b as u64));
            }
        }
        self.inodes[idx] = Inode::default();
        let mut targets = vec![self.inode_block_target(idx)];
        targets.extend(self.bitmap_targets());
        self.journal_txn(&targets, false)
    }

    /// Opens a file, returning a descriptor backed by a kernel open-file
    /// object with the default sequential read-ahead policy.
    pub fn open(&mut self, name: &str) -> Result<Fd, FsError> {
        self.check_power()?;
        let idx = self.lookup(name).ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.open.insert(
            fd,
            OpenFile { inode_idx: idx, last_end: None, prefetch_q: VecDeque::new(), ra: None },
        );
        Ok(fd)
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: Fd) {
        self.open.remove(&fd);
    }

    /// Size of the file behind `fd`.
    pub fn size_of(&self, fd: Fd) -> Result<u64, FsError> {
        Ok(self.inodes[self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx].size)
    }

    /// Installs a read-ahead graft on the open-file object, replacing
    /// the default sequential policy (Figure 1's `replace` call).
    pub fn set_ra_delegate(
        &mut self,
        fd: Fd,
        d: Box<dyn ReadAheadDelegate>,
    ) -> Result<(), FsError> {
        self.open.get_mut(&fd).ok_or(FsError::BadFd(fd))?.ra = Some(d);
        Ok(())
    }

    /// Removes the read-ahead graft, restoring the default policy (what
    /// a transaction abort does to the graft point).
    pub fn clear_ra_delegate(&mut self, fd: Fd) {
        if let Some(f) = self.open.get_mut(&fd) {
            f.ra = None;
        }
    }

    /// True if `fd` has a grafted read-ahead policy.
    pub fn has_ra_delegate(&self, fd: Fd) -> bool {
        self.open.get(&fd).is_some_and(|f| f.ra.is_some())
    }

    /// Reads `len` bytes at `offset`. Runs the read, then the
    /// `compute-ra` policy, queues validated prefetch extents, and
    /// drains the queue into free cache buffers (§4.1.2's full path).
    pub fn read(&mut self, fd: Fd, offset: u64, len: u64) -> Result<Vec<u8>, FsError> {
        self.check_power()?;
        let (inode_idx, sequential) = {
            let f = self.open.get(&fd).ok_or(FsError::BadFd(fd))?;
            (f.inode_idx, f.last_end == Some(offset))
        };
        let size = self.inodes[inode_idx].size;
        if offset + len > size {
            return Err(FsError::PastEof);
        }
        self.stats.reads += 1;
        self.minc(vino_sim::metrics::Counter::FsReads);
        self.emit(vino_sim::trace::TraceEvent::FsRead { fd: fd.0, len });
        // Read the covered blocks through the cache.
        let mut out = Vec::with_capacity(len as usize);
        let first = (offset / BLOCK_SIZE as u64) as u32;
        let last = ((offset + len - 1) / BLOCK_SIZE as u64) as u32;
        for lbn in first..=last {
            let abs = self.inodes[inode_idx].block_of(lbn).expect("within size");
            let block = self.cache.read(&mut self.disk, BlockAddr(abs as u64));
            let lo = if lbn == first { (offset % BLOCK_SIZE as u64) as usize } else { 0 };
            let hi = if lbn == last {
                ((offset + len - 1) % BLOCK_SIZE as u64) as usize + 1
            } else {
                BLOCK_SIZE
            };
            out.extend_from_slice(&block[lo..hi]);
        }
        // compute-ra: default or grafted (§4.1.2).
        let req = RaRequest { offset, len, sequential, file_size: size };
        let extents = {
            let metrics = self.metrics.clone();
            let profile = self.profile.clone();
            let f = self.open.get_mut(&fd).expect("checked");
            f.last_end = Some(offset + len);
            match f.ra.as_mut() {
                Some(graft) => {
                    self.stats.ra_graft_calls += 1;
                    // Dispatch indirection to the grafted method; the
                    // metrics plane attributes it to the invocation the
                    // dispatch produces.
                    let cost = Cycles(vino_sim::costs::INDIRECTION_CYCLES);
                    self.clock.charge(cost);
                    if let Some(mp) = &metrics {
                        mp.charge(vino_sim::metrics::Component::Indirection, cost);
                    }
                    if let Some(pp) = &profile {
                        pp.charge(vino_sim::metrics::Component::Indirection, cost);
                        pp.mark(vino_sim::profile::SpanKind::FsDispatch, cost);
                    }
                    graft.compute_ra(&req)
                }
                None => default_compute_ra(&req),
            }
        };
        self.enqueue_prefetch(fd, &extents)?;
        self.pump_prefetch(fd)?;
        Ok(out)
    }

    /// Writes `data` at `offset` (must stay within the preallocated
    /// size). Journalled write-ahead: the new block contents go through
    /// the redo journal and are checkpointed in place, so a crash at
    /// any instant leaves the update either wholly durable or wholly
    /// absent (per journal transaction — a write wider than the journal
    /// region commits in atomic chunks).
    pub fn write(&mut self, fd: Fd, offset: u64, data: &[u8]) -> Result<(), FsError> {
        self.check_power()?;
        let inode_idx = self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx;
        let size = self.inodes[inode_idx].size;
        if offset + data.len() as u64 > size {
            return Err(FsError::PastEof);
        }
        self.stats.writes += 1;
        self.minc(vino_sim::metrics::Counter::FsWrites);
        self.emit(vino_sim::trace::TraceEvent::FsWrite { fd: fd.0, len: data.len() as u64 });
        let mut targets = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let abs_off = offset + pos as u64;
            let lbn = (abs_off / BLOCK_SIZE as u64) as u32;
            let in_block = (abs_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - in_block).min(data.len() - pos);
            let abs = self.inodes[inode_idx].block_of(lbn).expect("within size");
            let addr = BlockAddr(abs as u64);
            let mut block = if in_block == 0 && chunk == BLOCK_SIZE {
                [0u8; BLOCK_SIZE]
            } else {
                self.cache.read(&mut self.disk, addr)
            };
            block[in_block..in_block + chunk].copy_from_slice(&data[pos..pos + chunk]);
            targets.push((abs as u64, block));
            pos += chunk;
        }
        self.journal_txn(&targets, true)
    }

    /// Validates and queues prefetch extents on `fd`'s queue.
    fn enqueue_prefetch(&mut self, fd: Fd, extents: &[Extent]) -> Result<(), FsError> {
        let inode_idx = self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx;
        let size = self.inodes[inode_idx].size;
        let mut blocks = Vec::new();
        for e in extents {
            // Validation: results from (possibly grafted) policies are
            // checked before use — zero-length and past-EOF extents are
            // rejected, matching the victim-verification discipline.
            if e.len == 0 || e.offset >= size || e.offset + e.len > size {
                self.stats.ra_rejected += 1;
                continue;
            }
            self.stats.ra_accepted += 1;
            let first = (e.offset / BLOCK_SIZE as u64) as u32;
            let last = ((e.offset + e.len - 1) / BLOCK_SIZE as u64) as u32;
            for lbn in first..=last {
                blocks.push(lbn);
            }
        }
        let f = self.open.get_mut(&fd).expect("checked");
        for b in blocks {
            if f.prefetch_q.len() >= MAX_PREFETCH_QUEUE {
                break; // Bounded queue (§4.1.2).
            }
            if !f.prefetch_q.contains(&b) {
                f.prefetch_q.push_back(b);
            }
        }
        Ok(())
    }

    /// Issues queued prefetches "as memory becomes available" — i.e.
    /// while the cache's read-ahead quota has room.
    fn pump_prefetch(&mut self, fd: Fd) -> Result<(), FsError> {
        use crate::cache::PrefetchOutcome;
        let inode_idx = self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx;
        while let Some(lbn) = self.open.get_mut(&fd).expect("checked").prefetch_q.pop_front() {
            let Some(abs) = self.inodes[inode_idx].block_of(lbn) else { continue };
            match self.cache.prefetch(&mut self.disk, BlockAddr(abs as u64)) {
                PrefetchOutcome::Issued => {
                    self.stats.prefetches_issued += 1;
                    self.minc(vino_sim::metrics::Counter::FsPrefetches);
                    self.emit(vino_sim::trace::TraceEvent::FsPrefetch { fd: fd.0 });
                }
                PrefetchOutcome::AlreadyCached => {}
                PrefetchOutcome::NoRoom => {
                    // Keep the request queued for the next opportunity.
                    self.open.get_mut(&fd).expect("checked").prefetch_q.push_front(lbn);
                    break;
                }
            }
        }
        Ok(())
    }

    /// Pending prefetch-queue length for `fd`.
    pub fn prefetch_queue_len(&self, fd: Fd) -> usize {
        self.open.get(&fd).map_or(0, |f| f.prefetch_q.len())
    }

    /// Unmounts: consumes the file system, returning the underlying
    /// disk (all metadata is written through, so a subsequent
    /// [`FileSystem::mount`] sees identical state).
    pub fn into_disk(self) -> Disk {
        self.disk
    }

    /// Lists file names on the volume.
    pub fn list(&self) -> Vec<&str> {
        self.inodes.iter().filter(|i| i.used).map(|i| i.name.as_str()).collect()
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.inodes.iter().position(|i| i.used && i.name == name)
    }
}

fn recovery_trace_event(note: RecoveryNote) -> vino_sim::trace::TraceEvent {
    match note {
        RecoveryNote::Replay { seq, blocks } => {
            vino_sim::trace::TraceEvent::FsRecoveryReplay { seq, blocks }
        }
        RecoveryNote::Discard { seq } => vino_sim::trace::TraceEvent::FsRecoveryDiscard { seq },
    }
}

fn recovery_counter(note: RecoveryNote) -> vino_sim::metrics::Counter {
    match note {
        RecoveryNote::Replay { .. } => vino_sim::metrics::Counter::FsRecoveryReplays,
        RecoveryNote::Discard { .. } => vino_sim::metrics::Counter::FsRecoveryDiscards,
    }
}

impl fmt::Debug for FileSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSystem")
            .field("files", &self.inodes.iter().filter(|i| i.used).count())
            .field("open", &self.open.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// The default read-ahead policy: "The default read-ahead policy used by
/// VINO only prefetches when the user accesses a file sequentially"
/// (§4.1.2) — one block beyond the current read.
pub fn default_compute_ra(req: &RaRequest) -> Vec<Extent> {
    if !req.sequential {
        return Vec::new();
    }
    let next = req.offset + req.len;
    if next >= req.file_size {
        return Vec::new();
    }
    let len = (BLOCK_SIZE as u64).min(req.file_size - next);
    vec![Extent { offset: next, len }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(cache_blocks: usize) -> FileSystem {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        FileSystem::format(clock, disk, cache_blocks, 64)
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = fresh(16);
        fs.create("hello.txt", 8192).unwrap();
        let fd = fs.open("hello.txt").unwrap();
        let msg = b"the quick brown fox";
        fs.write(fd, 100, msg).unwrap();
        let back = fs.read(fd, 100, msg.len() as u64).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn read_spanning_blocks() {
        let mut fs = fresh(16);
        fs.create("span", 3 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("span").unwrap();
        let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fs.write(fd, BLOCK_SIZE as u64 / 2, &data).unwrap();
        let back = fs.read(fd, BLOCK_SIZE as u64 / 2, data.len() as u64).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn errors_surface() {
        let mut fs = fresh(4);
        assert!(matches!(fs.open("ghost"), Err(FsError::NotFound(_))));
        fs.create("a", 4096).unwrap();
        assert!(matches!(fs.create("a", 4096), Err(FsError::Exists(_))));
        let fd = fs.open("a").unwrap();
        assert!(matches!(fs.read(fd, 4000, 200), Err(FsError::PastEof)));
        assert!(matches!(fs.write(fd, 4096, b"x"), Err(FsError::PastEof)));
        fs.close(fd);
        assert!(matches!(fs.read(fd, 0, 1), Err(FsError::BadFd(_))));
        let long = "n".repeat(100);
        assert!(matches!(fs.create(&long, 1), Err(FsError::NameTooLong)));
    }

    #[test]
    fn no_space_reported() {
        let clock = VirtualClock::new();
        let disk = Disk::with_geometry(
            Rc::clone(&clock),
            vino_dev::disk::DiskGeometry { blocks: 64, ..Default::default() },
        );
        let mut fs = FileSystem::format(clock, disk, 4, 16);
        assert!(matches!(fs.create("big", 10 * 1024 * 1024), Err(FsError::NoSpace)));
    }

    #[test]
    fn remove_frees_space() {
        let mut fs = fresh(4);
        let free0 = fs.bitmap.free_count();
        fs.create("tmp", 10 * BLOCK_SIZE as u64).unwrap();
        assert_eq!(fs.bitmap.free_count(), free0 - 10);
        fs.remove("tmp").unwrap();
        assert_eq!(fs.bitmap.free_count(), free0);
        assert!(fs.list().is_empty());
    }

    #[test]
    fn mount_round_trip() {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        let mut fs = FileSystem::format(Rc::clone(&clock), disk, 8, 64);
        fs.create("persist", 2 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("persist").unwrap();
        fs.write(fd, 0, b"durable bytes").unwrap();
        // Re-mount on the same disk (move it out).
        let FileSystem { disk, .. } = fs;
        let mut fs2 = FileSystem::mount(Rc::clone(&clock), disk, 8).unwrap();
        assert_eq!(fs2.list(), vec!["persist"]);
        let fd2 = fs2.open("persist").unwrap();
        assert_eq!(fs2.read(fd2, 0, 13).unwrap(), b"durable bytes");
    }

    #[test]
    fn mount_rejects_unformatted() {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        assert!(matches!(FileSystem::mount(clock, disk, 8), Err(FsError::BadVolume)));
    }

    #[test]
    fn default_ra_prefetches_on_sequential_only() {
        let mut fs = fresh(16);
        fs.create("seq", 16 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("seq").unwrap();
        // Random read: no prefetch.
        fs.read(fd, 8 * BLOCK_SIZE as u64, 4096).unwrap();
        assert_eq!(fs.stats().prefetches_issued, 0);
        // Sequential follow-up: prefetch fires.
        fs.read(fd, 9 * BLOCK_SIZE as u64, 4096).unwrap();
        assert_eq!(fs.stats().prefetches_issued, 1);
        // And the next sequential read hits the prefetched block.
        let hits0 = fs.cache_stats().hits + fs.cache_stats().late_hits;
        fs.read(fd, 10 * BLOCK_SIZE as u64, 4096).unwrap();
        assert!(fs.cache_stats().hits + fs.cache_stats().late_hits > hits0);
    }

    #[test]
    fn grafted_ra_replaces_default() {
        // The §4.1.2 application: random access with advance knowledge.
        let mut fs = fresh(16);
        fs.create("db", 32 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("db").unwrap();
        // Policy: always prefetch block 20 next.
        fs.set_ra_delegate(
            fd,
            Box::new(|_req: &RaRequest| {
                vec![Extent { offset: 20 * BLOCK_SIZE as u64, len: BLOCK_SIZE as u64 }]
            }),
        )
        .unwrap();
        fs.read(fd, 0, 4096).unwrap();
        assert_eq!(fs.stats().ra_graft_calls, 1);
        assert_eq!(fs.stats().prefetches_issued, 1);
        // Wait out the I/O, then the random read is a hit.
        fs.clock.charge(Cycles::from_ms(50));
        let misses0 = fs.cache_stats().misses;
        fs.read(fd, 20 * BLOCK_SIZE as u64, 4096).unwrap();
        assert_eq!(fs.cache_stats().misses, misses0, "prefetched block must hit");
    }

    #[test]
    fn hostile_ra_extents_rejected() {
        let mut fs = fresh(8);
        fs.create("f", 4 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("f").unwrap();
        fs.set_ra_delegate(
            fd,
            Box::new(|_req: &RaRequest| {
                vec![
                    Extent { offset: 1 << 40, len: 4096 }, // Past EOF.
                    Extent { offset: 0, len: 0 },          // Zero length.
                    Extent { offset: 4096, len: 1 << 40 }, // Overflowing.
                ]
            }),
        )
        .unwrap();
        fs.read(fd, 0, 64).unwrap();
        assert_eq!(fs.stats().ra_rejected, 3);
        assert_eq!(fs.stats().ra_accepted, 0);
        assert_eq!(fs.stats().prefetches_issued, 0);
    }

    #[test]
    fn hundred_mb_request_is_bounded() {
        // The §4.1.2 promise: a graft asking for a huge prefetch cannot
        // steal all memory; the queue bounds it and the cache gates it.
        let mut fs = fresh(8); // Only 8 buffers.
        fs.create("big", 8192 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("big").unwrap();
        fs.set_ra_delegate(
            fd,
            Box::new(|req: &RaRequest| {
                // "Prefetch everything."
                vec![Extent { offset: 0, len: req.file_size }]
            }),
        )
        .unwrap();
        fs.read(fd, 0, 64).unwrap();
        // Prefetch held at most the read-ahead quota of buffers; the
        // queue holds a bounded tail; nothing exploded.
        assert!(fs.cache_stats().prefetches <= 8);
        assert!(fs.prefetch_queue_len(fd) <= MAX_PREFETCH_QUEUE);
    }

    #[test]
    fn clear_ra_restores_default() {
        let mut fs = fresh(8);
        fs.create("f", 8 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("f").unwrap();
        fs.set_ra_delegate(fd, Box::new(|_req: &RaRequest| Vec::new())).unwrap();
        assert!(fs.has_ra_delegate(fd));
        fs.clear_ra_delegate(fd);
        assert!(!fs.has_ra_delegate(fd));
        // Default sequential policy active again.
        fs.read(fd, 0, 4096).unwrap();
        fs.read(fd, 4096, 4096).unwrap();
        assert!(fs.stats().prefetches_issued >= 1);
        assert_eq!(fs.stats().ra_graft_calls, 0, "graft never ran");
    }

    #[test]
    fn fragmented_allocation_uses_multiple_extents() {
        let mut fs = fresh(4);
        // Fragment free space: a,b,c then remove b.
        fs.create("a", 10 * BLOCK_SIZE as u64).unwrap();
        fs.create("b", 10 * BLOCK_SIZE as u64).unwrap();
        fs.create("c", 10 * BLOCK_SIZE as u64).unwrap();
        fs.remove("b").unwrap();
        // A 15-block file cannot fit one run before c... actually the
        // tail after c is contiguous, so force use of the hole by
        // filling the tail first.
        let tail = fs.bitmap.free_count() - 10;
        fs.create("filler", tail as u64 * BLOCK_SIZE as u64).unwrap();
        // Only b's 10-block hole remains.
        fs.create("hole", 10 * BLOCK_SIZE as u64).unwrap();
        let idx = fs.lookup("hole").unwrap();
        assert_eq!(fs.inodes[idx].block_count(), 10);
        let fd = fs.open("hole").unwrap();
        fs.write(fd, 0, b"fits in the hole").unwrap();
        assert_eq!(fs.read(fd, 0, 16).unwrap(), b"fits in the hole");
    }

    /// Formats a volume with one file holding known bytes, then crashes
    /// the kernel at `site` during an overwrite and remounts a fresh
    /// instance over the surviving image. Returns the recovered fs and
    /// its recovery report.
    fn crash_during_write(site: FaultSite) -> (FileSystem, RecoveryReport) {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        let mut fs = FileSystem::format(Rc::clone(&clock), disk, 8, 64);
        fs.create("wal", 4 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("wal").unwrap();
        fs.write(fd, 0, b"old contents").unwrap();

        let plane = FaultPlane::seeded(7);
        plane.arm(site, 1);
        fs.set_fault_plane(Rc::clone(&plane));
        assert_eq!(fs.write(fd, 0, b"NEW CONTENTS"), Err(FsError::PowerFailure));
        assert!(fs.halted());
        assert_eq!(plane.injected(site), 1);

        let image = fs.disk_image();
        let clock2 = VirtualClock::new();
        let disk2 = Disk::from_image(Rc::clone(&clock2), image).unwrap();
        let fs2 = FileSystem::mount(clock2, disk2, 8).unwrap();
        let report = fs2.recovery_report().unwrap();
        (fs2, report)
    }

    #[test]
    fn crash_before_journal_preserves_old_contents() {
        let (mut fs, report) = crash_during_write(FaultSite::KernelCrashBeforeJournal);
        // Nothing of the new write reached the journal; the only record
        // found is the previous committed (and already checkpointed)
        // transaction, which redo re-applies harmlessly.
        assert_eq!(report.replayed_txns, 1);
        assert_eq!(report.discarded_txns, 0);
        let fd = fs.open("wal").unwrap();
        assert_eq!(fs.read(fd, 0, 12).unwrap(), b"old contents");
    }

    #[test]
    fn crash_mid_journal_discards_torn_tail() {
        let (mut fs, report) = crash_during_write(FaultSite::KernelCrashMidJournal);
        // The descriptor (or a payload block) was torn before the commit
        // marker went down: the transaction never happened.
        assert_eq!(report.replayed_txns, 0);
        let fd = fs.open("wal").unwrap();
        assert_eq!(fs.read(fd, 0, 12).unwrap(), b"old contents");
    }

    #[test]
    fn crash_after_commit_rolls_forward() {
        let (mut fs, report) = crash_during_write(FaultSite::KernelCrashAfterCommit);
        assert_eq!(report.replayed_txns, 1);
        assert!(report.replayed_blocks >= 1);
        let fd = fs.open("wal").unwrap();
        assert_eq!(fs.read(fd, 0, 12).unwrap(), b"NEW CONTENTS");
    }

    #[test]
    fn crash_mid_checkpoint_rolls_forward() {
        let (mut fs, report) = crash_during_write(FaultSite::KernelCrashMidCheckpoint);
        assert_eq!(report.replayed_txns, 1);
        let fd = fs.open("wal").unwrap();
        assert_eq!(fs.read(fd, 0, 12).unwrap(), b"NEW CONTENTS");
    }

    #[test]
    fn halted_instance_rejects_all_operations() {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        let mut fs = FileSystem::format(Rc::clone(&clock), disk, 8, 64);
        fs.create("f", BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("f").unwrap();
        let plane = FaultPlane::seeded(1);
        plane.arm(FaultSite::KernelCrashBeforeJournal, 1);
        fs.set_fault_plane(plane);
        assert_eq!(fs.write(fd, 0, b"x"), Err(FsError::PowerFailure));
        // Every subsequent operation on the dead instance fails the same
        // way — no half-alive kernel.
        assert_eq!(fs.write(fd, 0, b"y"), Err(FsError::PowerFailure));
        assert_eq!(fs.read(fd, 0, 1), Err(FsError::PowerFailure));
        assert_eq!(fs.create("g", 1), Err(FsError::PowerFailure));
        assert_eq!(fs.remove("f"), Err(FsError::PowerFailure));
        assert!(matches!(fs.open("f"), Err(FsError::PowerFailure)));
    }

    #[test]
    fn large_write_chunks_into_multiple_transactions() {
        let mut fs = fresh(16);
        let cap = fs.sb.journal_capacity();
        let blocks = cap + 3; // Must not fit one transaction.
        fs.create("big", (blocks * BLOCK_SIZE) as u64).unwrap();
        let fd = fs.open("big").unwrap();
        let data: Vec<u8> = (0..blocks * BLOCK_SIZE).map(|i| (i % 239) as u8).collect();
        fs.write(fd, 0, &data).unwrap();
        assert_eq!(fs.read(fd, 0, data.len() as u64).unwrap(), data);
        // Two transactions were journalled (seq 1 consumed by create).
        assert!(fs.next_seq >= 4, "expected >= 3 txns, next_seq={}", fs.next_seq);
    }

    #[test]
    fn committed_records_tail_and_boundary_seqs() {
        let mut fs = fresh(8);
        fs.create("t", 4 * BLOCK_SIZE as u64).unwrap(); // seq 1
        let fd = fs.open("t").unwrap();
        fs.write(fd, 0, b"one").unwrap(); // seq 2
        fs.write(fd, 10, b"two").unwrap(); // seq 3
        let seqs: Vec<u64> = fs.committed_records(1).map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(fs.committed_records(3).count(), 1, "seq_from is inclusive");
        assert_eq!(fs.committed_records(4).count(), 0, "past the tail is empty");
        assert_eq!(fs.last_committed_seq(), 3);
        // Records carry self-checking payloads (the shipping seal's
        // ground truth).
        for r in fs.committed_records(1) {
            assert_eq!(r.entries.len(), r.payloads.len());
            for ((_home, sum), data) in r.entries.iter().zip(&r.payloads) {
                assert_eq!(checksum64(data), *sum);
            }
        }
        fs.prune_committed(2);
        let seqs: Vec<u64> = fs.committed_records(1).map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3], "acked prefix pruned");
        assert_eq!(fs.last_committed_seq(), 3, "high-water mark survives pruning");
    }

    #[test]
    fn torn_tail_is_never_retained() {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        let mut fs = FileSystem::format(Rc::clone(&clock), disk, 8, 64);
        fs.create("t", 4 * BLOCK_SIZE as u64).unwrap(); // seq 1 commits.
        let fd = fs.open("t").unwrap();
        let plane = FaultPlane::seeded(9);
        plane.arm(FaultSite::KernelCrashMidJournal, 1);
        fs.set_fault_plane(plane);
        assert_eq!(fs.write(fd, 0, b"torn"), Err(FsError::PowerFailure));
        // Seq 2 began but never committed: the tail ends at 1, readable
        // even off the dead instance.
        assert_eq!(fs.last_committed_seq(), 1);
        assert_eq!(fs.committed_records(2).count(), 0, "torn seq is not retained");
        // The remounted volume discards the tear; its retained tail is
        // empty (the torn descriptor overwrote the only journal slot).
        let image = fs.disk_image();
        let clock2 = VirtualClock::new();
        let fs2 =
            FileSystem::mount(Rc::clone(&clock2), Disk::from_image(clock2, image).unwrap(), 8)
                .unwrap();
        assert_eq!(fs2.recovery_report().unwrap().discarded_txns, 1);
        assert_eq!(fs2.last_committed_seq(), 0);
        assert_eq!(fs2.committed_records(1).count(), 0);
    }

    #[test]
    fn replayed_record_lands_on_the_retained_tail() {
        let (fs, report) = crash_during_write(FaultSite::KernelCrashAfterCommit);
        assert_eq!(report.replayed_txns, 1);
        let seq = fs.last_committed_seq();
        assert!(seq > 0, "replay retained the committed record");
        assert_eq!(fs.committed_records(seq).count(), 1, "boundary seq included");
        assert_eq!(fs.committed_records(seq + 1).count(), 0, "past the tail is empty");
    }

    #[test]
    fn ingest_replicated_applies_in_order_and_is_idempotent() {
        let mut p = fresh(8);
        p.create("f", 4 * BLOCK_SIZE as u64).unwrap();
        let fd = p.open("f").unwrap();
        p.write(fd, 0, b"replicate me").unwrap();
        let recs: Vec<JournalRecord> = p.committed_records(1).cloned().collect();
        assert_eq!(recs.len(), 2);

        // A replica formatted identically converges record by record.
        let mut r = fresh(8);
        assert_eq!(r.ingest_replicated(&recs[1]), Ok(IngestOutcome::Gap { expected: 1 }));
        for rec in &recs {
            assert_eq!(
                r.ingest_replicated(rec),
                Ok(IngestOutcome::Applied { blocks: rec.entries.len() as u64 })
            );
        }
        assert_eq!(r.ingest_replicated(&recs[0]), Ok(IngestOutcome::Duplicate));
        let fd2 = r.open("f").unwrap();
        assert_eq!(r.read(fd2, 0, 12).unwrap(), b"replicate me");
        // Byte-identical over every block either side materialised.
        // (Not a structural image compare: `create` zeroes data blocks
        // directly on the primary, and a journalled replica never
        // materialises blocks that only ever held zeros.)
        let (pi, ri) = (p.disk_image(), r.disk_image());
        for addr in pi.written().chain(ri.written()) {
            assert_eq!(pi.block(addr), ri.block(addr), "block {addr:?} diverged");
        }

        // A corrupted payload is refused before anything is written.
        let mut bad = recs[0].clone();
        bad.seq = r.last_committed_seq() + 1;
        bad.payloads[0][0] ^= 0xFF;
        assert_eq!(r.ingest_replicated(&bad), Err(FsError::BadVolume));
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut fs, first) = crash_during_write(FaultSite::KernelCrashAfterCommit);
        let before = fs.disk_image();
        let again = fs.recover();
        // Replaying the same committed transaction a second time is a
        // no-op on the image: pure redo records are idempotent.
        assert_eq!(again.replayed_txns, first.replayed_txns);
        assert_eq!(fs.disk_image(), before);
    }

    #[test]
    fn same_seed_crash_recovery_is_byte_identical() {
        let run = |seed: u64| {
            let clock = VirtualClock::new();
            let disk = Disk::new(Rc::clone(&clock));
            let mut fs = FileSystem::format(Rc::clone(&clock), disk, 8, 64);
            fs.create("r", 8 * BLOCK_SIZE as u64).unwrap();
            let fd = fs.open("r").unwrap();
            let plane = FaultPlane::seeded(seed);
            plane.arm(FaultSite::KernelCrashMidJournal, 2);
            fs.set_fault_plane(plane);
            let _ = fs.write(fd, 0, &[7u8; 3 * BLOCK_SIZE]);
            let _ = fs.write(fd, 100, b"second attempt");
            let image = fs.disk_image();
            let clock2 = VirtualClock::new();
            let mut fs2 =
                FileSystem::mount(Rc::clone(&clock2), Disk::from_image(clock2, image).unwrap(), 8)
                    .unwrap();
            let fd2 = fs2.open("r").unwrap();
            (fs2.disk_image(), fs2.recovery_report().unwrap(), fs2.read(fd2, 0, 64))
        };
        assert_eq!(run(42), run(42), "same seed must replay byte-identically");
        // And a different seed tears at a different prefix, so the raw
        // images differ even though the recovered file state agrees.
        let (img_a, _, data_a) = run(42);
        let (img_b, _, data_b) = run(43);
        assert_eq!(data_a, data_b);
        assert_ne!(img_a, img_b, "different tear prefixes must differ on disk");
    }
}

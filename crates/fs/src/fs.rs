//! The file system proper: volumes, files, open-file objects and the
//! graftable `compute-ra` read-ahead policy.
//!
//! "In VINO, application level file descriptors are handles for kernel
//! level open-file objects. Traditional file-related system calls are
//! translated to method invocations on the appropriate open-file"
//! (§4.1.2). The open-file object is where the read-ahead graft hangs.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use vino_dev::disk::{BlockAddr, Disk};
use vino_sim::{Cycles, VirtualClock};

use crate::cache::BufferCache;
use crate::layout::{
    Bitmap, DiskExtent, Inode, SuperBlock, BLOCK_SIZE, INODES_PER_BLOCK, INODE_SIZE, MAX_EXTENTS,
    MAX_NAME,
};

/// A handle to an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u64);

/// File-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file by that name.
    NotFound(String),
    /// A file by that name already exists.
    Exists(String),
    /// The name exceeds the inode's capacity.
    NameTooLong,
    /// Free space exists but not in few enough contiguous runs.
    TooFragmented,
    /// Not enough free blocks.
    NoSpace,
    /// All inode slots are in use.
    VolumeFull,
    /// Unknown descriptor.
    BadFd(Fd),
    /// A read or write extends past end-of-file.
    PastEof,
    /// The volume's superblock is missing or corrupt.
    BadVolume,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(n) => write!(f, "no such file: {n}"),
            FsError::Exists(n) => write!(f, "file exists: {n}"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::TooFragmented => write!(f, "free space too fragmented"),
            FsError::NoSpace => write!(f, "no space on volume"),
            FsError::VolumeFull => write!(f, "inode table full"),
            FsError::BadFd(fd) => write!(f, "bad file descriptor {fd:?}"),
            FsError::PastEof => write!(f, "access past end of file"),
            FsError::BadVolume => write!(f, "not a VINO volume"),
        }
    }
}

impl std::error::Error for FsError {}

/// The descriptor passed to `compute-ra`: "a descriptor describing the
/// offset and size of the current read request" (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaRequest {
    /// Byte offset of the read just performed.
    pub offset: u64,
    /// Byte length of the read.
    pub len: u64,
    /// Whether this read sequentially followed the previous one.
    pub sequential: bool,
    /// File size, so policies can avoid requesting past EOF.
    pub file_size: u64,
}

/// A file extent (byte-addressed) that a read-ahead policy asks to have
/// prefetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset within the file.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
}

/// The `compute-ra` hook (§4.1.2). The grafting layer implements this by
/// running the grafted GraftVM function; the default sequential policy
/// and tests implement it natively.
pub trait ReadAheadDelegate {
    /// Returns the extents to queue for prefetch after a read.
    fn compute_ra(&mut self, req: &RaRequest) -> Vec<Extent>;
}

impl<F: FnMut(&RaRequest) -> Vec<Extent>> ReadAheadDelegate for F {
    fn compute_ra(&mut self, req: &RaRequest) -> Vec<Extent> {
        self(req)
    }
}

/// File-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Read operations served.
    pub reads: u64,
    /// Write operations served.
    pub writes: u64,
    /// `compute-ra` invocations that went to a grafted policy.
    pub ra_graft_calls: u64,
    /// Prefetch extents accepted into queues.
    pub ra_accepted: u64,
    /// Prefetch extents rejected by validation (past EOF, zero-length).
    pub ra_rejected: u64,
    /// Prefetch I/Os issued from queues.
    pub prefetches_issued: u64,
}

struct OpenFile {
    inode_idx: usize,
    /// End offset of the previous read, for sequential detection.
    last_end: Option<u64>,
    /// The per-file prefetch queue (§4.1.2), in logical block numbers.
    prefetch_q: VecDeque<u32>,
    ra: Option<Box<dyn ReadAheadDelegate>>,
}

/// Bound on a per-file prefetch queue: "if a graft of the compute-ra
/// function asks for 100MB to be prefetched, it will not steal all of
/// the system's memory pages. Instead, the 100MB will be prefetched in
/// order, as pages become available" (§4.1.2). The queue holds the
/// not-yet-issued tail.
pub const MAX_PREFETCH_QUEUE: usize = 4096;

/// The mounted file system.
pub struct FileSystem {
    clock: Rc<VirtualClock>,
    disk: Disk,
    cache: BufferCache,
    sb: SuperBlock,
    inodes: Vec<Inode>,
    bitmap: Bitmap,
    open: HashMap<Fd, OpenFile>,
    next_fd: u64,
    stats: FsStats,
    trace: Option<Rc<vino_sim::trace::TracePlane>>,
    metrics: Option<Rc<vino_sim::metrics::MetricsPlane>>,
    profile: Option<Rc<vino_sim::profile::ProfilePlane>>,
}

impl FileSystem {
    /// Formats `disk` and mounts the fresh volume. `cache_blocks` sizes
    /// the buffer cache; `max_files` sizes the inode table.
    pub fn format(
        clock: Rc<VirtualClock>,
        mut disk: Disk,
        cache_blocks: usize,
        max_files: u32,
    ) -> FileSystem {
        let sb = SuperBlock::for_volume(disk.block_count() as u32, max_files);
        disk.write(BlockAddr(0), &sb.encode());
        let zero = [0u8; BLOCK_SIZE];
        for b in 1..sb.data_start {
            disk.write(BlockAddr(b as u64), &zero);
        }
        let data_blocks = sb.total_blocks - sb.data_start;
        FileSystem {
            cache: BufferCache::new(Rc::clone(&clock), cache_blocks),
            clock,
            disk,
            inodes: vec![Inode::default(); sb.max_inodes() as usize],
            bitmap: Bitmap::new(data_blocks),
            sb,
            open: HashMap::new(),
            next_fd: 3,
            stats: FsStats::default(),
            trace: None,
            metrics: None,
            profile: None,
        }
    }

    /// Mounts an existing volume, rebuilding in-memory metadata.
    pub fn mount(
        clock: Rc<VirtualClock>,
        mut disk: Disk,
        cache_blocks: usize,
    ) -> Result<FileSystem, FsError> {
        let sb = SuperBlock::decode(&disk.read(BlockAddr(0))).ok_or(FsError::BadVolume)?;
        let mut inodes = Vec::with_capacity(sb.max_inodes() as usize);
        for b in 0..sb.inode_blocks {
            let block = disk.read(BlockAddr(1 + b as u64));
            for i in 0..INODES_PER_BLOCK {
                let rec: [u8; INODE_SIZE] =
                    block[i * INODE_SIZE..(i + 1) * INODE_SIZE].try_into().expect("exact");
                inodes.push(Inode::decode(&rec));
            }
        }
        let data_blocks = sb.total_blocks - sb.data_start;
        let mut bytes = Vec::new();
        for b in 0..sb.bitmap_blocks {
            bytes.extend_from_slice(&disk.read(BlockAddr((1 + sb.inode_blocks + b) as u64)));
        }
        bytes.truncate((data_blocks as usize).div_ceil(8));
        Ok(FileSystem {
            cache: BufferCache::new(Rc::clone(&clock), cache_blocks),
            clock,
            disk,
            inodes,
            bitmap: Bitmap::from_bytes(bytes, data_blocks),
            sb,
            open: HashMap::new(),
            next_fd: 3,
            stats: FsStats::default(),
            trace: None,
            metrics: None,
            profile: None,
        })
    }

    /// Counters.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Disk counters.
    pub fn disk_stats(&self) -> vino_dev::disk::DiskStats {
        self.disk.stats()
    }

    /// Attaches a fault plane to the underlying disk (injected media
    /// errors and stalls; see `vino_sim::fault`).
    pub fn set_fault_plane(&mut self, plane: Rc<vino_sim::fault::FaultPlane>) {
        self.disk.set_fault_plane(plane);
    }

    /// Wires a trace plane: served reads/writes and issued prefetches
    /// emit `fs.*` events (see `docs/TRACING.md`).
    pub fn set_trace_plane(&mut self, plane: Rc<vino_sim::trace::TracePlane>) {
        self.trace = Some(plane);
    }

    /// Wires a metrics plane: reads/writes/prefetches bump their
    /// counters, and the `compute-ra` dispatch indirection cost is
    /// attributed to the graft it dispatches (see `docs/METRICS.md`).
    pub fn set_metrics_plane(&mut self, plane: Rc<vino_sim::metrics::MetricsPlane>) {
        self.metrics = Some(plane);
    }

    /// Wires a profile plane: the `compute-ra` dispatch indirection is
    /// charged to the invocation it produces and recorded as an
    /// `fs-dispatch` span in its span tree (see `docs/PROFILING.md`).
    pub fn set_profile_plane(&mut self, plane: Rc<vino_sim::profile::ProfilePlane>) {
        self.profile = Some(plane);
    }

    fn emit(&self, ev: vino_sim::trace::TraceEvent) {
        if let Some(tp) = &self.trace {
            tp.emit(ev);
        }
    }

    fn minc(&self, c: vino_sim::metrics::Counter) {
        if let Some(mp) = &self.metrics {
            mp.inc(c);
        }
    }

    /// Creates a file of `size` bytes, pre-allocated (extent-based
    /// first-fit, at most [`MAX_EXTENTS`] runs).
    pub fn create(&mut self, name: &str, size: u64) -> Result<(), FsError> {
        if name.len() > MAX_NAME {
            return Err(FsError::NameTooLong);
        }
        if self.lookup(name).is_some() {
            return Err(FsError::Exists(name.to_string()));
        }
        let idx = self.inodes.iter().position(|i| !i.used).ok_or(FsError::VolumeFull)?;
        let mut needed = (size.div_ceil(BLOCK_SIZE as u64)) as u32;
        if self.bitmap.free_count() < needed {
            return Err(FsError::NoSpace);
        }
        // First-fit: grab the largest prefix run repeatedly.
        let mut extents = Vec::new();
        while needed > 0 {
            if extents.len() == MAX_EXTENTS {
                // Roll back partial allocation.
                for e in &extents {
                    let de: &DiskExtent = e;
                    for b in de.start..de.start + de.len {
                        self.bitmap.clear(b - self.sb.data_start);
                    }
                }
                return Err(FsError::TooFragmented);
            }
            // Find the longest run up to `needed`.
            let mut take = needed;
            let start = loop {
                match self.bitmap.find_run(take) {
                    Some(s) => break s,
                    None => {
                        take /= 2;
                        if take == 0 {
                            for e in &extents {
                                let de: &DiskExtent = e;
                                for b in de.start..de.start + de.len {
                                    self.bitmap.clear(b - self.sb.data_start);
                                }
                            }
                            return Err(FsError::NoSpace);
                        }
                    }
                }
            };
            for b in start..start + take {
                self.bitmap.set(b);
            }
            extents.push(DiskExtent { start: start + self.sb.data_start, len: take });
            needed -= take;
        }
        // Zero the allocated blocks: reused blocks must not leak a
        // previous file's data (the §2.1 "reading another user's data"
        // hazard, at the file-system level).
        let zero = [0u8; BLOCK_SIZE];
        for e in &extents {
            for b in e.start..e.start + e.len {
                self.disk.write(BlockAddr(b as u64), &zero);
                self.cache.invalidate(BlockAddr(b as u64));
            }
        }
        self.inodes[idx] = Inode { used: true, name: name.to_string(), size, extents };
        self.flush_inode(idx);
        self.flush_bitmap();
        Ok(())
    }

    /// Deletes a file, freeing its blocks. Open descriptors go stale.
    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        let idx = self.lookup(name).ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let extents = self.inodes[idx].extents.clone();
        for e in extents {
            for b in e.start..e.start + e.len {
                self.bitmap.clear(b - self.sb.data_start);
                self.cache.invalidate(BlockAddr(b as u64));
            }
        }
        self.inodes[idx] = Inode::default();
        self.flush_inode(idx);
        self.flush_bitmap();
        Ok(())
    }

    /// Opens a file, returning a descriptor backed by a kernel open-file
    /// object with the default sequential read-ahead policy.
    pub fn open(&mut self, name: &str) -> Result<Fd, FsError> {
        let idx = self.lookup(name).ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.open.insert(
            fd,
            OpenFile { inode_idx: idx, last_end: None, prefetch_q: VecDeque::new(), ra: None },
        );
        Ok(fd)
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: Fd) {
        self.open.remove(&fd);
    }

    /// Size of the file behind `fd`.
    pub fn size_of(&self, fd: Fd) -> Result<u64, FsError> {
        Ok(self.inodes[self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx].size)
    }

    /// Installs a read-ahead graft on the open-file object, replacing
    /// the default sequential policy (Figure 1's `replace` call).
    pub fn set_ra_delegate(
        &mut self,
        fd: Fd,
        d: Box<dyn ReadAheadDelegate>,
    ) -> Result<(), FsError> {
        self.open.get_mut(&fd).ok_or(FsError::BadFd(fd))?.ra = Some(d);
        Ok(())
    }

    /// Removes the read-ahead graft, restoring the default policy (what
    /// a transaction abort does to the graft point).
    pub fn clear_ra_delegate(&mut self, fd: Fd) {
        if let Some(f) = self.open.get_mut(&fd) {
            f.ra = None;
        }
    }

    /// True if `fd` has a grafted read-ahead policy.
    pub fn has_ra_delegate(&self, fd: Fd) -> bool {
        self.open.get(&fd).is_some_and(|f| f.ra.is_some())
    }

    /// Reads `len` bytes at `offset`. Runs the read, then the
    /// `compute-ra` policy, queues validated prefetch extents, and
    /// drains the queue into free cache buffers (§4.1.2's full path).
    pub fn read(&mut self, fd: Fd, offset: u64, len: u64) -> Result<Vec<u8>, FsError> {
        let (inode_idx, sequential) = {
            let f = self.open.get(&fd).ok_or(FsError::BadFd(fd))?;
            (f.inode_idx, f.last_end == Some(offset))
        };
        let size = self.inodes[inode_idx].size;
        if offset + len > size {
            return Err(FsError::PastEof);
        }
        self.stats.reads += 1;
        self.minc(vino_sim::metrics::Counter::FsReads);
        self.emit(vino_sim::trace::TraceEvent::FsRead { fd: fd.0, len });
        // Read the covered blocks through the cache.
        let mut out = Vec::with_capacity(len as usize);
        let first = (offset / BLOCK_SIZE as u64) as u32;
        let last = ((offset + len - 1) / BLOCK_SIZE as u64) as u32;
        for lbn in first..=last {
            let abs = self.inodes[inode_idx].block_of(lbn).expect("within size");
            let block = self.cache.read(&mut self.disk, BlockAddr(abs as u64));
            let lo = if lbn == first { (offset % BLOCK_SIZE as u64) as usize } else { 0 };
            let hi = if lbn == last {
                ((offset + len - 1) % BLOCK_SIZE as u64) as usize + 1
            } else {
                BLOCK_SIZE
            };
            out.extend_from_slice(&block[lo..hi]);
        }
        // compute-ra: default or grafted (§4.1.2).
        let req = RaRequest { offset, len, sequential, file_size: size };
        let extents = {
            let metrics = self.metrics.clone();
            let profile = self.profile.clone();
            let f = self.open.get_mut(&fd).expect("checked");
            f.last_end = Some(offset + len);
            match f.ra.as_mut() {
                Some(graft) => {
                    self.stats.ra_graft_calls += 1;
                    // Dispatch indirection to the grafted method; the
                    // metrics plane attributes it to the invocation the
                    // dispatch produces.
                    let cost = Cycles(vino_sim::costs::INDIRECTION_CYCLES);
                    self.clock.charge(cost);
                    if let Some(mp) = &metrics {
                        mp.charge(vino_sim::metrics::Component::Indirection, cost);
                    }
                    if let Some(pp) = &profile {
                        pp.charge(vino_sim::metrics::Component::Indirection, cost);
                        pp.mark(vino_sim::profile::SpanKind::FsDispatch, cost);
                    }
                    graft.compute_ra(&req)
                }
                None => default_compute_ra(&req),
            }
        };
        self.enqueue_prefetch(fd, &extents)?;
        self.pump_prefetch(fd)?;
        Ok(out)
    }

    /// Writes `data` at `offset` (must stay within the preallocated
    /// size). Write-through.
    pub fn write(&mut self, fd: Fd, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let inode_idx = self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx;
        let size = self.inodes[inode_idx].size;
        if offset + data.len() as u64 > size {
            return Err(FsError::PastEof);
        }
        self.stats.writes += 1;
        self.minc(vino_sim::metrics::Counter::FsWrites);
        self.emit(vino_sim::trace::TraceEvent::FsWrite { fd: fd.0, len: data.len() as u64 });
        let mut pos = 0usize;
        while pos < data.len() {
            let abs_off = offset + pos as u64;
            let lbn = (abs_off / BLOCK_SIZE as u64) as u32;
            let in_block = (abs_off % BLOCK_SIZE as u64) as usize;
            let chunk = (BLOCK_SIZE - in_block).min(data.len() - pos);
            let abs = self.inodes[inode_idx].block_of(lbn).expect("within size");
            let addr = BlockAddr(abs as u64);
            let mut block = if in_block == 0 && chunk == BLOCK_SIZE {
                [0u8; BLOCK_SIZE]
            } else {
                self.cache.read(&mut self.disk, addr)
            };
            block[in_block..in_block + chunk].copy_from_slice(&data[pos..pos + chunk]);
            self.cache.write(&mut self.disk, addr, &block);
            pos += chunk;
        }
        Ok(())
    }

    /// Validates and queues prefetch extents on `fd`'s queue.
    fn enqueue_prefetch(&mut self, fd: Fd, extents: &[Extent]) -> Result<(), FsError> {
        let inode_idx = self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx;
        let size = self.inodes[inode_idx].size;
        let mut blocks = Vec::new();
        for e in extents {
            // Validation: results from (possibly grafted) policies are
            // checked before use — zero-length and past-EOF extents are
            // rejected, matching the victim-verification discipline.
            if e.len == 0 || e.offset >= size || e.offset + e.len > size {
                self.stats.ra_rejected += 1;
                continue;
            }
            self.stats.ra_accepted += 1;
            let first = (e.offset / BLOCK_SIZE as u64) as u32;
            let last = ((e.offset + e.len - 1) / BLOCK_SIZE as u64) as u32;
            for lbn in first..=last {
                blocks.push(lbn);
            }
        }
        let f = self.open.get_mut(&fd).expect("checked");
        for b in blocks {
            if f.prefetch_q.len() >= MAX_PREFETCH_QUEUE {
                break; // Bounded queue (§4.1.2).
            }
            if !f.prefetch_q.contains(&b) {
                f.prefetch_q.push_back(b);
            }
        }
        Ok(())
    }

    /// Issues queued prefetches "as memory becomes available" — i.e.
    /// while the cache's read-ahead quota has room.
    fn pump_prefetch(&mut self, fd: Fd) -> Result<(), FsError> {
        use crate::cache::PrefetchOutcome;
        let inode_idx = self.open.get(&fd).ok_or(FsError::BadFd(fd))?.inode_idx;
        while let Some(lbn) = self.open.get_mut(&fd).expect("checked").prefetch_q.pop_front() {
            let Some(abs) = self.inodes[inode_idx].block_of(lbn) else { continue };
            match self.cache.prefetch(&mut self.disk, BlockAddr(abs as u64)) {
                PrefetchOutcome::Issued => {
                    self.stats.prefetches_issued += 1;
                    self.minc(vino_sim::metrics::Counter::FsPrefetches);
                    self.emit(vino_sim::trace::TraceEvent::FsPrefetch { fd: fd.0 });
                }
                PrefetchOutcome::AlreadyCached => {}
                PrefetchOutcome::NoRoom => {
                    // Keep the request queued for the next opportunity.
                    self.open.get_mut(&fd).expect("checked").prefetch_q.push_front(lbn);
                    break;
                }
            }
        }
        Ok(())
    }

    /// Pending prefetch-queue length for `fd`.
    pub fn prefetch_queue_len(&self, fd: Fd) -> usize {
        self.open.get(&fd).map_or(0, |f| f.prefetch_q.len())
    }

    /// Unmounts: consumes the file system, returning the underlying
    /// disk (all metadata is written through, so a subsequent
    /// [`FileSystem::mount`] sees identical state).
    pub fn into_disk(self) -> Disk {
        self.disk
    }

    /// Lists file names on the volume.
    pub fn list(&self) -> Vec<&str> {
        self.inodes.iter().filter(|i| i.used).map(|i| i.name.as_str()).collect()
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.inodes.iter().position(|i| i.used && i.name == name)
    }

    fn flush_inode(&mut self, idx: usize) {
        let block_no = 1 + (idx / INODES_PER_BLOCK) as u64;
        let mut block = self.disk.read(BlockAddr(block_no));
        let off = (idx % INODES_PER_BLOCK) * INODE_SIZE;
        block[off..off + INODE_SIZE].copy_from_slice(&self.inodes[idx].encode());
        self.disk.write(BlockAddr(block_no), &block);
    }

    fn flush_bitmap(&mut self) {
        let bytes = self.bitmap.bytes().to_vec();
        let start = 1 + self.sb.inode_blocks as u64;
        for (i, chunk) in bytes.chunks(BLOCK_SIZE).enumerate() {
            let mut block = [0u8; BLOCK_SIZE];
            block[..chunk.len()].copy_from_slice(chunk);
            self.disk.write(BlockAddr(start + i as u64), &block);
        }
    }
}

impl fmt::Debug for FileSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSystem")
            .field("files", &self.inodes.iter().filter(|i| i.used).count())
            .field("open", &self.open.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// The default read-ahead policy: "The default read-ahead policy used by
/// VINO only prefetches when the user accesses a file sequentially"
/// (§4.1.2) — one block beyond the current read.
pub fn default_compute_ra(req: &RaRequest) -> Vec<Extent> {
    if !req.sequential {
        return Vec::new();
    }
    let next = req.offset + req.len;
    if next >= req.file_size {
        return Vec::new();
    }
    let len = (BLOCK_SIZE as u64).min(req.file_size - next);
    vec![Extent { offset: next, len }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(cache_blocks: usize) -> FileSystem {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        FileSystem::format(clock, disk, cache_blocks, 64)
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = fresh(16);
        fs.create("hello.txt", 8192).unwrap();
        let fd = fs.open("hello.txt").unwrap();
        let msg = b"the quick brown fox";
        fs.write(fd, 100, msg).unwrap();
        let back = fs.read(fd, 100, msg.len() as u64).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn read_spanning_blocks() {
        let mut fs = fresh(16);
        fs.create("span", 3 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("span").unwrap();
        let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fs.write(fd, BLOCK_SIZE as u64 / 2, &data).unwrap();
        let back = fs.read(fd, BLOCK_SIZE as u64 / 2, data.len() as u64).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn errors_surface() {
        let mut fs = fresh(4);
        assert!(matches!(fs.open("ghost"), Err(FsError::NotFound(_))));
        fs.create("a", 4096).unwrap();
        assert!(matches!(fs.create("a", 4096), Err(FsError::Exists(_))));
        let fd = fs.open("a").unwrap();
        assert!(matches!(fs.read(fd, 4000, 200), Err(FsError::PastEof)));
        assert!(matches!(fs.write(fd, 4096, b"x"), Err(FsError::PastEof)));
        fs.close(fd);
        assert!(matches!(fs.read(fd, 0, 1), Err(FsError::BadFd(_))));
        let long = "n".repeat(100);
        assert!(matches!(fs.create(&long, 1), Err(FsError::NameTooLong)));
    }

    #[test]
    fn no_space_reported() {
        let clock = VirtualClock::new();
        let disk = Disk::with_geometry(
            Rc::clone(&clock),
            vino_dev::disk::DiskGeometry { blocks: 64, ..Default::default() },
        );
        let mut fs = FileSystem::format(clock, disk, 4, 16);
        assert!(matches!(fs.create("big", 10 * 1024 * 1024), Err(FsError::NoSpace)));
    }

    #[test]
    fn remove_frees_space() {
        let mut fs = fresh(4);
        let free0 = fs.bitmap.free_count();
        fs.create("tmp", 10 * BLOCK_SIZE as u64).unwrap();
        assert_eq!(fs.bitmap.free_count(), free0 - 10);
        fs.remove("tmp").unwrap();
        assert_eq!(fs.bitmap.free_count(), free0);
        assert!(fs.list().is_empty());
    }

    #[test]
    fn mount_round_trip() {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        let mut fs = FileSystem::format(Rc::clone(&clock), disk, 8, 64);
        fs.create("persist", 2 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("persist").unwrap();
        fs.write(fd, 0, b"durable bytes").unwrap();
        // Re-mount on the same disk (move it out).
        let FileSystem { disk, .. } = fs;
        let mut fs2 = FileSystem::mount(Rc::clone(&clock), disk, 8).unwrap();
        assert_eq!(fs2.list(), vec!["persist"]);
        let fd2 = fs2.open("persist").unwrap();
        assert_eq!(fs2.read(fd2, 0, 13).unwrap(), b"durable bytes");
    }

    #[test]
    fn mount_rejects_unformatted() {
        let clock = VirtualClock::new();
        let disk = Disk::new(Rc::clone(&clock));
        assert!(matches!(FileSystem::mount(clock, disk, 8), Err(FsError::BadVolume)));
    }

    #[test]
    fn default_ra_prefetches_on_sequential_only() {
        let mut fs = fresh(16);
        fs.create("seq", 16 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("seq").unwrap();
        // Random read: no prefetch.
        fs.read(fd, 8 * BLOCK_SIZE as u64, 4096).unwrap();
        assert_eq!(fs.stats().prefetches_issued, 0);
        // Sequential follow-up: prefetch fires.
        fs.read(fd, 9 * BLOCK_SIZE as u64, 4096).unwrap();
        assert_eq!(fs.stats().prefetches_issued, 1);
        // And the next sequential read hits the prefetched block.
        let hits0 = fs.cache_stats().hits + fs.cache_stats().late_hits;
        fs.read(fd, 10 * BLOCK_SIZE as u64, 4096).unwrap();
        assert!(fs.cache_stats().hits + fs.cache_stats().late_hits > hits0);
    }

    #[test]
    fn grafted_ra_replaces_default() {
        // The §4.1.2 application: random access with advance knowledge.
        let mut fs = fresh(16);
        fs.create("db", 32 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("db").unwrap();
        // Policy: always prefetch block 20 next.
        fs.set_ra_delegate(
            fd,
            Box::new(|_req: &RaRequest| {
                vec![Extent { offset: 20 * BLOCK_SIZE as u64, len: BLOCK_SIZE as u64 }]
            }),
        )
        .unwrap();
        fs.read(fd, 0, 4096).unwrap();
        assert_eq!(fs.stats().ra_graft_calls, 1);
        assert_eq!(fs.stats().prefetches_issued, 1);
        // Wait out the I/O, then the random read is a hit.
        fs.clock.charge(Cycles::from_ms(50));
        let misses0 = fs.cache_stats().misses;
        fs.read(fd, 20 * BLOCK_SIZE as u64, 4096).unwrap();
        assert_eq!(fs.cache_stats().misses, misses0, "prefetched block must hit");
    }

    #[test]
    fn hostile_ra_extents_rejected() {
        let mut fs = fresh(8);
        fs.create("f", 4 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("f").unwrap();
        fs.set_ra_delegate(
            fd,
            Box::new(|_req: &RaRequest| {
                vec![
                    Extent { offset: 1 << 40, len: 4096 }, // Past EOF.
                    Extent { offset: 0, len: 0 },          // Zero length.
                    Extent { offset: 4096, len: 1 << 40 }, // Overflowing.
                ]
            }),
        )
        .unwrap();
        fs.read(fd, 0, 64).unwrap();
        assert_eq!(fs.stats().ra_rejected, 3);
        assert_eq!(fs.stats().ra_accepted, 0);
        assert_eq!(fs.stats().prefetches_issued, 0);
    }

    #[test]
    fn hundred_mb_request_is_bounded() {
        // The §4.1.2 promise: a graft asking for a huge prefetch cannot
        // steal all memory; the queue bounds it and the cache gates it.
        let mut fs = fresh(8); // Only 8 buffers.
        fs.create("big", 8192 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("big").unwrap();
        fs.set_ra_delegate(
            fd,
            Box::new(|req: &RaRequest| {
                // "Prefetch everything."
                vec![Extent { offset: 0, len: req.file_size }]
            }),
        )
        .unwrap();
        fs.read(fd, 0, 64).unwrap();
        // Prefetch held at most the read-ahead quota of buffers; the
        // queue holds a bounded tail; nothing exploded.
        assert!(fs.cache_stats().prefetches <= 8);
        assert!(fs.prefetch_queue_len(fd) <= MAX_PREFETCH_QUEUE);
    }

    #[test]
    fn clear_ra_restores_default() {
        let mut fs = fresh(8);
        fs.create("f", 8 * BLOCK_SIZE as u64).unwrap();
        let fd = fs.open("f").unwrap();
        fs.set_ra_delegate(fd, Box::new(|_req: &RaRequest| Vec::new())).unwrap();
        assert!(fs.has_ra_delegate(fd));
        fs.clear_ra_delegate(fd);
        assert!(!fs.has_ra_delegate(fd));
        // Default sequential policy active again.
        fs.read(fd, 0, 4096).unwrap();
        fs.read(fd, 4096, 4096).unwrap();
        assert!(fs.stats().prefetches_issued >= 1);
        assert_eq!(fs.stats().ra_graft_calls, 0, "graft never ran");
    }

    #[test]
    fn fragmented_allocation_uses_multiple_extents() {
        let mut fs = fresh(4);
        // Fragment free space: a,b,c then remove b.
        fs.create("a", 10 * BLOCK_SIZE as u64).unwrap();
        fs.create("b", 10 * BLOCK_SIZE as u64).unwrap();
        fs.create("c", 10 * BLOCK_SIZE as u64).unwrap();
        fs.remove("b").unwrap();
        // A 15-block file cannot fit one run before c... actually the
        // tail after c is contiguous, so force use of the hole by
        // filling the tail first.
        let tail = fs.bitmap.free_count() - 10;
        fs.create("filler", tail as u64 * BLOCK_SIZE as u64).unwrap();
        // Only b's 10-block hole remains.
        fs.create("hole", 10 * BLOCK_SIZE as u64).unwrap();
        let idx = fs.lookup("hole").unwrap();
        assert_eq!(fs.inodes[idx].block_count(), 10);
        let fd = fs.open("hole").unwrap();
        fs.write(fd, 0, b"fits in the hole").unwrap();
        assert_eq!(fs.read(fd, 0, 16).unwrap(), b"fits in the hole");
    }
}

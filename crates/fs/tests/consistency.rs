//! Model-based consistency tests for the file system, driven by a
//! seeded deterministic generator (formerly proptest).
//!
//! Runs arbitrary operation sequences against both the real extent FS
//! (on the simulated disk, through the buffer cache and prefetch
//! machinery) and a trivial in-memory model, asserting observational
//! equivalence — including across an unmount/remount cycle.

use std::collections::HashMap;
use std::rc::Rc;

use vino_dev::disk::{Disk, DiskGeometry};
use vino_fs::{Fd, FileSystem};
use vino_sim::{SplitMix64, VirtualClock};

#[derive(Debug, Clone)]
enum Op {
    Create { name: u8, blocks: u8 },
    Remove { name: u8 },
    Write { name: u8, offset: u16, data: Vec<u8> },
    Read { name: u8, offset: u16, len: u8 },
    Remount,
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.below(5) {
        0 => Op::Create { name: rng.below(5) as u8, blocks: rng.range(1, 5) as u8 },
        1 => Op::Remove { name: rng.below(5) as u8 },
        2 => {
            let len = rng.range(1, 63) as usize;
            Op::Write {
                name: rng.below(5) as u8,
                offset: rng.below(2048) as u16,
                data: (0..len).map(|_| rng.next_u64() as u8).collect(),
            }
        }
        3 => Op::Read {
            name: rng.below(5) as u8,
            offset: rng.below(2048) as u16,
            len: rng.range(1, 63) as u8,
        },
        _ => Op::Remount,
    }
}

#[derive(Default)]
struct Model {
    files: HashMap<String, Vec<u8>>,
}

struct Real {
    fs: FileSystem,
    clock: Rc<VirtualClock>,
    fds: HashMap<String, Fd>,
}

impl Real {
    fn new() -> Real {
        let clock = VirtualClock::new();
        let disk = Disk::with_geometry(
            Rc::clone(&clock),
            DiskGeometry { blocks: 512, ..DiskGeometry::default() },
        );
        Real { fs: FileSystem::format(Rc::clone(&clock), disk, 8, 16), clock, fds: HashMap::new() }
    }

    fn fd(&mut self, name: &str) -> Option<Fd> {
        if let Some(fd) = self.fds.get(name) {
            return Some(*fd);
        }
        let fd = self.fs.open(name).ok()?;
        self.fds.insert(name.to_string(), fd);
        Some(fd)
    }
}

fn name_of(n: u8) -> String {
    format!("file-{n}")
}

#[test]
fn real_fs_matches_model() {
    let mut rng = SplitMix64::new(0xF5_C0817);
    for _case in 0..64 {
        let n_ops = rng.range(1, 39) as usize;
        let mut model = Model::default();
        let mut real = Real::new();
        for _ in 0..n_ops {
            match gen_op(&mut rng) {
                Op::Create { name, blocks } => {
                    let name = name_of(name);
                    let size = blocks as u64 * 4096;
                    let model_has = model.files.contains_key(&name);
                    let res = real.fs.create(&name, size);
                    if model_has {
                        assert!(res.is_err(), "duplicate create must fail");
                    } else if res.is_ok() {
                        model.files.insert(name, vec![0; size as usize]);
                    }
                    // (A real failure without a model duplicate is
                    // legitimate exhaustion: volume/inode pressure.)
                }
                Op::Remove { name } => {
                    let name = name_of(name);
                    let model_has = model.files.remove(&name).is_some();
                    let res = real.fs.remove(&name);
                    assert_eq!(res.is_ok(), model_has, "remove({name}) divergence");
                    real.fds.remove(&name);
                }
                Op::Write { name, offset, data } => {
                    let name = name_of(name);
                    let Some(content_len) = model.files.get(&name).map(Vec::len) else {
                        continue;
                    };
                    let Some(fd) = real.fd(&name) else {
                        panic!("model has {name} but fs cannot open it");
                    };
                    let fits = offset as usize + data.len() <= content_len;
                    let res = real.fs.write(fd, offset as u64, &data);
                    assert_eq!(res.is_ok(), fits, "write fit divergence");
                    if fits {
                        let file = model.files.get_mut(&name).expect("checked");
                        file[offset as usize..offset as usize + data.len()].copy_from_slice(&data);
                    }
                }
                Op::Read { name, offset, len } => {
                    let name = name_of(name);
                    let Some(content) = model.files.get(&name) else { continue };
                    let Some(fd) = real.fd(&name) else {
                        panic!("model has {name} but fs cannot open it");
                    };
                    let fits = offset as usize + len as usize <= content.len();
                    let res = real.fs.read(fd, offset as u64, len as u64);
                    assert_eq!(res.is_ok(), fits, "read fit divergence");
                    if let Ok(bytes) = res {
                        let expect = &content[offset as usize..offset as usize + len as usize];
                        assert_eq!(&bytes[..], expect, "content divergence on {name}");
                    }
                }
                Op::Remount => {
                    // Tear down and remount from the same disk: all
                    // metadata and data must survive.
                    let clock = Rc::clone(&real.clock);
                    let old = std::mem::replace(&mut real, Real::new());
                    let FileSystem { .. } = &old.fs;
                    let disk = old.fs.into_disk();
                    real = Real {
                        fs: FileSystem::mount(Rc::clone(&clock), disk, 8)
                            .expect("formatted volume must remount"),
                        clock,
                        fds: HashMap::new(),
                    };
                }
            }
        }
        // Final sweep: every model file is fully readable and correct.
        let names: Vec<String> = model.files.keys().cloned().collect();
        for name in names {
            let content = model.files[&name].clone();
            let fd = real.fd(&name).expect("model file must open");
            let bytes = real.fs.read(fd, 0, content.len() as u64).expect("full read");
            assert_eq!(bytes, content, "final content of {name}");
        }
    }
}

//! End-to-end MiSFIT randomised tests, driven by a seeded deterministic
//! generator (formerly proptest): ANY untrusted program, once processed
//! by the tool (instrument + sign) and loaded through the verifier, can
//! never write kernel memory — the paper's central SFI claim, checked
//! over the full pipeline rather than hand-instrumented code.

use std::rc::Rc;

use vino_misfit::{MisfitTool, SigningKey};
use vino_sim::{SplitMix64, VirtualClock};
use vino_vm::interp::{Exit, NullKernel, Trap, Vm};
use vino_vm::isa::{AluOp, Cond, Instr, Program, Reg};
use vino_vm::mem::{AddressSpace, Protection};

/// User registers exclude the reserved sandbox register r14.
fn gen_reg(rng: &mut SplitMix64) -> Reg {
    let r = rng.below(15) as u8;
    Reg(if r == 14 { 15 } else { r })
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Shl,
    AluOp::Shr,
];

const CONDS: &[Cond] = &[Cond::Eq, Cond::Ne, Cond::LtU, Cond::GeU, Cond::LtS, Cond::GeS];

/// Raw, *hostile* source instructions: loads and stores through totally
/// arbitrary addresses, wild immediates — everything a malicious graft
/// author could write, minus the constructs the tool statically rejects.
fn gen_raw_instr(rng: &mut SplitMix64, max_target: u32) -> Instr {
    match rng.below(13) {
        0 => Instr::Const { d: gen_reg(rng), imm: rng.next_u64() as i64 },
        1 => Instr::Mov { d: gen_reg(rng), s: gen_reg(rng) },
        2 => Instr::Alu {
            op: ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize],
            d: gen_reg(rng),
            a: gen_reg(rng),
            b: gen_reg(rng),
        },
        3 => Instr::AluI {
            op: ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize],
            d: gen_reg(rng),
            a: gen_reg(rng),
            imm: rng.next_u64() as i32 as i64,
        },
        4 => Instr::LoadW { d: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        5 => Instr::StoreW { s: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        6 => Instr::LoadB { d: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        7 => Instr::StoreB { s: gen_reg(rng), addr: gen_reg(rng), off: rng.next_u64() as i32 },
        8 => Instr::Jmp { target: rng.below(max_target as u64) as u32 },
        9 => Instr::Br {
            cond: CONDS[rng.below(CONDS.len() as u64) as usize],
            a: gen_reg(rng),
            b: gen_reg(rng),
            target: rng.below(max_target as u64) as u32,
        },
        10 => Instr::CallI { target: gen_reg(rng) },
        11 => Instr::Halt { result: gen_reg(rng) },
        _ => Instr::Nop,
    }
}

fn gen_raw_program(rng: &mut SplitMix64) -> Program {
    let n = rng.range(1, 49) as u32;
    let mut instrs: Vec<Instr> = (0..n).map(|_| gen_raw_instr(rng, n)).collect();
    // Ensure termination is at least possible.
    instrs.push(Instr::Halt { result: Reg(0) });
    Program::new("hostile", instrs)
}

/// Tool-processed hostile programs never corrupt kernel memory.
#[test]
fn processed_hostile_programs_cannot_corrupt_kernel() {
    let mut rng = SplitMix64::new(0x405_7113);
    for _case in 0..300 {
        let prog = gen_raw_program(&mut rng);
        let tool = MisfitTool::new(SigningKey::from_passphrase("e2e"));
        let (image, _) = tool.process(&prog).expect("raw programs must instrument");
        let loaded = tool.verify_and_decode(&image).expect("fresh image must verify");

        let mem = AddressSpace::new(4096, 4096, Protection::Sfi);
        let mut vm = Vm::new(mem);
        vm.mem.kernel_bytes_mut(0, 8).unwrap().copy_from_slice(b"SENTINEL");
        let clock = VirtualClock::new();
        let mut fuel = 20_000;
        let exit = vm.run(&loaded, &mut NullKernel, &clock, &mut fuel);
        // No memory fault may escape the sandbox. ForbiddenCall/WildJump
        // traps are fine (the point of CheckCall); so is preemption.
        if let Exit::Trapped(Trap::Mem(e)) = &exit {
            panic!("SFI breach: {e:?} in program {prog:?}");
        }
        assert_eq!(vm.mem.kernel_write_count(), 0);
        assert_eq!(vm.mem.kernel_bytes(0, 8).unwrap(), b"SENTINEL");
    }
}

/// Any single-bit flip anywhere in a signed image is rejected.
#[test]
fn any_bitflip_breaks_the_signature() {
    let mut rng = SplitMix64::new(0xB17_F11B);
    for _case in 0..300 {
        let prog = gen_raw_program(&mut rng);
        let tool = MisfitTool::new(SigningKey::from_passphrase("e2e"));
        let (mut image, _) = tool.process(&prog).unwrap();
        let idx = rng.below(image.bytes.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        image.bytes[idx] ^= 1 << bit;
        assert!(tool.verify_and_decode(&image).is_err());
    }
}

/// Instrumentation preserves halting results for programs that only
/// touch their own segment via in-segment addresses.
#[test]
fn instrumentation_preserves_tame_programs() {
    let mut rng = SplitMix64::new(0x7A_4E17);
    for _case in 0..64 {
        // A tame graft: writes vals into its segment, sums them back.
        let n = rng.range(1, 19) as usize;
        let vals: Vec<u32> = (0..n).map(|_| rng.below(1000) as u32).collect();
        let mem_probe = AddressSpace::new(4096, 0, Protection::Unprotected);
        let base = mem_probe.seg_base() as i64;
        let mut instrs = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            instrs.push(Instr::Const { d: Reg(1), imm: base + 4 * i as i64 });
            instrs.push(Instr::Const { d: Reg(2), imm: *v as i64 });
            instrs.push(Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 });
        }
        instrs.push(Instr::Const { d: Reg(3), imm: 0 });
        for i in 0..vals.len() {
            instrs.push(Instr::Const { d: Reg(1), imm: base + 4 * i as i64 });
            instrs.push(Instr::LoadW { d: Reg(2), addr: Reg(1), off: 0 });
            instrs.push(Instr::Alu { op: AluOp::Add, d: Reg(3), a: Reg(3), b: Reg(2) });
        }
        instrs.push(Instr::Halt { result: Reg(3) });
        let prog = Program::new("tame", instrs);

        let expected: u64 = vals.iter().map(|v| *v as u64).sum();

        // Raw execution.
        let mut vm_raw = Vm::new(AddressSpace::new(4096, 0, Protection::Unprotected));
        let clock: Rc<VirtualClock> = VirtualClock::new();
        let mut fuel = 1_000_000;
        let raw = vm_raw.run(&prog, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(raw, Exit::Halted(expected));

        // Instrumented execution.
        let tool = MisfitTool::new(SigningKey::from_passphrase("e2e"));
        let (image, stats) = tool.process(&prog).unwrap();
        let inst = tool.verify_and_decode(&image).unwrap();
        assert_eq!(stats.mem_accesses, 2 * vals.len());
        let mut vm_sfi = Vm::new(AddressSpace::new(4096, 0, Protection::Sfi));
        let mut fuel = 1_000_000;
        let sfi = vm_sfi.run(&inst, &mut NullKernel, &clock, &mut fuel);
        assert_eq!(sfi, Exit::Halted(expected));
    }
}

//! End-to-end MiSFIT property: ANY untrusted program, once processed by
//! the tool (instrument + sign) and loaded through the verifier, can
//! never write kernel memory — the paper's central SFI claim, checked
//! over the full pipeline rather than hand-instrumented code.

use std::rc::Rc;

use proptest::prelude::*;

use vino_misfit::{MisfitTool, SigningKey};
use vino_sim::VirtualClock;
use vino_vm::interp::{Exit, NullKernel, Trap, Vm};
use vino_vm::isa::{AluOp, Cond, Instr, Program, Reg};
use vino_vm::mem::{AddressSpace, Protection};

/// User registers exclude the reserved sandbox register r14.
fn reg() -> impl Strategy<Value = Reg> {
    prop_oneof![(0u8..14).prop_map(Reg), Just(Reg(15))]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::LtU),
        Just(Cond::GeU),
        Just(Cond::LtS),
        Just(Cond::GeS),
    ]
}

/// Raw, *hostile* source instructions: loads and stores through totally
/// arbitrary addresses, wild immediates — everything a malicious graft
/// author could write, minus the constructs the tool statically rejects.
fn raw_instr(max_target: u32) -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg(), any::<i64>()).prop_map(|(d, imm)| Instr::Const { d, imm }),
        (reg(), reg()).prop_map(|(d, s)| Instr::Mov { d, s }),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, d, a, b)| Instr::Alu { op, d, a, b }),
        (alu_op(), reg(), reg(), any::<i32>())
            .prop_map(|(op, d, a, imm)| Instr::AluI { op, d, a, imm: imm as i64 }),
        (reg(), reg(), any::<i32>()).prop_map(|(d, addr, off)| Instr::LoadW { d, addr, off }),
        (reg(), reg(), any::<i32>()).prop_map(|(s, addr, off)| Instr::StoreW { s, addr, off }),
        (reg(), reg(), any::<i32>()).prop_map(|(d, addr, off)| Instr::LoadB { d, addr, off }),
        (reg(), reg(), any::<i32>()).prop_map(|(s, addr, off)| Instr::StoreB { s, addr, off }),
        (0..max_target).prop_map(|target| Instr::Jmp { target }),
        (cond(), reg(), reg(), 0..max_target)
            .prop_map(|(cond, a, b, target)| Instr::Br { cond, a, b, target }),
        reg().prop_map(|r| Instr::CallI { target: r }),
        reg().prop_map(|r| Instr::Halt { result: r }),
        Just(Instr::Nop),
    ]
}

fn raw_program() -> impl Strategy<Value = Program> {
    (1usize..50).prop_flat_map(|n| {
        proptest::collection::vec(raw_instr(n as u32), n).prop_map(|mut instrs| {
            // Ensure termination is at least possible.
            instrs.push(Instr::Halt { result: Reg(0) });
            Program::new("hostile", instrs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Tool-processed hostile programs never corrupt kernel memory.
    #[test]
    fn processed_hostile_programs_cannot_corrupt_kernel(prog in raw_program()) {
        let tool = MisfitTool::new(SigningKey::from_passphrase("e2e"));
        let (image, _) = tool.process(&prog).expect("raw programs must instrument");
        let loaded = tool.verify_and_decode(&image).expect("fresh image must verify");

        let mem = AddressSpace::new(4096, 4096, Protection::Sfi);
        let mut vm = Vm::new(mem);
        vm.mem.kernel_bytes_mut(0, 8).unwrap().copy_from_slice(b"SENTINEL");
        let clock = VirtualClock::new();
        let mut fuel = 20_000;
        let exit = vm.run(&loaded, &mut NullKernel, &clock, &mut fuel);
        // No memory fault may escape the sandbox. ForbiddenCall/WildJump
        // traps are fine (the point of CheckCall); so is preemption.
        if let Exit::Trapped(Trap::Mem(e)) = &exit {
            prop_assert!(false, "SFI breach: {e:?} in program {prog:?}");
        }
        prop_assert_eq!(vm.mem.kernel_write_count(), 0);
        prop_assert_eq!(vm.mem.kernel_bytes(0, 8).unwrap(), b"SENTINEL");
    }

    /// Any single-bit flip anywhere in a signed image is rejected.
    #[test]
    fn any_bitflip_breaks_the_signature(
        prog in raw_program(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let tool = MisfitTool::new(SigningKey::from_passphrase("e2e"));
        let (mut image, _) = tool.process(&prog).unwrap();
        let idx = ((image.bytes.len() - 1) as f64 * byte_frac) as usize;
        image.bytes[idx] ^= 1 << bit;
        prop_assert!(tool.verify_and_decode(&image).is_err());
    }

    /// Instrumentation preserves halting results for programs that only
    /// touch their own segment via in-segment addresses.
    #[test]
    fn instrumentation_preserves_tame_programs(vals in proptest::collection::vec(0u32..1000, 1..20)) {
        // A tame graft: writes vals into its segment, sums them back.
        let mem_probe = AddressSpace::new(4096, 0, Protection::Unprotected);
        let base = mem_probe.seg_base() as i64;
        let mut instrs = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            instrs.push(Instr::Const { d: Reg(1), imm: base + 4 * i as i64 });
            instrs.push(Instr::Const { d: Reg(2), imm: *v as i64 });
            instrs.push(Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 });
        }
        instrs.push(Instr::Const { d: Reg(3), imm: 0 });
        for i in 0..vals.len() {
            instrs.push(Instr::Const { d: Reg(1), imm: base + 4 * i as i64 });
            instrs.push(Instr::LoadW { d: Reg(2), addr: Reg(1), off: 0 });
            instrs.push(Instr::Alu { op: AluOp::Add, d: Reg(3), a: Reg(3), b: Reg(2) });
        }
        instrs.push(Instr::Halt { result: Reg(3) });
        let prog = Program::new("tame", instrs);

        let expected: u64 = vals.iter().map(|v| *v as u64).sum();

        // Raw execution.
        let mut vm_raw = Vm::new(AddressSpace::new(4096, 0, Protection::Unprotected));
        let clock: Rc<VirtualClock> = VirtualClock::new();
        let mut fuel = 1_000_000;
        let raw = vm_raw.run(&prog, &mut NullKernel, &clock, &mut fuel);
        prop_assert_eq!(raw, Exit::Halted(expected));

        // Instrumented execution.
        let tool = MisfitTool::new(SigningKey::from_passphrase("e2e"));
        let (image, stats) = tool.process(&prog).unwrap();
        let inst = tool.verify_and_decode(&image).unwrap();
        prop_assert_eq!(stats.mem_accesses, 2 * vals.len());
        let mut vm_sfi = Vm::new(AddressSpace::new(4096, 0, Protection::Sfi));
        let mut fuel = 1_000_000;
        let sfi = vm_sfi.run(&inst, &mut NullKernel, &clock, &mut fuel);
        prop_assert_eq!(sfi, Exit::Halted(expected));
    }
}

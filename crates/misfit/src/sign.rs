//! Code signing of graft images.
//!
//! §3.3: "VINO must ensure that code loaded into the kernel has been
//! processed by MiSFIT. MiSFIT computes a cryptographic digital signature
//! of the graft and stores it with the compiled code. When VINO loads a
//! graft it recomputes the checksum and compares it with the saved copy.
//! If the two do not match the graft is not loaded."
//!
//! The trust model is a shared secret between the trusted MiSFIT tool
//! and the kernel (the paper points at Authenticode-style commercial
//! tooling; an HMAC keeps the reproduction self-contained while giving
//! the same property: only images produced by the keyed tool verify).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use vino_sim::fault::{FaultPlane, FaultSite};
use vino_vm::encode::{decode, encode, DecodeError};
use vino_vm::isa::Program;

use crate::instrument::{instrument, InstrumentError, InstrumentStats};
use crate::sha256::{ct_eq, hmac, DIGEST_LEN};

/// The shared signing secret held by the MiSFIT tool and the kernel.
#[derive(Clone)]
pub struct SigningKey([u8; 32]);

impl SigningKey {
    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> SigningKey {
        SigningKey(bytes)
    }

    /// Derives a key from a passphrase (demo/test convenience).
    pub fn from_passphrase(phrase: &str) -> SigningKey {
        SigningKey(crate::sha256::digest(phrase.as_bytes()))
    }

    fn sign(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        hmac(&self.0, data)
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never leak key material through Debug output.
        write!(f, "SigningKey(..)")
    }
}

/// A compiled, instrumented, signed graft — what an application hands to
/// the kernel's `graft_install` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedImage {
    /// Encoded instrumented program bytes ([`vino_vm::encode`] format).
    pub bytes: Vec<u8>,
    /// HMAC-SHA-256 of `bytes` under the tool's signing key.
    pub signature: [u8; DIGEST_LEN],
}

/// Verification failures at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Signature mismatch: the image was not produced by the trusted
    /// tool, or was modified afterwards. The graft is not loaded.
    BadSignature,
    /// The signature verified but the bytes do not decode — possible
    /// only if the tool itself emitted garbage.
    Undecodable(DecodeError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadSignature => write!(f, "graft signature verification failed"),
            VerifyError::Undecodable(e) => write!(f, "signed image does not decode: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The MiSFIT tool: instruments, encodes and signs graft programs.
#[derive(Debug, Clone)]
pub struct MisfitTool {
    key: SigningKey,
    fault: RefCell<Option<Rc<FaultPlane>>>,
}

impl MisfitTool {
    /// Creates a tool instance holding the signing key.
    pub fn new(key: SigningKey) -> MisfitTool {
        MisfitTool { key, fault: RefCell::new(None) }
    }

    /// Attaches a fault plane: each
    /// [`verify_and_decode`](Self::verify_and_decode) call visits
    /// [`FaultSite::ImageCorrupt`]; when it fires the image is rejected
    /// as if corrupted in transit. `&self` because the kernel holds its
    /// tool instance behind shared references.
    pub fn set_fault_plane(&self, plane: Rc<FaultPlane>) {
        *self.fault.borrow_mut() = Some(plane);
    }

    /// The full MiSFIT pipeline: SFI-instrument `prog`, encode it, and
    /// sign the encoded bytes. This is what "compiled with the correct
    /// compiler" (§2.3) means in this reproduction.
    pub fn process(
        &self,
        prog: &Program,
    ) -> Result<(SignedImage, InstrumentStats), InstrumentError> {
        let (instrumented, stats) = instrument(prog)?;
        Ok((self.seal(&instrumented), stats))
    }

    /// Signs an already-instrumented program without re-instrumenting.
    /// Used by the unsafe-path benchmarks, which deliberately sign raw
    /// programs to isolate SFI overhead from signature checking.
    pub fn seal(&self, prog: &Program) -> SignedImage {
        let bytes = encode(prog);
        let signature = self.key.sign(&bytes);
        SignedImage { bytes, signature }
    }

    /// Kernel-side verification: recompute the checksum, compare, and
    /// decode. Exactly the §3.3 load sequence.
    pub fn verify_and_decode(&self, image: &SignedImage) -> Result<Program, VerifyError> {
        if self.fault.borrow().as_ref().is_some_and(|p| p.fire(FaultSite::ImageCorrupt)) {
            // Injected corruption: the checksum comparison fails exactly
            // as it would for a genuinely damaged image.
            return Err(VerifyError::BadSignature);
        }
        let expect = self.key.sign(&image.bytes);
        if !ct_eq(&expect, &image.signature) {
            return Err(VerifyError::BadSignature);
        }
        decode(&image.bytes).map_err(VerifyError::Undecodable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_vm::isa::{Instr, Reg};

    fn tool() -> MisfitTool {
        MisfitTool::new(SigningKey::from_passphrase("vino-test-key"))
    }

    fn sample() -> Program {
        Program::new(
            "sample",
            vec![
                Instr::Const { d: Reg(1), imm: 5 },
                Instr::LoadW { d: Reg(2), addr: Reg(1), off: 0 },
                Instr::Halt { result: Reg(2) },
            ],
        )
    }

    #[test]
    fn process_verify_round_trip() {
        let t = tool();
        let (img, stats) = t.process(&sample()).unwrap();
        assert_eq!(stats.mem_accesses, 1);
        let prog = t.verify_and_decode(&img).unwrap();
        assert_eq!(prog.name, "sample");
        // The decoded program is the *instrumented* one.
        assert!(prog.instrs.iter().any(|i| matches!(i, Instr::Clamp { .. })));
    }

    #[test]
    fn tampered_code_rejected() {
        let t = tool();
        let (mut img, _) = t.process(&sample()).unwrap();
        // Flip one bit anywhere in the code: signature must fail.
        let n = img.bytes.len();
        img.bytes[n / 2] ^= 0x01;
        assert_eq!(t.verify_and_decode(&img), Err(VerifyError::BadSignature));
    }

    #[test]
    fn forged_signature_rejected() {
        let t = tool();
        let (mut img, _) = t.process(&sample()).unwrap();
        img.signature[0] ^= 0xFF;
        assert_eq!(t.verify_and_decode(&img), Err(VerifyError::BadSignature));
    }

    #[test]
    fn unprocessed_code_rejected() {
        // An attacker who bypasses MiSFIT and signs with the wrong key.
        let attacker = MisfitTool::new(SigningKey::from_passphrase("attacker"));
        let img = attacker.seal(&sample());
        assert_eq!(tool().verify_and_decode(&img), Err(VerifyError::BadSignature));
    }

    #[test]
    fn injected_corruption_rejects_then_passes() {
        use vino_sim::fault::{FaultPlane, FaultSite};
        let t = tool();
        let (img, _) = t.process(&sample()).unwrap();
        let plane = FaultPlane::seeded(0);
        plane.arm(FaultSite::ImageCorrupt, 1);
        t.set_fault_plane(plane);
        assert_eq!(t.verify_and_decode(&img), Err(VerifyError::BadSignature));
        assert!(t.verify_and_decode(&img).is_ok(), "one-shot spent; image is fine");
    }

    #[test]
    fn key_debug_does_not_leak() {
        let k = SigningKey::from_passphrase("secret");
        assert_eq!(format!("{k:?}"), "SigningKey(..)");
    }

    #[test]
    fn seal_skips_instrumentation() {
        let t = tool();
        let img = t.seal(&sample());
        let prog = t.verify_and_decode(&img).unwrap();
        assert!(!prog.instrs.iter().any(|i| matches!(i, Instr::Clamp { .. })));
    }

    #[test]
    fn distinct_keys_distinct_signatures() {
        let a = MisfitTool::new(SigningKey::from_passphrase("a")).seal(&sample());
        let b = MisfitTool::new(SigningKey::from_passphrase("b")).seal(&sample());
        assert_eq!(a.bytes, b.bytes);
        assert_ne!(a.signature, b.signature);
    }
}

//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The paper relies on commercially available code-signing tools
//! (Authenticode, §3.3 \[10\]); this reproduction builds the primitive
//! itself so the signing path has no external dependencies. The
//! implementation is the straightforward specification transcription —
//! no unsafe code, no lookup-table tricks — and is validated against the
//! published NIST test vectors plus a million-'a' stress vector.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;

/// Block size in bytes (used by HMAC).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 { state: H0, buf: [0; BLOCK_LEN], buf_len: 0, total_len: 0 }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(bit_len);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self, bit_len: u64) {
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        // Bytes needed so that (buf_len + pad_len + 8) % 64 == 0.
        let pad_len = if self.buf_len < 56 { 56 - self.buf_len } else { 120 - self.buf_len };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // Manual update that must not touch total_len.
        let data = pad[..pad_len + 8].to_vec();
        let save = self.total_len;
        self.update(&data);
        self.total_len = save;
        debug_assert_eq!(self.buf_len, 0);
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot convenience: the SHA-256 digest of `data`.
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 (RFC 2104) over `data` with `key`.
pub fn hmac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time digest comparison (avoids signature-oracle timing).
pub fn ct_eq(a: &[u8; DIGEST_LEN], b: &[u8; DIGEST_LEN]) -> bool {
    let mut diff = 0u8;
    for i in 0..DIGEST_LEN {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            hex(&digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Lengths that straddle the 55/56-byte padding boundary.
        for len in 54..=66usize {
            let data = vec![0x5Au8; len];
            let d1 = digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn rfc4231_hmac_case1() {
        let key = [0x0bu8; 20];
        let out = hmac(&key, b"Hi There");
        assert_eq!(hex(&out), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_hmac_case2() {
        let out = hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&out), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_hmac_long_key() {
        // Case 6: 131-byte key (forces the key-hashing path).
        let key = [0xaau8; 131];
        let out = hmac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&out), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn ct_eq_behaviour() {
        let a = digest(b"x");
        let mut b = a;
        assert!(ct_eq(&a, &b));
        b[31] ^= 1;
        assert!(!ct_eq(&a, &b));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(digest(b"graft-a"), digest(b"graft-b"));
        assert_ne!(digest(b""), digest(b"\0"));
    }
}

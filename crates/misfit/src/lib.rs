//! MiSFIT — the Minimal Software Fault Isolation Tool, reproduced.
//!
//! §3.3 of the paper: grafts are protected through software fault
//! isolation. "At compilation time MiSFIT inserts instructions to protect
//! loads and stores. Code is added to force the target address to fall
//! within the range of memory allocated to the graft. The cost of this
//! protection is two to five cycles per load or store. [...] Indirect
//! function calls are checked at run-time by looking up the address of
//! the target function in a hash table containing the addresses of all
//! graft-callable functions. [...] MiSFIT computes a cryptographic
//! digital signature of the graft and stores it with the compiled code."
//!
//! This crate is that tool for GraftVM code:
//!
//! - [`mod@instrument`] — the rewriting pass. Every load/store becomes a
//!   *sandbox sequence* through a reserved register (Wahbe et al.'s
//!   dedicated-register discipline, so a branch into the middle of a
//!   sequence still cannot escape the segment); every indirect call gains
//!   a [`vino_vm::Instr::CheckCall`] probe.
//! - [`callable`] — the sparse open hash table of graft-callable
//!   functions, with probe-count accounting that reproduces the paper's
//!   "ten to fifteen cycles per indirect function call".
//! - [`sha256`] — FIPS 180-4 SHA-256, written from scratch and tested
//!   against the published vectors (the paper used commercial code
//!   signing; see DESIGN.md §2).
//! - [`sign`] — HMAC-SHA-256 code signing of encoded graft images and
//!   the load-time verifier.
//! - [`linker`] — the link-time audit of *direct* calls against the
//!   graft-callable list ("Direct function calls are checked when grafts
//!   are dynamically linked into the kernel").

pub mod callable;
pub mod instrument;
pub mod linker;
pub mod sha256;
mod sha256_extra_tests;
pub mod sign;

pub use callable::CallableTable;
pub use instrument::{instrument, InstrumentError, InstrumentStats, SANDBOX_REG};
pub use linker::{verify_direct_calls, LinkError};
pub use sign::{MisfitTool, SignedImage, SigningKey, VerifyError};

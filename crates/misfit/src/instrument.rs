//! The MiSFIT rewriting pass.
//!
//! Transforms an untrusted graft program into an SFI-protected one:
//!
//! 1. Every load/store is replaced by a **sandbox sequence** that
//!    computes the effective address in the reserved register
//!    [`SANDBOX_REG`], clamps it into the graft segment, and performs
//!    the access through the reserved register with offset zero:
//!
//!    ```text
//!    loadw d, [rA+off]   ==>   mov   r14, rA
//!                              addi  r14, r14, off   ; omitted when off == 0
//!                              clamp r14
//!                              loadw d, [r14+0]
//!    ```
//!
//!    Following Wahbe et al., only sandbox sequences write the reserved
//!    register, and a prologue `clamp r14` establishes the invariant
//!    that it *always* holds an in-segment address — so even a branch
//!    into the middle of a sequence cannot produce an out-of-segment
//!    access. The sequence costs 4–5 cycles, the paper's "two to five
//!    cycles per load or store".
//!
//! 2. Every indirect call is preceded by a `checkcall` probe of the
//!    graft-callable hash table (10–15 cycles, §3.3).
//!
//! 3. Branch targets are relocated to account for inserted code.
//!
//! Programs that already use the reserved register or contain SFI
//! pseudo-ops are rejected — the tool owns those, exactly as MiSFIT owns
//! its dedicated registers on x86.

use std::fmt;

use vino_vm::isa::{AluOp, Instr, Program, Reg};

/// The reserved sandbox register (user code must not touch it).
pub const SANDBOX_REG: Reg = Reg(14);

/// Rejection reasons for the instrumentation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstrumentError {
    /// The source program reads or writes the reserved register.
    ReservedRegister { pc: usize },
    /// The source program already contains `clamp`/`checkcall` — only
    /// the tool may insert those.
    UnexpectedPseudoOp { pc: usize },
    /// A branch target is out of range (malformed input).
    Malformed { reason: String },
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrumentError::ReservedRegister { pc } => {
                write!(f, "instruction {pc} uses the reserved sandbox register")
            }
            InstrumentError::UnexpectedPseudoOp { pc } => {
                write!(f, "instruction {pc} contains an SFI pseudo-op")
            }
            InstrumentError::Malformed { reason } => write!(f, "malformed program: {reason}"),
        }
    }
}

impl std::error::Error for InstrumentError {}

/// What the pass did — the inputs to the overhead model of §3.3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrumentStats {
    /// Loads/stores that received sandbox sequences.
    pub mem_accesses: usize,
    /// Indirect calls that received `checkcall` probes.
    pub indirect_calls: usize,
    /// Instructions in the input program.
    pub input_len: usize,
    /// Instructions in the output program.
    pub output_len: usize,
}

/// Runs the SFI pass over `prog`.
pub fn instrument(prog: &Program) -> Result<(Program, InstrumentStats), InstrumentError> {
    prog.validate().map_err(|reason| InstrumentError::Malformed { reason })?;
    check_source(prog)?;

    let mut stats = InstrumentStats { input_len: prog.instrs.len(), ..InstrumentStats::default() };

    // First pass: compute the new index of each source instruction.
    // Index 0 of the output is the prologue clamp.
    let mut new_index: Vec<u32> = Vec::with_capacity(prog.instrs.len());
    let mut cursor: u32 = 1; // After the prologue.
    for i in &prog.instrs {
        new_index.push(cursor);
        cursor += expansion_len(i);
    }
    let prologue_and_total = cursor;

    // Second pass: emit.
    let mut out: Vec<Instr> = Vec::with_capacity(prologue_and_total as usize);
    out.push(Instr::Clamp { r: SANDBOX_REG });
    for instr in &prog.instrs {
        match *instr {
            Instr::LoadW { d, addr, off } => {
                emit_sandbox(&mut out, addr, off, &mut stats);
                out.push(Instr::LoadW { d, addr: SANDBOX_REG, off: 0 });
            }
            Instr::StoreW { s, addr, off } => {
                emit_sandbox(&mut out, addr, off, &mut stats);
                out.push(Instr::StoreW { s, addr: SANDBOX_REG, off: 0 });
            }
            Instr::LoadB { d, addr, off } => {
                emit_sandbox(&mut out, addr, off, &mut stats);
                out.push(Instr::LoadB { d, addr: SANDBOX_REG, off: 0 });
            }
            Instr::StoreB { s, addr, off } => {
                emit_sandbox(&mut out, addr, off, &mut stats);
                out.push(Instr::StoreB { s, addr: SANDBOX_REG, off: 0 });
            }
            Instr::CallI { target } => {
                stats.indirect_calls += 1;
                out.push(Instr::CheckCall { r: target });
                out.push(Instr::CallI { target });
            }
            other => {
                // Relocate branch targets through the index map.
                if let Some(t) = other.branch_target() {
                    out.push(other.with_branch_target(new_index[t as usize]));
                } else {
                    out.push(other);
                }
            }
        }
    }
    stats.output_len = out.len();
    debug_assert_eq!(out.len() as u32, prologue_and_total);

    let instrumented = Program::new(prog.name.clone(), out);
    instrumented.validate().map_err(|reason| InstrumentError::Malformed { reason })?;
    Ok((instrumented, stats))
}

fn emit_sandbox(out: &mut Vec<Instr>, addr: Reg, off: i32, stats: &mut InstrumentStats) {
    stats.mem_accesses += 1;
    out.push(Instr::Mov { d: SANDBOX_REG, s: addr });
    if off != 0 {
        out.push(Instr::AluI { op: AluOp::Add, d: SANDBOX_REG, a: SANDBOX_REG, imm: off as i64 });
    }
    out.push(Instr::Clamp { r: SANDBOX_REG });
}

/// Output instructions one source instruction expands to.
fn expansion_len(i: &Instr) -> u32 {
    match *i {
        Instr::LoadW { off, .. }
        | Instr::StoreW { off, .. }
        | Instr::LoadB { off, .. }
        | Instr::StoreB { off, .. } => {
            if off != 0 {
                4
            } else {
                3
            }
        }
        Instr::CallI { .. } => 2,
        _ => 1,
    }
}

fn check_source(prog: &Program) -> Result<(), InstrumentError> {
    for (pc, i) in prog.instrs.iter().enumerate() {
        if matches!(i, Instr::Clamp { .. } | Instr::CheckCall { .. }) {
            return Err(InstrumentError::UnexpectedPseudoOp { pc });
        }
        if uses_reg(i, SANDBOX_REG) {
            return Err(InstrumentError::ReservedRegister { pc });
        }
    }
    Ok(())
}

fn uses_reg(i: &Instr, r: Reg) -> bool {
    match *i {
        Instr::Const { d, .. } => d == r,
        Instr::Mov { d, s } => d == r || s == r,
        Instr::Alu { d, a, b, .. } => d == r || a == r || b == r,
        Instr::AluI { d, a, .. } => d == r || a == r,
        Instr::LoadW { d, addr, .. } | Instr::LoadB { d, addr, .. } => d == r || addr == r,
        Instr::StoreW { s, addr, .. } | Instr::StoreB { s, addr, .. } => s == r || addr == r,
        Instr::Br { a, b, .. } => a == r || b == r,
        Instr::CallI { target } => target == r,
        Instr::Halt { result } => result == r,
        Instr::Clamp { r: c } | Instr::CheckCall { r: c } => c == r,
        Instr::Jmp { .. }
        | Instr::Call { .. }
        | Instr::CallLocal { .. }
        | Instr::Ret
        | Instr::Nop => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use vino_sim::VirtualClock;
    use vino_vm::interp::{Exit, NullKernel, Vm};
    use vino_vm::isa::{Cond, HostFnId};
    use vino_vm::mem::{AddressSpace, Protection};

    fn run(prog: &Program, prot: Protection) -> (Exit, Vm, Rc<VirtualClock>) {
        let mem = AddressSpace::new(4096, 4096, prot);
        let mut vm = Vm::new(mem);
        let clock = VirtualClock::new();
        let mut fuel = 1_000_000;
        let exit = vm.run(prog, &mut NullKernel, &clock, &mut fuel);
        (exit, vm, clock)
    }

    #[test]
    fn sandbox_sequences_inserted() {
        let p = Program::new(
            "t",
            vec![
                Instr::LoadW { d: Reg(1), addr: Reg(2), off: 8 },
                Instr::StoreW { s: Reg(1), addr: Reg(2), off: 0 },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let (q, stats) = instrument(&p).unwrap();
        assert_eq!(stats.mem_accesses, 2);
        assert_eq!(stats.indirect_calls, 0);
        // Prologue + (mov,add,clamp,load) + (mov,clamp,store) + halt.
        assert_eq!(q.instrs.len(), 1 + 4 + 3 + 1);
        assert_eq!(q.instrs[0], Instr::Clamp { r: SANDBOX_REG });
        assert_eq!(q.instrs[4], Instr::LoadW { d: Reg(1), addr: SANDBOX_REG, off: 0 });
    }

    #[test]
    fn checkcall_inserted_before_indirect_calls() {
        let p = Program::new(
            "t",
            vec![
                Instr::Const { d: Reg(5), imm: 3 },
                Instr::CallI { target: Reg(5) },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let (q, stats) = instrument(&p).unwrap();
        assert_eq!(stats.indirect_calls, 1);
        assert_eq!(q.instrs[2], Instr::CheckCall { r: Reg(5) });
        assert_eq!(q.instrs[3], Instr::CallI { target: Reg(5) });
    }

    #[test]
    fn branch_targets_relocated() {
        // loop: store; dec; bne -> loop; halt
        let p = Program::new(
            "t",
            vec![
                Instr::Const { d: Reg(1), imm: 3 },                            // 0
                Instr::StoreW { s: Reg(1), addr: Reg(2), off: 0 },             // 1 <- loop
                Instr::AluI { op: AluOp::Sub, d: Reg(1), a: Reg(1), imm: 1 },  // 2
                Instr::Br { cond: Cond::Ne, a: Reg(1), b: Reg(0), target: 1 }, // 3
                Instr::Halt { result: Reg(1) },                                // 4
            ],
        );
        let (q, _) = instrument(&p).unwrap();
        // New index of source instr 1: prologue(1) + const(1) = 2.
        let br = q
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::Br { target, .. } => Some(*target),
                _ => None,
            })
            .unwrap();
        assert_eq!(br, 2);
        // Executing it still terminates with r1 == 0.
        let (exit, _, _) = run(&q, Protection::Sfi);
        assert_eq!(exit, Exit::Halted(0));
    }

    #[test]
    fn semantics_preserved_for_in_segment_programs() {
        // A well-behaved graft: sums 10 words it first writes. The
        // instrumented program must compute the same result.
        let mem = AddressSpace::new(4096, 0, Protection::Unprotected);
        let base = mem.seg_base() as i64;
        let src = Program::new(
            "sum",
            vec![
                Instr::Const { d: Reg(1), imm: base }, // ptr
                Instr::Const { d: Reg(2), imm: 0 },    // i
                Instr::Const { d: Reg(3), imm: 10 },   // n
                Instr::Const { d: Reg(4), imm: 0 },    // acc
                // write loop: mem[ptr] = i+1
                Instr::AluI { op: AluOp::Add, d: Reg(5), a: Reg(2), imm: 1 }, // 4
                Instr::StoreW { s: Reg(5), addr: Reg(1), off: 0 },
                Instr::AluI { op: AluOp::Add, d: Reg(1), a: Reg(1), imm: 4 },
                Instr::AluI { op: AluOp::Add, d: Reg(2), a: Reg(2), imm: 1 },
                Instr::Br { cond: Cond::LtU, a: Reg(2), b: Reg(3), target: 4 },
                // read loop
                Instr::Const { d: Reg(1), imm: base },
                Instr::Const { d: Reg(2), imm: 0 },
                Instr::LoadW { d: Reg(5), addr: Reg(1), off: 0 }, // 11
                Instr::Alu { op: AluOp::Add, d: Reg(4), a: Reg(4), b: Reg(5) },
                Instr::AluI { op: AluOp::Add, d: Reg(1), a: Reg(1), imm: 4 },
                Instr::AluI { op: AluOp::Add, d: Reg(2), a: Reg(2), imm: 1 },
                Instr::Br { cond: Cond::LtU, a: Reg(2), b: Reg(3), target: 11 },
                Instr::Halt { result: Reg(4) },
            ],
        );
        let (exit_raw, _, _) = run(&src, Protection::Unprotected);
        let (inst, _) = instrument(&src).unwrap();
        let (exit_sfi, vm, _) = run(&inst, Protection::Sfi);
        assert_eq!(exit_raw, Exit::Halted(55));
        assert_eq!(exit_sfi, Exit::Halted(55));
        assert_eq!(vm.mem.kernel_write_count(), 0);
    }

    #[test]
    fn overhead_is_two_to_five_cycles_per_access() {
        // Measure the instrumented-vs-raw cycle delta per memory access
        // for a store-dense loop — the §3.3 "two to five cycles" claim.
        let mem = AddressSpace::new(8192, 0, Protection::Unprotected);
        let base = mem.seg_base() as i64;
        let n = 256i64;
        let src = Program::new(
            "stores",
            vec![
                Instr::Const { d: Reg(1), imm: base },
                Instr::Const { d: Reg(2), imm: 0 },
                Instr::Const { d: Reg(3), imm: n },
                Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 }, // 3
                Instr::AluI { op: AluOp::Add, d: Reg(1), a: Reg(1), imm: 4 },
                Instr::AluI { op: AluOp::Add, d: Reg(2), a: Reg(2), imm: 1 },
                Instr::Br { cond: Cond::LtU, a: Reg(2), b: Reg(3), target: 3 },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let (_, _, clock_raw) = run(&src, Protection::Unprotected);
        let (inst, stats) = instrument(&src).unwrap();
        let (_, _, clock_sfi) = run(&inst, Protection::Sfi);
        let delta = clock_sfi.now().get() as i64 - clock_raw.now().get() as i64;
        // Subtract the one-off prologue clamp.
        let per_access = (delta - vino_sim::costs::SFI_CLAMP_CYCLES as i64) as f64 / n as f64;
        assert!(
            (2.0..=5.0).contains(&per_access),
            "per-access overhead {per_access} outside the paper's 2-5 cycle range"
        );
        assert_eq!(stats.mem_accesses, 1);
    }

    #[test]
    fn rejects_reserved_register_use() {
        let p = Program::new("bad", vec![Instr::Const { d: SANDBOX_REG, imm: 0 }]);
        assert_eq!(instrument(&p), Err(InstrumentError::ReservedRegister { pc: 0 }));
        let p2 = Program::new(
            "bad2",
            vec![Instr::Mov { d: Reg(0), s: SANDBOX_REG }, Instr::Halt { result: Reg(0) }],
        );
        assert_eq!(instrument(&p2), Err(InstrumentError::ReservedRegister { pc: 0 }));
    }

    #[test]
    fn rejects_existing_pseudo_ops() {
        let p = Program::new("bad", vec![Instr::Clamp { r: Reg(1) }]);
        assert_eq!(instrument(&p), Err(InstrumentError::UnexpectedPseudoOp { pc: 0 }));
        let p2 = Program::new("bad2", vec![Instr::CheckCall { r: Reg(1) }]);
        assert_eq!(instrument(&p2), Err(InstrumentError::UnexpectedPseudoOp { pc: 0 }));
    }

    #[test]
    fn rejects_malformed_input() {
        let p = Program { instrs: vec![Instr::Jmp { target: 42 }], name: "bad".into() };
        assert!(matches!(instrument(&p), Err(InstrumentError::Malformed { .. })));
    }

    #[test]
    fn direct_calls_untouched() {
        let p = Program::new(
            "t",
            vec![Instr::Call { func: HostFnId(9) }, Instr::Halt { result: Reg(0) }],
        );
        let (q, stats) = instrument(&p).unwrap();
        assert_eq!(stats.indirect_calls, 0);
        assert_eq!(q.instrs[1], Instr::Call { func: HostFnId(9) });
    }

    #[test]
    fn wild_store_is_confined_after_instrumentation() {
        // The §2 disaster scenario: a graft stores through a pointer
        // aimed at kernel memory. Raw code corrupts; instrumented code
        // is silently redirected into its own segment.
        let mem = AddressSpace::new(4096, 4096, Protection::Unprotected);
        let kaddr = mem.kernel_base() as i64 + 64;
        let src = Program::new(
            "wild",
            vec![
                Instr::Const { d: Reg(1), imm: kaddr },
                Instr::Const { d: Reg(2), imm: 0x42 },
                Instr::StoreW { s: Reg(2), addr: Reg(1), off: 0 },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let (exit, vm, _) = run(&src, Protection::Unprotected);
        assert_eq!(exit, Exit::Halted(0));
        assert_eq!(vm.mem.kernel_write_count(), 1, "raw graft corrupts the kernel");

        let (inst, _) = instrument(&src).unwrap();
        let (exit, vm, _) = run(&inst, Protection::Sfi);
        assert_eq!(exit, Exit::Halted(0));
        assert_eq!(vm.mem.kernel_write_count(), 0, "instrumented graft is confined");
    }
}

//! Link-time audit of direct calls.
//!
//! §3.3: "Direct function calls are checked when grafts are dynamically
//! linked into the kernel; the function is looked up in the
//! graft-callable list; if the target function is not on the list, the
//! graft is not loaded into the system." The kernel's loader
//! (`vino-core`) runs this audit after signature verification and before
//! binding the graft to a graft point.

use std::fmt;

use vino_vm::isa::{HostFnId, Program};

use crate::callable::CallableTable;

/// Why a graft failed the link-time audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A direct call targets a function outside the graft-callable list.
    ForbiddenDirectCall { id: HostFnId, name: Option<String> },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::ForbiddenDirectCall { id, name } => match name {
                Some(n) => write!(f, "direct call to non-graft-callable `{n}` ({id})"),
                None => write!(f, "direct call to non-graft-callable {id}"),
            },
        }
    }
}

impl std::error::Error for LinkError {}

/// Audits every direct call in `prog` against `callable`.
///
/// Returns the audited callee list on success so the loader can record
/// the graft's kernel-interface footprint.
pub fn verify_direct_calls(
    prog: &Program,
    callable: &CallableTable,
) -> Result<Vec<HostFnId>, LinkError> {
    let callees = prog.direct_callees();
    for id in &callees {
        if !callable.contains(*id) {
            return Err(LinkError::ForbiddenDirectCall { id: *id, name: None });
        }
    }
    Ok(callees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_vm::isa::{Instr, Reg};

    fn table() -> CallableTable {
        let mut t = CallableTable::new();
        t.register(HostFnId(1), "lock");
        t.register(HostFnId(2), "unlock");
        t
    }

    #[test]
    fn accepts_calls_on_the_list() {
        let p = Program::new(
            "ok",
            vec![
                Instr::Call { func: HostFnId(1) },
                Instr::Call { func: HostFnId(2) },
                Instr::Halt { result: Reg(0) },
            ],
        );
        let callees = verify_direct_calls(&p, &table()).unwrap();
        assert_eq!(callees, vec![HostFnId(1), HostFnId(2)]);
    }

    #[test]
    fn rejects_forbidden_direct_call() {
        // The §2.3 scenario: a graft trying to call shutdown().
        let p = Program::new(
            "evil",
            vec![Instr::Call { func: HostFnId(666) }, Instr::Halt { result: Reg(0) }],
        );
        let err = verify_direct_calls(&p, &table()).unwrap_err();
        assert_eq!(err, LinkError::ForbiddenDirectCall { id: HostFnId(666), name: None });
    }

    #[test]
    fn program_without_calls_passes() {
        let p = Program::new("pure", vec![Instr::Halt { result: Reg(0) }]);
        assert_eq!(verify_direct_calls(&p, &table()).unwrap(), vec![]);
    }

    #[test]
    fn indirect_calls_not_audited_here() {
        // Indirect calls are a *run-time* check (CheckCall); the linker
        // only audits direct calls.
        let p = Program::new(
            "indirect",
            vec![Instr::CallI { target: Reg(5) }, Instr::Halt { result: Reg(0) }],
        );
        assert!(verify_direct_calls(&p, &table()).is_ok());
    }
}

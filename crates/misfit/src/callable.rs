//! The graft-callable function table.
//!
//! §3.3: "VINO kernel developers maintain a list of graft-callable
//! functions. Only functions on this list may be called from grafts."
//! Indirect calls probe "a hash table containing the addresses of all
//! graft-callable functions"; "Through the use of a sparse open hash
//! table we find our average cost is ten to fifteen cycles per indirect
//! function call."
//!
//! This module implements exactly that structure: an open-addressing
//! (linear-probing) hash table kept *sparse* (load factor ≤ 1/4) so the
//! expected probe count stays near one. Probe counts are recorded so the
//! MiSFIT micro-overhead experiment (E2) can verify the 10–15 cycle
//! claim: cost = `HASH_PROBE_CYCLES` × probes.

use std::cell::Cell;

use vino_vm::isa::HostFnId;

/// Maximum load factor numerator/denominator: the table grows when more
/// than 1/4 full, which is what keeps it "sparse".
const LOAD_NUM: usize = 1;
const LOAD_DEN: usize = 4;

/// A sparse open hash table of graft-callable function ids.
#[derive(Debug, Clone)]
pub struct CallableTable {
    slots: Vec<Option<(HostFnId, String)>>,
    len: usize,
    probes: Cell<u64>,
    lookups: Cell<u64>,
}

impl Default for CallableTable {
    fn default() -> CallableTable {
        CallableTable::new()
    }
}

impl CallableTable {
    /// Creates an empty table.
    pub fn new() -> CallableTable {
        CallableTable { slots: vec![None; 16], len: 0, probes: Cell::new(0), lookups: Cell::new(0) }
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (exposed so tests can check sparseness).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Registers `id` under `name` as graft-callable. Re-registering an
    /// id updates its name.
    pub fn register(&mut self, id: HostFnId, name: impl Into<String>) {
        if (self.len + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow();
        }
        let name = name.into();
        let mut i = self.slot_of(id);
        loop {
            match self.slots[i].as_ref().map(|(existing, _)| *existing) {
                Some(existing) if existing == id => {
                    self.slots[i] = Some((id, name));
                    return;
                }
                Some(_) => i = (i + 1) % self.slots.len(),
                None => {
                    self.slots[i] = Some((id, name));
                    self.len += 1;
                    return;
                }
            }
        }
    }

    /// Removes `id` from the table (e.g. when a kernel module revokes an
    /// interface). Uses backward-shift deletion to keep probing correct.
    pub fn unregister(&mut self, id: HostFnId) -> bool {
        let mut i = self.slot_of(id);
        loop {
            match &self.slots[i] {
                Some((existing, _)) if *existing == id => break,
                Some(_) => i = (i + 1) % self.slots.len(),
                None => return false,
            }
        }
        self.slots[i] = None;
        self.len -= 1;
        // Re-insert the rest of the cluster.
        let mut j = (i + 1) % self.slots.len();
        while let Some((id2, name2)) = self.slots[j].take() {
            self.len -= 1;
            self.register(id2, name2);
            j = (j + 1) % self.slots.len();
        }
        true
    }

    /// Probes for `id`, returning whether it is callable and recording
    /// the probe count for cost accounting.
    pub fn contains(&self, id: HostFnId) -> bool {
        self.lookups.set(self.lookups.get() + 1);
        let mut i = self.slot_of(id);
        let mut probes = 1u64;
        loop {
            match &self.slots[i] {
                Some((existing, _)) if *existing == id => {
                    self.probes.set(self.probes.get() + probes);
                    return true;
                }
                Some(_) => {
                    probes += 1;
                    i = (i + 1) % self.slots.len();
                }
                None => {
                    self.probes.set(self.probes.get() + probes);
                    return false;
                }
            }
        }
    }

    /// Name registered for `id`, if present.
    pub fn name_of(&self, id: HostFnId) -> Option<&str> {
        let mut i = self.slot_of(id);
        loop {
            match &self.slots[i] {
                Some((existing, name)) if *existing == id => return Some(name),
                Some(_) => i = (i + 1) % self.slots.len(),
                None => return None,
            }
        }
    }

    /// Average probes per lookup since creation — the quantity behind
    /// the paper's "ten to fifteen cycles per indirect function call".
    pub fn avg_probes(&self) -> f64 {
        let l = self.lookups.get();
        if l == 0 {
            0.0
        } else {
            self.probes.get() as f64 / l as f64
        }
    }

    /// All registered ids, in unspecified order.
    pub fn ids(&self) -> Vec<HostFnId> {
        self.slots.iter().flatten().map(|(id, _)| *id).collect()
    }

    fn slot_of(&self, id: HostFnId) -> usize {
        // Fibonacci hashing of the id into the (power-of-two) table.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.slots.len().trailing_zeros())) as usize % self.slots.len()
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        self.len = 0;
        for entry in old.into_iter().flatten() {
            let (id, name) = entry;
            self.register(id, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_probe() {
        let mut t = CallableTable::new();
        t.register(HostFnId(1), "lock");
        t.register(HostFnId(2), "unlock");
        assert!(t.contains(HostFnId(1)));
        assert!(t.contains(HostFnId(2)));
        assert!(!t.contains(HostFnId(3)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.name_of(HostFnId(1)), Some("lock"));
        assert_eq!(t.name_of(HostFnId(9)), None);
    }

    #[test]
    fn reregister_updates_name() {
        let mut t = CallableTable::new();
        t.register(HostFnId(1), "a");
        t.register(HostFnId(1), "b");
        assert_eq!(t.len(), 1);
        assert_eq!(t.name_of(HostFnId(1)), Some("b"));
    }

    #[test]
    fn stays_sparse_under_growth() {
        let mut t = CallableTable::new();
        for i in 0..1000 {
            t.register(HostFnId(i), format!("fn{i}"));
        }
        assert_eq!(t.len(), 1000);
        // Sparse: load factor at most 1/4.
        assert!(t.capacity() >= 4 * t.len(), "cap {} len {}", t.capacity(), t.len());
        for i in 0..1000 {
            assert!(t.contains(HostFnId(i)));
        }
        assert!(!t.contains(HostFnId(5000)));
    }

    #[test]
    fn avg_probes_near_one_when_sparse() {
        // The property behind the paper's 10-15 cycle claim: with a
        // sparse table, the average probe count stays close to 1, so
        // cost ~= HASH_PROBE_CYCLES per call.
        let mut t = CallableTable::new();
        for i in 0..500 {
            t.register(HostFnId(i * 7919), format!("fn{i}"));
        }
        for i in 0..500 {
            t.contains(HostFnId(i * 7919));
        }
        let avg = t.avg_probes();
        assert!(avg < 1.3, "avg probes {avg} too high for a sparse table");
    }

    #[test]
    fn unregister_preserves_probe_chains() {
        let mut t = CallableTable::new();
        for i in 0..64 {
            t.register(HostFnId(i), format!("fn{i}"));
        }
        // Remove every third entry, then everything must still resolve.
        for i in (0..64).step_by(3) {
            assert!(t.unregister(HostFnId(i)));
        }
        for i in 0..64 {
            let expect = i % 3 != 0;
            assert_eq!(t.contains(HostFnId(i)), expect, "id {i}");
        }
        assert!(!t.unregister(HostFnId(999)));
    }

    #[test]
    fn ids_lists_all() {
        let mut t = CallableTable::new();
        t.register(HostFnId(5), "x");
        t.register(HostFnId(6), "y");
        let mut ids = t.ids();
        ids.sort();
        assert_eq!(ids, vec![HostFnId(5), HostFnId(6)]);
    }
}

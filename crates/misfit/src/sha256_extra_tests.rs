//! Extra SHA-256/HMAC conformance vectors, kept in a separate module so
//! the algorithm file stays readable.
//!
//! Vectors: NIST CAVP byte-oriented short messages and RFC 4231 cases
//! 3–5 and 7 (the ones `sha256.rs` does not already cover).

#[cfg(test)]
mod tests {
    use crate::sha256::{digest, hmac, Sha256};

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn cavp_short_messages() {
        // (message bytes, expected digest) from the NIST CAVP
        // SHA256ShortMsg set.
        let cases: &[(&[u8], &str)] = &[
            (&[0xd3], "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1"),
            (&[0x11, 0xaf], "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98"),
            (
                &[0x74, 0xba, 0x25, 0x21],
                "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e",
            ),
            (
                &[0xc2, 0x99, 0x20, 0x96, 0x82],
                "f0887fe961c9cd3beab957e8222494abb969b1ce4c6557976df8b0f6d20e9166",
            ),
        ];
        for (msg, want) in cases {
            assert_eq!(hex(&digest(msg)), *want, "msg {msg:02x?}");
        }
    }

    #[test]
    fn rfc4231_case3_repeated_aa_dd() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case4_key_sequence() {
        let key: Vec<u8> = (1..=25u8).collect();
        let data = [0xcdu8; 50];
        assert_eq!(
            hex(&hmac(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_long_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than \
                     block-size data. The key needs to be hashed before being used by the \
                     HMAC algorithm.";
        assert_eq!(
            hex(&hmac(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn streaming_one_byte_at_a_time_matches_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), digest(&data));
    }

    #[test]
    fn exact_block_multiples() {
        for blocks in 1..=4usize {
            let data = vec![0xA5u8; 64 * blocks];
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(h.finalize(), digest(&data), "{blocks} blocks");
        }
    }
}

//! Multi-thread contention scenarios for the transaction manager:
//! hand-off chains, waiter cancellation, commit-time hand-offs, and the
//! §2.2 "graft holds a lock acquired before it was invoked" note.

use std::cell::RefCell;
use std::rc::Rc;

use vino_sim::{ThreadId, VirtualClock};
use vino_txn::locks::LockClass;
use vino_txn::manager::{AbortReason, LockOutcome, TimeoutEvent, TxnManager};

const T1: ThreadId = ThreadId(1);
const T2: ThreadId = ThreadId(2);
const T3: ThreadId = ThreadId(3);

fn mgr() -> (TxnManager, Rc<VirtualClock>) {
    let clock = VirtualClock::new();
    (TxnManager::new(Rc::clone(&clock)), clock)
}

#[test]
fn commit_hands_off_to_first_waiter() {
    let (mut m, _) = mgr();
    let l = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    m.lock(l, T1);
    // T2 and T3 queue up.
    assert!(matches!(m.lock(l, T2), LockOutcome::Blocked { .. }));
    assert!(matches!(m.lock(l, T3), LockOutcome::Blocked { .. }));
    let report = m.commit(T1).unwrap();
    assert_eq!(report.locks_released, 1);
    assert_eq!(report.handoffs, vec![(l, T2)], "FIFO hand-off to the first waiter");
    assert!(matches!(m.lock(l, T2), LockOutcome::Granted));
}

#[test]
fn chained_timeouts_drain_a_convoy() {
    // T1 (in txn) hoards; T2 and T3 wait. T2's time-out aborts T1 and
    // T2 wins; then T2 (not in a txn) holds while T3 waits — T3's
    // time-out reports HolderNotInTxn, and once T2 releases, T3 runs.
    let (mut m, clock) = mgr();
    let l = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    m.lock(l, T1);
    let LockOutcome::Blocked { .. } = m.lock(l, T2) else { panic!() };
    let LockOutcome::Blocked { .. } = m.lock(l, T3) else { panic!() };
    // First deadline: abort T1.
    let dl = m.next_timeout().unwrap();
    clock.advance_to(dl);
    let events = m.fire_due_timeouts();
    assert!(events
        .iter()
        .any(|e| matches!(e, TimeoutEvent::HolderAborted { holder, .. } if *holder == T1)));
    // T2 takes it as a plain mutex (no txn).
    assert!(matches!(m.lock(l, T2), LockOutcome::Granted));
    // T3 re-requests, blocks, times out: holder not in txn → policy up
    // to the caller; T2 then releases and T3 proceeds.
    let LockOutcome::Blocked { deadline, .. } = m.lock(l, T3) else { panic!() };
    clock.advance_to(deadline);
    let events = m.fire_due_timeouts();
    assert!(events
        .iter()
        .any(|e| matches!(e, TimeoutEvent::HolderNotInTxn { holder, .. } if *holder == T2)));
    m.unlock(l, T2);
    assert!(matches!(m.lock(l, T3), LockOutcome::Granted));
}

#[test]
fn pre_invocation_lock_released_by_graft_abort() {
    // §3.2: "we abort the transaction even if the lock was acquired
    // before the graft was invoked" — model: T1 takes the lock outside
    // any txn, then begins a txn (the graft wrapper) and RE-ACQUIRES it
    // re-entrantly inside; the timeout aborts the txn, which releases
    // every hold the thread has, and the invoking code's presumption of
    // a timely release is satisfied by the waiter making progress.
    let (mut m, clock) = mgr();
    let l = m.create_lock(LockClass::Buffer);
    m.lock(l, T1); // Pre-graft acquisition (plain).
    m.begin(T1); // The graft wrapper's transaction.
    m.lock(l, T1); // Re-entrant acquisition inside the graft.
    let LockOutcome::Blocked { deadline, .. } = m.lock(l, T2) else { panic!() };
    clock.advance_to(deadline);
    let events = m.fire_due_timeouts();
    assert!(matches!(events[0], TimeoutEvent::HolderAborted { .. }));
    assert_eq!(m.lock_table().holder(l), None, "all holds force-released on abort");
    assert!(matches!(m.lock(l, T2), LockOutcome::Granted));
}

#[test]
fn undo_ordering_across_many_accessors() {
    // 100 interleaved accessor updates across three "objects": abort
    // must restore all of them regardless of interleaving.
    let (mut m, _) = mgr();
    let state: Rc<RefCell<[u64; 3]>> = Rc::new(RefCell::new([10, 20, 30]));
    m.begin(T1);
    for i in 0..100u64 {
        let obj = (i % 3) as usize;
        let old = state.borrow()[obj];
        state.borrow_mut()[obj] = old + i;
        let s = Rc::clone(&state);
        m.log_undo(T1, "set", vino_sim::Cycles(10), move || s.borrow_mut()[obj] = old).unwrap();
    }
    assert_ne!(*state.borrow(), [10, 20, 30]);
    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.undo_ops, 100);
    assert_eq!(*state.borrow(), [10, 20, 30]);
}

#[test]
fn three_level_nesting_merges_transitively() {
    let (mut m, _) = mgr();
    let state: Rc<RefCell<Vec<u32>>> = Rc::default();
    for level in 0..3u32 {
        m.begin(T1);
        state.borrow_mut().push(level);
        let s = Rc::clone(&state);
        m.log_undo(T1, "pop", vino_sim::Cycles(5), move || {
            s.borrow_mut().pop();
        })
        .unwrap();
    }
    assert_eq!(m.depth(T1), 3);
    // Commit the two inner levels: merges, nothing undone.
    m.commit(T1).unwrap();
    m.commit(T1).unwrap();
    assert_eq!(m.depth(T1), 1);
    assert_eq!(*state.borrow(), vec![0, 1, 2]);
    // Abort the outermost: everything unwinds, innermost first.
    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.undo_ops, 3);
    assert!(state.borrow().is_empty());
}

#[test]
fn stats_track_timeout_aborts_separately() {
    let (mut m, clock) = mgr();
    let l = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    m.lock(l, T1);
    let LockOutcome::Blocked { deadline, .. } = m.lock(l, T2) else { panic!() };
    clock.advance_to(deadline);
    m.fire_due_timeouts();
    // Plus one explicit abort elsewhere.
    m.begin(T3);
    m.abort(T3, AbortReason::Explicit).unwrap();
    let s = m.stats();
    assert_eq!(s.aborts, 2);
    assert_eq!(s.timeout_aborts, 1);
}

//! The abort protocol under nesting, and the regression suite for the
//! nested-transaction lock double-release (the audit item of this PR).
//!
//! §3.1: "because graft functions may indirectly invoke other grafts,
//! we found it necessary to include support for nested transactions" —
//! and the composition laws that makes safe: a callee abort spares the
//! caller; a caller abort after a callee commit undoes merged entries
//! in LIFO order; locks release exactly when the *owning* transaction
//! finishes, never earlier.

use std::cell::RefCell;
use std::rc::Rc;

use vino_sim::{Cycles, ThreadId, VirtualClock};
use vino_txn::locks::LockClass;
use vino_txn::manager::{AbortReason, LockOutcome, TimeoutEvent, TxnManager};

const T1: ThreadId = ThreadId(1);
const T2: ThreadId = ThreadId(2);

fn mgr() -> TxnManager {
    TxnManager::new(VirtualClock::new())
}

/// REGRESSION (double-release audit): an inner transaction re-acquiring
/// a lock its outer transaction already holds must NOT release that
/// lock when the inner transaction aborts. Before the fix, the inner
/// frame re-recorded the lock and its abort called `release_all_holds`,
/// handing the outer transaction's lock to a competing thread mid-txn —
/// a two-phase-locking violation.
#[test]
fn inner_abort_does_not_release_outer_lock() {
    let mut m = mgr();
    let l = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    assert_eq!(m.lock(l, T1), LockOutcome::Granted);

    m.begin(T1); // Nested.
    assert_eq!(m.lock(l, T1), LockOutcome::Granted, "re-entrant for the same thread");
    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.locks_released, 0, "inner abort must not release the outer's lock");

    // The outer transaction still holds the lock against other threads.
    assert_eq!(m.lock_table().holder(l), Some(T1));
    assert!(matches!(m.lock(l, T2), LockOutcome::Blocked { .. }), "2PL: lock still pinned");

    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.locks_released, 1, "owner abort releases it exactly once");
    assert_eq!(m.lock_table().holder(l), None);
}

/// REGRESSION companion: same shape but the inner transaction commits.
/// The merge must not duplicate the lock in the outer frame (a
/// duplicate would double-count `locks_released` and double-charge the
/// 10 µs-per-lock abort term).
#[test]
fn inner_commit_does_not_duplicate_outer_lock() {
    let mut m = mgr();
    let l = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    m.lock(l, T1);
    m.begin(T1);
    m.lock(l, T1);
    m.commit(T1).unwrap();
    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.locks_released, 1);
    assert_eq!(m.lock_table().holder(l), None);
}

/// REGRESSION (the `fire_due_timeouts` interaction from the audit): a
/// fired time-out aborts the holder's *innermost* transaction. When the
/// contended lock is owned by an outer frame, that abort must not
/// release it — the waiter keeps waiting and a later time-out peels the
/// outer frame. Forward progress (Rule 9) without breaking isolation.
#[test]
fn timeout_abort_peels_nesting_without_double_release() {
    let mut m = mgr();
    let l = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    m.lock(l, T1);
    m.begin(T1); // Inner txn; does not own `l`.

    let LockOutcome::Blocked { deadline, .. } = m.lock(l, T2) else {
        panic!("expected contention");
    };
    m.clock().advance_to(deadline);
    let events = m.fire_due_timeouts();
    assert!(
        matches!(events[0], TimeoutEvent::HolderAborted { holder: T1, .. }),
        "innermost aborted"
    );
    // Inner did not own the lock, so T1 still holds it and T2 is still out.
    assert_eq!(m.lock_table().holder(l), Some(T1));
    assert_eq!(m.depth(T1), 1, "only the innermost frame was aborted");

    // The waiter re-arms; the next time-out aborts the owning frame.
    let LockOutcome::Blocked { deadline, .. } = m.lock(l, T2) else {
        panic!("still contended");
    };
    m.clock().advance_to(deadline);
    let events = m.fire_due_timeouts();
    assert!(matches!(events[0], TimeoutEvent::HolderAborted { holder: T1, .. }));
    assert_eq!(m.lock_table().holder(l), None, "owning frame released exactly once");
    assert_eq!(m.depth(T1), 0);
    assert_eq!(m.lock(l, T2), LockOutcome::Granted, "Rule 9: waiter proceeds");
}

/// A callee abort spares the caller: the caller's undo log, locks, and
/// ability to commit are untouched.
#[test]
fn callee_abort_spares_caller() {
    let state = Rc::new(RefCell::new(Vec::<&'static str>::new()));
    let mut m = mgr();
    let l_outer = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    m.lock(l_outer, T1);
    state.borrow_mut().push("outer-op");
    let s = Rc::clone(&state);
    m.log_undo(T1, "outer", Cycles(10), move || {
        s.borrow_mut().retain(|x| *x != "outer-op");
    })
    .unwrap();

    // Callee (nested) does work, then aborts.
    m.begin(T1);
    state.borrow_mut().push("inner-op");
    let s = Rc::clone(&state);
    m.log_undo(T1, "inner", Cycles(10), move || {
        s.borrow_mut().retain(|x| *x != "inner-op");
    })
    .unwrap();
    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.undo_ops, 1, "only the callee's op reversed");

    // Caller unaffected: still in txn, lock held, state has outer-op.
    assert!(m.in_txn(T1));
    assert_eq!(m.lock_table().holder(l_outer), Some(T1));
    assert_eq!(*state.borrow(), vec!["outer-op"]);
    assert_eq!(m.pending_undo(T1), 1, "caller's undo log intact");

    let rep = m.commit(T1).unwrap();
    assert_eq!(rep.locks_released, 1);
    assert_eq!(*state.borrow(), vec!["outer-op"], "commit preserves the caller's work");
}

/// Caller abort after callee commit: the merged entries run in LIFO
/// order across the merge boundary — callee's undos first (newest), then
/// the caller's — and the undo-stack depth returns to zero.
#[test]
fn caller_abort_after_callee_commit_undoes_lifo() {
    let order = Rc::new(RefCell::new(Vec::<&'static str>::new()));
    let mut m = mgr();
    m.begin(T1);
    for label in ["caller-1", "caller-2"] {
        let o = Rc::clone(&order);
        m.log_undo(T1, label, Cycles(10), move || o.borrow_mut().push(label)).unwrap();
    }

    m.begin(T1);
    for label in ["callee-1", "callee-2"] {
        let o = Rc::clone(&order);
        m.log_undo(T1, label, Cycles(10), move || o.borrow_mut().push(label)).unwrap();
    }
    assert_eq!(m.pending_undo(T1), 2, "callee's own log");
    m.commit(T1).unwrap(); // Merge into caller.
    assert_eq!(m.pending_undo(T1), 4, "caller's log absorbed the callee's");

    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.undo_ops, 4);
    assert_eq!(
        *order.borrow(),
        vec!["callee-2", "callee-1", "caller-2", "caller-1"],
        "strict LIFO across the merge boundary"
    );
    assert_eq!(m.pending_undo(T1), 0, "undo-stack depth back to zero");
    assert!(!m.in_txn(T1));
    assert_eq!(m.active_txns(), 0);
}

/// Depth bookkeeping through a three-level nest with mixed outcomes.
#[test]
fn undo_depth_returns_to_zero_through_mixed_nesting() {
    let mut m = mgr();
    m.begin(T1);
    m.log_undo(T1, "a", Cycles(1), || {}).unwrap();
    m.begin(T1);
    m.log_undo(T1, "b", Cycles(1), || {}).unwrap();
    m.begin(T1);
    m.log_undo(T1, "c", Cycles(1), || {}).unwrap();
    assert_eq!(m.depth(T1), 3);

    m.abort(T1, AbortReason::Explicit).unwrap(); // c reversed.
    assert_eq!(m.depth(T1), 2);
    assert_eq!(m.pending_undo(T1), 1, "level-2 log untouched");
    m.commit(T1).unwrap(); // b merges into a's frame.
    assert_eq!(m.depth(T1), 1);
    assert_eq!(m.pending_undo(T1), 2);
    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.undo_ops, 2);
    assert_eq!(m.depth(T1), 0);
    assert_eq!(m.pending_undo(T1), 0);
    assert_eq!(m.active_txns(), 0);
    assert_eq!(m.lock_table().held_count(), 0);
}

/// Locks acquired at different nesting levels release with their own
/// frame: the inner's lock at inner abort, the outer's at outer commit.
#[test]
fn locks_release_with_their_owning_frame() {
    let mut m = mgr();
    let l_outer = m.create_lock(LockClass::Buffer);
    let l_inner = m.create_lock(LockClass::Buffer);
    m.begin(T1);
    m.lock(l_outer, T1);
    m.begin(T1);
    m.lock(l_inner, T1);

    let rep = m.abort(T1, AbortReason::Explicit).unwrap();
    assert_eq!(rep.locks_released, 1, "inner frame owned only l_inner");
    assert_eq!(m.lock_table().holder(l_inner), None);
    assert_eq!(m.lock_table().holder(l_outer), Some(T1), "outer's lock survives");

    let rep = m.commit(T1).unwrap();
    assert_eq!(rep.locks_released, 1);
    assert_eq!(m.lock_table().held_count(), 0);
}

//! Randomised tests for transaction atomicity and nesting laws, driven
//! by a seeded deterministic generator (formerly proptest).
//!
//! The contract of §3.1: for *any* sequence of kernel-state mutations a
//! graft performs through accessor functions, abort restores exactly the
//! pre-transaction state, while commit preserves exactly the post-state.
//! Nested transactions compose: inner aborts reverse only inner work,
//! inner commits fold into the parent.

use std::cell::RefCell;
use std::rc::Rc;

use vino_sim::{Cycles, SplitMix64, ThreadId, VirtualClock};
use vino_txn::manager::{AbortReason, TxnManager};

const T: ThreadId = ThreadId(1);

/// A model kernel object store: register-file-like array of i64 cells.
type Store = Rc<RefCell<[i64; 8]>>;

/// One accessor call a graft might make.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `cell += delta` (undo: subtract).
    Add { cell: usize, delta: i32 },
    /// `cell = value` (undo: restore old).
    Set { cell: usize, value: i32 },
    /// Swap two cells (undo: swap back).
    Swap { a: usize, b: usize },
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.below(3) {
        0 => Op::Add { cell: rng.below(8) as usize, delta: rng.next_u64() as i32 },
        1 => Op::Set { cell: rng.below(8) as usize, value: rng.next_u64() as i32 },
        _ => Op::Swap { a: rng.below(8) as usize, b: rng.below(8) as usize },
    }
}

fn gen_ops(rng: &mut SplitMix64, max: u64) -> Vec<Op> {
    let n = rng.below(max) as usize;
    (0..n).map(|_| gen_op(rng)).collect()
}

/// Applies `o` through the "accessor function" protocol: mutate state,
/// then log the reversal with the transaction manager.
fn apply(m: &mut TxnManager, store: &Store, o: Op) {
    match o {
        Op::Add { cell, delta } => {
            let old = store.borrow()[cell];
            store.borrow_mut()[cell] = old.wrapping_add(delta as i64);
            let s = Rc::clone(store);
            m.log_undo(T, "add", Cycles(30), move || {
                let cur = s.borrow()[cell];
                s.borrow_mut()[cell] = cur.wrapping_sub(delta as i64);
            })
            .unwrap();
        }
        Op::Set { cell, value } => {
            let old = store.borrow()[cell];
            store.borrow_mut()[cell] = value as i64;
            let s = Rc::clone(store);
            m.log_undo(T, "set", Cycles(30), move || {
                s.borrow_mut()[cell] = old;
            })
            .unwrap();
        }
        Op::Swap { a, b } => {
            store.borrow_mut().swap(a, b);
            let s = Rc::clone(store);
            m.log_undo(T, "swap", Cycles(30), move || {
                s.borrow_mut().swap(a, b);
            })
            .unwrap();
        }
    }
}

/// Abort restores the exact pre-transaction state for any op mix.
#[test]
fn abort_is_exact_inverse() {
    let mut rng = SplitMix64::new(0xAB_0127);
    for _case in 0..256 {
        let ops = gen_ops(&mut rng, 40);
        let store: Store = Rc::new(RefCell::new([3, 1, 4, 1, 5, 9, 2, 6]));
        let before = *store.borrow();
        let mut m = TxnManager::new(VirtualClock::new());
        m.begin(T);
        for o in &ops {
            apply(&mut m, &store, *o);
        }
        let rep = m.abort(T, AbortReason::Explicit).unwrap();
        assert_eq!(rep.undo_ops, ops.len());
        assert_eq!(*store.borrow(), before);
    }
}

/// Commit preserves the exact post-state (undo never runs).
#[test]
fn commit_preserves_mutations() {
    let mut rng = SplitMix64::new(0xC0_3317);
    for _case in 0..256 {
        let ops = gen_ops(&mut rng, 40);
        let store: Store = Rc::new(RefCell::new([0; 8]));
        let mut m = TxnManager::new(VirtualClock::new());
        m.begin(T);
        for o in &ops {
            apply(&mut m, &store, *o);
        }
        let after = *store.borrow();
        m.commit(T).unwrap();
        assert_eq!(*store.borrow(), after);
    }
}

/// Nesting law: outer(A); inner(B) aborted; outer aborted — final
/// state is pristine. And: inner committed then outer aborted —
/// also pristine (inner merges into outer).
#[test]
fn nested_composition() {
    let mut rng = SplitMix64::new(0x4E_57ED);
    for _case in 0..256 {
        let outer_ops = gen_ops(&mut rng, 15);
        let inner_ops = gen_ops(&mut rng, 15);
        let inner_commits = rng.chance(1, 2);
        let store: Store = Rc::new(RefCell::new([7; 8]));
        let before = *store.borrow();
        let mut m = TxnManager::new(VirtualClock::new());
        m.begin(T);
        for o in &outer_ops {
            apply(&mut m, &store, *o);
        }
        let mid = *store.borrow();
        m.begin(T);
        for o in &inner_ops {
            apply(&mut m, &store, *o);
        }
        if inner_commits {
            m.commit(T).unwrap();
        } else {
            m.abort(T, AbortReason::Explicit).unwrap();
            // Inner abort alone restores the mid-state.
            assert_eq!(*store.borrow(), mid);
        }
        m.abort(T, AbortReason::Explicit).unwrap();
        assert_eq!(*store.borrow(), before);
    }
}

/// The abort charge always satisfies the §4.5 equation with the exact
/// undo costs logged.
#[test]
fn abort_cost_equation_holds() {
    use vino_sim::costs;
    use vino_txn::locks::LockClass;
    let mut rng = SplitMix64::new(0xE0_0A71);
    for _case in 0..256 {
        let n_ops = rng.below(30) as usize;
        let n_locks = rng.below(6) as usize;
        let mut m = TxnManager::new(VirtualClock::new());
        let locks: Vec<_> = (0..n_locks).map(|_| m.create_lock(LockClass::Buffer)).collect();
        m.begin(T);
        for l in &locks {
            m.lock(*l, T);
        }
        let per_op = Cycles(50);
        for _ in 0..n_ops {
            m.log_undo(T, "op", per_op, || {}).unwrap();
        }
        let rep = m.abort(T, AbortReason::Explicit).unwrap();
        let expect = costs::TXN_ABORT_OVERHEAD
            + Cycles(costs::ABORT_UNLOCK.0 * n_locks as u64)
            + Cycles(per_op.0 * n_ops as u64);
        assert_eq!(rep.cost, expect);
    }
}

//! The VINO kernel transaction manager.
//!
//! §3.1: "We encapsulate each graft invocation in a transaction to allow
//! us to spontaneously abort a graft and clean up its state." The system
//! is deliberately simpler than a database transaction manager — the log
//! is transient, there is no redo, and of the ACID properties only
//! atomicity, consistency and isolation are provided. Nested
//! transactions are supported because grafts may invoke other grafts;
//! a nested commit merges its undo stack and locks into the parent.
//!
//! Two-phase locking: "Because the kernel is preemptible, it must
//! acquire locks on all resources being accessed or modified. [...] When
//! the currently running thread has a transaction associated with it,
//! lock release is delayed until commit or abort."
//!
//! Time-out–based abort (§3.2): every lockable resource class carries a
//! time-out; when a blocked request's time-out expires and the holder is
//! executing a transaction, that transaction is aborted — which also
//! breaks deadlocks.
//!
//! Modules:
//! - [`undo`] — the in-memory undo call stack;
//! - [`locks`] — the lock table, resource classes and time-outs;
//! - [`manager`] — [`TxnManager`] tying them together with the
//!   calibrated cost model (begin 36 µs, commit 30 µs, abort
//!   `35 µs + 10 µs × locks + undo`, §4.5).

pub mod locks;
pub mod manager;
pub mod undo;

pub use locks::{AcquireOutcome, LockClass, LockId, LockTable};
pub use manager::{AbortReport, TxnError, TxnId, TxnManager, TxnStats};
pub use undo::{UndoRecord, UndoStack};

//! The transaction manager.
//!
//! Owns the per-thread transaction stacks (nesting), the lock table and
//! the time-out queue. All costs follow the calibrated model:
//!
//! - begin: 36 µs (`TXN_BEGIN`)
//! - top-level commit: 30 µs (`TXN_COMMIT`) including lock release
//! - nested commit: 8 µs merge (`TXN_NESTED_COMMIT`)
//! - abort: `35 µs + 10 µs × L + Σ undo costs` — the §4.5 equation
//! - transaction lock acquire: 33 µs; plain mutex pair: 14 µs
//!
//! The manager is *driven*: blocking is represented by return values and
//! the caller (the kernel main loop, a test, or a bench harness)
//! advances the virtual clock and calls [`TxnManager::fire_due_timeouts`].

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use vino_sim::costs;
use vino_sim::event::EventQueue;
use vino_sim::fault::{FaultPlane, FaultSite};
use vino_sim::metrics::{Component, Counter, MetricsPlane};
use vino_sim::profile::{ProfilePlane, SpanKind};
use vino_sim::trace::{TraceEvent, TracePlane};
use vino_sim::{Cycles, ThreadId, VirtualClock};

use crate::locks::{AcquireOutcome, LockClass, LockId, LockTable};
use crate::undo::{UndoRecord, UndoStack};

/// Identifies a transaction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Transaction-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The thread has no active transaction.
    NoTransaction(ThreadId),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::NoTransaction(t) => write!(f, "{t} has no active transaction"),
        }
    }
}

impl std::error::Error for TxnError {}

/// Why a transaction was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The grafting layer decided to abort (graft trapped, bad result…).
    Explicit,
    /// A contended lock held too long timed out (§3.2).
    LockTimeout(LockId),
    /// The graft exceeded a quantity-constrained resource limit (§3.2).
    ResourceLimit,
}

/// What an abort did — the quantities in the §4.5 cost equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortReport {
    /// The aborted transaction.
    pub txn: TxnId,
    /// Why it aborted.
    pub reason: AbortReason,
    /// Undo operations executed (LIFO).
    pub undo_ops: usize,
    /// Locks released (the `L` term; 10 µs each).
    pub locks_released: usize,
    /// Total cycle cost charged for the abort.
    pub cost: Cycles,
    /// Lock hand-offs to waiting threads caused by the release.
    pub handoffs: Vec<(LockId, ThreadId)>,
}

/// What a commit did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReport {
    /// The committed transaction.
    pub txn: TxnId,
    /// True when this was a nested commit (merge into parent).
    pub nested: bool,
    /// Locks released (zero for nested commits).
    pub locks_released: usize,
    /// Lock hand-offs to waiting threads.
    pub handoffs: Vec<(LockId, ThreadId)>,
}

/// Outcome of a lock request through the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// Acquired; cost charged.
    Granted,
    /// Blocked on `holder`; a time-out has been scheduled at `deadline`
    /// (tick-rounded absolute time). The caller should advance time and
    /// call [`TxnManager::fire_due_timeouts`].
    Blocked { holder: ThreadId, deadline: Cycles },
}

/// Events produced when a scheduled time-out fires.
#[derive(Debug)]
pub enum TimeoutEvent {
    /// The holder was executing a transaction; it has been aborted and
    /// its locks released (§3.2: "we abort that transaction").
    HolderAborted {
        /// The contended lock whose time-out fired.
        lock: LockId,
        /// The thread whose transaction was aborted.
        holder: ThreadId,
        /// The abort details.
        report: AbortReport,
    },
    /// The holder was not in a transaction; policy is the caller's
    /// (VINO would preempt/terminate the thread, §2.2).
    HolderNotInTxn {
        /// The contended lock.
        lock: LockId,
        /// The current holder.
        holder: ThreadId,
    },
    /// The contention resolved before the deadline; nothing to do.
    Stale {
        /// The lock the stale timer referred to.
        lock: LockId,
    },
}

/// Counters for the whole manager lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions begun.
    pub begins: u64,
    /// Top-level commits.
    pub commits: u64,
    /// Nested commits (merges).
    pub nested_commits: u64,
    /// Aborts.
    pub aborts: u64,
    /// Undo operations executed across all aborts.
    pub undo_ops_run: u64,
    /// Lock time-outs that fired and aborted a holder.
    pub timeout_aborts: u64,
}

struct TxnFrame {
    id: TxnId,
    undo: UndoStack,
    locks: Vec<LockId>,
}

#[derive(PartialEq, Eq)]
struct PendingTimeout {
    lock: LockId,
    waiter: ThreadId,
}

/// Sentinel waiter used by injected time-out storms
/// ([`FaultSite::LockTimeoutStorm`]): never a real thread, so the fired
/// time-out always targets the holder.
const STORM_WAITER: ThreadId = ThreadId(u64::MAX);

/// The default VINO transaction manager (§3.1).
pub struct TxnManager {
    clock: Rc<VirtualClock>,
    table: LockTable,
    stacks: HashMap<ThreadId, Vec<TxnFrame>>,
    timeouts: EventQueue<PendingTimeout>,
    next_txn: u64,
    stats: TxnStats,
    fault: Option<Rc<FaultPlane>>,
    trace: Option<Rc<TracePlane>>,
    metrics: Option<Rc<MetricsPlane>>,
    profile: Option<Rc<ProfilePlane>>,
    watch: Option<Rc<vino_sim::watch::WatchPlane>>,
    /// Abort reports from fired time-outs, keyed by the aborted holder.
    /// The graft wrapper consumes these to discover that its transaction
    /// was stolen out from under it (see [`take_forced_abort`]).
    ///
    /// [`take_forced_abort`]: TxnManager::take_forced_abort
    forced: HashMap<ThreadId, AbortReport>,
}

impl TxnManager {
    /// Creates a manager charging costs to `clock`.
    pub fn new(clock: Rc<VirtualClock>) -> TxnManager {
        TxnManager {
            clock,
            table: LockTable::new(),
            stacks: HashMap::new(),
            timeouts: EventQueue::new(),
            next_txn: 0,
            stats: TxnStats::default(),
            fault: None,
            trace: None,
            metrics: None,
            profile: None,
            watch: None,
            forced: HashMap::new(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TxnStats {
        self.stats
    }

    /// The clock this manager charges costs to.
    pub fn clock(&self) -> &Rc<VirtualClock> {
        &self.clock
    }

    /// Wires a fault-injection plane. When [`FaultSite::LockTimeoutStorm`]
    /// fires on a granted transactional acquire, the manager schedules a
    /// forced time-out against the holder at the next clock tick — as if
    /// a phantom waiter had contended the lock since the beginning of
    /// time.
    pub fn set_fault_plane(&mut self, plane: Rc<FaultPlane>) {
        self.fault = Some(plane);
    }

    /// Wires a trace plane: begins/commits/aborts, lock grants,
    /// contention, fired time-outs, steals and undo activity all emit
    /// `txn.*` events (see `docs/TRACING.md`).
    pub fn set_trace_plane(&mut self, plane: Rc<TracePlane>) {
        self.trace = Some(plane);
    }

    /// Wires a metrics plane: every `txn.*` trace site also bumps its
    /// counter twin, and every transaction-envelope cycle charge is
    /// attributed to its overhead component (begin/commit, lock, undo,
    /// abort — see `docs/METRICS.md`).
    pub fn set_metrics_plane(&mut self, plane: Rc<MetricsPlane>) {
        self.metrics = Some(plane);
    }

    /// Wires a profile plane: every envelope cycle charge gets a profile
    /// attribution twin (so the two ledgers reconcile exactly) and the
    /// envelope steps — begin, lock-wait, undo, commit, abort — are
    /// recorded as child spans of the enclosing invocation (see
    /// `docs/PROFILING.md`).
    pub fn set_profile_plane(&mut self, plane: Rc<ProfilePlane>) {
        self.profile = Some(plane);
    }

    /// Wires a watch plane: every fired lock time-out that aborts a
    /// holder feeds the lock-timeout-rate window, so the `lock-starved`
    /// SLO rule sees convoy pressure as it builds (see `docs/WATCH.md`).
    pub fn set_watch_plane(&mut self, plane: Rc<vino_sim::watch::WatchPlane>) {
        self.watch = Some(plane);
    }

    fn pcharge(&self, comp: Component, cost: Cycles) {
        if let Some(pp) = &self.profile {
            pp.charge(comp, cost);
        }
    }

    fn pmark(&self, kind: SpanKind, dur: Cycles) {
        if let Some(pp) = &self.profile {
            pp.mark(kind, dur);
        }
    }

    fn emit(&self, ev: TraceEvent) {
        if let Some(tp) = &self.trace {
            tp.emit(ev);
        }
    }

    fn minc(&self, c: Counter) {
        if let Some(mp) = &self.metrics {
            mp.inc(c);
        }
    }

    /// Charges `cost` to the clock and attributes it to `comp`.
    fn bill(&self, comp: Component, cost: Cycles) {
        self.clock.charge(cost);
        if let Some(mp) = &self.metrics {
            mp.charge(comp, cost);
        }
        self.pcharge(comp, cost);
    }

    /// Number of active transactions across all threads (the survival
    /// battery asserts this returns to zero after every scenario).
    pub fn active_txns(&self) -> usize {
        self.stacks.values().map(Vec::len).sum()
    }

    /// The checkpointable counters: the next transaction id and the
    /// lifetime stats. Everything else in the manager is per-flight
    /// state that must be empty at a checkpoint.
    pub fn debug_state(&self) -> (u64, TxnStats) {
        (self.next_txn, self.stats)
    }

    /// Replants [`debug_state`](Self::debug_state) counters after a
    /// checkpoint restore, so resumed transactions mint the same ids.
    pub fn restore_debug_state(&mut self, next_txn: u64, stats: TxnStats) {
        self.next_txn = next_txn;
        self.stats = stats;
    }

    /// Drops every pending lock time-out and unconsumed forced-abort
    /// report. Part of the checkpoint quiesce: with no transaction
    /// active these can no longer fire against a live frame, and a
    /// restored manager starts without them, so the capture side must
    /// shed them too.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is still active.
    pub fn clear_timeouts(&mut self) {
        assert_eq!(self.active_txns(), 0, "cannot quiesce with live transactions");
        self.timeouts = EventQueue::new();
        self.forced.clear();
    }

    /// Consumes the abort report of transaction `txn` if a fired
    /// time-out aborted it out from under `thread`.
    ///
    /// A running graft holds no reference to its wrapper transaction; if
    /// a waiter's time-out (genuine contention or an injected storm)
    /// aborts that transaction while the graft is still executing, the
    /// wrapper discovers it only when its own commit/abort fails. The
    /// report is matched by [`TxnId`] so a stale entry from an earlier
    /// transaction on the same thread is never mistaken for the current
    /// one.
    pub fn take_forced_abort(&mut self, thread: ThreadId, txn: TxnId) -> Option<AbortReport> {
        match self.forced.get(&thread) {
            Some(r) if r.txn == txn => {
                self.minc(Counter::LockSteals);
                self.emit(TraceEvent::LockSteal { thread: thread.0, txn: txn.0 });
                self.forced.remove(&thread)
            }
            _ => None,
        }
    }

    /// Registers a lockable object.
    pub fn create_lock(&mut self, class: LockClass) -> LockId {
        self.table.create(class)
    }

    /// Read access to the lock table (for assertions and policy code).
    pub fn lock_table(&self) -> &LockTable {
        &self.table
    }

    /// Begins a transaction on `thread`. If the thread already has one,
    /// the new transaction nests inside it (§3.1).
    pub fn begin(&mut self, thread: ThreadId) -> TxnId {
        self.bill(Component::TxnBegin, costs::TXN_BEGIN);
        self.pmark(SpanKind::TxnBegin, costs::TXN_BEGIN);
        self.minc(Counter::TxnBegins);
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.stats.begins += 1;
        let stack = self.stacks.entry(thread).or_default();
        stack.push(TxnFrame { id, undo: UndoStack::new(), locks: Vec::new() });
        let depth = stack.len() as u64;
        self.emit(TraceEvent::TxnBegin { thread: thread.0, txn: id.0, depth });
        id
    }

    /// True if `thread` has an active transaction.
    pub fn in_txn(&self, thread: ThreadId) -> bool {
        self.depth(thread) > 0
    }

    /// Nesting depth of `thread`'s transaction stack.
    pub fn depth(&self, thread: ThreadId) -> usize {
        self.stacks.get(&thread).map_or(0, Vec::len)
    }

    /// The innermost transaction of `thread`.
    pub fn current(&self, thread: ThreadId) -> Option<TxnId> {
        self.stacks.get(&thread).and_then(|s| s.last()).map(|f| f.id)
    }

    /// Records an undo operation against `thread`'s current transaction
    /// (called by accessor functions, §3.1). Charges the push cost.
    pub fn log_undo(
        &mut self,
        thread: ThreadId,
        label: &'static str,
        cost: Cycles,
        op: impl FnOnce() + 'static,
    ) -> Result<(), TxnError> {
        let frame = self
            .stacks
            .get_mut(&thread)
            .and_then(|s| s.last_mut())
            .ok_or(TxnError::NoTransaction(thread))?;
        self.clock.charge(Cycles(costs::UNDO_PUSH.0));
        frame.undo.push(UndoRecord::new(label, cost, op));
        let depth = frame.undo.len() as u64;
        if let Some(mp) = &self.metrics {
            mp.charge(Component::Undo, Cycles(costs::UNDO_PUSH.0));
            mp.inc(Counter::UndoPushes);
            mp.observe_undo_depth(depth);
        }
        self.pcharge(Component::Undo, Cycles(costs::UNDO_PUSH.0));
        self.emit(TraceEvent::UndoPush { thread: thread.0, depth });
        Ok(())
    }

    /// Number of undo records pending in `thread`'s current transaction.
    pub fn pending_undo(&self, thread: ThreadId) -> usize {
        self.stacks.get(&thread).and_then(|s| s.last()).map_or(0, |f| f.undo.len())
    }

    /// Acquires `lock` for `thread`.
    ///
    /// Inside a transaction this is a *transaction lock*: 33 µs, release
    /// deferred to commit/abort (two-phase locking). Outside, it is a
    /// conventional mutex: 14 µs for the acquire/release pair, released
    /// by [`TxnManager::unlock`].
    ///
    /// On contention a time-out is scheduled at the class deadline,
    /// rounded up to the 10 ms system-clock tick (§4.5).
    pub fn lock(&mut self, lock: LockId, thread: ThreadId) -> LockOutcome {
        match self.table.acquire(lock, thread) {
            AcquireOutcome::Granted => {
                match self.stacks.get_mut(&thread) {
                    Some(stack) if !stack.is_empty() => {
                        if let Some(mp) = &self.metrics {
                            mp.charge(Component::Lock, costs::TXN_LOCK_ACQUIRE);
                            mp.inc(Counter::TxnLockAcquires);
                        }
                        if let Some(pp) = &self.profile {
                            pp.charge(Component::Lock, costs::TXN_LOCK_ACQUIRE);
                        }
                        self.clock.charge(costs::TXN_LOCK_ACQUIRE);
                        // The lock belongs to the frame that FIRST
                        // acquired it: re-recording a re-entrant grant
                        // in an inner frame would make an inner abort
                        // release a lock the outer transaction still
                        // holds (breaking two-phase locking).
                        if !stack.iter().any(|f| f.locks.contains(&lock)) {
                            stack.last_mut().expect("non-empty").locks.push(lock);
                        }
                        if let Some(tp) = &self.trace {
                            tp.emit(TraceEvent::LockAcquire { lock: lock.0, thread: thread.0 });
                        }
                        if let Some(plane) = &self.fault {
                            if plane.fire(FaultSite::LockTimeoutStorm) {
                                let deadline = EventQueue::<PendingTimeout>::round_to_tick(
                                    self.clock.now() + Cycles(1),
                                );
                                self.timeouts.schedule_exact(
                                    deadline,
                                    PendingTimeout { lock, waiter: STORM_WAITER },
                                );
                            }
                        }
                    }
                    _ => {
                        self.bill(Component::Lock, costs::MUTEX_PAIR);
                        self.minc(Counter::MutexAcquires);
                    }
                }
                LockOutcome::Granted
            }
            AcquireOutcome::Contended { holder, timeout } => {
                let deadline =
                    EventQueue::<PendingTimeout>::round_to_tick(self.clock.now() + timeout);
                self.timeouts.schedule_exact(deadline, PendingTimeout { lock, waiter: thread });
                self.minc(Counter::LockWaits);
                self.emit(TraceEvent::LockBlocked {
                    lock: lock.0,
                    waiter: thread.0,
                    holder: holder.0,
                });
                LockOutcome::Blocked { holder, deadline }
            }
        }
    }

    /// Releases `lock` for `thread`.
    ///
    /// If the lock belongs to an active transaction of the thread the
    /// release is *deferred* (two-phase locking: "lock release is
    /// delayed until commit or abort") and this returns `None`.
    /// Otherwise the lock is released and the next waiter (if any) is
    /// returned for hand-off.
    pub fn unlock(&mut self, lock: LockId, thread: ThreadId) -> Option<ThreadId> {
        if let Some(stack) = self.stacks.get(&thread) {
            if stack.iter().any(|f| f.locks.contains(&lock)) {
                return None; // Deferred to commit/abort.
            }
        }
        self.table.release(lock, thread)
    }

    /// Commits `thread`'s current transaction.
    pub fn commit(&mut self, thread: ThreadId) -> Result<CommitReport, TxnError> {
        let stack = self.stacks.get_mut(&thread).ok_or(TxnError::NoTransaction(thread))?;
        let frame = stack.pop().ok_or(TxnError::NoTransaction(thread))?;
        if let Some(parent) = stack.last_mut() {
            // Nested commit: merge undo stack and locks into the parent.
            self.clock.charge(costs::TXN_NESTED_COMMIT);
            if let Some(mp) = &self.metrics {
                mp.charge(Component::TxnCommit, costs::TXN_NESTED_COMMIT);
                mp.inc(Counter::TxnNestedCommits);
            }
            if let Some(pp) = &self.profile {
                pp.charge(Component::TxnCommit, costs::TXN_NESTED_COMMIT);
                pp.mark(SpanKind::TxnCommit, costs::TXN_NESTED_COMMIT);
            }
            self.stats.nested_commits += 1;
            parent.undo.absorb(frame.undo);
            for l in frame.locks {
                if !parent.locks.contains(&l) {
                    parent.locks.push(l);
                }
            }
            self.emit(TraceEvent::TxnCommit {
                thread: thread.0,
                txn: frame.id.0,
                nested: true,
                locks: 0,
            });
            Ok(CommitReport {
                txn: frame.id,
                nested: true,
                locks_released: 0,
                handoffs: Vec::new(),
            })
        } else {
            self.bill(Component::TxnCommit, costs::TXN_COMMIT);
            self.pmark(SpanKind::TxnCommit, costs::TXN_COMMIT);
            self.minc(Counter::TxnCommits);
            self.stats.commits += 1;
            let mut handoffs = Vec::new();
            let mut released = 0;
            for l in &frame.locks {
                released += 1;
                if let Some(next) = self.table.release_all_holds(*l, thread) {
                    handoffs.push((*l, next));
                }
            }
            self.emit(TraceEvent::TxnCommit {
                thread: thread.0,
                txn: frame.id.0,
                nested: false,
                locks: released as u64,
            });
            Ok(CommitReport { txn: frame.id, nested: false, locks_released: released, handoffs })
        }
    }

    /// Aborts `thread`'s current (innermost) transaction: runs the undo
    /// call stack in LIFO order, releases the transaction's locks, and
    /// charges `35 µs + 10 µs × L + Σ undo` (§4.5).
    pub fn abort(
        &mut self,
        thread: ThreadId,
        reason: AbortReason,
    ) -> Result<AbortReport, TxnError> {
        let stack = self.stacks.get_mut(&thread).ok_or(TxnError::NoTransaction(thread))?;
        let mut frame = stack.pop().ok_or(TxnError::NoTransaction(thread))?;
        let start = self.clock.now();
        self.bill(Component::Abort, costs::TXN_ABORT_OVERHEAD);
        self.minc(Counter::TxnAborts);
        let (undo_ops, undo_cost) = frame.undo.unwind();
        self.clock.charge(undo_cost);
        if let Some(mp) = &self.metrics {
            mp.charge(Component::Undo, undo_cost);
        }
        self.pcharge(Component::Undo, undo_cost);
        if undo_cost.get() > 0 {
            self.pmark(SpanKind::Undo, undo_cost);
        }
        let mut handoffs = Vec::new();
        let mut released = 0;
        for l in &frame.locks {
            self.bill(Component::Abort, costs::ABORT_UNLOCK);
            released += 1;
            if let Some(next) = self.table.release_all_holds(*l, thread) {
                handoffs.push((*l, next));
            }
        }
        self.stats.aborts += 1;
        self.stats.undo_ops_run += undo_ops as u64;
        if undo_ops > 0 {
            self.minc(Counter::UndoRuns);
            self.emit(TraceEvent::UndoRun { thread: thread.0, ops: undo_ops as u64 });
        }
        self.emit(TraceEvent::TxnAbort {
            thread: thread.0,
            txn: frame.id.0,
            locks: released as u64,
        });
        if let Some(pp) = &self.profile {
            pp.mark_since(SpanKind::Abort, start);
        }
        Ok(AbortReport {
            txn: frame.id,
            reason,
            undo_ops,
            locks_released: released,
            cost: self.clock.since(start),
            handoffs,
        })
    }

    /// The earliest pending lock time-out, so drivers can advance the
    /// virtual clock straight to it.
    pub fn next_timeout(&mut self) -> Option<Cycles> {
        self.timeouts.next_deadline()
    }

    /// Fires every lock time-out whose deadline is ≤ now.
    ///
    /// For each fired time-out whose lock is still contended: if the
    /// holder is executing a transaction, that transaction is aborted
    /// (even if the lock predates it — §3.2 note) and its locks
    /// released. Stale time-outs (contention already resolved, or the
    /// waiter has the lock now) are reported as [`TimeoutEvent::Stale`].
    pub fn fire_due_timeouts(&mut self) -> Vec<TimeoutEvent> {
        let now = self.clock.now();
        let due = self.timeouts.fire_due(now);
        let mut events = Vec::new();
        for (_, PendingTimeout { lock, waiter }) in due {
            let holder = self.table.holder(lock);
            match holder {
                Some(h) if h != waiter => {
                    if self.in_txn(h) {
                        self.minc(Counter::LockTimeouts);
                        if let Some(wp) = &self.watch {
                            wp.observe_lock_timeout();
                        }
                        self.emit(TraceEvent::LockTimeout { lock: lock.0, holder: h.0 });
                        let report = self
                            .abort(h, AbortReason::LockTimeout(lock))
                            .expect("holder verified in txn");
                        self.stats.timeout_aborts += 1;
                        self.forced.insert(h, report.clone());
                        events.push(TimeoutEvent::HolderAborted { lock, holder: h, report });
                    } else {
                        events.push(TimeoutEvent::HolderNotInTxn { lock, holder: h });
                    }
                }
                _ => events.push(TimeoutEvent::Stale { lock }),
            }
        }
        events
    }

    /// Convenience driver: acquire `lock`, advancing virtual time and
    /// firing time-outs until granted or `max_timeouts` time-outs have
    /// fired without progress. Returns the time-out events encountered.
    ///
    /// This is the deterministic analogue of a blocking kernel lock
    /// acquire and demonstrates Rule 9 (forward progress despite a
    /// faulty graft holding the lock).
    pub fn lock_blocking(
        &mut self,
        lock: LockId,
        thread: ThreadId,
        max_timeouts: usize,
    ) -> (bool, Vec<TimeoutEvent>) {
        let mut events = Vec::new();
        for _ in 0..=max_timeouts {
            match self.lock(lock, thread) {
                LockOutcome::Granted => return (true, events),
                LockOutcome::Blocked { deadline, .. } => {
                    let t0 = self.clock.now();
                    self.clock.advance_to(deadline);
                    if let Some(pp) = &self.profile {
                        pp.mark_since(SpanKind::LockWait, t0);
                    }
                    events.extend(self.fire_due_timeouts());
                }
            }
        }
        (false, events)
    }
}

impl fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnManager")
            .field("active_threads", &self.stacks.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn mgr() -> TxnManager {
        TxnManager::new(VirtualClock::new())
    }

    #[test]
    fn begin_commit_costs_match_paper() {
        let mut m = mgr();
        let t0 = m.clock.now();
        m.begin(T1);
        assert_eq!(m.clock.since(t0), costs::TXN_BEGIN);
        let t1 = m.clock.now();
        let rep = m.commit(T1).unwrap();
        assert!(!rep.nested);
        assert_eq!(m.clock.since(t1), costs::TXN_COMMIT);
        // Begin+commit == the paper's 64-66us "null graft" transaction
        // envelope.
        let total = (costs::TXN_BEGIN + costs::TXN_COMMIT).as_us();
        assert!((60.0..=90.0).contains(&total));
    }

    #[test]
    fn commit_without_txn_errors() {
        let mut m = mgr();
        assert_eq!(m.commit(T1), Err(TxnError::NoTransaction(T1)));
        assert_eq!(m.abort(T1, AbortReason::Explicit), Err(TxnError::NoTransaction(T1)));
    }

    #[test]
    fn abort_runs_undo_lifo_and_restores_state() {
        // Model kernel state: a counter an accessor increments.
        let state = Rc::new(RefCell::new(0i64));
        let mut m = mgr();
        m.begin(T1);
        for _ in 0..5 {
            *state.borrow_mut() += 1; // The accessor's forward action.
            let s = Rc::clone(&state);
            m.log_undo(T1, "dec", Cycles(100), move || *s.borrow_mut() -= 1).unwrap();
        }
        assert_eq!(*state.borrow(), 5);
        assert_eq!(m.pending_undo(T1), 5);
        let rep = m.abort(T1, AbortReason::Explicit).unwrap();
        assert_eq!(rep.undo_ops, 5);
        assert_eq!(*state.borrow(), 0, "abort must restore pre-txn state");
        assert!(!m.in_txn(T1));
    }

    #[test]
    fn abort_cost_equation() {
        // §4.5: abort = 35us + 10us*L + cG. Build a txn with L locks and
        // undo cost G', assert the charge matches exactly.
        for locks in 0..4usize {
            let mut m = mgr();
            let ids: Vec<LockId> = (0..locks).map(|_| m.create_lock(LockClass::Buffer)).collect();
            m.begin(T1);
            for id in &ids {
                assert_eq!(m.lock(*id, T1), LockOutcome::Granted);
            }
            let undo_cost = Cycles::from_us(12);
            m.log_undo(T1, "undo", undo_cost, || {}).unwrap();
            let rep = m.abort(T1, AbortReason::Explicit).unwrap();
            let expect = costs::TXN_ABORT_OVERHEAD
                + Cycles(costs::ABORT_UNLOCK.0 * locks as u64)
                + undo_cost;
            assert_eq!(rep.cost, expect, "L = {locks}");
            assert_eq!(rep.locks_released, locks);
        }
    }

    #[test]
    fn commit_discards_undo() {
        let state = Rc::new(RefCell::new(0i64));
        let mut m = mgr();
        m.begin(T1);
        *state.borrow_mut() = 42;
        let s = Rc::clone(&state);
        m.log_undo(T1, "reset", Cycles(1), move || *s.borrow_mut() = 0).unwrap();
        m.commit(T1).unwrap();
        assert_eq!(*state.borrow(), 42, "commit must not undo");
    }

    #[test]
    fn log_undo_without_txn_errors() {
        let mut m = mgr();
        assert!(m.log_undo(T1, "x", Cycles(1), || {}).is_err());
    }

    #[test]
    fn nested_commit_merges_into_parent() {
        let state = Rc::new(RefCell::new(Vec::<&'static str>::new()));
        let mut m = mgr();
        let l_outer = m.create_lock(LockClass::Buffer);
        let l_inner = m.create_lock(LockClass::Buffer);
        m.begin(T1);
        m.lock(l_outer, T1);
        let s = Rc::clone(&state);
        m.log_undo(T1, "outer", Cycles(1), move || s.borrow_mut().push("undo-outer")).unwrap();

        let inner = m.begin(T1); // Nested.
        assert_eq!(m.depth(T1), 2);
        m.lock(l_inner, T1);
        let s = Rc::clone(&state);
        m.log_undo(T1, "inner", Cycles(1), move || s.borrow_mut().push("undo-inner")).unwrap();
        let rep = m.commit(T1).unwrap();
        assert!(rep.nested);
        assert_eq!(rep.txn, inner);
        assert_eq!(rep.locks_released, 0, "nested commit must not release locks");
        assert_eq!(m.lock_table().holder(l_inner), Some(T1), "lock survives nested commit");

        // Parent abort now reverses both, child's op first.
        let rep = m.abort(T1, AbortReason::Explicit).unwrap();
        assert_eq!(rep.undo_ops, 2);
        assert_eq!(rep.locks_released, 2);
        assert_eq!(*state.borrow(), vec!["undo-inner", "undo-outer"]);
        assert_eq!(m.lock_table().holder(l_outer), None);
    }

    #[test]
    fn nested_abort_spares_parent() {
        // "any graft can abort without aborting its calling graft".
        let state = Rc::new(RefCell::new(0i64));
        let mut m = mgr();
        m.begin(T1);
        *state.borrow_mut() += 1;
        let s = Rc::clone(&state);
        m.log_undo(T1, "outer", Cycles(1), move || *s.borrow_mut() -= 1).unwrap();

        m.begin(T1);
        *state.borrow_mut() += 10;
        let s = Rc::clone(&state);
        m.log_undo(T1, "inner", Cycles(1), move || *s.borrow_mut() -= 10).unwrap();
        m.abort(T1, AbortReason::Explicit).unwrap();

        assert_eq!(*state.borrow(), 1, "only the inner delta reversed");
        assert!(m.in_txn(T1), "parent still active");
        m.commit(T1).unwrap();
        assert_eq!(*state.borrow(), 1);
    }

    #[test]
    fn txn_lock_costs_more_than_mutex() {
        // §4.6: a transaction lock adds ~19us over a conventional mutex.
        let mut m = mgr();
        let l = m.create_lock(LockClass::Buffer);
        let t0 = m.clock.now();
        m.lock(l, T1); // No txn: mutex path.
        let mutex_cost = m.clock.since(t0);
        m.unlock(l, T1);

        let mut m2 = mgr();
        let l2 = m2.create_lock(LockClass::Buffer);
        m2.begin(T2);
        let t0 = m2.clock.now();
        m2.lock(l2, T2);
        let txn_cost = m2.clock.since(t0);
        let delta = txn_cost.as_us() - mutex_cost.as_us();
        assert!((delta - 19.0).abs() < 1e-9, "delta = {delta}");
    }

    #[test]
    fn two_phase_locking_defers_release() {
        let mut m = mgr();
        let l = m.create_lock(LockClass::Buffer);
        m.begin(T1);
        m.lock(l, T1);
        // An explicit unlock inside the transaction is deferred.
        assert_eq!(m.unlock(l, T1), None);
        assert_eq!(m.lock_table().holder(l), Some(T1));
        // Commit releases it.
        let rep = m.commit(T1).unwrap();
        assert_eq!(rep.locks_released, 1);
        assert_eq!(m.lock_table().holder(l), None);
    }

    #[test]
    fn lock_timeout_aborts_hoarding_holder() {
        // The §2.2 malicious fragment: lock(resourceA); while(1);
        let mut m = mgr();
        let l = m.create_lock(LockClass::Buffer);
        m.begin(T1);
        m.lock(l, T1);
        // T2 wants the lock; T1 spins forever.
        let out = m.lock(l, T2);
        let LockOutcome::Blocked { holder, deadline } = out else {
            panic!("expected contention");
        };
        assert_eq!(holder, T1);
        // Deadline is tick-rounded: between timeout and timeout + 10ms.
        let timeout = LockClass::Buffer.timeout();
        assert!(deadline >= timeout);
        assert!(deadline.get() <= (timeout + costs::CLOCK_TICK).get());
        // Advance to the deadline and fire.
        m.clock.advance_to(deadline);
        let events = m.fire_due_timeouts();
        assert_eq!(events.len(), 1);
        match &events[0] {
            TimeoutEvent::HolderAborted { lock, holder, report } => {
                assert_eq!(*lock, l);
                assert_eq!(*holder, T1);
                assert_eq!(report.locks_released, 1);
            }
            other => panic!("expected HolderAborted, got {other:?}"),
        }
        // T2 can now take the lock: forward progress (Rule 9).
        assert_eq!(m.lock(l, T2), LockOutcome::Granted);
        assert_eq!(m.stats().timeout_aborts, 1);
    }

    #[test]
    fn timeout_stale_when_contention_resolved() {
        let mut m = mgr();
        let l = m.create_lock(LockClass::Buffer);
        m.begin(T1);
        m.lock(l, T1);
        let LockOutcome::Blocked { deadline, .. } = m.lock(l, T2) else { panic!() };
        // Holder commits (releasing) before the deadline.
        m.commit(T1).unwrap();
        m.lock(l, T2);
        m.clock.advance_to(deadline);
        let events = m.fire_due_timeouts();
        assert!(matches!(events[0], TimeoutEvent::Stale { .. }));
        assert_eq!(m.stats().timeout_aborts, 0);
    }

    #[test]
    fn timeout_on_non_txn_holder_reports() {
        let mut m = mgr();
        let l = m.create_lock(LockClass::Buffer);
        m.lock(l, T1); // Plain mutex hold, no txn.
        let LockOutcome::Blocked { deadline, .. } = m.lock(l, T2) else { panic!() };
        m.clock.advance_to(deadline);
        let events = m.fire_due_timeouts();
        assert!(matches!(events[0], TimeoutEvent::HolderNotInTxn { .. }));
    }

    #[test]
    fn deadlock_broken_by_timeout() {
        // A holds L1 wants L2; B holds L2 wants L1. Time-outs must
        // abort one and let the other proceed (§3.2: "implicit
        // mechanism for breaking deadlocks").
        let mut m = mgr();
        let l1 = m.create_lock(LockClass::Buffer);
        let l2 = m.create_lock(LockClass::Buffer);
        m.begin(T1);
        m.begin(T2);
        assert_eq!(m.lock(l1, T1), LockOutcome::Granted);
        assert_eq!(m.lock(l2, T2), LockOutcome::Granted);
        let LockOutcome::Blocked { .. } = m.lock(l2, T1) else { panic!() };
        let LockOutcome::Blocked { .. } = m.lock(l1, T2) else { panic!() };
        // Advance to the first deadline; at least one holder aborts.
        let dl = m.next_timeout().unwrap();
        m.clock.advance_to(dl);
        let events = m.fire_due_timeouts();
        let aborted: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TimeoutEvent::HolderAborted { holder, .. } => Some(*holder),
                _ => None,
            })
            .collect();
        assert!(!aborted.is_empty(), "deadlock must be broken");
        // Some thread can now make progress on both locks.
        let survivor = if aborted.contains(&T1) { T2 } else { T1 };
        let (ok1, _) = m.lock_blocking(l1, survivor, 4);
        let (ok2, _) = m.lock_blocking(l2, survivor, 4);
        assert!(ok1 && ok2, "survivor must acquire both locks");
    }

    #[test]
    fn lock_blocking_drives_to_acquisition() {
        let mut m = mgr();
        let l = m.create_lock(LockClass::SharedBuffer);
        m.begin(T1);
        m.lock(l, T1);
        let (ok, events) = m.lock_blocking(l, T2, 3);
        assert!(ok, "Rule 9: waiter must eventually make progress");
        assert!(events.iter().any(|e| matches!(e, TimeoutEvent::HolderAborted { .. })));
    }

    #[test]
    fn reentrant_lock_recorded_once() {
        let mut m = mgr();
        let l = m.create_lock(LockClass::Buffer);
        m.begin(T1);
        m.lock(l, T1);
        m.lock(l, T1);
        let rep = m.abort(T1, AbortReason::Explicit).unwrap();
        assert_eq!(rep.locks_released, 1, "re-entrant holds count as one lock");
        assert_eq!(m.lock_table().holder(l), None);
    }

    #[test]
    fn trace_plane_sees_lock_lifecycle() {
        use vino_sim::trace::TracePlane;
        let mut m = mgr();
        let plane = TracePlane::new(Rc::clone(m.clock()));
        m.set_trace_plane(Rc::clone(&plane));
        let l = m.create_lock(LockClass::Buffer);
        let txn = m.begin(T1);
        m.lock(l, T1);
        m.log_undo(T1, "x", Cycles(1), || {}).unwrap();
        let LockOutcome::Blocked { deadline, .. } = m.lock(l, T2) else { panic!() };
        m.clock.advance_to(deadline);
        m.fire_due_timeouts();
        assert!(m.take_forced_abort(T1, txn).is_some());
        let evs: Vec<TraceEvent> = plane.records().iter().map(|r| r.event).collect();
        assert_eq!(
            evs,
            vec![
                TraceEvent::TxnBegin { thread: 1, txn: txn.0, depth: 1 },
                TraceEvent::LockAcquire { lock: l.0, thread: 1 },
                TraceEvent::UndoPush { thread: 1, depth: 1 },
                TraceEvent::LockBlocked { lock: l.0, waiter: 2, holder: 1 },
                TraceEvent::LockTimeout { lock: l.0, holder: 1 },
                TraceEvent::UndoRun { thread: 1, ops: 1 },
                TraceEvent::TxnAbort { thread: 1, txn: txn.0, locks: 1 },
                TraceEvent::LockSteal { thread: 1, txn: txn.0 },
            ]
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mgr();
        m.begin(T1);
        m.begin(T1);
        m.commit(T1).unwrap();
        m.log_undo(T1, "x", Cycles(1), || {}).unwrap();
        m.abort(T1, AbortReason::Explicit).unwrap();
        let s = m.stats();
        assert_eq!(s.begins, 2);
        assert_eq!(s.nested_commits, 1);
        assert_eq!(s.commits, 0);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.undo_ops_run, 1);
    }
}

//! The kernel lock table: two-phase transaction locks with per-class
//! time-outs.
//!
//! §3.2: "with every lockable resource, we associate a time-out value
//! that indicates how long a lock can be held on that object during
//! periods of contention. This time-out based locking also provides an
//! implicit mechanism for breaking deadlocks. Because resource
//! requirements vary tremendously, reasonable time-out intervals must be
//! determined (experimentally) on a per-resource-type basis."
//!
//! The table is *passive*: it records holders and waiters and computes
//! deadlines; the [`crate::manager::TxnManager`] owns the policy of what
//! to do when a deadline fires (abort the holder's transaction).

use std::collections::HashMap;
use std::fmt;

use vino_sim::{Cycles, ThreadId};

/// Identifies one lockable kernel object (a page, a bitmap, a list...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(pub u64);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock#{}", self.0)
    }
}

/// Resource classes and their contention time-outs (§3.2 gives the two
/// anchors: pages locked "tens of milliseconds during I/O", free-space
/// bitmaps "a few hundreds of instructions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockClass {
    /// A memory/buffer page; may be held across disk I/O.
    Page,
    /// A free-space bitmap; held for a few hundred instructions.
    FreeBitmap,
    /// The process list (the Table 5 scheduling graft locks this).
    ProcessList,
    /// A buffer-cache entry.
    Buffer,
    /// An application/graft shared memory region (§4.1.2, §4.2.2).
    SharedBuffer,
    /// Anything else, with an explicit time-out in microseconds.
    Custom(u32),
}

impl LockClass {
    /// The contention time-out for this class: how long a holder may
    /// keep the lock *once somebody else wants it*.
    pub fn timeout(self) -> Cycles {
        match self {
            // "a page may be locked for tens of milliseconds during I/O".
            LockClass::Page => Cycles::from_ms(50),
            // "a few hundreds of instructions": microseconds; note the
            // 10 ms tick quantisation makes the effective minimum one
            // tick — the coarseness §4.5 itself calls out.
            LockClass::FreeBitmap => Cycles::from_us(10),
            LockClass::ProcessList => Cycles::from_ms(1),
            LockClass::Buffer => Cycles::from_ms(10),
            LockClass::SharedBuffer => Cycles::from_ms(1),
            LockClass::Custom(us) => Cycles::from_us(us as u64),
        }
    }
}

#[derive(Debug)]
struct LockState {
    class: LockClass,
    holder: Option<ThreadId>,
    /// Re-entrant hold count for the holder.
    depth: u32,
    waiters: Vec<ThreadId>,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The lock is now held by the requester (charges acquire cost).
    Granted,
    /// Held by someone else; the caller should block and schedule the
    /// returned time-out duration (to be tick-rounded by the manager).
    Contended {
        /// Current holder, for diagnostics and abort targeting.
        holder: ThreadId,
        /// The class time-out to apply.
        timeout: Cycles,
    },
}

/// The kernel's lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: HashMap<LockId, LockState>,
    next_id: u64,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Registers a new lockable object of `class`, returning its id.
    pub fn create(&mut self, class: LockClass) -> LockId {
        let id = LockId(self.next_id);
        self.next_id += 1;
        self.locks.insert(id, LockState { class, holder: None, depth: 0, waiters: Vec::new() });
        id
    }

    /// Attempts to take `lock` for `thread`. Re-entrant for the holder.
    ///
    /// # Panics
    ///
    /// Panics if `lock` was never created (a kernel bug, not graft
    /// misbehaviour — grafts cannot name arbitrary locks).
    pub fn acquire(&mut self, lock: LockId, thread: ThreadId) -> AcquireOutcome {
        let st = self.state_mut(lock);
        match st.holder {
            None => {
                st.holder = Some(thread);
                st.depth = 1;
                st.waiters.retain(|w| *w != thread);
                AcquireOutcome::Granted
            }
            Some(h) if h == thread => {
                st.depth += 1;
                AcquireOutcome::Granted
            }
            Some(h) => {
                if !st.waiters.contains(&thread) {
                    st.waiters.push(thread);
                }
                AcquireOutcome::Contended { holder: h, timeout: st.class.timeout() }
            }
        }
    }

    /// Releases one hold of `lock` by `thread`. Returns the thread that
    /// should be granted the lock next (front waiter), if the lock
    /// became free.
    ///
    /// Releasing a lock one does not hold is a no-op returning `None`
    /// (an aborted transaction may race with an explicit release).
    pub fn release(&mut self, lock: LockId, thread: ThreadId) -> Option<ThreadId> {
        let st = self.state_mut(lock);
        if st.holder != Some(thread) {
            return None;
        }
        st.depth -= 1;
        if st.depth > 0 {
            return None;
        }
        st.holder = None;
        st.waiters.first().copied()
    }

    /// Forces release of every hold `thread` has on `lock` (abort path).
    pub fn release_all_holds(&mut self, lock: LockId, thread: ThreadId) -> Option<ThreadId> {
        let st = self.state_mut(lock);
        if st.holder != Some(thread) {
            return None;
        }
        st.holder = None;
        st.depth = 0;
        st.waiters.first().copied()
    }

    /// Current holder of `lock`.
    pub fn holder(&self, lock: LockId) -> Option<ThreadId> {
        self.locks.get(&lock).and_then(|s| s.holder)
    }

    /// Whether any thread is waiting on `lock`.
    pub fn contended(&self, lock: LockId) -> bool {
        self.locks.get(&lock).is_some_and(|s| !s.waiters.is_empty())
    }

    /// Removes `thread` from the waiter list of `lock` (e.g. when the
    /// waiter itself is aborted).
    pub fn cancel_wait(&mut self, lock: LockId, thread: ThreadId) {
        if let Some(st) = self.locks.get_mut(&lock) {
            st.waiters.retain(|w| *w != thread);
        }
    }

    /// The class of `lock`.
    pub fn class(&self, lock: LockId) -> Option<LockClass> {
        self.locks.get(&lock).map(|s| s.class)
    }

    /// Number of locks currently held by any thread — the survival
    /// battery's lock-leak detector (must be zero at quiescence).
    pub fn held_count(&self) -> usize {
        self.locks.values().filter(|s| s.holder.is_some()).count()
    }

    /// Number of threads parked on any waiter list.
    pub fn waiter_count(&self) -> usize {
        self.locks.values().map(|s| s.waiters.len()).sum()
    }

    fn state_mut(&mut self, lock: LockId) -> &mut LockState {
        self.locks.get_mut(&lock).expect("lock id was never created")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn grant_and_reentrancy() {
        let mut t = LockTable::new();
        let l = t.create(LockClass::Buffer);
        assert_eq!(t.acquire(l, T1), AcquireOutcome::Granted);
        assert_eq!(t.acquire(l, T1), AcquireOutcome::Granted, "re-entrant");
        assert_eq!(t.holder(l), Some(T1));
        // Two releases needed.
        assert_eq!(t.release(l, T1), None);
        assert_eq!(t.holder(l), Some(T1));
        assert_eq!(t.release(l, T1), None);
        assert_eq!(t.holder(l), None);
    }

    #[test]
    fn contention_reports_holder_and_timeout() {
        let mut t = LockTable::new();
        let l = t.create(LockClass::Page);
        t.acquire(l, T1);
        match t.acquire(l, T2) {
            AcquireOutcome::Contended { holder, timeout } => {
                assert_eq!(holder, T1);
                assert_eq!(timeout, LockClass::Page.timeout());
            }
            other => panic!("expected contention, got {other:?}"),
        }
        assert!(t.contended(l));
    }

    #[test]
    fn release_hands_off_to_waiter() {
        let mut t = LockTable::new();
        let l = t.create(LockClass::Buffer);
        t.acquire(l, T1);
        t.acquire(l, T2);
        let next = t.release(l, T1);
        assert_eq!(next, Some(T2));
        // The waiter still must acquire explicitly.
        assert_eq!(t.acquire(l, T2), AcquireOutcome::Granted);
        assert!(!t.contended(l));
    }

    #[test]
    fn release_by_non_holder_is_noop() {
        let mut t = LockTable::new();
        let l = t.create(LockClass::Buffer);
        t.acquire(l, T1);
        assert_eq!(t.release(l, T2), None);
        assert_eq!(t.holder(l), Some(T1));
    }

    #[test]
    fn release_all_holds_clears_reentrancy() {
        let mut t = LockTable::new();
        let l = t.create(LockClass::Buffer);
        t.acquire(l, T1);
        t.acquire(l, T1);
        t.acquire(l, T2);
        assert_eq!(t.release_all_holds(l, T1), Some(T2));
        assert_eq!(t.holder(l), None);
    }

    #[test]
    fn cancel_wait_removes_waiter() {
        let mut t = LockTable::new();
        let l = t.create(LockClass::Buffer);
        t.acquire(l, T1);
        t.acquire(l, T2);
        t.cancel_wait(l, T2);
        assert!(!t.contended(l));
        assert_eq!(t.release(l, T1), None);
    }

    #[test]
    fn class_timeouts_ordered_sensibly() {
        // Pages (held across I/O) must tolerate far longer holds than a
        // free-space bitmap (§3.2's two examples).
        assert!(LockClass::Page.timeout() > LockClass::FreeBitmap.timeout());
        assert_eq!(LockClass::Custom(250).timeout(), Cycles::from_us(250));
    }
}

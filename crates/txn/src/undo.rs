//! The in-memory undo call stack.
//!
//! §3.1: "Modifications to permanent kernel state are encapsulated in
//! accessor functions [...] Each such accessor function that can be
//! called from a grafted function has an associated undo function.
//! Whenever an accessor function is called, if there is a transaction
//! associated with the currently running thread, the corresponding undo
//! operation is pushed onto the transaction's undo call stack. If a
//! transaction aborts, the transaction manager invokes each undo
//! operation on the undo call stack."
//!
//! Undo operations run in LIFO order (it is a call *stack*): the last
//! state change is the first one reversed.

use vino_sim::Cycles;

/// One recorded reversal: a closure that restores the state an accessor
/// changed, plus a cost estimate and a label for diagnostics.
pub struct UndoRecord {
    op: Box<dyn FnOnce()>,
    /// Cycles the reversal costs when executed at abort; the paper's
    /// `cG` term, "somewhat less than the actual cost of running the
    /// graft" (§4.5).
    pub cost: Cycles,
    /// Human-readable accessor name for abort diagnostics.
    pub label: &'static str,
}

impl UndoRecord {
    /// Creates a record from a reversal closure.
    pub fn new(label: &'static str, cost: Cycles, op: impl FnOnce() + 'static) -> UndoRecord {
        UndoRecord { op: Box::new(op), cost, label }
    }

    /// Executes the reversal, consuming the record.
    pub fn run(self) -> (&'static str, Cycles) {
        (self.op)();
        (self.label, self.cost)
    }
}

impl std::fmt::Debug for UndoRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UndoRecord")
            .field("label", &self.label)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// A LIFO stack of [`UndoRecord`]s belonging to one transaction.
#[derive(Debug, Default)]
pub struct UndoStack {
    records: Vec<UndoRecord>,
}

impl UndoStack {
    /// An empty stack.
    pub fn new() -> UndoStack {
        UndoStack::default()
    }

    /// Pushes a reversal; called by accessor functions.
    pub fn push(&mut self, record: UndoRecord) {
        self.records.push(record);
    }

    /// Number of pending reversals.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing needs reversing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Runs every reversal in LIFO order, returning (ops run, total
    /// reversal cost). The stack is empty afterwards.
    pub fn unwind(&mut self) -> (usize, Cycles) {
        let mut total = Cycles::ZERO;
        let mut n = 0;
        while let Some(rec) = self.records.pop() {
            let (_, cost) = rec.run();
            total += cost;
            n += 1;
        }
        (n, total)
    }

    /// Discards all records without running them (commit path).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Merges `child` onto this stack, preserving order so that a later
    /// parent abort reverses the child's operations after (i.e. stacked
    /// above) the parent's own earlier operations. §3.1: "When a nested
    /// transaction commits, its undo call stack and locks are merged
    /// with those of its parent."
    pub fn absorb(&mut self, child: UndoStack) {
        self.records.extend(child.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn unwind_runs_lifo() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let mut s = UndoStack::new();
        for i in 0..3 {
            let log = Rc::clone(&log);
            s.push(UndoRecord::new("op", Cycles(10), move || log.borrow_mut().push(i)));
        }
        let (n, cost) = s.unwind();
        assert_eq!(n, 3);
        assert_eq!(cost, Cycles(30));
        assert_eq!(*log.borrow(), vec![2, 1, 0], "LIFO order required");
        assert!(s.is_empty());
    }

    #[test]
    fn clear_discards_without_running() {
        let ran = Rc::new(RefCell::new(false));
        let mut s = UndoStack::new();
        let r = Rc::clone(&ran);
        s.push(UndoRecord::new("op", Cycles(1), move || *r.borrow_mut() = true));
        s.clear();
        assert!(s.is_empty());
        assert!(!*ran.borrow(), "commit must not run undo ops");
    }

    #[test]
    fn absorb_preserves_reversal_order() {
        // Parent does P, child does C; on later abort the reversal order
        // must be C then P (LIFO over the merged history).
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let mut parent = UndoStack::new();
        let l = Rc::clone(&log);
        parent.push(UndoRecord::new("P", Cycles(1), move || l.borrow_mut().push("undo-P")));
        let mut child = UndoStack::new();
        let l = Rc::clone(&log);
        child.push(UndoRecord::new("C", Cycles(1), move || l.borrow_mut().push("undo-C")));
        parent.absorb(child);
        parent.unwind();
        assert_eq!(*log.borrow(), vec!["undo-C", "undo-P"]);
    }

    #[test]
    fn record_reports_label_and_cost() {
        let rec = UndoRecord::new("dec_refcount", Cycles(7), || {});
        let (label, cost) = rec.run();
        assert_eq!(label, "dec_refcount");
        assert_eq!(cost, Cycles(7));
    }

    #[test]
    fn debug_formatting_omits_closure() {
        let rec = UndoRecord::new("x", Cycles(1), || {});
        let s = format!("{rec:?}");
        assert!(s.contains("label"));
    }
}

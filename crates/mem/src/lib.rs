//! The virtual memory system: two-level page eviction with a graftable
//! per-VAS policy.
//!
//! §4.2.1: "The VINO virtual memory system is based loosely on the Mach
//! VM system. A virtual address space (VAS) consists of a collection of
//! memory objects mapped to virtual address ranges. [...] Virtual memory
//! page eviction is implemented by a two-level eviction algorithm. A
//! global page eviction algorithm selects a victim page. Then, if the
//! owning VAS has installed a page eviction graft, it invokes the graft
//! passing it the victim page and a list of all other pages that the
//! virtual memory system currently assigns to the particular VAS. The
//! VAS-specific function can accept the victim page or suggest another
//! page as a replacement. The global algorithm then verifies that the
//! selected page belongs to the specific VAS and is not wired. If either
//! of these checks fails the system ignores the request and evicts the
//! original victim. When an acceptable choice is returned, we use Cao's
//! approach and place the original victim into the global LRU queue in
//! the spot occupied by the replacement."

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use vino_sim::costs;
use vino_sim::{Cycles, VirtualClock};

/// Identifies a virtual address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VasId(pub u64);

impl fmt::Display for VasId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vas#{}", self.0)
    }
}

/// Identifies a resident physical page (frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A resident page record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Page {
    /// The page.
    pub id: PageId,
    /// Owning address space.
    pub vas: VasId,
    /// Virtual page number within the VAS.
    pub vpn: u64,
    /// Wired pages may never be evicted.
    pub wired: bool,
    /// Reference bit for the clock (second-chance) policy.
    pub referenced: bool,
}

/// The global (level-1) victim-selection policy. "Traditional operating
/// systems implement a general algorithm (e.g., some variant of the
/// clock algorithm)" (§4.2); VINO's global policy is itself a policy
/// choice, and the ablation bench compares the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GlobalPolicy {
    /// Exact least-recently-used ordering.
    #[default]
    Lru,
    /// The clock (second-chance) algorithm over reference bits.
    Clock,
}

/// The per-VAS eviction hook. The grafting layer implements this by
/// running the grafted GraftVM `pick-victim` function; tests implement
/// it with closures.
pub trait EvictionDelegate {
    /// Given the global victim and the VAS's resident page list, return
    /// the page that should be evicted instead (or the victim itself to
    /// accept). The kernel verifies the choice.
    fn choose(&mut self, victim: PageId, resident: &[PageId]) -> PageId;
}

impl<F: FnMut(PageId, &[PageId]) -> PageId> EvictionDelegate for F {
    fn choose(&mut self, victim: PageId, resident: &[PageId]) -> PageId {
        self(victim, resident)
    }
}

/// How an eviction decision was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictOutcome {
    /// No graft installed on the victim's VAS.
    Default,
    /// The graft accepted the global victim.
    GraftAgreed,
    /// The graft's replacement passed verification and was evicted
    /// instead (Cao swap applied to the LRU queue).
    GraftOverruled {
        /// The page actually evicted.
        replacement: PageId,
    },
    /// The graft's choice failed verification (foreign or wired page);
    /// the original victim was evicted (§4.2.1's "ignores the request").
    GraftRejected,
}

/// Eviction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Page faults served.
    pub faults: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Eviction-graft invocations.
    pub graft_calls: u64,
    /// Graft choices rejected by verification.
    pub graft_rejections: u64,
    /// Graft choices that replaced the global victim.
    pub graft_overrules: u64,
}

/// The machine's physical memory and the global eviction policy.
pub struct MemorySystem {
    clock: Rc<VirtualClock>,
    capacity: usize,
    policy: GlobalPolicy,
    pages: HashMap<PageId, Page>,
    /// Residency index: (vas, vpn) → page.
    resident: HashMap<(VasId, u64), PageId>,
    /// Global page queue. Under LRU, ordered by recency (front =
    /// victim candidate); under Clock, insertion-ordered with the hand
    /// sweeping it.
    lru: Vec<PageId>,
    /// The clock hand (index into `lru`), used by [`GlobalPolicy::Clock`].
    hand: usize,
    delegates: HashMap<VasId, Box<dyn EvictionDelegate>>,
    next_page: u64,
    next_vas: u64,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates a memory system with room for `capacity` resident pages
    /// under the default (LRU) global policy.
    pub fn new(clock: Rc<VirtualClock>, capacity: usize) -> MemorySystem {
        MemorySystem::with_policy(clock, capacity, GlobalPolicy::Lru)
    }

    /// Creates a memory system with an explicit global policy.
    pub fn with_policy(
        clock: Rc<VirtualClock>,
        capacity: usize,
        policy: GlobalPolicy,
    ) -> MemorySystem {
        assert!(capacity > 0, "memory must hold at least one page");
        MemorySystem {
            clock,
            capacity,
            policy,
            pages: HashMap::new(),
            resident: HashMap::new(),
            lru: Vec::new(),
            hand: 0,
            delegates: HashMap::new(),
            next_page: 0,
            next_vas: 0,
            stats: MemStats::default(),
        }
    }

    /// The global policy in use.
    pub fn policy(&self) -> GlobalPolicy {
        self.policy
    }

    /// Counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.lru.len()
    }

    /// Creates an address space.
    pub fn create_vas(&mut self) -> VasId {
        let id = VasId(self.next_vas);
        self.next_vas += 1;
        id
    }

    /// Installs an eviction graft on `vas` (§4.2.1's per-VAS hook).
    pub fn set_eviction_delegate(&mut self, vas: VasId, d: Box<dyn EvictionDelegate>) {
        self.delegates.insert(vas, d);
    }

    /// Removes `vas`'s eviction graft (e.g. on abort/unload).
    pub fn clear_eviction_delegate(&mut self, vas: VasId) {
        self.delegates.remove(&vas);
    }

    /// True if `vas` currently has an eviction delegate.
    pub fn has_delegate(&self, vas: VasId) -> bool {
        self.delegates.contains_key(&vas)
    }

    /// Touches `(vas, vpn)`: a hit refreshes LRU position; a miss is a
    /// page fault that charges the 18 ms fault cost, evicting if memory
    /// is full. Returns the page and whether it faulted.
    pub fn touch(&mut self, vas: VasId, vpn: u64) -> (PageId, bool) {
        if let Some(&p) = self.resident.get(&(vas, vpn)) {
            match self.policy {
                GlobalPolicy::Lru => self.lru_touch(p),
                GlobalPolicy::Clock => {
                    // Second chance: just set the reference bit.
                    if let Some(pg) = self.pages.get_mut(&p) {
                        pg.referenced = true;
                    }
                }
            }
            return (p, false);
        }
        // Fault: make room, then bring the page in.
        self.stats.faults += 1;
        if self.lru.len() >= self.capacity {
            self.evict_one();
        }
        self.clock.charge(costs::PAGE_FAULT_COST);
        let id = PageId(self.next_page);
        self.next_page += 1;
        self.pages.insert(id, Page { id, vas, vpn, wired: false, referenced: true });
        self.resident.insert((vas, vpn), id);
        self.lru.push(id);
        (id, true)
    }

    /// Wires (pins) a resident page; wired pages are never evicted and
    /// never offered to grafts. Returns false if not resident.
    pub fn wire(&mut self, vas: VasId, vpn: u64) -> bool {
        match self.resident.get(&(vas, vpn)) {
            Some(&p) => {
                self.pages.get_mut(&p).expect("resident page has record").wired = true;
                true
            }
            None => false,
        }
    }

    /// Unwires a page.
    pub fn unwire(&mut self, vas: VasId, vpn: u64) -> bool {
        match self.resident.get(&(vas, vpn)) {
            Some(&p) => {
                self.pages.get_mut(&p).expect("resident page has record").wired = false;
                true
            }
            None => false,
        }
    }

    /// The resident pages of `vas` — what the eviction graft receives.
    pub fn pages_of(&self, vas: VasId) -> Vec<PageId> {
        self.lru
            .iter()
            .copied()
            .filter(|p| self.pages.get(p).is_some_and(|pg| pg.vas == vas))
            .collect()
    }

    /// Looks up a page record.
    pub fn page(&self, id: PageId) -> Option<&Page> {
        self.pages.get(&id)
    }

    /// True if `(vas, vpn)` is resident.
    pub fn is_resident(&self, vas: VasId, vpn: u64) -> bool {
        self.resident.contains_key(&(vas, vpn))
    }

    /// Runs the two-level eviction algorithm once, evicting one page.
    /// Exposed for benchmarks (Table 4 measures exactly this path).
    pub fn evict_one(&mut self) -> Option<(PageId, EvictOutcome)> {
        // Level 1: the global policy selects the victim (skipping
        // wired pages). The surrounding page-out machinery (queue
        // manipulation, pmap unmapping, write-back scheduling) is
        // Table 4's 39 us base.
        self.clock.charge(costs::EVICT_MACHINERY);
        let victim_pos = match self.policy {
            GlobalPolicy::Lru => {
                self.lru.iter().position(|p| self.pages.get(p).is_some_and(|pg| !pg.wired))?
            }
            GlobalPolicy::Clock => self.clock_sweep()?,
        };
        let victim = self.lru[victim_pos];
        let vas = self.pages[&victim].vas;

        // Level 2: consult the owning VAS's graft, if any.
        let outcome = if let Some(mut d) = self.delegates.remove(&vas) {
            self.clock.charge(Cycles(costs::INDIRECTION_CYCLES));
            self.stats.graft_calls += 1;
            let resident = self.pages_of(vas);
            let choice = d.choose(victim, &resident);
            self.delegates.insert(vas, d);
            // Verification: belongs to this VAS and not wired (§4.2.1).
            self.clock.charge(costs::RESULT_CHECK);
            let valid = self.pages.get(&choice).is_some_and(|pg| pg.vas == vas && !pg.wired);
            if !valid {
                self.stats.graft_rejections += 1;
                EvictOutcome::GraftRejected
            } else if choice == victim {
                EvictOutcome::GraftAgreed
            } else {
                // Cao swap: the original victim takes the replacement's
                // LRU slot; extra list manipulation charged.
                self.clock.charge(costs::RESULT_CHECK);
                let repl_pos =
                    self.lru.iter().position(|p| *p == choice).expect("verified page is resident");
                self.lru.swap(victim_pos, repl_pos);
                self.stats.graft_overrules += 1;
                EvictOutcome::GraftOverruled { replacement: choice }
            }
        } else {
            EvictOutcome::Default
        };

        // Evict whichever page now sits at the victim position.
        let evicted = self.lru.remove(match outcome {
            EvictOutcome::GraftOverruled { .. } => victim_pos,
            _ => victim_pos,
        });
        let pg = self.pages.remove(&evicted).expect("evicted page has record");
        self.resident.remove(&(pg.vas, pg.vpn));
        self.stats.evictions += 1;
        Some((evicted, outcome))
    }

    fn lru_touch(&mut self, p: PageId) {
        if let Some(pos) = self.lru.iter().position(|x| *x == p) {
            self.lru.remove(pos);
            self.lru.push(p);
        }
    }

    /// The clock hand sweep: clear reference bits until an unreferenced,
    /// unwired page is found. Bounded at two revolutions (every page
    /// wired ⇒ `None`).
    fn clock_sweep(&mut self) -> Option<usize> {
        if self.lru.is_empty() {
            return None;
        }
        let n = self.lru.len();
        for _ in 0..2 * n {
            let pos = self.hand % n;
            let id = self.lru[pos];
            let pg = self.pages.get_mut(&id).expect("queued page has record");
            if pg.wired {
                self.hand = (self.hand + 1) % n;
                continue;
            }
            if pg.referenced {
                pg.referenced = false; // Second chance.
                self.hand = (self.hand + 1) % n;
            } else {
                // Victim found; the hand stays here (the removal will
                // shift later entries into this slot).
                return Some(pos);
            }
        }
        // Two full revolutions without a victim: everything is wired.
        None
    }
}

impl fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySystem")
            .field("capacity", &self.capacity)
            .field("resident", &self.lru.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(cap: usize) -> MemorySystem {
        MemorySystem::new(VirtualClock::new(), cap)
    }

    #[test]
    fn fault_then_hit() {
        let mut m = system(4);
        let vas = m.create_vas();
        let (p, faulted) = m.touch(vas, 0);
        assert!(faulted);
        let (p2, faulted2) = m.touch(vas, 0);
        assert!(!faulted2);
        assert_eq!(p, p2);
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn fault_charges_18ms() {
        let mut m = system(4);
        let clock = Rc::clone(&m.clock);
        let vas = m.create_vas();
        let t0 = clock.now();
        m.touch(vas, 0);
        assert_eq!(clock.since(t0), costs::PAGE_FAULT_COST);
    }

    #[test]
    fn lru_eviction_order() {
        let mut m = system(2);
        let vas = m.create_vas();
        let (p0, _) = m.touch(vas, 0);
        let (p1, _) = m.touch(vas, 1);
        // Touch p0 so p1 becomes LRU.
        m.touch(vas, 0);
        let (_p2, _) = m.touch(vas, 2); // Evicts p1.
        assert!(m.is_resident(vas, 0));
        assert!(!m.is_resident(vas, 1));
        assert!(m.is_resident(vas, 2));
        let _ = (p0, p1);
    }

    #[test]
    fn wired_pages_skipped_by_global_policy() {
        let mut m = system(2);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.wire(vas, 0);
        m.touch(vas, 1);
        m.touch(vas, 2); // Must evict vpn 1, not the wired vpn 0.
        assert!(m.is_resident(vas, 0));
        assert!(!m.is_resident(vas, 1));
    }

    #[test]
    fn graft_agreeing_keeps_victim() {
        let mut m = system(2);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.touch(vas, 1);
        m.set_eviction_delegate(vas, Box::new(|victim: PageId, _: &[PageId]| victim));
        let (evicted, outcome) = m.evict_one().unwrap();
        assert_eq!(outcome, EvictOutcome::GraftAgreed);
        assert_eq!(m.page(evicted), None);
        assert_eq!(m.stats().graft_calls, 1);
    }

    #[test]
    fn graft_overrule_swaps_and_evicts_replacement() {
        // The Table 4 scenario: the graft protects its critical page.
        let mut m = system(3);
        let vas = m.create_vas();
        let (critical, _) = m.touch(vas, 0); // Oldest ⇒ global victim.
        m.touch(vas, 1);
        m.touch(vas, 2);
        m.set_eviction_delegate(
            vas,
            Box::new(move |victim: PageId, resident: &[PageId]| {
                if victim == critical {
                    // Scan for the first page we are allowed to lose.
                    *resident.iter().find(|p| **p != critical).unwrap()
                } else {
                    victim
                }
            }),
        );
        let (evicted, outcome) = m.evict_one().unwrap();
        assert!(matches!(outcome, EvictOutcome::GraftOverruled { .. }));
        assert_ne!(evicted, critical);
        assert!(m.is_resident(vas, 0), "critical page retained");
        // Cao swap: the spared victim inherited the replacement's LRU
        // slot, so it is NOT the next victim again.
        m.touch(vas, 3);
        let pages = m.pages_of(vas);
        assert!(pages.contains(&critical));
    }

    #[test]
    fn graft_choosing_foreign_page_rejected() {
        // Requirement 3 of §4.2: a graft cannot evict another VAS's page
        // to grow its own footprint.
        let mut m = system(3);
        let vas_a = m.create_vas();
        let vas_b = m.create_vas();
        m.touch(vas_a, 0);
        let (foreign, _) = m.touch(vas_b, 0);
        m.touch(vas_a, 1);
        m.set_eviction_delegate(vas_a, Box::new(move |_: PageId, _: &[PageId]| foreign));
        let (evicted, outcome) = m.evict_one().unwrap();
        assert_eq!(outcome, EvictOutcome::GraftRejected);
        assert!(m.is_resident(vas_b, 0), "foreign page untouched");
        assert_eq!(m.page(evicted), None);
        assert_eq!(m.stats().graft_rejections, 1);
    }

    #[test]
    fn graft_choosing_wired_page_rejected() {
        let mut m = system(3);
        let vas = m.create_vas();
        m.touch(vas, 0);
        let (pinned, _) = m.touch(vas, 1);
        m.wire(vas, 1);
        m.touch(vas, 2);
        m.set_eviction_delegate(vas, Box::new(move |_: PageId, _: &[PageId]| pinned));
        let (_, outcome) = m.evict_one().unwrap();
        assert_eq!(outcome, EvictOutcome::GraftRejected);
        assert!(m.is_resident(vas, 1), "wired page survives");
    }

    #[test]
    fn graft_returning_garbage_rejected() {
        let mut m = system(2);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.touch(vas, 1);
        m.set_eviction_delegate(vas, Box::new(|_: PageId, _: &[PageId]| PageId(424242)));
        let (_, outcome) = m.evict_one().unwrap();
        assert_eq!(outcome, EvictOutcome::GraftRejected);
        assert_eq!(m.resident_count(), 1, "eviction still made progress (Rule 9)");
    }

    #[test]
    fn delegate_only_consulted_for_own_vas() {
        let mut m = system(2);
        let vas_a = m.create_vas();
        let vas_b = m.create_vas();
        m.touch(vas_a, 0);
        m.touch(vas_b, 0);
        // Delegate on B; victim will be A's page (older) — B's delegate
        // must not be consulted.
        m.set_eviction_delegate(vas_b, Box::new(|v: PageId, _: &[PageId]| v));
        m.touch(vas_a, 1); // Forces eviction of A's vpn 0.
        assert_eq!(m.stats().graft_calls, 0);
    }

    #[test]
    fn pages_of_lists_only_own_pages() {
        let mut m = system(4);
        let a = m.create_vas();
        let b = m.create_vas();
        m.touch(a, 0);
        m.touch(b, 0);
        m.touch(a, 1);
        let pa = m.pages_of(a);
        assert_eq!(pa.len(), 2);
        for p in pa {
            assert_eq!(m.page(p).unwrap().vas, a);
        }
    }

    #[test]
    fn all_wired_blocks_eviction() {
        let mut m = system(1);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.wire(vas, 0);
        assert!(m.evict_one().is_none(), "no evictable page");
    }

    fn clock_system(cap: usize) -> MemorySystem {
        MemorySystem::with_policy(VirtualClock::new(), cap, GlobalPolicy::Clock)
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut m = clock_system(3);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.touch(vas, 1);
        m.touch(vas, 2);
        // Re-reference page 0: its bit is set; the first sweep clears
        // bits 0..2 and the second pass evicts the first unreferenced
        // page, which is vpn 0 again... so touch 0 *after* a sweep:
        // force one eviction first to clear all bits.
        m.touch(vas, 3); // Evicts one of 0..2 after clearing bits.
        assert_eq!(m.stats().evictions, 1);
        // Now touch vpn 1 (if resident) to set its bit; the next
        // eviction must spare it.
        if m.is_resident(vas, 1) {
            m.touch(vas, 1);
            m.touch(vas, 4);
            assert!(m.is_resident(vas, 1), "referenced page got its second chance");
        }
    }

    #[test]
    fn clock_skips_wired_pages() {
        let mut m = clock_system(2);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.wire(vas, 0);
        m.touch(vas, 1);
        m.touch(vas, 2); // Must evict vpn 1 (vpn 0 wired).
        assert!(m.is_resident(vas, 0));
        assert!(!m.is_resident(vas, 1));
    }

    #[test]
    fn clock_all_wired_blocks_eviction() {
        let mut m = clock_system(2);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.touch(vas, 1);
        m.wire(vas, 0);
        m.wire(vas, 1);
        assert!(m.evict_one().is_none());
    }

    #[test]
    fn clock_consults_eviction_graft_like_lru() {
        let mut m = clock_system(2);
        let vas = m.create_vas();
        m.touch(vas, 0);
        m.touch(vas, 1);
        m.set_eviction_delegate(vas, Box::new(|v: PageId, _: &[PageId]| v));
        m.evict_one().unwrap();
        assert_eq!(m.stats().graft_calls, 1);
    }

    #[test]
    fn clock_and_lru_make_observably_different_choices() {
        // Fill memory with A,B,C,D; re-touch A; fault E.
        // LRU: A moved to the queue tail, so B is evicted — A survives.
        // Clock: the sweep clears every reference bit (including A's
        // freshly set one) on the first revolution and takes the first
        // unreferenced page on the second — which is A.
        let residency_of_a = |policy: GlobalPolicy| {
            let mut m = MemorySystem::with_policy(VirtualClock::new(), 4, policy);
            let vas = m.create_vas();
            for vpn in 0..4 {
                m.touch(vas, vpn);
            }
            m.touch(vas, 0); // Re-reference A.
            m.touch(vas, 99); // Fault E.
            m.is_resident(vas, 0)
        };
        assert!(residency_of_a(GlobalPolicy::Lru), "LRU keeps the re-touched page");
        assert!(
            !residency_of_a(GlobalPolicy::Clock),
            "clock's single-bit approximation sacrifices it here"
        );
    }
}

//! The deterministic watch plane: sliding-window SLOs over the virtual
//! clock, and the alert stream that drives admission control.
//!
//! The trace plane answers *what happened*, the metrics plane *how
//! much*; this plane answers *is it acceptable right now*. Subsystems
//! feed fixed-capacity sliding-window aggregators — abort rate,
//! invocation p99 cycles, quarantine churn, RX shed rate, journal
//! occupancy, lock-timeout rate, replication lag — and every
//! observation is evaluated
//! against a declarative [`SloRule`] table. When a rule's windowed
//! value crosses its threshold the plane records a `firing` edge into a
//! pre-allocated alert ring (a `resolved` edge when it recedes), with
//! per-principal blame, so the whole alert history serializes to a
//! canonical, golden-pinnable stream ([`WatchPlane::serialize`]).
//!
//! Design discipline matches the other planes:
//!
//! - **Zero allocations on the hot path.** Windows are fixed bucket
//!   arrays, the p99 aggregator a fixed sample ring sorted into a stack
//!   scratch, principal slots a pre-reserved table, alert records
//!   `Copy` stores into a pre-reserved ring — proven by
//!   `cargo bench -p vino-bench --bench watch_plane`.
//! - **Deterministic.** Everything is integer arithmetic over the
//!   virtual clock; two same-seed runs produce byte-identical alert
//!   streams (`tests/watch_battery.rs`).
//! - **Attach-once.** `Kernel::attach_watch_plane` wires one shared
//!   handle through the graft engine, file system, transaction manager
//!   and packet plane; a second attach is refused.
//! - **Passive but consulted.** Observing never charges the clock; the
//!   one component that *reads* the plane is the kernel's admission
//!   controller, which denies installs from principals with firing
//!   per-principal alerts (`docs/WATCH.md`).
//!
//! With a trace plane attached ([`WatchPlane::set_trace_plane`]), every
//! alert edge is mirrored as a `watch.*` trace event so alerts land on
//! the ASCII timeline next to the aborts that caused them.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::clock::{Cycles, VirtualClock};
use crate::trace::{GraftTag, TraceEvent, TracePlane};

/// Default alert-ring capacity, in records.
pub const DEFAULT_ALERT_CAPACITY: usize = 256;

/// Default pre-reserved principal slots (observing a principal beyond
/// this still works, but the slot table reallocates).
pub const DEFAULT_PRINCIPAL_CAPACITY: usize = 32;

/// Buckets per sliding window. The window is covered by `BUCKETS`
/// equal-width time buckets; rotating is O(buckets skipped), capped.
const BUCKETS: usize = 8;

/// Fixed rule-table ceiling (rule state lives in fixed arrays).
pub const MAX_RULES: usize = 8;

/// Samples held by the invocation-latency window.
const P99_SAMPLES: usize = 128;

// ---------------------------------------------------------------------------
// Signals and rules.
// ---------------------------------------------------------------------------

/// The windowed signal a rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Graft aborts in the window (per principal).
    AbortRate,
    /// p99 of invocation cycle costs in the window (global).
    InvokeP99,
    /// Quarantine trips in the window (per principal).
    QuarantineChurn,
    /// RX packets shed (watermark + overflow) in the window (global).
    RxShed,
    /// Journal-region occupancy, in permille of capacity (global
    /// gauge; the window is ignored).
    JournalOccupancy,
    /// Lock time-outs fired in the window (global).
    LockTimeoutRate,
    /// Replication lag — committed-but-unacked journal records on the
    /// primary's shipping window (global gauge; the window is ignored).
    ReplicationLag,
}

/// One declarative SLO rule: when `signal`'s windowed value reaches
/// `threshold`, an alert fires (per principal for per-principal
/// signals, globally otherwise) until the value recedes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloRule {
    /// Canonical rule name, used in the alert stream and trace events.
    pub name: &'static str,
    /// The watched signal.
    pub signal: Signal,
    /// Sliding-window span on the virtual clock.
    pub window: Cycles,
    /// Inclusive firing threshold (counts, cycles, or permille —
    /// whatever the signal's value is measured in).
    pub threshold: u64,
}

impl SloRule {
    /// True when this rule keeps independent state (and fires) per
    /// principal rather than globally.
    pub fn per_principal(&self) -> bool {
        matches!(self.signal, Signal::AbortRate | Signal::QuarantineChurn)
    }
}

/// The default rule table (`docs/WATCH.md` documents each choice).
pub fn default_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "abort-storm",
            signal: Signal::AbortRate,
            window: Cycles::from_ms(1000),
            threshold: 3,
        },
        SloRule {
            name: "quarantine-churn",
            signal: Signal::QuarantineChurn,
            window: Cycles::from_ms(5000),
            threshold: 2,
        },
        SloRule {
            name: "invoke-p99",
            signal: Signal::InvokeP99,
            window: Cycles::from_ms(1000),
            threshold: Cycles::from_ms(5).get(),
        },
        SloRule {
            name: "rx-shed",
            signal: Signal::RxShed,
            window: Cycles::from_ms(1000),
            threshold: 8,
        },
        SloRule {
            name: "journal-full",
            signal: Signal::JournalOccupancy,
            window: Cycles::from_ms(1000),
            threshold: 750,
        },
        SloRule {
            name: "lock-starved",
            signal: Signal::LockTimeoutRate,
            window: Cycles::from_ms(1000),
            threshold: 3,
        },
        SloRule {
            name: "replication-lag",
            signal: Signal::ReplicationLag,
            window: Cycles::from_ms(1000),
            threshold: 8,
        },
    ]
}

// ---------------------------------------------------------------------------
// Windows.
// ---------------------------------------------------------------------------

/// A fixed-bucket sliding count window over the virtual clock. Bucket
/// `epoch` math is pure integer arithmetic, so rotation is
/// deterministic and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CountWindow {
    buckets: [u64; BUCKETS],
    /// Bucket width in cycles (`window / BUCKETS`, at least 1).
    width: u64,
    /// Absolute bucket index `head` currently covers.
    epoch: u64,
    head: usize,
}

impl CountWindow {
    fn new(window: Cycles) -> CountWindow {
        CountWindow {
            buckets: [0; BUCKETS],
            width: (window.get() / BUCKETS as u64).max(1),
            epoch: 0,
            head: 0,
        }
    }

    /// Advances `head` to the bucket covering `now`, zeroing skipped
    /// buckets (capped at one full revolution).
    fn rotate_to(&mut self, now: Cycles) {
        let e = now.get() / self.width;
        if e <= self.epoch {
            return; // Same bucket; the clock never runs backwards.
        }
        let advance = (e - self.epoch).min(BUCKETS as u64) as usize;
        for _ in 0..advance {
            self.head = (self.head + 1) % BUCKETS;
            self.buckets[self.head] = 0;
        }
        self.epoch = e;
    }

    fn add(&mut self, now: Cycles, n: u64) {
        self.rotate_to(now);
        self.buckets[self.head] += n;
    }

    fn sum(&mut self, now: Cycles) -> u64 {
        self.rotate_to(now);
        self.buckets.iter().sum()
    }
}

/// A fixed-capacity ring of `(stamp, value)` samples; the p99 is
/// computed over in-window samples via a stack scratch array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SampleWindow {
    samples: [(u64, u64); P99_SAMPLES],
    len: usize,
    head: usize,
}

impl SampleWindow {
    fn new() -> SampleWindow {
        SampleWindow { samples: [(0, 0); P99_SAMPLES], len: 0, head: 0 }
    }

    fn push(&mut self, at: Cycles, value: u64) {
        self.samples[self.head] = (at.get(), value);
        self.head = (self.head + 1) % P99_SAMPLES;
        self.len = (self.len + 1).min(P99_SAMPLES);
    }

    /// p99 (bucketless, exact over retained samples) of samples whose
    /// stamp falls inside `[now - window, now]`; 0 when none do.
    fn p99(&self, now: Cycles, window: Cycles) -> u64 {
        let lo = now.get().saturating_sub(window.get());
        let mut scratch = [0u64; P99_SAMPLES];
        let mut n = 0usize;
        for &(at, v) in self.samples.iter().take(self.len) {
            if at >= lo && at <= now.get() {
                scratch[n] = v;
                n += 1;
            }
        }
        if n == 0 {
            return 0;
        }
        scratch[..n].sort_unstable();
        let rank = (n as u64 * 99).div_ceil(100).max(1) as usize;
        scratch[rank - 1]
    }
}

// ---------------------------------------------------------------------------
// Alert records and the ring.
// ---------------------------------------------------------------------------

/// Which way an alert edge went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertEdge {
    /// The rule's windowed value reached its threshold.
    Firing,
    /// The value receded below the threshold.
    Resolved,
}

impl AlertEdge {
    fn label(self) -> &'static str {
        match self {
            AlertEdge::Firing => "firing",
            AlertEdge::Resolved => "resolved",
        }
    }
}

/// One alert-stream record. `Copy`, so ring writes are plain stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertRecord {
    /// Monotonic sequence number (never wraps; survives ring eviction).
    pub seq: u64,
    /// Virtual-clock stamp.
    pub at: Cycles,
    /// Firing or resolved.
    pub edge: AlertEdge,
    /// Index into the plane's rule table.
    pub rule: u8,
    /// The blamed principal (0 for kernel-global signals).
    pub principal: u64,
    /// The windowed value at the edge.
    pub value: u64,
    /// The rule's threshold, for self-contained rendering.
    pub threshold: u64,
}

struct Ring {
    buf: Vec<AlertRecord>,
    cap: usize,
    head: usize,
}

impl Ring {
    fn push(&mut self, rec: AlertRecord) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(rec); // Within reserved capacity: no alloc.
            false
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    fn ordered(&self) -> Vec<AlertRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

// ---------------------------------------------------------------------------
// Stats and state.
// ---------------------------------------------------------------------------

/// Lifetime observation and alert counters. Each observation counter
/// mirrors exactly one metrics-plane counter (or sum of two), so the
/// two planes reconcile event-for-event (asserted by the watch
/// battery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchStats {
    /// Graft installs observed (mirrors `GraftInstalls`).
    pub installs: u64,
    /// Invocation completions observed (mirrors `GraftCommits +
    /// GraftAborts`).
    pub invocations: u64,
    /// Graft aborts observed (mirrors `GraftAborts`).
    pub aborts: u64,
    /// Quarantine trips observed (mirrors `GraftQuarantines`).
    pub quarantines: u64,
    /// RX sheds observed (mirrors `NetRxSheds + NetRxOverflows`).
    pub sheds: u64,
    /// Journal appends observed (mirrors `FsJournalAppends`).
    pub journal_appends: u64,
    /// Lock time-outs observed (mirrors `LockTimeouts`).
    pub lock_timeouts: u64,
    /// Firing edges recorded.
    pub fired: u64,
    /// Resolved edges recorded.
    pub resolved: u64,
    /// Alert records overwritten after the ring filled.
    pub dropped: u64,
}

impl fmt::Display for WatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "installs={} invocations={} aborts={} quarantines={} sheds={} journal_appends={} \
             lock_timeouts={} fired={} resolved={} dropped={}",
            self.installs,
            self.invocations,
            self.aborts,
            self.quarantines,
            self.sheds,
            self.journal_appends,
            self.lock_timeouts,
            self.fired,
            self.resolved,
            self.dropped
        )
    }
}

/// Per-rule global evaluation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RuleCell {
    window: CountWindow,
    firing: bool,
    /// The principal blamed at the firing edge, echoed by the resolved
    /// edge so the pair reads as one episode.
    blamed: u64,
}

/// One principal's per-rule windows and firing flags (only
/// per-principal rules use their slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrincipalSlot {
    id: u64,
    windows: [CountWindow; MAX_RULES],
    firing: [bool; MAX_RULES],
}

/// An opaque snapshot of a [`WatchPlane`]'s full mutable state: the
/// rule table, alert ring, sequence counter, stats, windows and firing
/// flags. Captured by [`WatchPlane::export_state`], replanted by
/// [`WatchPlane::restore_state`] so a resumed replay appends to the
/// same alert stream and serializes byte-identically.
#[derive(Clone)]
pub struct WatchState {
    rules: Vec<SloRule>,
    records: Vec<AlertRecord>,
    cap: usize,
    seq: u64,
    stats: WatchStats,
    global: [RuleCell; MAX_RULES],
    journal_permille: u64,
    repl_lag: u64,
    repl_lag_age: u64,
    p99: SampleWindow,
    principals: Vec<PrincipalSlot>,
}

// ---------------------------------------------------------------------------
// The plane.
// ---------------------------------------------------------------------------

/// The shared watch plane handle (see module docs).
pub struct WatchPlane {
    clock: Rc<VirtualClock>,
    rules: Vec<SloRule>,
    ring: RefCell<Ring>,
    seq: Cell<u64>,
    stats: Cell<WatchStats>,
    global: RefCell<[RuleCell; MAX_RULES]>,
    /// Last observed journal occupancy, permille of capacity.
    journal_permille: Cell<u64>,
    /// Last observed replication lag, in unacked committed records.
    repl_lag: Cell<u64>,
    /// Last observed replication-lag *age*: virtual cycles since the
    /// oldest unacked record's commit marker sealed (0 when caught up).
    repl_lag_age: Cell<u64>,
    p99: RefCell<SampleWindow>,
    principals: RefCell<Vec<PrincipalSlot>>,
    trace: RefCell<Option<Rc<TracePlane>>>,
    /// Rule names interned into the trace plane at attach time, so
    /// edge mirroring stays allocation-free.
    rule_tags: RefCell<Vec<GraftTag>>,
}

impl WatchPlane {
    /// A plane with the default rules and capacities.
    pub fn new(clock: Rc<VirtualClock>) -> Rc<WatchPlane> {
        WatchPlane::with_rules(clock, default_rules())
    }

    /// A plane evaluating `rules`, with default capacities.
    ///
    /// # Panics
    ///
    /// Panics when `rules` exceeds [`MAX_RULES`] (rule state lives in
    /// fixed arrays) or is empty.
    pub fn with_rules(clock: Rc<VirtualClock>, rules: Vec<SloRule>) -> Rc<WatchPlane> {
        WatchPlane::with_capacity(clock, rules, DEFAULT_ALERT_CAPACITY, DEFAULT_PRINCIPAL_CAPACITY)
    }

    /// Full-control constructor: `alerts` ring slots, `principals`
    /// pre-reserved principal slots. Everything is reserved here;
    /// observing never allocates while within capacity.
    pub fn with_capacity(
        clock: Rc<VirtualClock>,
        rules: Vec<SloRule>,
        alerts: usize,
        principals: usize,
    ) -> Rc<WatchPlane> {
        assert!(!rules.is_empty(), "a watch plane needs at least one rule");
        assert!(rules.len() <= MAX_RULES, "at most {MAX_RULES} rules");
        assert!(alerts > 0, "alert ring capacity must be non-zero");
        let global = std::array::from_fn(|i| RuleCell {
            window: CountWindow::new(rules.get(i).map_or(Cycles(1), |r| r.window)),
            firing: false,
            blamed: 0,
        });
        Rc::new(WatchPlane {
            clock,
            rules,
            ring: RefCell::new(Ring { buf: Vec::with_capacity(alerts), cap: alerts, head: 0 }),
            seq: Cell::new(0),
            stats: Cell::new(WatchStats::default()),
            global: RefCell::new(global),
            journal_permille: Cell::new(0),
            repl_lag: Cell::new(0),
            repl_lag_age: Cell::new(0),
            p99: RefCell::new(SampleWindow::new()),
            principals: RefCell::new(Vec::with_capacity(principals)),
            trace: RefCell::new(None),
            rule_tags: RefCell::new(Vec::new()),
        })
    }

    /// The clock observations are stamped from.
    pub fn clock(&self) -> &Rc<VirtualClock> {
        &self.clock
    }

    /// The rule table, in evaluation (and alert-stream `rule=`) order.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Mirrors every alert edge as a `watch.*` event on `plane`. Rule
    /// names are interned here, off the hot path.
    pub fn set_trace_plane(&self, plane: Rc<TracePlane>) {
        *self.rule_tags.borrow_mut() = self.rules.iter().map(|r| plane.tag(r.name)).collect();
        *self.trace.borrow_mut() = Some(plane);
    }

    /// Pre-creates `principal`'s slot (allocation-count proofs warm
    /// slots the same way metrics interning does).
    pub fn touch_principal(&self, principal: u64) {
        self.slot_index(principal);
    }

    // -- observations (the hot path) ----------------------------------------

    /// One graft install by `principal`.
    pub fn observe_install(&self, _principal: u64) {
        let mut s = self.stats.get();
        s.installs += 1;
        self.stats.set(s);
    }

    /// One completed invocation billed to `principal` costing `cost`
    /// cycles (committed or aborted — aborts also call
    /// [`observe_abort`](Self::observe_abort)).
    pub fn observe_invoke(&self, principal: u64, cost: Cycles) {
        let now = self.clock.now();
        let mut s = self.stats.get();
        s.invocations += 1;
        self.stats.set(s);
        self.p99.borrow_mut().push(now, cost.get());
        self.eval_signal(Signal::InvokeP99, principal, now);
    }

    /// One graft abort blamed on `principal`.
    pub fn observe_abort(&self, principal: u64) {
        let now = self.clock.now();
        let mut s = self.stats.get();
        s.aborts += 1;
        self.stats.set(s);
        self.bump_principal(Signal::AbortRate, principal, now);
    }

    /// One quarantine trip blamed on `principal`.
    pub fn observe_quarantine(&self, principal: u64) {
        let now = self.clock.now();
        let mut s = self.stats.get();
        s.quarantines += 1;
        self.stats.set(s);
        self.bump_principal(Signal::QuarantineChurn, principal, now);
    }

    /// One RX packet shed (watermark or overflow).
    pub fn observe_shed(&self) {
        let now = self.clock.now();
        let mut s = self.stats.get();
        s.sheds += 1;
        self.stats.set(s);
        self.bump_global(Signal::RxShed, now);
    }

    /// One journal append leaving `occupied` of `capacity` blocks in
    /// the journal region.
    pub fn observe_journal(&self, occupied: u64, capacity: u64) {
        let now = self.clock.now();
        let mut s = self.stats.get();
        s.journal_appends += 1;
        self.stats.set(s);
        self.journal_permille.set(occupied.saturating_mul(1000) / capacity.max(1));
        self.eval_signal(Signal::JournalOccupancy, 0, now);
    }

    /// One replication-plane progress report: `lag` committed journal
    /// records are shipped-or-pending but not yet cumulatively acked by
    /// the replica.
    pub fn observe_repl_lag(&self, lag: u64) {
        let now = self.clock.now();
        self.repl_lag.set(lag);
        self.eval_signal(Signal::ReplicationLag, 0, now);
    }

    /// The last observed replication lag, in unacked committed records.
    pub fn repl_lag(&self) -> u64 {
        self.repl_lag.get()
    }

    /// One replication-lag *age* report: the oldest unacked committed
    /// record sealed `age` virtual cycles ago (pass [`Cycles::ZERO`]
    /// when the window is empty). A pure gauge — no SLO rule keys on
    /// it — whose value the `vino-bench lagpath` per-hop breakdown
    /// reconciles against exactly.
    pub fn observe_repl_lag_age(&self, age: Cycles) {
        self.repl_lag_age.set(age.get());
    }

    /// The last observed replication-lag age, in virtual cycles.
    pub fn repl_lag_age(&self) -> Cycles {
        Cycles(self.repl_lag_age.get())
    }

    /// One fired lock time-out.
    pub fn observe_lock_timeout(&self) {
        let now = self.clock.now();
        let mut s = self.stats.get();
        s.lock_timeouts += 1;
        self.stats.set(s);
        self.bump_global(Signal::LockTimeoutRate, now);
    }

    /// Rotates every window to `now` and emits `resolved` edges for
    /// alerts whose value has receded. Windows only decay with time, so
    /// a poll never *fires* — call it before consulting firing state
    /// (the admission controller does).
    pub fn poll(&self) {
        let now = self.clock.now();
        for i in 0..self.rules.len() {
            if self.rules[i].per_principal() {
                let n = self.principals.borrow().len();
                for p in 0..n {
                    self.eval_principal_rule(i, p, now);
                }
            } else {
                self.eval_global_rule(i, 0, now);
            }
        }
    }

    // -- evaluation ---------------------------------------------------------

    fn bump_global(&self, signal: Signal, now: Cycles) {
        for i in 0..self.rules.len() {
            if self.rules[i].signal == signal {
                self.global.borrow_mut()[i].window.add(now, 1);
                self.eval_global_rule(i, 0, now);
            }
        }
    }

    fn bump_principal(&self, signal: Signal, principal: u64, now: Cycles) {
        let slot = self.slot_index(principal);
        for i in 0..self.rules.len() {
            if self.rules[i].signal == signal {
                self.principals.borrow_mut()[slot].windows[i].add(now, 1);
                self.eval_principal_rule(i, slot, now);
            }
        }
    }

    /// Re-evaluates every rule on `signal` without bumping a window
    /// (gauge- and sample-backed signals).
    fn eval_signal(&self, signal: Signal, blame: u64, now: Cycles) {
        for i in 0..self.rules.len() {
            if self.rules[i].signal == signal {
                self.eval_global_rule(i, blame, now);
            }
        }
    }

    fn global_value(&self, i: usize, now: Cycles) -> u64 {
        match self.rules[i].signal {
            Signal::JournalOccupancy => self.journal_permille.get(),
            Signal::ReplicationLag => self.repl_lag.get(),
            Signal::InvokeP99 => self.p99.borrow().p99(now, self.rules[i].window),
            _ => self.global.borrow_mut()[i].window.sum(now),
        }
    }

    fn eval_global_rule(&self, i: usize, blame: u64, now: Cycles) {
        let value = self.global_value(i, now);
        let firing = value >= self.rules[i].threshold;
        let (was, blamed) = {
            let g = self.global.borrow();
            (g[i].firing, g[i].blamed)
        };
        if firing == was {
            return;
        }
        let principal = if firing { blame } else { blamed };
        {
            let mut g = self.global.borrow_mut();
            g[i].firing = firing;
            g[i].blamed = principal;
        }
        self.edge(
            if firing { AlertEdge::Firing } else { AlertEdge::Resolved },
            i,
            principal,
            value,
        );
    }

    fn eval_principal_rule(&self, i: usize, slot: usize, now: Cycles) {
        let (id, value, was) = {
            let mut p = self.principals.borrow_mut();
            let s = &mut p[slot];
            (s.id, s.windows[i].sum(now), s.firing[i])
        };
        let firing = value >= self.rules[i].threshold;
        if firing == was {
            return;
        }
        self.principals.borrow_mut()[slot].firing[i] = firing;
        self.edge(if firing { AlertEdge::Firing } else { AlertEdge::Resolved }, i, id, value);
    }

    fn edge(&self, edge: AlertEdge, rule: usize, principal: u64, value: u64) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let rec = AlertRecord {
            seq,
            at: self.clock.now(),
            edge,
            rule: rule as u8,
            principal,
            value,
            threshold: self.rules[rule].threshold,
        };
        let mut s = self.stats.get();
        match edge {
            AlertEdge::Firing => s.fired += 1,
            AlertEdge::Resolved => s.resolved += 1,
        }
        if self.ring.borrow_mut().push(rec) {
            s.dropped += 1;
        }
        self.stats.set(s);
        if let Some(tp) = self.trace.borrow().as_ref() {
            let tag = self.rule_tags.borrow()[rule];
            tp.emit(match edge {
                AlertEdge::Firing => TraceEvent::WatchAlertFiring { rule: tag, principal },
                AlertEdge::Resolved => TraceEvent::WatchAlertResolved { rule: tag, principal },
            });
        }
    }

    fn slot_index(&self, principal: u64) -> usize {
        let mut p = self.principals.borrow_mut();
        if let Some(i) = p.iter().position(|s| s.id == principal) {
            return i;
        }
        p.push(PrincipalSlot {
            id: principal,
            windows: std::array::from_fn(|i| {
                CountWindow::new(self.rules.get(i).map_or(Cycles(1), |r| r.window))
            }),
            firing: [false; MAX_RULES],
        });
        p.len() - 1
    }

    // -- consultation -------------------------------------------------------

    /// True when any *per-principal* rule is firing for `principal`
    /// right now (polls first, so stale alerts resolve before they can
    /// deny anyone). This is the admission controller's question.
    pub fn principal_firing(&self, principal: u64) -> bool {
        self.poll();
        let p = self.principals.borrow();
        let Some(slot) = p.iter().find(|s| s.id == principal) else {
            return false;
        };
        (0..self.rules.len()).any(|i| self.rules[i].per_principal() && slot.firing[i])
    }

    /// Every currently firing alert as `(rule name, principal, value)`,
    /// in rule-table order then principal-slot order. Polls first.
    pub fn firing(&self) -> Vec<(&'static str, u64, u64)> {
        self.poll();
        let now = self.clock.now();
        let mut out = Vec::new();
        for i in 0..self.rules.len() {
            if self.rules[i].per_principal() {
                let n = self.principals.borrow().len();
                for slot in 0..n {
                    let (id, firing) = {
                        let p = self.principals.borrow();
                        (p[slot].id, p[slot].firing[i])
                    };
                    if firing {
                        let value = self.principals.borrow_mut()[slot].windows[i].sum(now);
                        out.push((self.rules[i].name, id, value));
                    }
                }
            } else if self.global.borrow()[i].firing {
                let blamed = self.global.borrow()[i].blamed;
                out.push((self.rules[i].name, blamed, self.global_value(i, now)));
            }
        }
        out
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WatchStats {
        self.stats.get()
    }

    /// Alert edges recorded so far (equals the next record's `seq`).
    pub fn len(&self) -> u64 {
        self.seq.get()
    }

    /// True when no alert edge was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.seq.get() == 0
    }

    /// The ring's current records, oldest first.
    pub fn records(&self) -> Vec<AlertRecord> {
        self.ring.borrow().ordered()
    }

    // -- rendering (off the hot path) ---------------------------------------

    /// Renders one record in the canonical line format:
    /// `SEQ @CYCLES watch.EDGE rule=NAME principal=P value=V threshold=T`.
    pub fn render(&self, r: &AlertRecord) -> String {
        let name = self.rules.get(r.rule as usize).map_or("?rule", |x| x.name);
        format!(
            "{:06} @{:012} watch.{} rule={} principal={} value={} threshold={}",
            r.seq,
            r.at.get(),
            r.edge.label(),
            name,
            r.principal,
            r.value,
            r.threshold
        )
    }

    /// Serializes the alert ring (oldest first) to the canonical line
    /// format, one record per line, trailing newline. Identical seeds
    /// and call sequences yield byte-identical output.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&self.render(&r));
            out.push('\n');
        }
        out
    }

    /// The canonical live view: currently firing alerts (after a
    /// poll), then the lifetime stats line. Byte-identical across
    /// same-seed runs.
    pub fn snapshot(&self) -> String {
        let firing = self.firing();
        let mut out =
            format!("== watch: {} alert edges recorded, {} firing ==\n", self.len(), firing.len());
        for (name, principal, value) in &firing {
            out.push_str(&format!("firing: {name} principal={principal} value={value}\n"));
        }
        out.push_str(&format!("stats: {}\n", self.stats()));
        out
    }

    // -- checkpointing ------------------------------------------------------

    /// Snapshots the plane's full mutable state for a checkpoint.
    pub fn export_state(&self) -> WatchState {
        WatchState {
            rules: self.rules.clone(),
            records: self.ring.borrow().ordered(),
            cap: self.ring.borrow().cap,
            seq: self.seq.get(),
            stats: self.stats.get(),
            global: *self.global.borrow(),
            journal_permille: self.journal_permille.get(),
            repl_lag: self.repl_lag.get(),
            repl_lag_age: self.repl_lag_age.get(),
            p99: *self.p99.borrow(),
            principals: self.principals.borrow().clone(),
        }
    }

    /// Replants a [`WatchState`] capture: the ring, counters, windows
    /// and firing flags resume exactly where the capture left them, so
    /// later observations continue the same alert stream.
    ///
    /// # Panics
    ///
    /// Panics when the captured rule table differs from this plane's —
    /// a restored world must be built with the same rules.
    pub fn restore_state(&self, st: &WatchState) {
        assert_eq!(st.rules, self.rules, "watch restore requires an identical rule table");
        let mut buf = Vec::with_capacity(st.cap);
        buf.extend_from_slice(&st.records);
        *self.ring.borrow_mut() = Ring { buf, cap: st.cap, head: 0 };
        self.seq.set(st.seq);
        self.stats.set(st.stats);
        *self.global.borrow_mut() = st.global;
        self.journal_permille.set(st.journal_permille);
        self.repl_lag.set(st.repl_lag);
        self.repl_lag_age.set(st.repl_lag_age);
        *self.p99.borrow_mut() = st.p99;
        *self.principals.borrow_mut() = st.principals.clone();
    }
}

impl fmt::Debug for WatchPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WatchPlane")
            .field("rules", &self.rules.len())
            .field("len", &self.seq.get())
            .field("stats", &self.stats.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abort_rule() -> SloRule {
        SloRule {
            name: "abort-storm",
            signal: Signal::AbortRate,
            window: Cycles(8000),
            threshold: 3,
        }
    }

    fn plane_with(rules: Vec<SloRule>) -> (Rc<WatchPlane>, Rc<VirtualClock>) {
        let clock = VirtualClock::new();
        (WatchPlane::with_rules(Rc::clone(&clock), rules), clock)
    }

    #[test]
    fn abort_storm_fires_at_threshold_and_resolves_by_decay() {
        let (wp, clock) = plane_with(vec![abort_rule()]);
        wp.observe_abort(7);
        wp.observe_abort(7);
        assert!(wp.is_empty(), "below threshold: no edge");
        wp.observe_abort(7);
        assert_eq!(wp.len(), 1, "third abort inside the window fires");
        assert!(wp.principal_firing(7));
        assert!(!wp.principal_firing(8), "blame is per-principal");

        // Decay: a full window later the counts rotate out, and the
        // next poll records the resolved edge.
        clock.advance_to(Cycles(20_000));
        assert!(!wp.principal_firing(7));
        let recs = wp.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].edge, AlertEdge::Firing);
        assert_eq!(recs[1].edge, AlertEdge::Resolved);
        assert_eq!(recs[1].principal, 7, "resolved edge blames the firing principal");
        let s = wp.stats();
        assert_eq!((s.fired, s.resolved, s.aborts), (1, 1, 3));
    }

    #[test]
    fn aborts_outside_the_window_do_not_accumulate() {
        let (wp, clock) = plane_with(vec![abort_rule()]);
        wp.observe_abort(1);
        clock.advance_to(Cycles(10_000)); // Past the 8000-cycle window.
        wp.observe_abort(1);
        clock.advance_to(Cycles(20_000));
        wp.observe_abort(1);
        assert!(wp.is_empty(), "spread-out aborts never reach the threshold");
    }

    #[test]
    fn journal_gauge_fires_and_resolves_on_observation() {
        let rules = vec![SloRule {
            name: "journal-full",
            signal: Signal::JournalOccupancy,
            window: Cycles(1000),
            threshold: 750,
        }];
        let (wp, _) = plane_with(rules);
        wp.observe_journal(10, 100);
        assert!(wp.is_empty());
        wp.observe_journal(80, 100);
        assert_eq!(wp.len(), 1, "800 permille >= 750 fires");
        wp.observe_journal(10, 100);
        assert_eq!(wp.len(), 2, "draining the journal resolves");
        assert_eq!(wp.stats().journal_appends, 3);
    }

    #[test]
    fn p99_rule_watches_windowed_samples() {
        let rules = vec![SloRule {
            name: "invoke-p99",
            signal: Signal::InvokeP99,
            window: Cycles(100_000),
            threshold: 5_000,
        }];
        let (wp, clock) = plane_with(rules);
        for _ in 0..50 {
            wp.observe_invoke(1, Cycles(100));
        }
        assert!(wp.is_empty(), "uniformly fast invocations stay quiet");
        wp.observe_invoke(2, Cycles(1_000_000));
        assert_eq!(wp.len(), 1, "one outlier in 51 drags the p99 over threshold");
        assert_eq!(wp.records()[0].principal, 2, "blamed on the observed principal");
        // The outlier ages out of the window; the next poll resolves.
        clock.advance_to(Cycles(500_000));
        wp.poll();
        assert_eq!(wp.len(), 2);
        assert_eq!(wp.records()[1].edge, AlertEdge::Resolved);
    }

    #[test]
    fn serialization_is_canonical_and_deterministic() {
        let build = || {
            let (wp, clock) = plane_with(vec![abort_rule()]);
            clock.advance_to(Cycles(4242));
            for _ in 0..3 {
                wp.observe_abort(9);
            }
            wp.serialize()
        };
        let a = build();
        assert_eq!(a, build(), "same call sequence, byte-identical stream");
        assert_eq!(
            a,
            "000000 @000000004242 watch.firing rule=abort-storm principal=9 value=3 threshold=3\n"
        );
    }

    #[test]
    fn export_restore_round_trips_and_continues_the_stream() {
        let (wp, clock) = plane_with(vec![abort_rule()]);
        for _ in 0..3 {
            wp.observe_abort(4);
        }
        let st = wp.export_state();

        let wp2 = WatchPlane::with_rules(Rc::clone(&clock), vec![abort_rule()]);
        wp2.restore_state(&st);
        assert_eq!(wp2.serialize(), wp.serialize());
        assert_eq!(wp2.stats(), wp.stats());
        assert!(wp2.principal_firing(4), "firing state survives the restore");

        // Both planes observe the same decay and record the same edge.
        clock.advance_to(Cycles(40_000));
        wp.poll();
        wp2.poll();
        assert_eq!(wp2.serialize(), wp.serialize());
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        let clock = VirtualClock::new();
        let wp = WatchPlane::with_capacity(Rc::clone(&clock), vec![abort_rule()], 2, 4);
        // Three separate firing episodes for three principals.
        for p in 1..=3u64 {
            for _ in 0..3 {
                wp.observe_abort(p);
            }
        }
        let recs = wp.records();
        assert_eq!(recs.len(), 2, "ring holds exactly its capacity");
        assert_eq!(recs[0].principal, 2);
        assert_eq!(recs[1].principal, 3);
        assert_eq!(wp.stats().dropped, 1);
        assert_eq!(wp.len(), 3, "sequence numbers survive eviction");
    }

    #[test]
    fn replication_lag_gauge_fires_and_resolves_on_observation() {
        let rules = vec![SloRule {
            name: "replication-lag",
            signal: Signal::ReplicationLag,
            window: Cycles(1000),
            threshold: 8,
        }];
        let (wp, _) = plane_with(rules);
        wp.observe_repl_lag(3);
        assert!(wp.is_empty(), "a shallow shipping window stays quiet");
        wp.observe_repl_lag(8);
        assert_eq!(wp.len(), 1, "8 unacked records >= 8 fires");
        wp.observe_repl_lag(0);
        assert_eq!(wp.len(), 2, "a caught-up replica resolves");
        assert_eq!(wp.records()[1].edge, AlertEdge::Resolved);
    }

    #[test]
    fn default_rules_fit_the_fixed_tables() {
        let rules = default_rules();
        assert!(rules.len() <= MAX_RULES);
        let (wp, _) = plane_with(rules);
        assert!(wp.snapshot().contains("0 firing"));
    }

    #[test]
    #[should_panic(expected = "identical rule table")]
    fn restore_refuses_a_different_rule_table() {
        let (wp, clock) = plane_with(vec![abort_rule()]);
        let st = wp.export_state();
        let other = WatchPlane::with_rules(clock, default_rules());
        other.restore_state(&st);
    }
}

//! Simulation substrate for the VINO reproduction.
//!
//! The paper's evaluation ran on a 120 MHz Pentium and reported every
//! measurement in microseconds derived from the CPU cycle counter
//! (8.33 ns/cycle). This crate provides the equivalent for a simulated
//! kernel: a [`clock::VirtualClock`] that subsystems charge cycles to, a
//! calibrated [`costs`] table holding every constant the paper states
//! directly, trimmed-mean [`stats`] matching the paper's methodology
//! (drop top and bottom 10 % of samples), a deterministic [`rng`], and a
//! timer [`event`] queue used for lock time-outs and scheduling.

pub mod clock;
pub mod costs;
pub mod debug;
pub mod event;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod plane;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod watch;

pub use clock::{Cycles, VirtualClock};
pub use debug::{render_merged_timeline, render_timeline, TimelineOpts};
pub use event::{EventQueue, TimerId};
pub use fault::{FaultPlane, FaultPlaneState, FaultSite};
pub use ids::ThreadId;
pub use metrics::{
    Attribution, Component, Counter, CycleHistogram, MetricTag, MetricsPlane, MetricsState,
};
pub use plane::{AttachError, AttachSlot};
pub use profile::{HotFn, ProfTag, ProfilePlane, SpanKind};
pub use rng::{SplitMix64, XorShift64};
pub use trace::{
    AbortKind, CauseCtx, GraftTag, MergedRecord, MergedTrace, NodeId, PostMortem, SfiKind, SpanId,
    TraceEvent, TracePlane, TraceRecord, TraceState, TraceStats, VmExitKind,
};
pub use watch::{
    default_rules, AlertEdge, AlertRecord, Signal, SloRule, WatchPlane, WatchState, WatchStats,
};

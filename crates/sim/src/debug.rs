//! ASCII Gantt timelines over the trace plane's flight recorder.
//!
//! A survival-battery failure is an ordered story — a graft invoked, a
//! lock contended, a fault injected, an abort, a quarantine — but the
//! canonical trace serialization tells it one line per event. This
//! module renders the same records as a timeline: one lane per graft
//! plus one lane per kernel subsystem, the x-axis scaled over virtual
//! cycles, invoke spans drawn between their begin/end markers and lock
//! waits between block and grant. The render is pure and deterministic
//! (golden-pinned by `tests/timeline_golden.rs`), and the glyph and
//! lane maps are exhaustive over [`TraceEvent`] — a new variant fails
//! to compile here rather than silently vanishing from the picture.

use std::collections::HashMap;

use crate::trace::{NodeId, TraceEvent, TracePlane, TraceRecord};

/// Options for [`render_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineOpts {
    /// Inclusive virtual-cycle range to plot; `None` plots everything
    /// in the ring.
    pub range: Option<(u64, u64)>,
    /// Lane filter: keep a lane when its name equals, or starts with,
    /// any entry (so `graft:` keeps every graft lane). `None` keeps
    /// all.
    pub lanes: Option<Vec<String>>,
    /// Plot width in columns.
    pub width: usize,
}

impl Default for TimelineOpts {
    fn default() -> TimelineOpts {
        TimelineOpts { range: None, lanes: None, width: 96 }
    }
}

/// The subsystem lanes, in render order (graft lanes come first).
const SUBSYSTEM_LANES: &[&str] = &["vm", "txn", "rm", "fs", "net", "watch", "admission", "repl"];

/// The lane a record renders in. Exhaustive over [`TraceEvent`]: graft
/// lifecycle events get a per-graft lane, everything else its
/// subsystem's lane.
pub fn lane_of(plane: &TracePlane, ev: &TraceEvent) -> String {
    use TraceEvent::*;
    match ev {
        VmWindow { .. } | SfiCheck { .. } => "vm".to_string(),
        TxnBegin { .. }
        | TxnCommit { .. }
        | TxnAbort { .. }
        | LockAcquire { .. }
        | LockBlocked { .. }
        | LockTimeout { .. }
        | LockSteal { .. }
        | UndoPush { .. }
        | UndoRun { .. } => "txn".to_string(),
        ResGrant { .. } | ResRelease { .. } | ResLimitHit { .. } => "rm".to_string(),
        FsRead { .. }
        | FsWrite { .. }
        | FsPrefetch { .. }
        | FsJournalAppend { .. }
        | FsJournalCommit { .. }
        | FsCheckpoint { .. }
        | FsRecoveryReplay { .. }
        | FsRecoveryDiscard { .. } => "fs".to_string(),
        GraftInstall { graft }
        | GraftInvoke { graft }
        | GraftCommit { graft }
        | GraftAbort { graft, .. }
        | GraftQuarantine { graft, .. }
        | FallbackServed { graft } => format!("graft:{}", plane.name_of(*graft)),
        NetRx { .. }
        | NetShed { .. }
        | NetVerdict { .. }
        | NetSteer { .. }
        | NetLoopCut { .. }
        | NetBatch { .. } => "net".to_string(),
        WatchAlertFiring { .. } | WatchAlertResolved { .. } => "watch".to_string(),
        // Their own lane: the gate polls the watch plane, so a resolved
        // edge and an admit often share a cycle — one lane would let
        // the admit glyph overwrite the alert edge.
        AdmissionAllow { .. } | AdmissionDeny { .. } => "admission".to_string(),
        ReplShip { .. }
        | ReplAck { .. }
        | ReplApply { .. }
        | ReplFrameDrop { .. }
        | ReplPromote { .. } => "repl".to_string(),
    }
}

/// The single-character marker a record renders as. Exhaustive over
/// [`TraceEvent`]; every glyph is globally unique so the legend is
/// unambiguous.
pub fn glyph_of(ev: &TraceEvent) -> char {
    use TraceEvent::*;
    match ev {
        VmWindow { .. } => 'w',
        SfiCheck { .. } => 'k',
        TxnBegin { .. } => 'B',
        TxnCommit { .. } => 'C',
        TxnAbort { .. } => 'A',
        LockAcquire { .. } => 'l',
        LockBlocked { .. } => 'b',
        LockTimeout { .. } => 'T',
        LockSteal { .. } => 'S',
        UndoPush { .. } => 'u',
        UndoRun { .. } => 'U',
        ResGrant { .. } => 'g',
        ResRelease { .. } => 'r',
        ResLimitHit { .. } => 'X',
        FsRead { .. } => 'R',
        FsWrite { .. } => 'W',
        FsPrefetch { .. } => 'p',
        FsJournalAppend { .. } => 'j',
        FsJournalCommit { .. } => 'J',
        FsCheckpoint { .. } => 'c',
        FsRecoveryReplay { .. } => 'Y',
        FsRecoveryDiscard { .. } => 'D',
        GraftInstall { .. } => 'I',
        GraftInvoke { .. } => '[',
        GraftCommit { .. } => ']',
        GraftAbort { .. } => '!',
        GraftQuarantine { .. } => 'Q',
        FallbackServed { .. } => 'F',
        NetRx { .. } => 'x',
        NetShed { .. } => 'd',
        NetVerdict { .. } => 'v',
        NetSteer { .. } => 's',
        NetLoopCut { .. } => 'o',
        NetBatch { .. } => 'n',
        WatchAlertFiring { .. } => 'f',
        WatchAlertResolved { .. } => 'z',
        AdmissionAllow { .. } => 'a',
        AdmissionDeny { .. } => 'V',
        ReplShip { .. } => '>',
        ReplAck { .. } => 'K',
        ReplApply { .. } => '+',
        ReplFrameDrop { .. } => 'L',
        ReplPromote { .. } => 'P',
    }
}

/// The fixed glyph legend, rendered at the foot of every timeline.
pub const LEGEND: &[&str] = &[
    "[=] invoke span  ! abort  I install  Q quarantine  F fallback",
    "B/C/A txn begin/commit/abort  l lock  b~l blocked span  T timeout  S steal  u/U undo",
    "R/W read/write  p prefetch  j/J/c journal append/commit/checkpoint  Y/D recovery",
    "g/r/X rm grant/release/limit-hit  w vm-window  k sfi-check",
    "x rx  d shed  v verdict  s steer  o loop-cut  n batch",
    "f/z alert firing/resolved  a admit  V veto (admission deny)",
    "> ship  K ack  + apply  L frame-drop  P promote (repl)",
];

/// Renders the plane's current records as an ASCII Gantt chart.
///
/// Per-graft lanes draw `=` between an invoke (`[`) and its commit
/// (`]`) or abort (`!`); the txn lane draws `~` between a lock block
/// (`b`) and the grant or timeout that resolves it. Markers overwrite
/// fills; when several records land in one cell the latest wins —
/// deterministically, since records are ordered.
pub fn render_timeline(plane: &TracePlane, opts: &TimelineOpts) -> String {
    let width = opts.width.max(8);
    let records: Vec<TraceRecord> = plane
        .records()
        .into_iter()
        .filter(|r| match opts.range {
            Some((lo, hi)) => r.at.get() >= lo && r.at.get() <= hi,
            None => true,
        })
        .collect();
    let range_label = match opts.range {
        Some((lo, hi)) => format!("{lo}..{hi}"),
        None => "all".to_string(),
    };
    if records.is_empty() {
        return format!("== timeline: 0 records (range {range_label}) ==\n");
    }
    let t0 = records.first().expect("non-empty").at.get();
    let t1 = records.last().expect("non-empty").at.get();
    let span = (t1 - t0).max(1);
    let col = |at: u64| (((at - t0) as u128 * (width as u128 - 1)) / span as u128) as usize;

    // Lane discovery, in deterministic order: graft lanes by first
    // appearance in the record stream, then the fixed subsystem lanes.
    let mut lane_names: Vec<String> = Vec::new();
    for r in &records {
        let lane = lane_of(plane, &r.event);
        if lane.starts_with("graft:") && !lane_names.contains(&lane) {
            lane_names.push(lane);
        }
    }
    for s in SUBSYSTEM_LANES {
        if records.iter().any(|r| lane_of(plane, &r.event) == *s) {
            lane_names.push(s.to_string());
        }
    }
    if let Some(keep) = &opts.lanes {
        lane_names.retain(|l| keep.iter().any(|k| l == k || l.starts_with(k.as_str())));
    }

    let mut rows: HashMap<String, Vec<char>> =
        lane_names.iter().map(|l| (l.clone(), vec![' '; width])).collect();
    let mut counts: HashMap<String, u64> = HashMap::new();

    // Span fills first, so markers drawn later stay visible.
    let fill = |row: &mut [char], a: usize, b: usize, ch: char| {
        for cell in row.iter_mut().take(b).skip(a + 1) {
            if *cell == ' ' {
                *cell = ch;
            }
        }
    };
    let mut open_invokes: HashMap<String, usize> = HashMap::new();
    let mut open_blocks: HashMap<u64, usize> = HashMap::new();
    for r in &records {
        let lane = lane_of(plane, &r.event);
        let c = col(r.at.get());
        match r.event {
            TraceEvent::GraftInvoke { .. } => {
                open_invokes.insert(lane.clone(), c);
            }
            TraceEvent::GraftCommit { .. } | TraceEvent::GraftAbort { .. } => {
                if let (Some(a), Some(row)) = (open_invokes.remove(&lane), rows.get_mut(&lane)) {
                    fill(row, a, c, '=');
                }
            }
            TraceEvent::LockBlocked { lock, .. } => {
                open_blocks.insert(lock, c);
            }
            TraceEvent::LockAcquire { lock, .. } | TraceEvent::LockTimeout { lock, .. } => {
                if let (Some(a), Some(row)) = (open_blocks.remove(&lock), rows.get_mut(&lane)) {
                    fill(row, a, c, '~');
                }
            }
            _ => {}
        }
    }
    for r in &records {
        let lane = lane_of(plane, &r.event);
        if let Some(row) = rows.get_mut(&lane) {
            row[col(r.at.get())] = glyph_of(&r.event);
            *counts.entry(lane).or_insert(0) += 1;
        }
    }

    let shown: u64 = counts.values().sum();
    let mut out = format!(
        "== timeline: {} records shown (range {range_label}), cycles {t0}..{t1}, 1 col ~ {} cyc ==\n",
        shown,
        span.div_ceil(width as u64 - 1).max(1),
    );
    for lane in &lane_names {
        let row: String = rows[lane].iter().collect();
        out.push_str(&format!(
            "{:<18} |{row}| n={}\n",
            lane,
            counts.get(lane).copied().unwrap_or(0)
        ));
    }
    out.push_str("legend:\n");
    for line in LEGEND {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The extra legend line for [`render_merged_timeline`]'s wire lane.
pub const WIRE_LEGEND: &str =
    r"wire lane: \ cross-kernel edge to a higher node (ship)  / to a lower node (ack)";

/// Renders several kernels' trace planes as one cross-kernel Gantt
/// chart, merged by [`TracePlane::merge_streams`].
///
/// Every lane of the single-kernel renderer appears per node with an
/// `n0:`/`n1:` prefix (that node's graft lanes first, then its
/// subsystem lanes, nodes in ascending id order), and one shared
/// `wire` lane draws a span-link glyph at each record whose causal
/// parent was minted on a *different* node: `\` when the edge flows to
/// a higher node id (a shipped record landing on the replica), `/`
/// when it flows back down (an ack landing on the primary). A shipped
/// journal record is thus one readable story:
/// `n0:fs J` → `wire \` → `n1:repl +` → `wire /` → `n0:repl K`.
pub fn render_merged_timeline(planes: &[&TracePlane], opts: &TimelineOpts) -> String {
    let width = opts.width.max(8);
    let merged = TracePlane::merge_streams(planes);
    let by_node: HashMap<NodeId, &TracePlane> = planes.iter().map(|p| (p.node(), *p)).collect();
    let records: Vec<(NodeId, TraceRecord)> = merged
        .records()
        .iter()
        .map(|m| (m.node, m.rec))
        .filter(|(_, r)| match opts.range {
            Some((lo, hi)) => r.at.get() >= lo && r.at.get() <= hi,
            None => true,
        })
        .collect();
    let range_label = match opts.range {
        Some((lo, hi)) => format!("{lo}..{hi}"),
        None => "all".to_string(),
    };
    if records.is_empty() {
        return format!("== merged timeline: 0 records (range {range_label}) ==\n");
    }
    let t0 = records.first().expect("non-empty").1.at.get();
    let t1 = records.last().expect("non-empty").1.at.get();
    let span = (t1 - t0).max(1);
    let col = |at: u64| (((at - t0) as u128 * (width as u128 - 1)) / span as u128) as usize;
    let lane_for =
        |node: NodeId, ev: &TraceEvent| format!("{node}:{}", lane_of(by_node[&node], ev));

    // Lane discovery: per node (ascending id), graft lanes by first
    // appearance then the fixed subsystem lanes; `wire` closes the
    // chart when any cross-node edge exists.
    let mut nodes: Vec<NodeId> = by_node.keys().copied().collect();
    nodes.sort();
    let mut lane_names: Vec<String> = Vec::new();
    for &node in &nodes {
        for (n, r) in &records {
            if *n != node {
                continue;
            }
            let lane = lane_for(node, &r.event);
            if lane.contains(":graft:") && !lane_names.contains(&lane) {
                lane_names.push(lane);
            }
        }
        for s in SUBSYSTEM_LANES {
            let lane = format!("{node}:{s}");
            if records.iter().any(|(n, r)| *n == node && lane_for(node, &r.event) == lane) {
                lane_names.push(lane);
            }
        }
    }
    let cross_edge =
        |n: NodeId, r: &TraceRecord| !r.ctx.parent.is_none() && r.ctx.parent.node() != n;
    let has_wire = records.iter().any(|(n, r)| cross_edge(*n, r));
    if has_wire {
        lane_names.push("wire".to_string());
    }
    if let Some(keep) = &opts.lanes {
        lane_names.retain(|l| keep.iter().any(|k| l == k || l.starts_with(k.as_str())));
    }

    let mut rows: HashMap<String, Vec<char>> =
        lane_names.iter().map(|l| (l.clone(), vec![' '; width])).collect();
    let mut counts: HashMap<String, u64> = HashMap::new();

    // Span fills first (per node), so markers drawn later stay visible.
    let fill = |row: &mut [char], a: usize, b: usize, ch: char| {
        for cell in row.iter_mut().take(b).skip(a + 1) {
            if *cell == ' ' {
                *cell = ch;
            }
        }
    };
    let mut open_invokes: HashMap<String, usize> = HashMap::new();
    let mut open_blocks: HashMap<(NodeId, u64), usize> = HashMap::new();
    for (n, r) in &records {
        let lane = lane_for(*n, &r.event);
        let c = col(r.at.get());
        match r.event {
            TraceEvent::GraftInvoke { .. } => {
                open_invokes.insert(lane.clone(), c);
            }
            TraceEvent::GraftCommit { .. } | TraceEvent::GraftAbort { .. } => {
                if let (Some(a), Some(row)) = (open_invokes.remove(&lane), rows.get_mut(&lane)) {
                    fill(row, a, c, '=');
                }
            }
            TraceEvent::LockBlocked { lock, .. } => {
                open_blocks.insert((*n, lock), c);
            }
            TraceEvent::LockAcquire { lock, .. } | TraceEvent::LockTimeout { lock, .. } => {
                if let (Some(a), Some(row)) = (open_blocks.remove(&(*n, lock)), rows.get_mut(&lane))
                {
                    fill(row, a, c, '~');
                }
            }
            _ => {}
        }
    }
    for (n, r) in &records {
        let lane = lane_for(*n, &r.event);
        if let Some(row) = rows.get_mut(&lane) {
            row[col(r.at.get())] = glyph_of(&r.event);
            *counts.entry(lane).or_insert(0) += 1;
        }
        if cross_edge(*n, r) {
            if let Some(row) = rows.get_mut("wire") {
                row[col(r.at.get())] = if r.ctx.parent.node() < *n { '\\' } else { '/' };
                *counts.entry("wire".to_string()).or_insert(0) += 1;
            }
        }
    }

    let shown: u64 =
        counts.iter().filter(|(lane, _)| lane.as_str() != "wire").map(|(_, n)| n).sum();
    let mut out = format!(
        "== merged timeline: {} records shown across {} nodes (range {range_label}), cycles {t0}..{t1}, 1 col ~ {} cyc ==\n",
        shown,
        nodes.len(),
        span.div_ceil(width as u64 - 1).max(1),
    );
    for lane in &lane_names {
        let row: String = rows[lane].iter().collect();
        out.push_str(&format!(
            "{:<18} |{row}| n={}\n",
            lane,
            counts.get(lane).copied().unwrap_or(0)
        ));
    }
    out.push_str("legend:\n");
    for line in LEGEND {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("  ");
    out.push_str(WIRE_LEGEND);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::trace::AbortKind;
    use crate::Cycles;

    #[test]
    fn invoke_span_and_markers_render() {
        let clock = VirtualClock::new();
        let tp = TracePlane::new(std::rc::Rc::clone(&clock));
        let g = tp.tag("ra");
        tp.emit(TraceEvent::GraftInvoke { graft: g });
        clock.charge(Cycles(10_000));
        tp.emit(TraceEvent::FsRead { fd: 3, len: 4096 });
        clock.charge(Cycles(10_000));
        tp.emit(TraceEvent::GraftAbort { graft: g, kind: AbortKind::Trap });
        let out = render_timeline(&tp, &TimelineOpts::default());
        let graft_row = out.lines().find(|l| l.starts_with("graft:ra")).unwrap();
        assert!(graft_row.contains('['), "invoke marker missing: {graft_row}");
        assert!(graft_row.contains('!'), "abort marker missing: {graft_row}");
        assert!(graft_row.contains('='), "invoke span fill missing: {graft_row}");
        let fs_row = out.lines().find(|l| l.starts_with("fs")).unwrap();
        assert!(fs_row.contains('R'), "fs read marker missing: {fs_row}");
    }

    #[test]
    fn range_and_lane_filters_apply() {
        let clock = VirtualClock::new();
        let tp = TracePlane::new(std::rc::Rc::clone(&clock));
        tp.emit(TraceEvent::FsRead { fd: 3, len: 1 });
        clock.charge(Cycles(50_000));
        tp.emit(TraceEvent::NetRx { port: 1, len: 64 });
        let all = render_timeline(&tp, &TimelineOpts::default());
        assert!(all.contains("\nfs") && all.contains("\nnet"));
        let only_net = render_timeline(
            &tp,
            &TimelineOpts { lanes: Some(vec!["net".to_string()]), ..TimelineOpts::default() },
        );
        assert!(!only_net.contains("\nfs") && only_net.contains("net"));
        let early =
            render_timeline(&tp, &TimelineOpts { range: Some((0, 10)), ..TimelineOpts::default() });
        assert!(early.contains("1 records shown"));
    }

    #[test]
    fn empty_range_renders_a_stub() {
        let tp = TracePlane::new(VirtualClock::new());
        let out = render_timeline(&tp, &TimelineOpts::default());
        assert!(out.contains("0 records"));
    }

    #[test]
    fn merged_timeline_draws_node_lanes_and_wire_links() {
        use crate::trace::SpanId;
        let clock = VirtualClock::new();
        let p0 = TracePlane::with_node(std::rc::Rc::clone(&clock), 64, NodeId(0));
        let p1 = TracePlane::with_node(std::rc::Rc::clone(&clock), 64, NodeId(1));
        let seal = p0.mint_span(SpanId::NONE);
        p0.emit_with_ctx(TraceEvent::FsJournalCommit { seq: 1 }, seal);
        clock.charge(Cycles(10_000));
        let apply = p1.mint_span(seal.span);
        p1.emit_with_ctx(TraceEvent::ReplApply { seq: 1, blocks: 2 }, apply);
        clock.charge(Cycles(10_000));
        p0.emit_with_ctx(TraceEvent::ReplAck { acked: 1 }, p0.mint_span(apply.span));
        let out = render_merged_timeline(&[&p0, &p1], &TimelineOpts::default());
        assert!(out.contains("across 2 nodes"), "header: {out}");
        let fs0 = out.lines().find(|l| l.starts_with("n0:fs")).expect("n0:fs lane");
        assert!(fs0.contains('J'), "journal commit on n0: {fs0}");
        let repl1 = out.lines().find(|l| l.starts_with("n1:repl")).expect("n1:repl lane");
        assert!(repl1.contains('+'), "apply on n1: {repl1}");
        let wire = out.lines().find(|l| l.starts_with("wire")).expect("wire lane");
        assert!(wire.contains('\\'), "ship edge n0->n1: {wire}");
        assert!(wire.contains('/'), "ack edge n1->n0: {wire}");
        assert!(out.contains(WIRE_LEGEND));
        // Merge stability: either argument order, byte-identical chart.
        assert_eq!(out, render_merged_timeline(&[&p1, &p0], &TimelineOpts::default()));
    }
}

//! The deterministic metrics plane: live aggregation over the same
//! instrumentation points the trace plane records.
//!
//! Where [`crate::trace`] answers *what happened* (an ordered event
//! stream), this module answers *how much, how fast, and where the
//! cycles went*: fixed-slot counters, log2-bucketed cycle histograms
//! over the virtual clock, and the headline feature — a **per-graft,
//! per-invocation overhead-attribution ledger** that decomposes every
//! invocation's cycle charge into the paper's named components
//! (indirection, transaction begin/commit, lock, SFI, graft function,
//! result check, undo, abort; §4, Tables 3–7) so the Table 3 breakdown
//! can be read off a *running* kernel instead of a benchmark harness.
//!
//! Design discipline matches the trace plane:
//!
//! - **Zero allocations on the hot path.** Counters are fixed slots in
//!   a `Cell` array; histograms are fixed bucket arrays; the invocation
//!   stack is a fixed-depth array. Only graft-name interning
//!   ([`MetricsPlane::tag`], install time) and rendering allocate —
//!   proven by `cargo bench -p vino-bench --bench metrics_plane`.
//! - **Deterministic.** Everything is driven by the virtual clock and
//!   integer arithmetic, so two same-seed runs produce byte-identical
//!   snapshots (`tests/metrics_golden.rs`, `tests/survival.rs`).
//! - **Attach-once.** `Kernel::attach_metrics_plane` wires one shared
//!   handle through VM, transaction manager, resource manager, file
//!   system and the graft engine; a second attach is refused.
//!
//! Recording a metric never charges the clock: attaching a metrics
//! plane is observation, not perturbation — timings and goldens are
//! identical with and without it.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::clock::{Cycles, VirtualClock};

/// Interned graft-name handle, the metrics twin of
/// [`crate::trace::GraftTag`]. Interning happens at install time (the
/// only allocating operation); every hot-path call passes the `Copy`
/// tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricTag(pub u16);

/// Maximum concurrently bracketed invocations (graft-to-graft nesting).
/// The engine bounds nesting well below this (`MAX_NEST_DEPTH`).
const MAX_NEST: usize = 16;

// ---------------------------------------------------------------------------
// Counters.
// ---------------------------------------------------------------------------

/// Fixed-slot event counters, one per instrumented site.
///
/// Each variant mirrors exactly one trace-plane emit site, so for a run
/// with both planes attached the per-subsystem [`crate::trace::TraceStats`]
/// totals reconcile with sums of these counters (asserted by the
/// survival battery). Extra measurement-only counters
/// ([`Counter::VmInstrs`], [`Counter::MutexAcquires`]) sit outside the
/// reconciliation sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Interpreter windows run (mirrors `vm.window`).
    VmWindows,
    /// Instructions retired (measurement-only; no trace twin).
    VmInstrs,
    /// MiSFIT `Clamp` sandbox ops (mirrors `vm.sfi kind=clamp`).
    SfiClamps,
    /// MiSFIT `CheckCall` probes (mirrors `vm.sfi kind=checkcall`).
    SfiCallchecks,
    /// Transactions begun (mirrors `txn.begin`).
    TxnBegins,
    /// Top-level commits (mirrors `txn.commit nested=false`).
    TxnCommits,
    /// Nested commits (mirrors `txn.commit nested=true`).
    TxnNestedCommits,
    /// Aborts (mirrors `txn.abort`).
    TxnAborts,
    /// Transaction locks granted (mirrors `txn.lock`).
    TxnLockAcquires,
    /// Plain mutex acquires outside a transaction (measurement-only).
    MutexAcquires,
    /// Contended acquires that blocked (mirrors `txn.blocked`).
    LockWaits,
    /// Fired time-outs that aborted a holder (mirrors `txn.timeout`).
    LockTimeouts,
    /// Stolen transactions observed by their wrapper (mirrors `txn.steal`).
    LockSteals,
    /// Undo records logged (mirrors `txn.undo-push`).
    UndoPushes,
    /// Undo stacks executed on abort (mirrors `txn.undo-run`).
    UndoRuns,
    /// Resource charges granted (mirrors `rm.grant`).
    RmGrants,
    /// Resource charges denied (mirrors `rm.limit-hit`).
    RmDenials,
    /// Resource releases (mirrors `rm.release`).
    RmReleases,
    /// File reads (mirrors `fs.read`).
    FsReads,
    /// File writes (mirrors `fs.write`).
    FsWrites,
    /// Prefetches issued (mirrors `fs.prefetch`).
    FsPrefetches,
    /// Journal transactions appended (mirrors `fs.journal_append`).
    FsJournalAppends,
    /// Journal commit markers made durable (mirrors `fs.journal_commit`).
    FsJournalCommits,
    /// Committed transactions checkpointed home (mirrors `fs.checkpoint`).
    FsCheckpoints,
    /// Committed transactions rolled forward at mount (mirrors
    /// `fs.recovery_replay`).
    FsRecoveryReplays,
    /// Torn journal tails discarded at mount (mirrors
    /// `fs.recovery_discard`).
    FsRecoveryDiscards,
    /// Graft installs (mirrors `graft.install`).
    GraftInstalls,
    /// Graft invocations begun (mirrors `graft.invoke`).
    GraftInvocations,
    /// Invocations that committed (mirrors `graft.commit`).
    GraftCommits,
    /// Invocations that aborted (mirrors `graft.abort`).
    GraftAborts,
    /// Dead-graft invocations refused to the default path (mirrors
    /// `graft.fallback`).
    GraftFallbacks,
    /// Quarantine trips (mirrors `graft.quarantine`).
    GraftQuarantines,
    /// Installs waved through by the admission controller (mirrors
    /// `watch.admit`; only counted while a watch plane is attached).
    AdmissionAllows,
    /// Installs refused by the admission controller (mirrors
    /// `watch.deny`; only counted while a watch plane is attached).
    AdmissionDenies,
    /// Packets admitted to an RX ring (mirrors `net.rx`).
    NetRxPackets,
    /// Admissions refused at capacity (mirrors `net.shed kind=overflow`).
    NetRxOverflows,
    /// Admissions shed above the high watermark (mirrors
    /// `net.shed kind=watermark`).
    NetRxSheds,
    /// Accept verdicts (mirrors `net.verdict v=accept`).
    NetAccepts,
    /// Drop verdicts (mirrors `net.verdict v=drop`).
    NetDrops,
    /// Steer verdicts (mirrors `net.verdict v=steer`).
    NetSteers,
    /// Steer hops performed (mirrors `net.steer`).
    NetSteerHops,
    /// Packets dropped by the steer-hop budget (mirrors `net.loop-cut`).
    NetLoopCuts,
    /// Batched filter dispatches (mirrors `net.batch`).
    NetBatchDispatches,
    /// NIC events delivered to a poller (measurement-only; no trace twin).
    NicDelivered,
    /// NIC events dropped at the device queue (measurement-only).
    NicDropped,
    /// Disk blocks read (measurement-only; mirrors `DiskStats::reads`).
    DiskReads,
    /// Disk blocks written (measurement-only; mirrors
    /// `DiskStats::writes`).
    DiskWrites,
    /// Disk head seeks (measurement-only; mirrors `DiskStats::seeks`).
    DiskSeeks,
    /// Injected disk stalls (measurement-only; mirrors
    /// `DiskStats::stalls`).
    DiskStalls,
    /// Injected transient media errors (measurement-only; mirrors
    /// `DiskStats::io_errors`).
    DiskIoErrors,
    /// Injected torn writes that persisted only a block prefix
    /// (measurement-only; mirrors `DiskStats::torn_writes`).
    DiskTornWrites,
    /// Committed journal records the primary shipped to the replica
    /// (`vino-repl`).
    ReplShips,
    /// Cumulative acks the primary consumed (`vino-repl`).
    ReplAcks,
    /// Shipped records the replica applied through its own journal
    /// (`vino-repl`).
    ReplApplies,
    /// Frames lost, reordered out of reach, or failing their seal
    /// check (`vino-repl`).
    ReplFrameDrops,
    /// Records the shipping window retransmitted (`vino-repl`).
    ReplRetransmits,
    /// Replica promotions to primary after primary death (`vino-repl`).
    ReplPromotions,
}

impl Counter {
    /// Number of counter slots.
    pub const COUNT: usize = 57;

    /// Every counter, in canonical exposition order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::VmWindows,
        Counter::VmInstrs,
        Counter::SfiClamps,
        Counter::SfiCallchecks,
        Counter::TxnBegins,
        Counter::TxnCommits,
        Counter::TxnNestedCommits,
        Counter::TxnAborts,
        Counter::TxnLockAcquires,
        Counter::MutexAcquires,
        Counter::LockWaits,
        Counter::LockTimeouts,
        Counter::LockSteals,
        Counter::UndoPushes,
        Counter::UndoRuns,
        Counter::RmGrants,
        Counter::RmDenials,
        Counter::RmReleases,
        Counter::FsReads,
        Counter::FsWrites,
        Counter::FsPrefetches,
        Counter::FsJournalAppends,
        Counter::FsJournalCommits,
        Counter::FsCheckpoints,
        Counter::FsRecoveryReplays,
        Counter::FsRecoveryDiscards,
        Counter::GraftInstalls,
        Counter::GraftInvocations,
        Counter::GraftCommits,
        Counter::GraftAborts,
        Counter::GraftFallbacks,
        Counter::GraftQuarantines,
        Counter::AdmissionAllows,
        Counter::AdmissionDenies,
        Counter::NetRxPackets,
        Counter::NetRxOverflows,
        Counter::NetRxSheds,
        Counter::NetAccepts,
        Counter::NetDrops,
        Counter::NetSteers,
        Counter::NetSteerHops,
        Counter::NetLoopCuts,
        Counter::NetBatchDispatches,
        Counter::NicDelivered,
        Counter::NicDropped,
        Counter::DiskReads,
        Counter::DiskWrites,
        Counter::DiskSeeks,
        Counter::DiskStalls,
        Counter::DiskIoErrors,
        Counter::DiskTornWrites,
        Counter::ReplShips,
        Counter::ReplAcks,
        Counter::ReplApplies,
        Counter::ReplFrameDrops,
        Counter::ReplRetransmits,
        Counter::ReplPromotions,
    ];

    /// The Prometheus series name (always a monotone counter).
    pub fn name(self) -> &'static str {
        match self {
            Counter::VmWindows => "vino_vm_windows_total",
            Counter::VmInstrs => "vino_vm_instructions_total",
            Counter::SfiClamps => "vino_vm_sfi_clamps_total",
            Counter::SfiCallchecks => "vino_vm_sfi_callchecks_total",
            Counter::TxnBegins => "vino_txn_begins_total",
            Counter::TxnCommits => "vino_txn_commits_total",
            Counter::TxnNestedCommits => "vino_txn_nested_commits_total",
            Counter::TxnAborts => "vino_txn_aborts_total",
            Counter::TxnLockAcquires => "vino_txn_lock_acquires_total",
            Counter::MutexAcquires => "vino_txn_mutex_acquires_total",
            Counter::LockWaits => "vino_txn_lock_waits_total",
            Counter::LockTimeouts => "vino_txn_lock_timeouts_total",
            Counter::LockSteals => "vino_txn_lock_steals_total",
            Counter::UndoPushes => "vino_txn_undo_pushes_total",
            Counter::UndoRuns => "vino_txn_undo_runs_total",
            Counter::RmGrants => "vino_rm_grants_total",
            Counter::RmDenials => "vino_rm_denials_total",
            Counter::RmReleases => "vino_rm_releases_total",
            Counter::FsReads => "vino_fs_reads_total",
            Counter::FsWrites => "vino_fs_writes_total",
            Counter::FsPrefetches => "vino_fs_prefetches_total",
            Counter::FsJournalAppends => "vino_fs_journal_appends_total",
            Counter::FsJournalCommits => "vino_fs_journal_commits_total",
            Counter::FsCheckpoints => "vino_fs_checkpoints_total",
            Counter::FsRecoveryReplays => "vino_fs_recovery_replays_total",
            Counter::FsRecoveryDiscards => "vino_fs_recovery_discards_total",
            Counter::GraftInstalls => "vino_graft_installs_total",
            Counter::GraftInvocations => "vino_graft_invocations_total",
            Counter::GraftCommits => "vino_graft_commits_total",
            Counter::GraftAborts => "vino_graft_aborts_total",
            Counter::GraftFallbacks => "vino_graft_fallbacks_total",
            Counter::GraftQuarantines => "vino_graft_quarantines_total",
            Counter::AdmissionAllows => "vino_admission_allows_total",
            Counter::AdmissionDenies => "vino_admission_denies_total",
            Counter::NetRxPackets => "vino_net_rx_packets_total",
            Counter::NetRxOverflows => "vino_net_rx_overflows_total",
            Counter::NetRxSheds => "vino_net_rx_sheds_total",
            Counter::NetAccepts => "vino_net_filter_accepts_total",
            Counter::NetDrops => "vino_net_filter_drops_total",
            Counter::NetSteers => "vino_net_filter_steers_total",
            Counter::NetSteerHops => "vino_net_steer_hops_total",
            Counter::NetLoopCuts => "vino_net_loop_cuts_total",
            Counter::NetBatchDispatches => "vino_net_batches_total",
            Counter::NicDelivered => "vino_nic_events_delivered_total",
            Counter::NicDropped => "vino_nic_events_dropped_total",
            Counter::DiskReads => "vino_disk_reads_total",
            Counter::DiskWrites => "vino_disk_writes_total",
            Counter::DiskSeeks => "vino_disk_seeks_total",
            Counter::DiskStalls => "vino_disk_stalls_total",
            Counter::DiskIoErrors => "vino_disk_io_errors_total",
            Counter::DiskTornWrites => "vino_disk_torn_writes_total",
            Counter::ReplShips => "vino_repl_ships_total",
            Counter::ReplAcks => "vino_repl_acks_total",
            Counter::ReplApplies => "vino_repl_applies_total",
            Counter::ReplFrameDrops => "vino_repl_frame_drops_total",
            Counter::ReplRetransmits => "vino_repl_retransmits_total",
            Counter::ReplPromotions => "vino_repl_promotions_total",
        }
    }
}

// ---------------------------------------------------------------------------
// Overhead-attribution components.
// ---------------------------------------------------------------------------

/// The paper's named overhead components (Table 3's rows), the axes of
/// the per-graft attribution ledger.
///
/// Each subsystem attributes its own `vino_sim::costs` charges exactly
/// once: the VM attributes per-instruction charges ([`Component::Sfi`]
/// for sandbox ops, [`Component::GraftFn`] for everything else), the
/// transaction manager attributes the envelope (begin/commit, locks,
/// undo, abort), and the dispatch site attributes
/// [`Component::Indirection`]. Host-call costs inside a VM window (e.g.
/// a transaction lock acquired through `$lock`) are attributed by the
/// manager that charged them, never double-counted by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Component {
    /// Graft-point dispatch (the 1 µs "indirection cost" row).
    Indirection,
    /// `TXN_BEGIN`.
    TxnBegin,
    /// `TXN_COMMIT` / `TXN_NESTED_COMMIT`.
    TxnCommit,
    /// Transaction lock acquires and mutex pairs.
    Lock,
    /// MiSFIT sandbox ops (`Clamp` / `CheckCall`).
    Sfi,
    /// The graft's own instructions (including host-call linkage).
    GraftFn,
    /// Result validation (`RESULT_CHECK`); zero for hooks whose result
    /// needs no semantic check (e.g. read-ahead, where a bad extent is
    /// simply clipped).
    ResultCheck,
    /// Undo logging and undo execution.
    Undo,
    /// Abort overhead and per-lock abort release.
    Abort,
}

impl Component {
    /// Number of attribution slots.
    pub const COUNT: usize = 9;

    /// Every component, in Table-3 rendering order.
    pub const ALL: [Component; Component::COUNT] = [
        Component::Indirection,
        Component::TxnBegin,
        Component::TxnCommit,
        Component::Lock,
        Component::Sfi,
        Component::GraftFn,
        Component::ResultCheck,
        Component::Undo,
        Component::Abort,
    ];

    /// The stable label used in renderings and exposition.
    pub fn label(self) -> &'static str {
        match self {
            Component::Indirection => "indirection",
            Component::TxnBegin => "txn-begin",
            Component::TxnCommit => "txn-commit",
            Component::Lock => "lock",
            Component::Sfi => "sfi",
            Component::GraftFn => "graft-fn",
            Component::ResultCheck => "result-check",
            Component::Undo => "undo",
            Component::Abort => "abort",
        }
    }
}

/// One graft's aggregated attribution ledger, snapshotted by
/// [`MetricsPlane::attribution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribution {
    /// Total attributed cycles per component, across all invocations.
    pub cycles: [u64; Component::COUNT],
    /// Invocations aggregated into the ledger.
    pub invocations: u64,
}

impl Attribution {
    /// Cycles attributed to `c`.
    pub fn of(&self, c: Component) -> Cycles {
        Cycles(self.cycles[c as usize])
    }

    /// Sum over all components.
    pub fn total(&self) -> Cycles {
        Cycles(self.cycles.iter().sum())
    }

    /// Mean per-invocation attribution of `c`, in microseconds.
    pub fn per_invocation_us(&self, c: Component) -> f64 {
        if self.invocations == 0 {
            return 0.0;
        }
        self.of(c).as_us() / self.invocations as f64
    }

    /// Mean per-invocation total, in microseconds — the runtime
    /// equivalent of a Table 3 path figure.
    pub fn total_per_invocation_us(&self) -> f64 {
        if self.invocations == 0 {
            return 0.0;
        }
        self.total().as_us() / self.invocations as f64
    }
}

// ---------------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------------

/// A log2-bucketed cycle histogram: bucket `i` holds samples `v` with
/// `2^(i-1) <= v < 2^i` (bucket 0 holds exactly `v == 0`), giving
/// deterministic quantiles with a fixed 64-slot footprint and no
/// allocation per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl CycleHistogram {
    /// An empty histogram.
    pub const fn new() -> CycleHistogram {
        CycleHistogram { buckets: [0; 64], count: 0 }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(63)
        }
    }

    /// Upper bound (inclusive) of bucket `i` — the value quantiles
    /// report.
    fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: Cycles) {
        self.buckets[CycleHistogram::bucket_of(v.get())] += 1;
        self.count += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `num/den` quantile as the upper bound of the bucket the
    /// quantile falls in (e.g. `quantile(99, 100)` = p99). `None` when
    /// empty.
    pub fn quantile(&self, num: u64, den: u64) -> Option<Cycles> {
        if self.count == 0 {
            return None;
        }
        // Rank of the quantile sample, 1-based, ceiling.
        let rank = (self.count * num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(Cycles(CycleHistogram::upper_bound(i)));
            }
        }
        Some(Cycles(u64::MAX))
    }
}

impl Default for CycleHistogram {
    fn default() -> CycleHistogram {
        CycleHistogram::new()
    }
}

// ---------------------------------------------------------------------------
// Per-graft slots and invocation frames.
// ---------------------------------------------------------------------------

/// Per-graft aggregates, one fixed-size slot per interned tag.
#[derive(Debug, Clone, Copy)]
struct GraftSlot {
    installs: u64,
    invocations: u64,
    commits: u64,
    aborts: u64,
    fallbacks: u64,
    quarantines: u64,
    /// Deadline of the most recent quarantine trip, if any.
    quarantined_until: Option<Cycles>,
    /// Attributed cycles per component.
    comps: [u64; Component::COUNT],
    /// End-to-end invocation latency (begin bracket to end bracket).
    latency: CycleHistogram,
}

impl GraftSlot {
    fn new() -> GraftSlot {
        GraftSlot {
            installs: 0,
            invocations: 0,
            commits: 0,
            aborts: 0,
            fallbacks: 0,
            quarantines: 0,
            quarantined_until: None,
            comps: [0; Component::COUNT],
            latency: CycleHistogram::new(),
        }
    }
}

/// One open invocation bracket on the fixed-depth stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    tag: MetricTag,
    start: Cycles,
    comps: [u64; Component::COUNT],
}

const IDLE_FRAME: Frame =
    Frame { tag: MetricTag(u16::MAX), start: Cycles(0), comps: [0; Component::COUNT] };

// ---------------------------------------------------------------------------
// The plane.
// ---------------------------------------------------------------------------

/// An opaque snapshot of a [`MetricsPlane`]'s full mutable state:
/// counters, gauges, the per-graft ledgers and the interned name table.
/// Captured by [`MetricsPlane::export_state`], replanted by
/// [`MetricsPlane::restore_state`] so a resumed replay accumulates into
/// the same ledgers and snapshots byte-identically.
#[derive(Clone)]
pub struct MetricsState {
    counters: [u64; Counter::COUNT],
    rm_peaks: [u64; 8],
    undo_depth_peak: u64,
    pending_indirection: u64,
    kernel_comps: [u64; Component::COUNT],
    grafts: Vec<GraftSlot>,
    names: Vec<String>,
    all_latency: CycleHistogram,
    nic_port_drops: Vec<(u16, u64)>,
}

/// The shared metrics plane handle (see module docs).
///
/// Create once, wrap in `Rc`, attach with `Kernel::attach_metrics_plane`
/// (or wire subsystems individually via their `set_metrics_plane`).
#[derive(Debug)]
pub struct MetricsPlane {
    clock: Rc<VirtualClock>,
    counters: Cell<[u64; Counter::COUNT]>,
    /// Per-resource-kind high-water marks, indexed by
    /// `ResourceKind::index()`.
    rm_peaks: Cell<[u64; 8]>,
    /// Deepest undo stack observed.
    undo_depth_peak: Cell<u64>,
    /// Dispatch charges awaiting the invocation they dispatch
    /// ([`Component::Indirection`] recorded outside any bracket).
    pending_indirection: Cell<u64>,
    /// Charges recorded outside any invocation (kernel-side work).
    kernel_comps: Cell<[u64; Component::COUNT]>,
    frames: RefCell<[Frame; MAX_NEST]>,
    depth: Cell<usize>,
    grafts: RefCell<Vec<GraftSlot>>,
    names: RefCell<Vec<String>>,
    tags: RefCell<HashMap<String, MetricTag>>,
    all_latency: RefCell<CycleHistogram>,
    /// Per-port NIC drop counts, sorted by port. Grows only on the
    /// first drop seen for a port.
    nic_port_drops: RefCell<Vec<(u16, u64)>>,
}

impl MetricsPlane {
    /// Creates a plane stamped by `clock`, pre-reserving room for a few
    /// grafts.
    pub fn new(clock: Rc<VirtualClock>) -> Rc<MetricsPlane> {
        MetricsPlane::with_graft_capacity(clock, 32)
    }

    /// Creates a plane with room for `grafts` interned names before the
    /// slot table reallocates (interning happens at install time, so
    /// this only matters for allocation-count proofs).
    pub fn with_graft_capacity(clock: Rc<VirtualClock>, grafts: usize) -> Rc<MetricsPlane> {
        Rc::new(MetricsPlane {
            clock,
            counters: Cell::new([0; Counter::COUNT]),
            rm_peaks: Cell::new([0; 8]),
            undo_depth_peak: Cell::new(0),
            pending_indirection: Cell::new(0),
            kernel_comps: Cell::new([0; Component::COUNT]),
            frames: RefCell::new([IDLE_FRAME; MAX_NEST]),
            depth: Cell::new(0),
            grafts: RefCell::new(Vec::with_capacity(grafts)),
            names: RefCell::new(Vec::with_capacity(grafts)),
            tags: RefCell::new(HashMap::with_capacity(grafts)),
            all_latency: RefCell::new(CycleHistogram::new()),
            nic_port_drops: RefCell::new(Vec::new()),
        })
    }

    // -- checkpointing ------------------------------------------------------

    /// Snapshots the plane's full mutable state for a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if an invocation bracket is open — checkpoints are taken
    /// at quiesced instants only.
    pub fn export_state(&self) -> MetricsState {
        assert_eq!(self.depth.get(), 0, "cannot checkpoint mid-invocation");
        MetricsState {
            counters: self.counters.get(),
            rm_peaks: self.rm_peaks.get(),
            undo_depth_peak: self.undo_depth_peak.get(),
            pending_indirection: self.pending_indirection.get(),
            kernel_comps: self.kernel_comps.get(),
            grafts: self.grafts.borrow().clone(),
            names: self.names.borrow().clone(),
            all_latency: *self.all_latency.borrow(),
            nic_port_drops: self.nic_port_drops.borrow().clone(),
        }
    }

    /// Replants a [`MetricsState`] capture: counters, gauges and ledgers
    /// resume exactly where the capture left them.
    pub fn restore_state(&self, st: &MetricsState) {
        self.counters.set(st.counters);
        self.rm_peaks.set(st.rm_peaks);
        self.undo_depth_peak.set(st.undo_depth_peak);
        self.pending_indirection.set(st.pending_indirection);
        self.kernel_comps.set(st.kernel_comps);
        *self.grafts.borrow_mut() = st.grafts.clone();
        *self.names.borrow_mut() = st.names.clone();
        let mut tags = self.tags.borrow_mut();
        tags.clear();
        for (i, name) in st.names.iter().enumerate() {
            tags.insert(name.clone(), MetricTag(i as u16));
        }
        drop(tags);
        *self.all_latency.borrow_mut() = st.all_latency;
        *self.nic_port_drops.borrow_mut() = st.nic_port_drops.clone();
        self.depth.set(0);
        *self.frames.borrow_mut() = [IDLE_FRAME; MAX_NEST];
    }

    // -- interning ----------------------------------------------------------

    /// Interns `name`, allocating a per-graft slot on first sight. The
    /// only allocating operation besides rendering; called at install
    /// time.
    pub fn tag(&self, name: &str) -> MetricTag {
        if let Some(t) = self.tags.borrow().get(name) {
            return *t;
        }
        let mut names = self.names.borrow_mut();
        let t = MetricTag(names.len() as u16);
        names.push(name.to_string());
        self.grafts.borrow_mut().push(GraftSlot::new());
        self.tags.borrow_mut().insert(name.to_string(), t);
        t
    }

    /// The interned name for `tag` (`?tagN` for unknown tags).
    pub fn name_of(&self, tag: MetricTag) -> String {
        self.names.borrow().get(tag.0 as usize).cloned().unwrap_or_else(|| format!("?tag{}", tag.0))
    }

    // -- counters -----------------------------------------------------------

    /// Adds `n` to counter `c`. Zero-allocation.
    pub fn add(&self, c: Counter, n: u64) {
        let mut v = self.counters.get();
        v[c as usize] += n;
        self.counters.set(v);
    }

    /// Increments counter `c`. Zero-allocation.
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters.get()[c as usize]
    }

    /// Raises the high-water mark for resource kind `kind`
    /// (`ResourceKind::index()`), a gauge. Zero-allocation.
    pub fn observe_rm_peak(&self, kind: u8, used: u64) {
        let mut v = self.rm_peaks.get();
        if let Some(slot) = v.get_mut(kind as usize) {
            if used > *slot {
                *slot = used;
                self.rm_peaks.set(v);
            }
        }
    }

    /// The high-water mark for resource kind `kind`.
    pub fn rm_peak(&self, kind: u8) -> u64 {
        self.rm_peaks.get().get(kind as usize).copied().unwrap_or(0)
    }

    /// Raises the deepest-undo-stack gauge. Zero-allocation.
    pub fn observe_undo_depth(&self, depth: u64) {
        if depth > self.undo_depth_peak.get() {
            self.undo_depth_peak.set(depth);
        }
    }

    /// The deepest undo stack observed.
    pub fn undo_depth_peak(&self) -> u64 {
        self.undo_depth_peak.get()
    }

    /// Counts one shed NIC event on `port`, alongside the aggregate
    /// [`Counter::NicDropped`]. Allocates only on the first drop seen
    /// for a port; the table stays sorted so exposition is
    /// deterministic.
    pub fn observe_nic_port_drop(&self, port: u16) {
        let mut drops = self.nic_port_drops.borrow_mut();
        match drops.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(i) => drops[i].1 += 1,
            Err(i) => drops.insert(i, (port, 1)),
        }
    }

    /// Drops counted on NIC `port`.
    pub fn nic_port_drops(&self, port: u16) -> u64 {
        let drops = self.nic_port_drops.borrow();
        drops.binary_search_by_key(&port, |&(p, _)| p).map_or(0, |i| drops[i].1)
    }

    // -- attribution --------------------------------------------------------

    /// Attributes `cost` to component `c` of the innermost open
    /// invocation. Zero-allocation.
    ///
    /// Outside any bracket, [`Component::Indirection`] is held pending
    /// and claimed by the next [`begin_invocation`](Self::begin_invocation)
    /// (the dispatch charge belongs to the invocation it dispatches);
    /// every other component is kernel-side work and lands in the
    /// kernel ledger ([`Self::kernel_attribution`]).
    pub fn charge(&self, c: Component, cost: Cycles) {
        let d = self.depth.get();
        if d > 0 {
            self.frames.borrow_mut()[d - 1].comps[c as usize] += cost.get();
        } else if c == Component::Indirection {
            self.pending_indirection.set(self.pending_indirection.get() + cost.get());
        } else {
            let mut v = self.kernel_comps.get();
            v[c as usize] += cost.get();
            self.kernel_comps.set(v);
        }
    }

    /// Opens an invocation bracket for `tag`: starts the latency stamp,
    /// claims any pending dispatch charge, and counts the invocation.
    /// Zero-allocation.
    pub fn begin_invocation(&self, tag: MetricTag) {
        let d = self.depth.get();
        assert!(d < MAX_NEST, "metrics invocation nest deeper than MAX_NEST");
        let mut frame = Frame { tag, start: self.clock.now(), comps: [0; Component::COUNT] };
        frame.comps[Component::Indirection as usize] += self.pending_indirection.replace(0);
        self.frames.borrow_mut()[d] = frame;
        self.depth.set(d + 1);
        self.inc(Counter::GraftInvocations);
        if let Some(slot) = self.grafts.borrow_mut().get_mut(tag.0 as usize) {
            slot.invocations += 1;
        }
    }

    /// Closes the innermost invocation bracket: records latency, merges
    /// the frame's attribution into the graft ledger, and counts the
    /// outcome. Zero-allocation.
    pub fn end_invocation(&self, committed: bool) {
        let d = self.depth.get();
        assert!(d > 0, "end_invocation without begin_invocation");
        self.depth.set(d - 1);
        let frame = self.frames.borrow()[d - 1];
        let latency = self.clock.now().saturating_sub(frame.start);
        self.all_latency.borrow_mut().record(latency);
        self.inc(if committed { Counter::GraftCommits } else { Counter::GraftAborts });
        if let Some(slot) = self.grafts.borrow_mut().get_mut(frame.tag.0 as usize) {
            for (total, add) in slot.comps.iter_mut().zip(frame.comps.iter()) {
                *total += add;
            }
            slot.latency.record(latency);
            if committed {
                slot.commits += 1;
            } else {
                slot.aborts += 1;
            }
        }
    }

    /// Records a graft install for `tag`.
    pub fn mark_install(&self, tag: MetricTag) {
        self.inc(Counter::GraftInstalls);
        if let Some(slot) = self.grafts.borrow_mut().get_mut(tag.0 as usize) {
            slot.installs += 1;
        }
    }

    /// Records a dead-graft invocation refused to the fallback path.
    /// Flushes any unclaimed dispatch charge to the kernel ledger (the
    /// dispatch led nowhere).
    pub fn mark_fallback(&self, tag: MetricTag) {
        let pending = self.pending_indirection.replace(0);
        if pending > 0 {
            let mut v = self.kernel_comps.get();
            v[Component::Indirection as usize] += pending;
            self.kernel_comps.set(v);
        }
        self.inc(Counter::GraftFallbacks);
        if let Some(slot) = self.grafts.borrow_mut().get_mut(tag.0 as usize) {
            slot.fallbacks += 1;
        }
    }

    /// Records a quarantine trip for graft `name` until `until`.
    /// Interns the name (quarantine is off the hot path).
    pub fn quarantine(&self, name: &str, until: Cycles) {
        let tag = self.tag(name);
        self.inc(Counter::GraftQuarantines);
        if let Some(slot) = self.grafts.borrow_mut().get_mut(tag.0 as usize) {
            slot.quarantines += 1;
            slot.quarantined_until = Some(until);
        }
    }

    // -- snapshots ----------------------------------------------------------

    /// Interned tags in intern order (install order).
    pub fn tags_in_order(&self) -> Vec<MetricTag> {
        (0..self.names.borrow().len() as u16).map(MetricTag).collect()
    }

    /// The attribution ledger for `tag`, if interned.
    pub fn attribution(&self, tag: MetricTag) -> Option<Attribution> {
        self.grafts
            .borrow()
            .get(tag.0 as usize)
            .map(|s| Attribution { cycles: s.comps, invocations: s.invocations })
    }

    /// Cycles attributed to kernel-side work outside any invocation.
    pub fn kernel_attribution(&self) -> [u64; Component::COUNT] {
        self.kernel_comps.get()
    }

    /// Per-graft invocation-latency quantile (`num/den`), if any
    /// invocation completed.
    pub fn latency_quantile(&self, tag: MetricTag, num: u64, den: u64) -> Option<Cycles> {
        self.grafts.borrow().get(tag.0 as usize).and_then(|s| s.latency.quantile(num, den))
    }

    /// All-grafts invocation-latency quantile.
    pub fn global_latency_quantile(&self, num: u64, den: u64) -> Option<Cycles> {
        self.all_latency.borrow().quantile(num, den)
    }

    /// Abort rate of `tag` over completed invocations, in [0, 1].
    pub fn abort_rate(&self, tag: MetricTag) -> f64 {
        let grafts = self.grafts.borrow();
        let Some(s) = grafts.get(tag.0 as usize) else { return 0.0 };
        let done = s.commits + s.aborts;
        if done == 0 {
            0.0
        } else {
            s.aborts as f64 / done as f64
        }
    }

    // -- rendering (all off the hot path) -----------------------------------

    /// Prometheus-style text exposition: `# TYPE` headers, counter
    /// series, per-graft labelled series, attribution ledgers and
    /// latency quantiles. Deterministic: fixed series order (enum
    /// order, then tag order), integer values except quantile gauges.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str(&format!("# TYPE {} counter\n{} {}\n", c.name(), c.name(), self.get(c)));
        }
        out.push_str("# TYPE vino_nic_port_drops_total counter\n");
        for (port, n) in self.nic_port_drops.borrow().iter() {
            out.push_str(&format!("vino_nic_port_drops_total{{port=\"{port}\"}} {n}\n"));
        }
        let peaks = self.rm_peaks.get();
        out.push_str("# TYPE vino_rm_peak_units gauge\n");
        for (kind, peak) in peaks.iter().enumerate() {
            if *peak > 0 {
                out.push_str(&format!("vino_rm_peak_units{{kind=\"{kind}\"}} {peak}\n"));
            }
        }
        out.push_str(&format!(
            "# TYPE vino_txn_undo_depth_peak gauge\nvino_txn_undo_depth_peak {}\n",
            self.undo_depth_peak(),
        ));
        let names = self.names.borrow();
        let grafts = self.grafts.borrow();
        out.push_str("# TYPE vino_graft_overhead_cycles_total counter\n");
        for (i, slot) in grafts.iter().enumerate() {
            for c in Component::ALL {
                let v = slot.comps[c as usize];
                if v > 0 {
                    out.push_str(&format!(
                        "vino_graft_overhead_cycles_total{{graft=\"{}\",component=\"{}\"}} {v}\n",
                        names[i],
                        c.label(),
                    ));
                }
            }
        }
        out.push_str("# TYPE vino_graft_invoke_latency_cycles gauge\n");
        for (i, slot) in grafts.iter().enumerate() {
            for (q, num) in [("0.5", 50u64), ("0.99", 99u64)] {
                if let Some(v) = slot.latency.quantile(num, 100) {
                    out.push_str(&format!(
                        "vino_graft_invoke_latency_cycles{{graft=\"{}\",quantile=\"{q}\"}} {}\n",
                        names[i],
                        v.get(),
                    ));
                }
            }
        }
        out
    }

    /// The runtime Table-3-shaped breakdown for `tag`: mean
    /// per-invocation microseconds per component, plus the total.
    pub fn render_attribution(&self, tag: MetricTag) -> String {
        let Some(attr) = self.attribution(tag) else {
            return format!("-- overhead attribution: unknown {tag:?} --\n");
        };
        let mut out = format!(
            "-- overhead attribution: graft `{}` ({} invocations) --\n",
            self.name_of(tag),
            attr.invocations,
        );
        for c in Component::ALL {
            out.push_str(&format!(
                "  {:<14} {:>8.2} us/invocation\n",
                c.label(),
                attr.per_invocation_us(c),
            ));
        }
        out.push_str(&format!(
            "  {:<14} {:>8.2} us/invocation\n",
            "total",
            attr.total_per_invocation_us(),
        ));
        out
    }

    /// The health/SLO view: one line per graft — invocations, abort
    /// rate, p50/p99 invocation latency, quarantine state at the
    /// current virtual-clock instant.
    pub fn health(&self) -> String {
        let mut out = String::from(
            "graft              invokes  commits   aborts  abort%   p50(us)    p99(us)  state\n",
        );
        let names = self.names.borrow();
        let grafts = self.grafts.borrow();
        let now = self.clock.now();
        for (i, slot) in grafts.iter().enumerate() {
            let q = |num| {
                slot.latency
                    .quantile(num, 100)
                    .map_or_else(|| "-".to_string(), |c| format!("{:.1}", c.as_us()))
            };
            let done = slot.commits + slot.aborts;
            let rate = if done == 0 { 0.0 } else { 100.0 * slot.aborts as f64 / done as f64 };
            let state = match slot.quarantined_until {
                Some(until) if until > now => format!("quarantined@{}", until.get()),
                _ => "ok".to_string(),
            };
            out.push_str(&format!(
                "{:<18} {:>7} {:>8} {:>8} {:>6.1} {:>9} {:>10}  {}\n",
                names[i],
                slot.invocations,
                slot.commits,
                slot.aborts,
                rate,
                q(50),
                q(99),
                state,
            ));
        }
        let g = |c| self.get(c);
        out.push_str(&format!(
            "disk: reads={} writes={} seeks={} stalls={} io_errors={} torn={}\n",
            g(Counter::DiskReads),
            g(Counter::DiskWrites),
            g(Counter::DiskSeeks),
            g(Counter::DiskStalls),
            g(Counter::DiskIoErrors),
            g(Counter::DiskTornWrites),
        ));
        out.push_str(&format!(
            "journal: appends={} commits={} checkpoints={} | recovery: replays={} discards={}\n",
            g(Counter::FsJournalAppends),
            g(Counter::FsJournalCommits),
            g(Counter::FsCheckpoints),
            g(Counter::FsRecoveryReplays),
            g(Counter::FsRecoveryDiscards),
        ));
        out
    }

    /// The canonical full snapshot frozen by the golden battery: the
    /// exposition, every graft's attribution breakdown (intern order),
    /// and the health view. Byte-identical across same-seed runs.
    pub fn snapshot(&self) -> String {
        let mut out = self.expose();
        for tag in self.tags_in_order() {
            out.push_str(&self.render_attribution(tag));
        }
        out.push_str(&self.health());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> (Rc<MetricsPlane>, Rc<VirtualClock>) {
        let clock = VirtualClock::new();
        (MetricsPlane::new(Rc::clone(&clock)), clock)
    }

    #[test]
    fn counters_accumulate_in_fixed_slots() {
        let (mp, _) = plane();
        mp.inc(Counter::TxnBegins);
        mp.add(Counter::VmInstrs, 41);
        mp.inc(Counter::VmInstrs);
        assert_eq!(mp.get(Counter::TxnBegins), 1);
        assert_eq!(mp.get(Counter::VmInstrs), 42);
        assert_eq!(mp.get(Counter::TxnCommits), 0);
    }

    #[test]
    fn tags_intern_and_stay_stable() {
        let (mp, _) = plane();
        let a = mp.tag("ra");
        let b = mp.tag("evict");
        assert_eq!(mp.tag("ra"), a);
        assert_ne!(a, b);
        assert_eq!(mp.name_of(a), "ra");
        assert_eq!(mp.name_of(MetricTag(99)), "?tag99");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = CycleHistogram::new();
        assert_eq!(h.quantile(50, 100), None);
        for v in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(Cycles(v));
        }
        assert_eq!(h.count(), 7);
        // p50 is the 4th of 7 samples: 3 lives in bucket [2,4) → ub 3.
        assert_eq!(h.quantile(50, 100), Some(Cycles(3)));
        // p99 is the last sample's bucket: 100_000 in [2^16, 2^17).
        assert_eq!(h.quantile(99, 100), Some(Cycles((1 << 17) - 1)));
    }

    #[test]
    fn attribution_brackets_and_merges() {
        let (mp, clock) = plane();
        let t = mp.tag("g");
        // A dispatch charge outside the bracket pends, then is claimed.
        mp.charge(Component::Indirection, Cycles(120));
        mp.begin_invocation(t);
        mp.charge(Component::TxnBegin, Cycles::from_us(36));
        mp.charge(Component::GraftFn, Cycles(240));
        clock.charge_us(70);
        mp.end_invocation(true);
        let a = mp.attribution(t).unwrap();
        assert_eq!(a.invocations, 1);
        assert_eq!(a.of(Component::Indirection), Cycles(120));
        assert_eq!(a.of(Component::TxnBegin), Cycles::from_us(36));
        assert_eq!(a.of(Component::GraftFn), Cycles(240));
        assert_eq!(a.of(Component::Abort), Cycles(0));
        assert_eq!(mp.get(Counter::GraftCommits), 1);
        // 70 us = 8400 cycles, bucket [2^13, 2^14) → upper bound 2^14 - 1.
        assert_eq!(mp.latency_quantile(t, 50, 100), Some(Cycles((1 << 14) - 1)));
    }

    #[test]
    fn nested_brackets_attribute_to_the_innermost() {
        let (mp, _) = plane();
        let outer = mp.tag("outer");
        let inner = mp.tag("inner");
        mp.begin_invocation(outer);
        mp.charge(Component::TxnBegin, Cycles(100));
        mp.begin_invocation(inner);
        mp.charge(Component::TxnBegin, Cycles(7));
        mp.end_invocation(false);
        mp.end_invocation(true);
        assert_eq!(mp.attribution(outer).unwrap().of(Component::TxnBegin), Cycles(100));
        assert_eq!(mp.attribution(inner).unwrap().of(Component::TxnBegin), Cycles(7));
        assert_eq!(mp.attribution(inner).unwrap().invocations, 1);
        assert_eq!(mp.get(Counter::GraftAborts), 1);
        assert_eq!(mp.get(Counter::GraftCommits), 1);
    }

    #[test]
    fn kernel_side_charges_do_not_pollute_grafts() {
        let (mp, _) = plane();
        let t = mp.tag("g");
        mp.charge(Component::Lock, Cycles(55));
        mp.begin_invocation(t);
        mp.end_invocation(true);
        assert_eq!(mp.attribution(t).unwrap().of(Component::Lock), Cycles(0));
        assert_eq!(mp.kernel_attribution()[Component::Lock as usize], 55);
    }

    #[test]
    fn fallback_flushes_pending_dispatch_to_kernel() {
        let (mp, _) = plane();
        let t = mp.tag("dead");
        mp.charge(Component::Indirection, Cycles(120));
        mp.mark_fallback(t);
        assert_eq!(mp.kernel_attribution()[Component::Indirection as usize], 120);
        assert_eq!(mp.get(Counter::GraftFallbacks), 1);
        // The next invocation starts clean.
        mp.begin_invocation(t);
        mp.end_invocation(true);
        assert_eq!(mp.attribution(t).unwrap().of(Component::Indirection), Cycles(0));
    }

    #[test]
    fn quarantine_state_tracks_the_clock() {
        let (mp, clock) = plane();
        mp.quarantine("flaky", Cycles::from_ms(250));
        assert_eq!(mp.get(Counter::GraftQuarantines), 1);
        assert!(mp.health().contains("quarantined@"));
        clock.advance_to(Cycles::from_ms(251));
        assert!(!mp.health().contains("quarantined@"));
    }

    #[test]
    fn exposition_is_deterministic_and_shaped() {
        let (mp, _) = plane();
        let t = mp.tag("ra");
        mp.inc(Counter::FsReads);
        mp.begin_invocation(t);
        mp.charge(Component::TxnBegin, Cycles::from_us(36));
        mp.end_invocation(true);
        mp.observe_rm_peak(0, 8192);
        let a = mp.expose();
        let b = mp.expose();
        assert_eq!(a, b);
        assert!(a.contains("# TYPE vino_fs_reads_total counter\nvino_fs_reads_total 1\n"));
        assert!(a.contains("vino_rm_peak_units{kind=\"0\"} 8192\n"));
        assert!(a.contains(
            "vino_graft_overhead_cycles_total{graft=\"ra\",component=\"txn-begin\"} 4320\n"
        ));
    }

    #[test]
    fn abort_rate_over_completed_invocations() {
        let (mp, _) = plane();
        let t = mp.tag("g");
        for committed in [true, true, false, true] {
            mp.begin_invocation(t);
            mp.end_invocation(committed);
        }
        assert!((mp.abort_rate(t) - 0.25).abs() < 1e-12);
    }
}

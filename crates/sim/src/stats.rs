//! Measurement statistics matching the paper's methodology.
//!
//! §4: "To reduce the sensitivity of our results to cache effects, we drop
//! outliers by eliminating the top 10% and bottom 10% of the measurements
//! before computing the means and standard deviations."

use crate::clock::Cycles;

/// Summary statistics of a set of samples after 10/90 trimming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Trimmed mean.
    pub mean: f64,
    /// Trimmed standard deviation (population form, as the paper implies).
    pub std_dev: f64,
    /// Number of samples retained after trimming.
    pub retained: usize,
    /// Minimum of the retained samples.
    pub min: f64,
    /// Maximum of the retained samples.
    pub max: f64,
}

impl Summary {
    /// Standard deviation as a percentage of the mean, the form in which
    /// the paper reports dispersion ("less than 2.5% of the mean").
    pub fn rel_std_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.std_dev / self.mean
        }
    }
}

/// Trims the top and bottom 10 % of `samples` and summarises the rest.
///
/// Returns `None` when the input is empty or contains a NaN (an
/// unorderable sample makes every trimmed statistic meaningless, so the
/// whole set is rejected rather than partially sorted). With fewer than
/// ten samples no trimming occurs (there is no complete decile to
/// drop), matching the natural reading of the paper's rule.
pub fn trimmed_summary(samples: &[f64]) -> Option<Summary> {
    if samples.is_empty() || samples.iter().any(|s| s.is_nan()) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let drop = sorted.len() / 10;
    let kept = &sorted[drop..sorted.len() - drop];
    let n = kept.len() as f64;
    let mean = kept.iter().sum::<f64>() / n;
    let var = kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Some(Summary {
        mean,
        std_dev: var.sqrt(),
        retained: kept.len(),
        min: kept[0],
        max: kept[kept.len() - 1],
    })
}

/// Summarises cycle samples in microseconds.
pub fn summarize_cycles(samples: &[Cycles]) -> Option<Summary> {
    let us: Vec<f64> = samples.iter().map(|c| c.as_us()).collect();
    trimmed_summary(&us)
}

/// Least-squares fit of `y = a + b*x`, used to recover the paper's abort
/// cost equation `35us + 10L + cG` from measured sweeps (§4.5).
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gives_none() {
        assert!(trimmed_summary(&[]).is_none());
    }

    #[test]
    fn nan_gives_none_instead_of_panicking() {
        assert!(trimmed_summary(&[f64::NAN]).is_none());
        assert!(trimmed_summary(&[1.0, f64::NAN, 3.0]).is_none());
        // A clean set with infinities is still orderable and summarised.
        assert!(trimmed_summary(&[1.0, f64::INFINITY]).is_some());
    }

    #[test]
    fn trimming_drops_deciles() {
        // 20 samples: 18 copies of 10.0 plus outliers 0.0 and 1000.0.
        let mut s = vec![10.0; 18];
        s.push(0.0);
        s.push(1000.0);
        let sum = trimmed_summary(&s).unwrap();
        assert_eq!(sum.retained, 16);
        assert!((sum.mean - 10.0).abs() < 1e-9);
        assert!(sum.std_dev < 1e-9);
    }

    #[test]
    fn small_sets_not_trimmed() {
        let sum = trimmed_summary(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(sum.retained, 3);
        assert!((sum.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rel_std_matches_paper_form() {
        let sum = trimmed_summary(&[100.0, 102.0, 98.0, 100.0]).unwrap();
        assert!(sum.rel_std_pct() < 2.5, "paper-style dispersion check");
    }

    #[test]
    fn summarize_cycles_in_us() {
        let samples = vec![Cycles::from_us(10), Cycles::from_us(20)];
        let sum = summarize_cycles(&samples).unwrap();
        assert!((sum.mean - 15.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_line() {
        // y = 35 + 10x, the paper's abort equation shape.
        let pts: Vec<(f64, f64)> = (0..8).map(|l| (l as f64, 35.0 + 10.0 * l as f64)).collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 35.0).abs() < 1e-9);
        assert!((b - 10.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }
}

//! Identifiers shared across kernel subsystems.
//!
//! `ThreadId` lives here (the lowest layer) because the transaction
//! manager, scheduler, resource accountant and grafting layer all key
//! state by thread, and none of them should depend on another just for
//! the identifier type.

use std::fmt;

/// Identifies a kernel thread.
///
/// "Each user-level process has associated with it a kernel-level
/// thread" (§4.3); grafts run on the invoking thread, transactions are
/// "associated with the thread that invoked the graft" (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(ThreadId(3).to_string(), "thread#3");
        assert!(ThreadId(1) < ThreadId(2));
    }
}

//! Calibrated cost-model constants.
//!
//! Every constant here is taken from a number the paper states directly;
//! the section is cited next to each. Where the paper gives a range we
//! pick a representative value and note the range. These constants are the
//! *only* tuning surface of the reproduction — the graft-function costs in
//! Tables 3–6 emerge from interpreting real GraftVM programs against the
//! per-instruction costs below.

use crate::clock::Cycles;

// ---------------------------------------------------------------------------
// Base machine model (§4, §6).
// ---------------------------------------------------------------------------

/// Cost of an ordinary ALU instruction (register move, add, xor, ...).
pub const INSTR_CYCLES: u64 = 1;

/// Cost of a taken or not-taken branch on the in-order Pentium model.
pub const BRANCH_CYCLES: u64 = 2;

/// Cost of a load from memory, L1-hit (§4.4 charges misses separately).
pub const LOAD_CYCLES: u64 = 2;

/// Cost of a store to memory.
pub const STORE_CYCLES: u64 = 2;

/// "Function calls typically cost approximately 35 cycles" (§6).
pub const CALL_CYCLES: u64 = 35;

/// Return from a function; folded into the call pair in the paper's 35.
pub const RET_CYCLES: u64 = 3;

/// An L1 cache miss, charged when a path touches a cold working set
/// (§4: "an individual cache miss can account for a significant fraction
/// of the measurement"). ~60 ns EDO DRAM on a 120 MHz part.
pub const L1_MISS_CYCLES: u64 = 8;

/// `bcopy` uses "a hardware copy instruction that has a cost of only one
/// cycle per word copied" (§4.4); sustained memory bandwidth makes the
/// observed per-word cost higher. We charge the architectural cost per
/// 4-byte word and add a bandwidth factor.
pub const BCOPY_CYCLES_PER_WORD: u64 = 6;

// ---------------------------------------------------------------------------
// Graft dispatch (Tables 3-6, "Indirection cost" rows).
// ---------------------------------------------------------------------------

/// Indirection introduced to make a kernel function graftable: the vtable
/// dispatch plus return-value verification hook. Observed at ~1 us
/// (Tables 3–5 report 1 us of indirection cost).
pub const INDIRECTION_CYCLES: u64 = 120;

/// Verifying a value returned by a graft (ownership scan, wired check,
/// list manipulation): Tables 4-5 report 2-5 us of "results checking".
pub const RESULT_CHECK: Cycles = Cycles::from_us(2);

/// Probing the sparse open hash table of valid targets: "our average cost
/// is ten to fifteen cycles per indirect function call" (§3.3). The same
/// table is used to validate thread ids returned by the scheduling graft.
pub const HASH_PROBE_CYCLES: u64 = 12;

// ---------------------------------------------------------------------------
// MiSFIT software fault isolation (§3.3).
// ---------------------------------------------------------------------------

/// The `Clamp` pseudo-op itself (the and/or masking pair). The full
/// MiSFIT sandbox sequence is mov + clamp = 5 cycles for offset-free
/// accesses, the top of the paper's "two to five cycles per load or
/// store" (offset accesses pay one more for the add).
pub const SFI_CLAMP_CYCLES: u64 = 4;

/// Run-time check on an indirect call (hash probe of graft-callable set).
pub const SFI_CALLCHECK_CYCLES: u64 = HASH_PROBE_CYCLES;

// ---------------------------------------------------------------------------
// Transactions (Tables 3-6, §4.5, §4.6).
// ---------------------------------------------------------------------------

/// Starting a graft transaction: allocate the transaction object and
/// associate it with the invoking thread. Tables 3–6 report 32–52 us;
/// 36 us is the modal value.
pub const TXN_BEGIN: Cycles = Cycles::from_us(36);

/// Committing a non-nested transaction: release locks held by the
/// transaction, free the undo stack. Tables 3–6 report 28–34 us.
pub const TXN_COMMIT: Cycles = Cycles::from_us(30);

/// Committing a *nested* transaction: merge the undo call stack and the
/// lock set into the parent (§3.1) — no lock release, no free, so much
/// cheaper than a top-level commit.
pub const TXN_NESTED_COMMIT: Cycles = Cycles::from_us(8);

/// Fixed overhead of aborting: "The abort overheads we measured ranged
/// from 32-38us" (§4.5). This replaces the commit cost on the abort path.
pub const TXN_ABORT_OVERHEAD: Cycles = Cycles::from_us(35);

/// Releasing one transaction lock on abort: "10 us per lock" (§4.5).
pub const ABORT_UNLOCK: Cycles = Cycles::from_us(10);

/// Acquiring a transaction lock (two-phase locking, release deferred to
/// commit/abort): Tables 3–5 report lock overhead of 33–34 us.
pub const TXN_LOCK_ACQUIRE: Cycles = Cycles::from_us(33);

/// A conventional kernel mutex acquire/release pair: "Each use of a
/// transaction lock instead of a conventional kernel mutex lock adds
/// approximately 19 us" (§4.6), so the mutex pair costs ~14 us.
pub const MUTEX_PAIR: Cycles = Cycles::from_us(14);

/// Pushing one undo record onto the transaction's undo call stack.
pub const UNDO_PUSH: Cycles = Cycles(40);

/// Fraction of a graft's forward cost its undo work costs: "the undo cost
/// should be somewhat less than the actual cost of running the graft...
/// c is a constant less than one" (§4.5).
pub const UNDO_COST_FACTOR: f64 = 0.30;

// ---------------------------------------------------------------------------
// Scheduling (Table 5).
// ---------------------------------------------------------------------------

/// One process switch: choose next thread, switch kernel threads, switch
/// VM context. The paper's base path (two switches) is 54 us.
pub const CONTEXT_SWITCH: Cycles = Cycles::from_us(27);

/// The scheduler timeslice: "a typical timeslice of 10 ms" (§4.3).
pub const TIMESLICE: Cycles = Cycles::from_ms(10);

// ---------------------------------------------------------------------------
// Time-outs (§4.5).
// ---------------------------------------------------------------------------

/// "We currently schedule time-outs on system-clock boundaries, which
/// occur every 10 ms."
pub const CLOCK_TICK: Cycles = Cycles::from_ms(10);

// ---------------------------------------------------------------------------
// I/O model (§4.1, §4.2).
// ---------------------------------------------------------------------------

/// Average seek of the Fujitsu M2694ESA (§4: 9.5 ms average seek; the
/// paper's text says "9.5 us" but that is a typo for the stated drive).
pub const DISK_AVG_SEEK: Cycles = Cycles::from_ms(9);

/// Rotational delay at 5400 RPM: half a revolution on average, ~5.6 ms.
pub const DISK_HALF_ROTATION: Cycles = Cycles::from_us(5_555);

/// Transfer time per 4 KB block at ~2.5 MB/s sustained.
pub const DISK_TRANSFER_4K: Cycles = Cycles::from_us(1_600);

/// "the benefit of avoiding a page fault is approximately 18 ms in our
/// system" (§4.2.2).
pub const PAGE_FAULT_COST: Cycles = Cycles::from_ms(18);

/// The page-out machinery around victim selection (queue manipulation,
/// unmapping, write-back scheduling): Table 4's base path is 39 us.
pub const EVICT_MACHINERY: Cycles = Cycles::from_us(38);

/// File-system block size: "4KB is our file system block size" (§4.1.3).
pub const FS_BLOCK_SIZE: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_anchors() {
        // Table 3: transaction begin 36us, total begin+commit 64-66us.
        assert!((TXN_BEGIN.as_us() - 36.0).abs() < 1e-9);
        let begin_commit = TXN_BEGIN + TXN_COMMIT;
        assert!(begin_commit.as_us() >= 60.0 && begin_commit.as_us() <= 90.0);
        // §4.5 abort equation intercept: 35us.
        assert!((TXN_ABORT_OVERHEAD.as_us() - 35.0).abs() < 1e-9);
        assert!((ABORT_UNLOCK.as_us() - 10.0).abs() < 1e-9);
        // §4.6: transaction lock minus mutex ~= 19us.
        let delta = TXN_LOCK_ACQUIRE.as_us() - MUTEX_PAIR.as_us();
        assert!((delta - 19.0).abs() < 1e-9);
        // Table 5 base path: two switches = 54us.
        assert!(((CONTEXT_SWITCH + CONTEXT_SWITCH).as_us() - 54.0).abs() < 1e-9);
    }

    #[test]
    fn sfi_constants_in_paper_ranges() {
        // Full sandbox sequence for an offset-free access: mov + clamp.
        assert!((2..=5).contains(&(SFI_CLAMP_CYCLES + INSTR_CYCLES)));
        assert!((10..=15).contains(&SFI_CALLCHECK_CYCLES));
        assert!((10..=15).contains(&HASH_PROBE_CYCLES));
    }

    #[test]
    fn page_fault_is_18ms() {
        assert!((PAGE_FAULT_COST.as_ms() - 18.0).abs() < 1e-9);
    }
}

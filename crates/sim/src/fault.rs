//! Deterministic fault injection for the whole simulated kernel.
//!
//! The paper's claim is not "grafts usually behave" but "the kernel
//! *survives* when they don't" (Rule 9: forward progress despite faulty
//! extensions). Exercising that claim needs faults on demand: disk
//! errors and stalls, traps in the middle of graft execution, lock
//! time-out storms, resource-limit exhaustion, and corrupted images at
//! load time. This module is the one shared schedule all subsystems
//! consult, so a single seed reproduces an entire disaster scenario
//! exactly, run after run.
//!
//! Each subsystem threads a [`FaultPlane`] handle to its named
//! [`FaultSite`] and calls [`FaultPlane::fire`] at the instrumentation
//! point ("should this visit fail?"). Sites fire two ways, composable:
//!
//! - **rate faults** — `set_rate(site, num, den)` makes each visit fail
//!   with probability `num/den`, drawn from the plane's seeded RNG;
//! - **armed one-shots** — `arm(site, nth)` makes exactly the `nth`
//!   visit (1-based, counted from plane creation) fail, which is how
//!   "trap at the Nth interpreted instruction" is expressed.
//!
//! The plane is passive and single-threaded like the rest of the
//! simulator: interior mutability behind `Rc`, no locking, and no
//! wall-clock anywhere.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::clock::Cycles;
use crate::rng::SplitMix64;

/// A named injection point threaded through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A disk read fails with a media error (`vino-dev::disk`).
    DiskRead,
    /// A disk write fails with a media error (`vino-dev::disk`).
    DiskWrite,
    /// A disk access stalls for [`FaultPlane::stall`] extra model time
    /// before completing (`vino-dev::disk`).
    DiskStall,
    /// The GraftVM traps at this interpreted instruction (`vino-vm`).
    VmTrap,
    /// A granted transactional lock acquisition is scheduled for an
    /// immediate forced time-out — a storm of them aborts holders as
    /// fast as the clock ticks (`vino-txn`).
    LockTimeoutStorm,
    /// A resource charge is denied as over-limit even though the
    /// principal had headroom (`vino-rm`).
    ResourceExhaust,
    /// A signed graft image fails verification at load time, as if
    /// corrupted in transit (`vino-misfit`).
    ImageCorrupt,
    /// A packet admitted to an RX ring is forced to drop as if the ring
    /// were full, regardless of actual depth (`vino-net`).
    NetRxOverflow,
    /// The next packet-filter batch traps mid-run: the plane arms a
    /// [`FaultSite::VmTrap`] one-shot on the filter's first interpreted
    /// instruction (`vino-net`).
    NetFilterTrap,
    /// A steer verdict is redirected back at the port it came from,
    /// manufacturing a steering cycle the hop budget must cut
    /// (`vino-net`).
    NetSteerLoop,
    /// Power is cut at the top of a journalled update, before any
    /// journal block reaches the disk: the transaction vanishes
    /// entirely (`vino-fs`).
    KernelCrashBeforeJournal,
    /// Power is cut while journal blocks are streaming out: the record
    /// being written persists only as a torn prefix, and recovery must
    /// discard the tail (`vino-fs`).
    KernelCrashMidJournal,
    /// Power is cut after the commit marker is durable but before any
    /// home-location block is checkpointed: recovery must roll the
    /// whole transaction forward (`vino-fs`).
    KernelCrashAfterCommit,
    /// Power is cut partway through checkpointing home-location blocks:
    /// some are new, some old, and recovery must make them all new
    /// (`vino-fs`).
    KernelCrashMidCheckpoint,
    /// A disk write persists only a prefix of its 4 KB block — the
    /// torn-write hazard journal checksums exist to catch
    /// (`vino-dev::disk`).
    DiskTornWrite,
    /// A shipped replication frame is dropped on the wire before it
    /// reaches the replica's reserved port (`vino-repl`).
    ReplShipDrop,
    /// Two in-flight replication frames swap places within the shipping
    /// window, so the replica sees them out of order (`vino-repl`).
    ReplShipReorder,
    /// A cumulative ack from the replica is lost, so the primary
    /// retransmits from its last acked sequence (`vino-repl`).
    ReplAckLoss,
    /// The primary kernel loses power at a replication-schedule point;
    /// the replica must finish replay and be promoted (`vino-repl`).
    ReplPrimaryCrash,
    /// The replica kernel loses power mid-apply; its own journal makes
    /// the half-applied record recoverable on remount (`vino-repl`).
    ReplReplicaCrash,
}

/// Every site, for iteration in diagnostics and docs.
pub const ALL_SITES: &[FaultSite] = &[
    FaultSite::DiskRead,
    FaultSite::DiskWrite,
    FaultSite::DiskStall,
    FaultSite::VmTrap,
    FaultSite::LockTimeoutStorm,
    FaultSite::ResourceExhaust,
    FaultSite::ImageCorrupt,
    FaultSite::NetRxOverflow,
    FaultSite::NetFilterTrap,
    FaultSite::NetSteerLoop,
    FaultSite::KernelCrashBeforeJournal,
    FaultSite::KernelCrashMidJournal,
    FaultSite::KernelCrashAfterCommit,
    FaultSite::KernelCrashMidCheckpoint,
    FaultSite::DiskTornWrite,
    FaultSite::ReplShipDrop,
    FaultSite::ReplShipReorder,
    FaultSite::ReplAckLoss,
    FaultSite::ReplPrimaryCrash,
    FaultSite::ReplReplicaCrash,
];

const N_SITES: usize = 20;

fn idx(site: FaultSite) -> usize {
    match site {
        FaultSite::DiskRead => 0,
        FaultSite::DiskWrite => 1,
        FaultSite::DiskStall => 2,
        FaultSite::VmTrap => 3,
        FaultSite::LockTimeoutStorm => 4,
        FaultSite::ResourceExhaust => 5,
        FaultSite::ImageCorrupt => 6,
        FaultSite::NetRxOverflow => 7,
        FaultSite::NetFilterTrap => 8,
        FaultSite::NetSteerLoop => 9,
        FaultSite::KernelCrashBeforeJournal => 10,
        FaultSite::KernelCrashMidJournal => 11,
        FaultSite::KernelCrashAfterCommit => 12,
        FaultSite::KernelCrashMidCheckpoint => 13,
        FaultSite::DiskTornWrite => 14,
        FaultSite::ReplShipDrop => 15,
        FaultSite::ReplShipReorder => 16,
        FaultSite::ReplAckLoss => 17,
        FaultSite::ReplPrimaryCrash => 18,
        FaultSite::ReplReplicaCrash => 19,
    }
}

/// The crash-point family, in commit-pipeline order. Iterated by the
/// recovery battery to cover every power-cut position.
pub const CRASH_SITES: &[FaultSite] = &[
    FaultSite::KernelCrashBeforeJournal,
    FaultSite::KernelCrashMidJournal,
    FaultSite::KernelCrashAfterCommit,
    FaultSite::KernelCrashMidCheckpoint,
];

/// The replication-fault family: wire losses first, then the two
/// node-death sites. Iterated by the repl battery to cover every
/// loss-pattern × crash-point combination.
pub const REPL_SITES: &[FaultSite] = &[
    FaultSite::ReplShipDrop,
    FaultSite::ReplShipReorder,
    FaultSite::ReplAckLoss,
    FaultSite::ReplPrimaryCrash,
    FaultSite::ReplReplicaCrash,
];

#[derive(Debug, Default, Clone)]
struct SiteState {
    /// Per-visit failure probability as `num/den`; `None` = never.
    rate: Option<(u64, u64)>,
    /// 1-based visit indices that must fail (one-shots), sorted.
    armed: Vec<u64>,
    /// Visits so far.
    visits: u64,
    /// Faults injected so far.
    fired: u64,
}

/// An opaque snapshot of a [`FaultPlane`]'s full mutable state (RNG
/// stream position, per-site schedules and counters, cap and schedule
/// log). Captured by [`FaultPlane::export_state`] and replanted with
/// [`FaultPlane::restore_state`] so a replay can resume mid-stream.
#[derive(Debug, Clone)]
pub struct FaultPlaneState {
    rng: u64,
    sites: [SiteState; N_SITES],
    stall: Cycles,
    cap: Option<u64>,
    hits: u64,
    record: bool,
    schedule: Vec<(FaultSite, u64)>,
}

/// The shared, seeded fault schedule. See the module docs.
#[derive(Debug)]
pub struct FaultPlane {
    rng: RefCell<SplitMix64>,
    sites: RefCell<[SiteState; N_SITES]>,
    /// Extra latency charged when [`FaultSite::DiskStall`] fires.
    stall: Cell<Cycles>,
    /// Plane-wide injection budget: once this many faults have been
    /// injected, later would-be injections are suppressed (they still
    /// consume visits and RNG draws, so the run's prefix is identical
    /// to an uncapped run). `None` = unlimited.
    cap: Cell<Option<u64>>,
    /// Would-be injections seen so far (fired or cap-suppressed).
    hits: Cell<u64>,
    /// When set, every would-be injection is appended to the schedule
    /// log as `(site, visit)`. Off by default (the log allocates).
    record: Cell<bool>,
    schedule: RefCell<Vec<(FaultSite, u64)>>,
}

/// Default extra latency for an injected disk stall: 50 ms, the same
/// order as a worst-case seek storm on the simulated device.
pub const DEFAULT_STALL: Cycles = Cycles::from_ms(50);

impl FaultPlane {
    /// A plane with every site disabled; `fire` always answers `false`.
    /// This is what subsystems get when nobody is injecting faults.
    pub fn inert() -> Rc<FaultPlane> {
        FaultPlane::seeded(0)
    }

    /// A plane whose rate faults draw from a SplitMix64 stream seeded
    /// with `seed`. All sites start disabled; configure with
    /// [`set_rate`](FaultPlane::set_rate) and [`arm`](FaultPlane::arm).
    pub fn seeded(seed: u64) -> Rc<FaultPlane> {
        Rc::new(FaultPlane {
            rng: RefCell::new(SplitMix64::new(seed)),
            sites: RefCell::new(Default::default()),
            stall: Cell::new(DEFAULT_STALL),
            cap: Cell::new(None),
            hits: Cell::new(0),
            record: Cell::new(false),
            schedule: RefCell::new(Vec::new()),
        })
    }

    /// Makes every visit to `site` fail with probability `num/den`.
    /// `num = 0` disables rate faults for the site.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn set_rate(&self, site: FaultSite, num: u64, den: u64) {
        assert!(den > 0 && num <= den, "rate must be a probability: {num}/{den}");
        self.sites.borrow_mut()[idx(site)].rate = if num == 0 { None } else { Some((num, den)) };
    }

    /// Arms a one-shot: the `nth` visit to `site` (1-based, counted
    /// from plane creation) will fail. Arming an already-passed index
    /// is a no-op. Multiple one-shots may be armed on one site.
    pub fn arm(&self, site: FaultSite, nth: u64) {
        let mut sites = self.sites.borrow_mut();
        let st = &mut sites[idx(site)];
        if nth > st.visits && !st.armed.contains(&nth) {
            st.armed.push(nth);
            st.armed.sort_unstable();
        }
    }

    /// The instrumentation-point query: records one visit to `site` and
    /// answers whether this visit must fail. Deterministic for a given
    /// seed and call sequence.
    ///
    /// With an [`injection cap`](Self::set_injection_cap) in force, a
    /// would-be injection past the cap is *suppressed*: the visit and
    /// the RNG draw still happen exactly as in the uncapped run (so the
    /// run is byte-identical up to the cap point), but the site does
    /// not fail. This is the primitive `vino-bench bisect` searches
    /// over.
    pub fn fire(&self, site: FaultSite) -> bool {
        let mut sites = self.sites.borrow_mut();
        let st = &mut sites[idx(site)];
        st.visits += 1;
        let visit = st.visits;
        let mut hit = false;
        if let Some(pos) = st.armed.iter().position(|n| *n == visit) {
            st.armed.remove(pos);
            hit = true;
        }
        if !hit {
            if let Some((num, den)) = st.rate {
                hit = self.rng.borrow_mut().chance(num, den);
            }
        }
        if !hit {
            return false;
        }
        let h = self.hits.get() + 1;
        self.hits.set(h);
        if self.record.get() {
            self.schedule.borrow_mut().push((site, visit));
        }
        if self.cap.get().is_some_and(|cap| h > cap) {
            return false; // Suppressed: counted but not injected.
        }
        st.fired += 1;
        true
    }

    /// Caps the plane-wide injection count: the first `cap` would-be
    /// injections fire, every later one is suppressed. `None` lifts the
    /// cap. See [`fire`](Self::fire) for the prefix-identity guarantee.
    pub fn set_injection_cap(&self, cap: Option<u64>) {
        self.cap.set(cap);
    }

    /// Would-be injections seen so far (fired or cap-suppressed).
    pub fn injection_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Turns the schedule log on or off. While on, every would-be
    /// injection appends `(site, visit)` to [`Self::schedule`].
    pub fn record_schedule(&self, on: bool) {
        self.record.set(on);
    }

    /// The recorded injection schedule, in firing order.
    pub fn schedule(&self) -> Vec<(FaultSite, u64)> {
        self.schedule.borrow().clone()
    }

    /// Snapshots the plane's full mutable state for a checkpoint.
    pub fn export_state(&self) -> FaultPlaneState {
        FaultPlaneState {
            rng: self.rng.borrow().state(),
            sites: self.sites.borrow().clone(),
            stall: self.stall.get(),
            cap: self.cap.get(),
            hits: self.hits.get(),
            record: self.record.get(),
            schedule: self.schedule.borrow().clone(),
        }
    }

    /// Replants a [`FaultPlaneState`] capture, resuming the RNG stream
    /// and all per-site schedules exactly where the capture left them.
    pub fn restore_state(&self, st: &FaultPlaneState) {
        *self.rng.borrow_mut() = SplitMix64::from_state(st.rng);
        *self.sites.borrow_mut() = st.sites.clone();
        self.stall.set(st.stall);
        self.cap.set(st.cap);
        self.hits.set(st.hits);
        self.record.set(st.record);
        *self.schedule.borrow_mut() = st.schedule.clone();
    }

    /// Deterministic torn-write prefix length: how many leading bytes
    /// of a 4 KB block survive when [`FaultSite::DiskTornWrite`] (or a
    /// mid-journal power cut) tears a write. Drawn from the plane's
    /// seeded RNG — a multiple of 64 in `[64, 4032]`, so a tear is
    /// never empty and never the whole block.
    pub fn torn_prefix(&self) -> usize {
        (64 * (1 + self.rng.borrow_mut().below(63))) as usize
    }

    /// Extra model latency a fired [`FaultSite::DiskStall`] costs.
    pub fn stall(&self) -> Cycles {
        self.stall.get()
    }

    /// Overrides the injected-stall latency.
    pub fn set_stall(&self, d: Cycles) {
        self.stall.set(d);
    }

    /// Visits recorded at `site` so far.
    pub fn visits(&self, site: FaultSite) -> u64 {
        self.sites.borrow()[idx(site)].visits
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.sites.borrow()[idx(site)].fired
    }

    /// Faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.sites.borrow().iter().map(|s| s.fired).sum()
    }

    /// Disarms every site (rates and one-shots), keeping counters.
    pub fn disarm_all(&self) {
        for st in self.sites.borrow_mut().iter_mut() {
            st.rate = None;
            st.armed.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plane_never_fires() {
        let p = FaultPlane::inert();
        for _ in 0..1000 {
            for s in ALL_SITES {
                assert!(!p.fire(*s));
            }
        }
        assert_eq!(p.total_injected(), 0);
        assert_eq!(p.visits(FaultSite::DiskRead), 1000);
    }

    #[test]
    fn armed_one_shot_fires_exactly_once_at_nth_visit() {
        let p = FaultPlane::seeded(1);
        p.arm(FaultSite::VmTrap, 5);
        let fired: Vec<bool> = (0..8).map(|_| p.fire(FaultSite::VmTrap)).collect();
        assert_eq!(fired, [false, false, false, false, true, false, false, false]);
        assert_eq!(p.injected(FaultSite::VmTrap), 1);
    }

    #[test]
    fn arming_a_passed_visit_is_a_noop() {
        let p = FaultPlane::seeded(1);
        for _ in 0..10 {
            p.fire(FaultSite::DiskRead);
        }
        p.arm(FaultSite::DiskRead, 3);
        for _ in 0..10 {
            assert!(!p.fire(FaultSite::DiskRead));
        }
    }

    #[test]
    fn rate_faults_are_seed_deterministic_and_calibrated() {
        let a = FaultPlane::seeded(99);
        let b = FaultPlane::seeded(99);
        a.set_rate(FaultSite::DiskWrite, 1, 4);
        b.set_rate(FaultSite::DiskWrite, 1, 4);
        let run =
            |p: &FaultPlane| (0..10_000).map(|_| p.fire(FaultSite::DiskWrite)).collect::<Vec<_>>();
        let ra = run(&a);
        assert_eq!(ra, run(&b), "same seed, same schedule");
        let frac = ra.iter().filter(|x| **x).count() as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn sites_are_independent() {
        let p = FaultPlane::seeded(7);
        p.set_rate(FaultSite::ResourceExhaust, 1, 1);
        assert!(p.fire(FaultSite::ResourceExhaust));
        assert!(!p.fire(FaultSite::DiskRead));
        assert!(!p.fire(FaultSite::ImageCorrupt));
        p.set_rate(FaultSite::ResourceExhaust, 0, 1);
        assert!(!p.fire(FaultSite::ResourceExhaust));
    }

    #[test]
    fn disarm_all_stops_everything() {
        let p = FaultPlane::seeded(3);
        p.set_rate(FaultSite::DiskRead, 1, 1);
        p.arm(FaultSite::VmTrap, 2);
        p.disarm_all();
        assert!(!p.fire(FaultSite::DiskRead));
        assert!(!p.fire(FaultSite::VmTrap));
        assert!(!p.fire(FaultSite::VmTrap));
    }

    #[test]
    fn injection_cap_preserves_the_uncapped_prefix() {
        let full = FaultPlane::seeded(12345);
        full.set_rate(FaultSite::DiskWrite, 1, 3);
        full.record_schedule(true);
        let uncapped: Vec<bool> = (0..200).map(|_| full.fire(FaultSite::DiskWrite)).collect();
        let total = full.injection_hits();
        assert!(total > 10);
        let log = full.schedule();
        assert_eq!(log.len() as u64, total);

        for cap in [0u64, 1, total / 2, total] {
            let p = FaultPlane::seeded(12345);
            p.set_rate(FaultSite::DiskWrite, 1, 3);
            p.set_injection_cap(Some(cap));
            let capped: Vec<bool> = (0..200).map(|_| p.fire(FaultSite::DiskWrite)).collect();
            // Identical up to the cap-th injection, suppressed after.
            let mut seen = 0u64;
            for (a, b) in uncapped.iter().zip(capped.iter()) {
                if *a {
                    seen += 1;
                    assert_eq!(*b, seen <= cap, "injection {seen} vs cap {cap}");
                } else {
                    assert!(!b, "capped run must not invent injections");
                }
            }
            assert_eq!(p.injection_hits(), total, "hits count the would-be schedule");
            assert_eq!(p.total_injected(), cap.min(total));
        }
    }

    #[test]
    fn export_restore_resumes_the_exact_stream() {
        let a = FaultPlane::seeded(777);
        a.set_rate(FaultSite::DiskRead, 1, 2);
        a.arm(FaultSite::VmTrap, 120);
        for _ in 0..50 {
            a.fire(FaultSite::DiskRead);
            a.fire(FaultSite::VmTrap);
        }
        let snap = a.export_state();
        let tail_a: Vec<bool> = (0..100)
            .flat_map(|_| [a.fire(FaultSite::DiskRead), a.fire(FaultSite::VmTrap)])
            .collect();

        let b = FaultPlane::seeded(0);
        b.restore_state(&snap);
        let tail_b: Vec<bool> = (0..100)
            .flat_map(|_| [b.fire(FaultSite::DiskRead), b.fire(FaultSite::VmTrap)])
            .collect();
        assert_eq!(tail_a, tail_b, "restored plane must replay the same tail");
        assert_eq!(a.visits(FaultSite::DiskRead), b.visits(FaultSite::DiskRead));
        assert_eq!(a.injected(FaultSite::VmTrap), b.injected(FaultSite::VmTrap));
    }

    #[test]
    fn stall_is_configurable() {
        let p = FaultPlane::inert();
        assert_eq!(p.stall(), DEFAULT_STALL);
        p.set_stall(Cycles::from_ms(5));
        assert_eq!(p.stall(), Cycles::from_ms(5));
    }
}

//! The deterministic trace plane and abort flight recorder.
//!
//! The paper's claim is not only that the kernel *survives* misbehaved
//! grafts but that every survival is *explainable*: an abort unwinds a
//! known undo stack, releases an enumerable set of locks, and falls back
//! to the default path. This module turns that story into an artifact.
//! Every instrumented subsystem emits [`TraceEvent`]s into one shared
//! [`TracePlane`] — a pre-allocated ring buffer, so the hot path never
//! touches the heap — and because the whole simulation is
//! single-threaded and seeded, the event sequence is bit-identical run
//! after run. Traces serialize to a canonical line format
//! ([`TracePlane::serialize`]) that golden tests diff directly.
//!
//! On every wrapper abort the grafting layer calls
//! [`TracePlane::record_post_mortem`], which snapshots the last N ring
//! records together with the abort's vital signs (graft, abort kind,
//! locks held, undo depth, cycle cost) into a [`PostMortem`] — the
//! flight recorder of `docs/TRACING.md`.
//!
//! Like [`crate::fault::FaultPlane`], the plane is passive and shared
//! behind `Rc` with interior mutability; subsystems thread a handle via
//! their `set_trace_plane` methods and the kernel wires everything with
//! one `attach_trace_plane` call.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::clock::{Cycles, VirtualClock};

/// Default ring capacity, in records.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default flight-recorder window: records snapshotted per post-mortem.
pub const DEFAULT_POST_MORTEM_WINDOW: usize = 32;

/// An interned graft name. Tags are assigned in first-intern order, so
/// they are deterministic for a deterministic install sequence; the
/// plane's name table maps them back for rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraftTag(pub u16);

/// Identity of the kernel a [`TracePlane`] records for. A single-kernel
/// simulation is node 0; the replication harness runs the primary as
/// node 0 and the replica as node 1, and the node id joins the
/// canonical line format (`n0`, `n1`, …) so merged streams stay
/// attributable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A causal span id: the minting node's id in the high 16 bits and a
/// per-plane monotonic counter (starting at 1) in the low 48. Zero is
/// reserved for "no span" ([`SpanId::NONE`]), so span ids are unique
/// across every plane sharing one virtual clock and a span's origin
/// node is always recoverable from the id itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel.
    pub const NONE: SpanId = SpanId(0);
    const NODE_SHIFT: u32 = 48;

    /// Builds a span id from its parts. `counter` must be non-zero and
    /// fit the low 48 bits.
    pub fn new(node: NodeId, counter: u64) -> SpanId {
        assert!(counter != 0, "span counters start at 1 (0 is the NONE sentinel)");
        assert!(counter < (1 << Self::NODE_SHIFT), "span counter overflow");
        SpanId(((node.0 as u64) << Self::NODE_SHIFT) | counter)
    }

    /// True for the "no span" sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The node that minted this span.
    pub fn node(self) -> NodeId {
        NodeId((self.0 >> Self::NODE_SHIFT) as u8)
    }

    /// The minting plane's monotonic counter value.
    pub fn counter(self) -> u64 {
        self.0 & ((1 << Self::NODE_SHIFT) - 1)
    }
}

impl fmt::Display for SpanId {
    /// Renders as `node.counter` (e.g. `0.5`), or `-` for none.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "-")
        } else {
            write!(f, "{}.{}", self.node().0, self.counter())
        }
    }
}

/// The causal context stamped on every trace record and carried in-band
/// across kernel boundaries (packet frames, replication record/ack
/// frames): which span caused this event (`span`) and which span caused
/// *that* (`parent`). Both ids carry their origin node in the high
/// bits, so a cross-kernel edge — a replica span whose parent was
/// minted on the primary — is visible in the context alone. 16 bytes
/// on the wire ([`CauseCtx::to_bytes`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CauseCtx {
    /// The span this event belongs to.
    pub span: SpanId,
    /// The span that caused `span` to be minted.
    pub parent: SpanId,
}

impl CauseCtx {
    /// The empty context: no span, no parent.
    pub const NONE: CauseCtx = CauseCtx { span: SpanId::NONE, parent: SpanId::NONE };
    /// Encoded size in bytes.
    pub const WIRE_BYTES: usize = 16;

    /// True when no span is attached.
    pub fn is_none(self) -> bool {
        self.span.is_none()
    }

    /// The node that minted this context's span.
    pub fn node(self) -> NodeId {
        self.span.node()
    }

    /// Little-endian wire encoding: span id then parent id.
    pub fn to_bytes(self) -> [u8; Self::WIRE_BYTES] {
        let mut b = [0u8; Self::WIRE_BYTES];
        b[..8].copy_from_slice(&self.span.0.to_le_bytes());
        b[8..].copy_from_slice(&self.parent.0.to_le_bytes());
        b
    }

    /// Decodes [`Self::to_bytes`] output.
    pub fn from_bytes(b: &[u8; Self::WIRE_BYTES]) -> CauseCtx {
        CauseCtx {
            span: SpanId(u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))),
            parent: SpanId(u64::from_le_bytes(b[8..].try_into().expect("8 bytes"))),
        }
    }
}

/// How a traced VM run window ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmExitKind {
    /// The graft executed `halt`.
    Halt,
    /// Fuel exhausted; the run may resume.
    Preempt,
    /// The graft trapped.
    Trap,
}

/// Why a packet was refused admission to an RX ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedKind {
    /// The ring was at capacity (or an injected overflow said so).
    Overflow,
    /// Deterministic load shedding above the high watermark.
    Watermark,
}

impl ShedKind {
    fn label(self) -> &'static str {
        match self {
            ShedKind::Overflow => "overflow",
            ShedKind::Watermark => "watermark",
        }
    }
}

/// A packet-filter verdict, as traced (the steer target travels in the
/// separate `NetSteer` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Deliver to the port's consumer.
    Accept,
    /// Discard.
    Drop,
    /// Re-enqueue on another port's ring.
    Steer,
}

impl VerdictKind {
    fn label(self) -> &'static str {
        match self {
            VerdictKind::Accept => "accept",
            VerdictKind::Drop => "drop",
            VerdictKind::Steer => "steer",
        }
    }
}

/// Which MiSFIT sandbox check executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfiKind {
    /// Address clamp before a load/store.
    Clamp,
    /// Indirect-call target check.
    CheckCall,
}

/// Coarse abort cause carried by graft-abort events and post-mortems
/// (the sim-level mirror of the engine's `AbortedWhy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortKind {
    /// The graft trapped (memory fault, forbidden call, host error…).
    Trap,
    /// The graft exceeded its CPU-slice budget.
    CpuHog,
    /// A fired lock time-out stole the wrapper transaction.
    LockTimeout,
    /// The caller requested an abort-instead-of-commit run.
    Requested,
}

impl AbortKind {
    fn label(self) -> &'static str {
        match self {
            AbortKind::Trap => "trap",
            AbortKind::CpuHog => "cpu-hog",
            AbortKind::LockTimeout => "lock-timeout",
            AbortKind::Requested => "requested",
        }
    }
}

/// One traced occurrence. All payloads are `Copy` and fixed-size so the
/// ring buffer never allocates; graft names travel as interned
/// [`GraftTag`]s and resource kinds as their small-integer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    // -- vm ------------------------------------------------------------
    /// One fuel window of interpreted execution ended.
    VmWindow {
        /// Instructions retired in this window.
        instrs: u64,
        /// How the window ended.
        exit: VmExitKind,
    },
    /// A MiSFIT sandbox check executed.
    SfiCheck {
        /// Which check.
        kind: SfiKind,
        /// The checked instruction's pc.
        pc: u64,
    },
    // -- txn -----------------------------------------------------------
    /// A transaction began (`txn` is the new id, `depth` after push).
    TxnBegin {
        /// The owning thread.
        thread: u64,
        /// The new transaction id.
        txn: u64,
        /// Nesting depth after the begin.
        depth: u64,
    },
    /// A transaction committed.
    TxnCommit {
        /// The owning thread.
        thread: u64,
        /// The committed transaction id.
        txn: u64,
        /// True for a nested merge into the parent.
        nested: bool,
        /// Locks released (zero for nested commits).
        locks: u64,
    },
    /// A transaction aborted (undo already ran; see `UndoRun`).
    TxnAbort {
        /// The owning thread.
        thread: u64,
        /// The aborted transaction id.
        txn: u64,
        /// Locks released by the abort.
        locks: u64,
    },
    /// A transactional lock acquire was granted.
    LockAcquire {
        /// The lock.
        lock: u64,
        /// The acquiring thread.
        thread: u64,
    },
    /// A lock acquire contended; a time-out was scheduled.
    LockBlocked {
        /// The lock.
        lock: u64,
        /// The blocked waiter.
        waiter: u64,
        /// The current holder.
        holder: u64,
    },
    /// A lock time-out fired and aborted the holder's transaction.
    LockTimeout {
        /// The contended lock.
        lock: u64,
        /// The aborted holder.
        holder: u64,
    },
    /// A wrapper discovered its transaction was stolen by a fired
    /// time-out (consumed the forced-abort report).
    LockSteal {
        /// The thread whose transaction was stolen.
        thread: u64,
        /// The stolen transaction id.
        txn: u64,
    },
    /// An undo record was pushed (`depth` = records pending after push).
    UndoPush {
        /// The owning thread.
        thread: u64,
        /// Undo-stack depth after the push.
        depth: u64,
    },
    /// An abort unwound the undo stack.
    UndoRun {
        /// The owning thread.
        thread: u64,
        /// Undo operations executed (LIFO).
        ops: u64,
    },
    // -- rm ------------------------------------------------------------
    /// A resource charge was granted.
    ResGrant {
        /// The charged principal (after billing indirection).
        principal: u64,
        /// Resource kind index (see `vino_rm::ResourceKind`).
        kind: u8,
        /// Amount granted.
        amount: u64,
    },
    /// A resource release.
    ResRelease {
        /// The releasing principal (after billing indirection).
        principal: u64,
        /// Resource kind index.
        kind: u8,
        /// Amount released.
        amount: u64,
    },
    /// A resource charge was denied (genuine limit hit or injected).
    ResLimitHit {
        /// The denied principal.
        principal: u64,
        /// Resource kind index.
        kind: u8,
        /// Requested amount.
        requested: u64,
    },
    // -- fs ------------------------------------------------------------
    /// A file-system read was served.
    FsRead {
        /// The descriptor.
        fd: u64,
        /// Bytes read.
        len: u64,
    },
    /// A file-system write was served.
    FsWrite {
        /// The descriptor.
        fd: u64,
        /// Bytes written.
        len: u64,
    },
    /// A prefetch I/O was issued from a per-file queue.
    FsPrefetch {
        /// The descriptor whose queue issued.
        fd: u64,
    },
    /// A journal transaction's redo records were appended to the
    /// journal region (descriptor + payload blocks, no commit yet).
    FsJournalAppend {
        /// Journal sequence number.
        seq: u64,
        /// Home-location blocks captured in the record.
        blocks: u64,
    },
    /// A journal transaction's commit marker reached the disk — the
    /// update is now durable whatever happens next.
    FsJournalCommit {
        /// Journal sequence number.
        seq: u64,
    },
    /// A committed journal transaction was checkpointed to its
    /// home locations.
    FsCheckpoint {
        /// Journal sequence number.
        seq: u64,
        /// Home-location blocks written in place.
        blocks: u64,
    },
    /// Mount-time recovery rolled a committed journal transaction
    /// forward.
    FsRecoveryReplay {
        /// Journal sequence number replayed.
        seq: u64,
        /// Home-location blocks rewritten.
        blocks: u64,
    },
    /// Mount-time recovery discarded a torn (uncommitted) journal
    /// tail.
    FsRecoveryDiscard {
        /// Journal sequence number of the torn record.
        seq: u64,
    },
    // -- graft lifecycle -----------------------------------------------
    /// A graft was installed (loader pipeline passed).
    GraftInstall {
        /// The installed graft.
        graft: GraftTag,
    },
    /// A graft invocation began (wrapper transaction opened).
    GraftInvoke {
        /// The invoked graft.
        graft: GraftTag,
    },
    /// A graft invocation committed.
    GraftCommit {
        /// The committed graft.
        graft: GraftTag,
    },
    /// A graft invocation aborted; the graft is forcibly unloaded.
    GraftAbort {
        /// The aborted graft.
        graft: GraftTag,
        /// Why.
        kind: AbortKind,
    },
    /// The reliability manager quarantined the graft name.
    GraftQuarantine {
        /// The quarantined graft.
        graft: GraftTag,
        /// Absolute virtual-clock deadline (cycles).
        until: u64,
    },
    /// An invocation found the graft dead; the caller serves the
    /// default path instead (§3.6 fallback).
    FallbackServed {
        /// The dead graft.
        graft: GraftTag,
    },
    // -- net -----------------------------------------------------------
    /// A packet was admitted to a port's RX ring.
    NetRx {
        /// The destination port.
        port: u16,
        /// Payload length in bytes.
        len: u64,
    },
    /// A packet was refused admission (overflow or watermark shedding).
    NetShed {
        /// The destination port.
        port: u16,
        /// Why it was shed.
        kind: ShedKind,
    },
    /// The packet filter returned a verdict for one packet.
    NetVerdict {
        /// The filtered port.
        port: u16,
        /// The verdict.
        verdict: VerdictKind,
    },
    /// A steered packet hopped from one port's ring to another's.
    NetSteer {
        /// The port it left.
        from: u16,
        /// The port it joined.
        to: u16,
    },
    /// A packet exhausted its steer-hop budget and was dropped.
    NetLoopCut {
        /// The port where the cycle was cut.
        port: u16,
    },
    /// One batched filter dispatch ran (one transaction envelope).
    NetBatch {
        /// The filtered port.
        port: u16,
        /// Packets covered by the batch.
        n: u64,
    },
    // -- watch ---------------------------------------------------------
    /// A watch-plane SLO rule's windowed value crossed its threshold.
    /// The rule name travels as an interned tag (rule names are
    /// interned when the watch plane attaches its trace mirror).
    WatchAlertFiring {
        /// The firing rule's interned name.
        rule: GraftTag,
        /// The blamed principal (0 for kernel-global signals).
        principal: u64,
    },
    /// A firing watch-plane alert's value receded below threshold.
    WatchAlertResolved {
        /// The resolving rule's interned name.
        rule: GraftTag,
        /// The principal blamed at the firing edge.
        principal: u64,
    },
    /// The admission controller let a principal's install proceed.
    AdmissionAllow {
        /// The installing principal.
        principal: u64,
    },
    /// The admission controller refused a principal's install.
    AdmissionDeny {
        /// The refused principal.
        principal: u64,
        /// Absolute virtual-clock deadline of the backoff (cycles).
        until: u64,
    },
    // -- repl ------------------------------------------------------------
    /// The primary shipped one committed journal record to the replica
    /// (as `frags` sealed frames over the packet plane).
    ReplShip {
        /// Journal sequence number of the shipped record.
        seq: u64,
        /// Frames the marshalled record was fragmented into.
        frags: u64,
    },
    /// The primary consumed a cumulative ack from the replica.
    ReplAck {
        /// Highest contiguous sequence the replica has applied.
        acked: u64,
    },
    /// The replica applied one shipped record through its own journal.
    ReplApply {
        /// Journal sequence number applied.
        seq: u64,
        /// Home-location blocks the record carried.
        blocks: u64,
    },
    /// A shipped frame was lost, reordered out of reach, or failed its
    /// seal check; the window will retransmit it.
    ReplFrameDrop {
        /// Journal sequence number of the affected record.
        seq: u64,
    },
    /// The replica finished replay after primary death and was promoted
    /// to primary via `boot_from_image`.
    ReplPromote {
        /// Highest sequence applied at promotion.
        seq: u64,
    },
}

/// The subsystem a [`TraceEvent`] belongs to, for [`TraceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCategory {
    /// GraftVM interpreter events.
    Vm,
    /// Transaction/lock/undo events.
    Txn,
    /// Resource-accountant events.
    Rm,
    /// File-system events.
    Fs,
    /// Graft-lifecycle events.
    Graft,
    /// Packet-plane events.
    Net,
    /// Watch-plane alert edges and admission decisions.
    Watch,
    /// Replication-plane ship/ack/apply/promote events.
    Repl,
}

impl TraceEvent {
    /// The subsystem this event belongs to.
    pub fn category(&self) -> TraceCategory {
        use TraceEvent::*;
        match self {
            VmWindow { .. } | SfiCheck { .. } => TraceCategory::Vm,
            TxnBegin { .. }
            | TxnCommit { .. }
            | TxnAbort { .. }
            | LockAcquire { .. }
            | LockBlocked { .. }
            | LockTimeout { .. }
            | LockSteal { .. }
            | UndoPush { .. }
            | UndoRun { .. } => TraceCategory::Txn,
            ResGrant { .. } | ResRelease { .. } | ResLimitHit { .. } => TraceCategory::Rm,
            FsRead { .. }
            | FsWrite { .. }
            | FsPrefetch { .. }
            | FsJournalAppend { .. }
            | FsJournalCommit { .. }
            | FsCheckpoint { .. }
            | FsRecoveryReplay { .. }
            | FsRecoveryDiscard { .. } => TraceCategory::Fs,
            GraftInstall { .. }
            | GraftInvoke { .. }
            | GraftCommit { .. }
            | GraftAbort { .. }
            | GraftQuarantine { .. }
            | FallbackServed { .. } => TraceCategory::Graft,
            NetRx { .. }
            | NetShed { .. }
            | NetVerdict { .. }
            | NetSteer { .. }
            | NetLoopCut { .. }
            | NetBatch { .. } => TraceCategory::Net,
            WatchAlertFiring { .. }
            | WatchAlertResolved { .. }
            | AdmissionAllow { .. }
            | AdmissionDeny { .. } => TraceCategory::Watch,
            ReplShip { .. }
            | ReplAck { .. }
            | ReplApply { .. }
            | ReplFrameDrop { .. }
            | ReplPromote { .. } => TraceCategory::Repl,
        }
    }
}

/// One ring-buffer record: a sequence number, a virtual-clock stamp,
/// the causal context in force when the event was emitted, and the
/// event itself. `Copy`, so ring writes are plain stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic sequence number (never wraps; survives ring eviction).
    pub seq: u64,
    /// Virtual-clock time the event was emitted.
    pub at: Cycles,
    /// Causal context: the span this event belongs to (and its parent).
    pub ctx: CauseCtx,
    /// The event.
    pub event: TraceEvent,
}

/// Per-subsystem event counters for the plane's lifetime (evicted ring
/// records stay counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// GraftVM events.
    pub vm: u64,
    /// Transaction/lock/undo events.
    pub txn: u64,
    /// Resource-accountant events.
    pub rm: u64,
    /// File-system events.
    pub fs: u64,
    /// Graft-lifecycle events.
    pub graft: u64,
    /// Packet-plane events.
    pub net: u64,
    /// Watch-plane alert and admission events.
    pub watch: u64,
    /// Replication-plane events.
    pub repl: u64,
    /// All events emitted.
    pub total: u64,
    /// Events overwritten after the ring filled.
    pub dropped: u64,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vm={} txn={} rm={} fs={} graft={} net={} watch={} repl={} total={} dropped={}",
            self.vm,
            self.txn,
            self.rm,
            self.fs,
            self.graft,
            self.net,
            self.watch,
            self.repl,
            self.total,
            self.dropped
        )
    }
}

/// The flight-recorder snapshot taken at an abort. Owns its data (the
/// graft name is resolved, the tail is copied out of the ring), so it
/// stays meaningful however the plane evolves afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostMortem {
    /// The aborted graft's name.
    pub graft: String,
    /// Why it aborted.
    pub kind: AbortKind,
    /// Locks the wrapper transaction held (and released) at abort.
    pub held_locks: usize,
    /// Undo operations the abort executed.
    pub undo_depth: usize,
    /// Cycle cost charged for the abort (§4.5 equation).
    pub cost: Cycles,
    /// Virtual-clock time of the abort.
    pub at: Cycles,
    /// The last N trace records before (and including) the abort,
    /// oldest first.
    pub tail: Vec<TraceRecord>,
    /// The tail rendered in canonical line format (resolved names).
    pub lines: Vec<String>,
}

impl fmt::Display for PostMortem {
    /// The text format documented in `docs/TRACING.md`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== post-mortem: graft `{}` ==", self.graft)?;
        writeln!(f, "abort-kind:  {}", self.kind.label())?;
        writeln!(f, "at:          {}cyc", self.at.get())?;
        writeln!(f, "held-locks:  {}", self.held_locks)?;
        writeln!(f, "undo-depth:  {}", self.undo_depth)?;
        writeln!(f, "abort-cost:  {}cyc", self.cost.get())?;
        writeln!(f, "last {} events:", self.lines.len())?;
        for line in &self.lines {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

struct Ring {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Next overwrite slot once `buf.len() == cap`.
    head: usize,
}

impl Ring {
    fn push(&mut self, rec: TraceRecord) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(rec); // Within reserved capacity: no alloc.
            false
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    /// Records oldest → newest.
    fn ordered(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// An opaque snapshot of a [`TracePlane`]'s full mutable state: the
/// ring's records (oldest first), the sequence counter, lifetime stats,
/// the interned name table and the flight-recorder state. Captured by
/// [`TracePlane::export_state`], replanted by
/// [`TracePlane::restore_state`] so a resumed replay appends to the
/// same stream and serializes byte-identically.
#[derive(Clone)]
pub struct TraceState {
    records: Vec<TraceRecord>,
    cap: usize,
    seq: u64,
    stats: TraceStats,
    names: Vec<String>,
    post: Option<PostMortem>,
    pm_window: usize,
    node: NodeId,
    cur_ctx: CauseCtx,
    next_span: u64,
}

/// The shared trace plane. See the module docs.
pub struct TracePlane {
    clock: Rc<VirtualClock>,
    node: Cell<NodeId>,
    ring: RefCell<Ring>,
    seq: Cell<u64>,
    stats: Cell<TraceStats>,
    names: RefCell<Vec<String>>,
    tags: RefCell<HashMap<String, GraftTag>>,
    post: RefCell<Option<PostMortem>>,
    pm_window: Cell<usize>,
    /// The causal context in force: stamped on every plain `emit`.
    cur_ctx: Cell<CauseCtx>,
    /// Next span counter (span counters start at 1; 0 is NONE).
    next_span: Cell<u64>,
}

impl TracePlane {
    /// A plane with the default ring capacity, stamping events from
    /// `clock`.
    pub fn new(clock: Rc<VirtualClock>) -> Rc<TracePlane> {
        TracePlane::with_capacity(clock, DEFAULT_CAPACITY)
    }

    /// A plane whose ring holds the last `capacity` records, recording
    /// for node 0. The ring is fully reserved here;
    /// [`emit`](Self::emit) never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(clock: Rc<VirtualClock>, capacity: usize) -> Rc<TracePlane> {
        TracePlane::with_node(clock, capacity, NodeId(0))
    }

    /// A plane recording for `node` — the multi-kernel constructor.
    /// Every plane merged by [`TracePlane::merge_streams`] must carry a
    /// distinct node id.
    pub fn with_node(clock: Rc<VirtualClock>, capacity: usize, node: NodeId) -> Rc<TracePlane> {
        assert!(capacity > 0, "trace ring capacity must be non-zero");
        Rc::new(TracePlane {
            clock,
            node: Cell::new(node),
            ring: RefCell::new(Ring { buf: Vec::with_capacity(capacity), cap: capacity, head: 0 }),
            seq: Cell::new(0),
            stats: Cell::new(TraceStats::default()),
            names: RefCell::new(Vec::new()),
            tags: RefCell::new(HashMap::new()),
            post: RefCell::new(None),
            pm_window: Cell::new(DEFAULT_POST_MORTEM_WINDOW),
            cur_ctx: Cell::new(CauseCtx::NONE),
            next_span: Cell::new(1),
        })
    }

    /// The clock events are stamped from.
    pub fn clock(&self) -> &Rc<VirtualClock> {
        &self.clock
    }

    /// The kernel identity this plane records for.
    pub fn node(&self) -> NodeId {
        self.node.get()
    }

    /// The causal context in force (stamped on plain emits).
    pub fn ctx(&self) -> CauseCtx {
        self.cur_ctx.get()
    }

    /// Installs `ctx` as the context in force and returns the previous
    /// one, so callers can bracket a causal scope and restore it.
    pub fn set_ctx(&self, ctx: CauseCtx) -> CauseCtx {
        self.cur_ctx.replace(ctx)
    }

    /// Mints a fresh span as a child of `parent` (pass
    /// [`SpanId::NONE`] for a root span). Pure counter arithmetic — no
    /// clock charge, no allocation — so minting on the hot path stays
    /// free. The returned context is *not* installed; pair with
    /// [`set_ctx`](Self::set_ctx) to scope it.
    pub fn mint_span(&self, parent: SpanId) -> CauseCtx {
        let c = self.next_span.get();
        self.next_span.set(c + 1);
        CauseCtx { span: SpanId::new(self.node.get(), c), parent }
    }

    /// Interns `name`, returning its stable tag. The first intern of a
    /// name allocates (install paths); later look-ups do not.
    pub fn tag(&self, name: &str) -> GraftTag {
        if let Some(t) = self.tags.borrow().get(name) {
            return *t;
        }
        let mut names = self.names.borrow_mut();
        let tag = GraftTag(u16::try_from(names.len()).expect("more than 65535 graft names"));
        names.push(name.to_string());
        self.tags.borrow_mut().insert(name.to_string(), tag);
        tag
    }

    /// The name behind `tag` (or a placeholder for a foreign tag).
    pub fn name_of(&self, tag: GraftTag) -> String {
        self.names.borrow().get(tag.0 as usize).cloned().unwrap_or_else(|| format!("?tag{}", tag.0))
    }

    /// The instrumentation point: stamps and records one event under
    /// the causal context in force ([`ctx`](Self::ctx)). The hot path —
    /// a counter bump, a stat bump and a ring store; no heap allocation
    /// (verified by the `trace_plane` microbench).
    pub fn emit(&self, event: TraceEvent) {
        self.emit_with_ctx(event, self.cur_ctx.get());
    }

    /// Like [`emit`](Self::emit) but stamps an explicit causal context
    /// instead of the one in force — the boundary instrumentation point
    /// (span mints, cross-kernel ingress). Same zero-alloc hot path.
    pub fn emit_with_ctx(&self, event: TraceEvent, ctx: CauseCtx) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let rec = TraceRecord { seq, at: self.clock.now(), ctx, event };
        let mut stats = self.stats.get();
        stats.total += 1;
        match event.category() {
            TraceCategory::Vm => stats.vm += 1,
            TraceCategory::Txn => stats.txn += 1,
            TraceCategory::Rm => stats.rm += 1,
            TraceCategory::Fs => stats.fs += 1,
            TraceCategory::Graft => stats.graft += 1,
            TraceCategory::Net => stats.net += 1,
            TraceCategory::Watch => stats.watch += 1,
            TraceCategory::Repl => stats.repl += 1,
        }
        if self.ring.borrow_mut().push(rec) {
            stats.dropped += 1;
        }
        self.stats.set(stats);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TraceStats {
        self.stats.get()
    }

    /// Events emitted so far (equals the next record's `seq`).
    pub fn len(&self) -> u64 {
        self.seq.get()
    }

    /// True when nothing was ever emitted.
    pub fn is_empty(&self) -> bool {
        self.seq.get() == 0
    }

    /// The ring's current records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.ring.borrow().ordered()
    }

    /// Sets the flight-recorder window (records per post-mortem).
    pub fn set_post_mortem_window(&self, n: usize) {
        self.pm_window.set(n.max(1));
    }

    /// Snapshots the plane's full mutable state for a checkpoint.
    pub fn export_state(&self) -> TraceState {
        TraceState {
            records: self.ring.borrow().ordered(),
            cap: self.ring.borrow().cap,
            seq: self.seq.get(),
            stats: self.stats.get(),
            names: self.names.borrow().clone(),
            post: self.post.borrow().clone(),
            pm_window: self.pm_window.get(),
            node: self.node.get(),
            cur_ctx: self.cur_ctx.get(),
            next_span: self.next_span.get(),
        }
    }

    /// Replants a [`TraceState`] capture: the ring, counters, interned
    /// names and flight recorder resume exactly where the capture left
    /// them, so later emits continue the same stream.
    pub fn restore_state(&self, st: &TraceState) {
        let mut buf = Vec::with_capacity(st.cap);
        buf.extend_from_slice(&st.records);
        *self.ring.borrow_mut() = Ring { buf, cap: st.cap, head: 0 };
        self.seq.set(st.seq);
        self.stats.set(st.stats);
        *self.names.borrow_mut() = st.names.clone();
        let mut tags = self.tags.borrow_mut();
        tags.clear();
        for (i, name) in st.names.iter().enumerate() {
            tags.insert(name.clone(), GraftTag(i as u16));
        }
        drop(tags);
        *self.post.borrow_mut() = st.post.clone();
        self.pm_window.set(st.pm_window);
        self.node.set(st.node);
        self.cur_ctx.set(st.cur_ctx);
        self.next_span.set(st.next_span);
    }

    /// Takes the flight-recorder snapshot for an abort: the last
    /// window's records plus the abort's vital signs. Called by the
    /// grafting layer from its single abort exit path; the abort path
    /// may allocate (it is not the hot path). The latest post-mortem
    /// replaces any earlier one.
    pub fn record_post_mortem(
        &self,
        graft: &str,
        kind: AbortKind,
        held_locks: usize,
        undo_depth: usize,
        cost: Cycles,
    ) {
        let all = self.ring.borrow().ordered();
        let n = self.pm_window.get().min(all.len());
        let tail: Vec<TraceRecord> = all[all.len() - n..].to_vec();
        let lines = tail.iter().map(|r| self.render(r)).collect();
        *self.post.borrow_mut() = Some(PostMortem {
            graft: graft.to_string(),
            kind,
            held_locks,
            undo_depth,
            cost,
            at: self.clock.now(),
            tail,
            lines,
        });
    }

    /// The most recent post-mortem, if any abort happened.
    pub fn post_mortem(&self) -> Option<PostMortem> {
        self.post.borrow().clone()
    }

    /// Clears the stored post-mortem (tests isolating scenarios).
    pub fn clear_post_mortem(&self) {
        *self.post.borrow_mut() = None;
    }

    /// Renders one record in the canonical line format:
    /// `SEQ @CYCLES nNODE category.kind key=value…`, with
    /// ` span=N.C parent=N.C` appended when a causal context is
    /// attached (see `docs/TRACING.md`).
    pub fn render(&self, r: &TraceRecord) -> String {
        use TraceEvent::*;
        let body = match r.event {
            VmWindow { instrs, exit } => {
                let e = match exit {
                    VmExitKind::Halt => "halt",
                    VmExitKind::Preempt => "preempt",
                    VmExitKind::Trap => "trap",
                };
                format!("vm.window instrs={instrs} exit={e}")
            }
            SfiCheck { kind, pc } => {
                let k = match kind {
                    SfiKind::Clamp => "clamp",
                    SfiKind::CheckCall => "checkcall",
                };
                format!("vm.sfi kind={k} pc={pc}")
            }
            TxnBegin { thread, txn, depth } => {
                format!("txn.begin thread={thread} txn={txn} depth={depth}")
            }
            TxnCommit { thread, txn, nested, locks } => {
                format!("txn.commit thread={thread} txn={txn} nested={nested} locks={locks}")
            }
            TxnAbort { thread, txn, locks } => {
                format!("txn.abort thread={thread} txn={txn} locks={locks}")
            }
            LockAcquire { lock, thread } => format!("txn.lock lock={lock} thread={thread}"),
            LockBlocked { lock, waiter, holder } => {
                format!("txn.blocked lock={lock} waiter={waiter} holder={holder}")
            }
            LockTimeout { lock, holder } => {
                format!("txn.timeout lock={lock} holder={holder}")
            }
            LockSteal { thread, txn } => format!("txn.steal thread={thread} txn={txn}"),
            UndoPush { thread, depth } => format!("txn.undo-push thread={thread} depth={depth}"),
            UndoRun { thread, ops } => format!("txn.undo-run thread={thread} ops={ops}"),
            ResGrant { principal, kind, amount } => {
                format!("rm.grant principal={principal} kind={kind} amount={amount}")
            }
            ResRelease { principal, kind, amount } => {
                format!("rm.release principal={principal} kind={kind} amount={amount}")
            }
            ResLimitHit { principal, kind, requested } => {
                format!("rm.limit-hit principal={principal} kind={kind} requested={requested}")
            }
            FsRead { fd, len } => format!("fs.read fd={fd} len={len}"),
            FsWrite { fd, len } => format!("fs.write fd={fd} len={len}"),
            FsPrefetch { fd } => format!("fs.prefetch fd={fd}"),
            FsJournalAppend { seq, blocks } => {
                format!("fs.journal_append seq={seq} blocks={blocks}")
            }
            FsJournalCommit { seq } => format!("fs.journal_commit seq={seq}"),
            FsCheckpoint { seq, blocks } => format!("fs.checkpoint seq={seq} blocks={blocks}"),
            FsRecoveryReplay { seq, blocks } => {
                format!("fs.recovery_replay seq={seq} blocks={blocks}")
            }
            FsRecoveryDiscard { seq } => format!("fs.recovery_discard seq={seq}"),
            GraftInstall { graft } => format!("graft.install g={}", self.name_of(graft)),
            GraftInvoke { graft } => format!("graft.invoke g={}", self.name_of(graft)),
            GraftCommit { graft } => format!("graft.commit g={}", self.name_of(graft)),
            GraftAbort { graft, kind } => {
                format!("graft.abort g={} kind={}", self.name_of(graft), kind.label())
            }
            GraftQuarantine { graft, until } => {
                format!("graft.quarantine g={} until={until}", self.name_of(graft))
            }
            FallbackServed { graft } => format!("graft.fallback g={}", self.name_of(graft)),
            NetRx { port, len } => format!("net.rx port={port} len={len}"),
            NetShed { port, kind } => format!("net.shed port={port} kind={}", kind.label()),
            NetVerdict { port, verdict } => {
                format!("net.verdict port={port} v={}", verdict.label())
            }
            NetSteer { from, to } => format!("net.steer from={from} to={to}"),
            NetLoopCut { port } => format!("net.loop-cut port={port}"),
            NetBatch { port, n } => format!("net.batch port={port} n={n}"),
            WatchAlertFiring { rule, principal } => {
                format!("watch.firing rule={} principal={principal}", self.name_of(rule))
            }
            WatchAlertResolved { rule, principal } => {
                format!("watch.resolved rule={} principal={principal}", self.name_of(rule))
            }
            AdmissionAllow { principal } => format!("watch.admit principal={principal}"),
            AdmissionDeny { principal, until } => {
                format!("watch.deny principal={principal} until={until}")
            }
            ReplShip { seq, frags } => format!("repl.ship seq={seq} frags={frags}"),
            ReplAck { acked } => format!("repl.ack acked={acked}"),
            ReplApply { seq, blocks } => format!("repl.apply seq={seq} blocks={blocks}"),
            ReplFrameDrop { seq } => format!("repl.frame-drop seq={seq}"),
            ReplPromote { seq } => format!("repl.promote seq={seq}"),
        };
        let mut line = format!("{:06} @{:012} {} {}", r.seq, r.at.get(), self.node.get(), body);
        if !r.ctx.span.is_none() {
            line.push_str(&format!(" span={}", r.ctx.span));
        }
        if !r.ctx.parent.is_none() {
            line.push_str(&format!(" parent={}", r.ctx.parent));
        }
        line
    }

    /// Serializes the ring's current records (oldest first) to the
    /// canonical line format, one record per line, trailing newline.
    /// Identical seeds and call sequences yield byte-identical output.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&self.render(&r));
            out.push('\n');
        }
        out
    }

    /// Merges per-kernel trace rings into one causally-consistent
    /// stream. The total order is `(virtual-clock tick, node id,
    /// per-plane seq)` — deterministic, independent of the argument
    /// order, and (because every cross-kernel hop charges wire cycles
    /// before the receiving kernel emits) causally consistent: a span's
    /// opener sorts before every record that names it as a parent.
    /// That invariant is asserted here whenever no input ring has
    /// evicted records (an evicted span opener is unobservable, so the
    /// check would be vacuous noise on wrapped rings).
    ///
    /// # Panics
    ///
    /// Panics if two planes share a node id, or if the causal-order
    /// assert fails on unwrapped rings.
    pub fn merge_streams(planes: &[&TracePlane]) -> MergedTrace {
        for (i, a) in planes.iter().enumerate() {
            for b in &planes[i + 1..] {
                assert_ne!(
                    a.node(),
                    b.node(),
                    "merge_streams requires distinct node ids per plane"
                );
            }
        }
        let mut merged: Vec<MergedRecord> = Vec::new();
        for p in planes {
            let node = p.node();
            for rec in p.records() {
                merged.push(MergedRecord { node, rec, line: p.render(&rec) });
            }
        }
        merged.sort_by_key(|m| (m.rec.at, m.node, m.rec.seq));
        let any_dropped = planes.iter().any(|p| p.stats().dropped > 0);
        if !any_dropped {
            // First position each span is seen at (its opener): every
            // later record citing it as `parent` must sort after.
            let mut first_seen: HashMap<u64, usize> = HashMap::new();
            for (i, m) in merged.iter().enumerate() {
                let ctx = m.rec.ctx;
                if !ctx.parent.is_none() {
                    if let Some(&opener) = first_seen.get(&ctx.parent.0) {
                        assert!(
                            opener <= i,
                            "causal parent {} sorted after child at merged index {i}",
                            ctx.parent
                        );
                    } else {
                        panic!(
                            "causal parent {} of merged record {i} ({}) never opened",
                            ctx.parent, m.line
                        );
                    }
                }
                if !ctx.span.is_none() {
                    first_seen.entry(ctx.span.0).or_insert(i);
                }
            }
        }
        MergedTrace { records: merged }
    }
}

/// One record of a [`MergedTrace`]: the owning node, the raw record,
/// and its canonical line (rendered by the owning plane, so interned
/// graft names resolve against the right table).
#[derive(Debug, Clone)]
pub struct MergedRecord {
    /// The kernel that emitted this record.
    pub node: NodeId,
    /// The record itself.
    pub rec: TraceRecord,
    /// The canonical line, as the owning plane renders it.
    pub line: String,
}

/// A causally-consistent merge of per-kernel trace streams, produced by
/// [`TracePlane::merge_streams`]. Ordered by `(tick, node, seq)`.
#[derive(Debug, Clone)]
pub struct MergedTrace {
    records: Vec<MergedRecord>,
}

impl MergedTrace {
    /// The merged records in total order.
    pub fn records(&self) -> &[MergedRecord] {
        &self.records
    }

    /// Serializes the merged stream, one canonical line per record with
    /// a trailing newline — the golden-pinnable cross-kernel artifact.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for m in &self.records {
            out.push_str(&m.line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for TracePlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracePlane")
            .field("len", &self.seq.get())
            .field("stats", &self.stats.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(cap: usize) -> Rc<TracePlane> {
        TracePlane::with_capacity(VirtualClock::new(), cap)
    }

    #[test]
    fn emits_are_sequenced_and_stamped() {
        let p = plane(8);
        p.clock().charge(Cycles(100));
        p.emit(TraceEvent::FsRead { fd: 3, len: 512 });
        p.clock().charge(Cycles(50));
        p.emit(TraceEvent::FsWrite { fd: 3, len: 64 });
        let recs = p.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[0].at, Cycles(100));
        assert_eq!(recs[1].seq, 1);
        assert_eq!(recs[1].at, Cycles(150));
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        // The flight-recorder satellite: wraparound at capacity.
        let p = plane(4);
        for i in 0..10 {
            p.emit(TraceEvent::FsPrefetch { fd: i });
        }
        let recs = p.records();
        assert_eq!(recs.len(), 4, "ring holds exactly its capacity");
        let fds: Vec<u64> = recs
            .iter()
            .map(|r| match r.event {
                TraceEvent::FsPrefetch { fd } => fd,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(fds, [6, 7, 8, 9], "oldest evicted first, order preserved");
        assert_eq!(recs[0].seq, 6, "sequence numbers survive eviction");
        let s = p.stats();
        assert_eq!(s.total, 10);
        assert_eq!(s.dropped, 6);
    }

    #[test]
    fn stats_count_per_category() {
        let p = plane(16);
        p.emit(TraceEvent::VmWindow { instrs: 5, exit: VmExitKind::Halt });
        p.emit(TraceEvent::LockAcquire { lock: 0, thread: 1 });
        p.emit(TraceEvent::UndoPush { thread: 1, depth: 1 });
        p.emit(TraceEvent::ResGrant { principal: 2, kind: 2, amount: 64 });
        p.emit(TraceEvent::FsRead { fd: 3, len: 10 });
        let g = p.tag("g");
        p.emit(TraceEvent::GraftCommit { graft: g });
        let s = p.stats();
        assert_eq!((s.vm, s.txn, s.rm, s.fs, s.graft), (1, 2, 1, 1, 1));
        assert_eq!(s.total, 6);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn net_events_render_and_count() {
        let p = plane(16);
        p.emit(TraceEvent::NetRx { port: 80, len: 512 });
        p.emit(TraceEvent::NetShed { port: 80, kind: ShedKind::Overflow });
        p.emit(TraceEvent::NetShed { port: 80, kind: ShedKind::Watermark });
        p.emit(TraceEvent::NetVerdict { port: 80, verdict: VerdictKind::Steer });
        p.emit(TraceEvent::NetSteer { from: 80, to: 81 });
        p.emit(TraceEvent::NetLoopCut { port: 81 });
        p.emit(TraceEvent::NetBatch { port: 80, n: 32 });
        let s = p.stats();
        assert_eq!(s.net, 7);
        assert_eq!(s.total, 7);
        let lines = p.serialize();
        assert!(lines.contains("net.rx port=80 len=512"));
        assert!(lines.contains("net.shed port=80 kind=overflow"));
        assert!(lines.contains("net.shed port=80 kind=watermark"));
        assert!(lines.contains("net.verdict port=80 v=steer"));
        assert!(lines.contains("net.steer from=80 to=81"));
        assert!(lines.contains("net.loop-cut port=81"));
        assert!(lines.contains("net.batch port=80 n=32"));
    }

    #[test]
    fn tags_are_stable_and_resolved() {
        let p = plane(8);
        let a = p.tag("alpha");
        let b = p.tag("beta");
        assert_ne!(a, b);
        assert_eq!(p.tag("alpha"), a, "re-intern returns the same tag");
        assert_eq!(p.name_of(a), "alpha");
        assert_eq!(p.name_of(GraftTag(99)), "?tag99");
    }

    #[test]
    fn serialization_is_canonical_and_deterministic() {
        let build = || {
            let p = plane(8);
            let g = p.tag("div0");
            p.clock().charge(Cycles(4242));
            p.emit(TraceEvent::GraftInvoke { graft: g });
            p.emit(TraceEvent::GraftAbort { graft: g, kind: AbortKind::Trap });
            p.serialize()
        };
        let a = build();
        assert_eq!(a, build(), "same call sequence, byte-identical trace");
        assert_eq!(
            a,
            "000000 @000000004242 n0 graft.invoke g=div0\n\
             000001 @000000004242 n0 graft.abort g=div0 kind=trap\n"
        );
    }

    #[test]
    fn span_ids_encode_node_and_counter() {
        let id = SpanId::new(NodeId(3), 41);
        assert_eq!(id.node(), NodeId(3));
        assert_eq!(id.counter(), 41);
        assert_eq!(id.to_string(), "3.41");
        assert_eq!(SpanId::NONE.to_string(), "-");
        assert!(SpanId::NONE.is_none());
    }

    #[test]
    fn cause_ctx_roundtrips_on_the_wire() {
        let ctx = CauseCtx { span: SpanId::new(NodeId(1), 7), parent: SpanId::new(NodeId(0), 3) };
        assert_eq!(CauseCtx::from_bytes(&ctx.to_bytes()), ctx);
        assert_eq!(CauseCtx::from_bytes(&CauseCtx::NONE.to_bytes()), CauseCtx::NONE);
        assert_eq!(ctx.node(), NodeId(1));
    }

    #[test]
    fn minted_spans_are_monotonic_and_scoped_emits_carry_them() {
        let p = plane(16);
        let a = p.mint_span(SpanId::NONE);
        let b = p.mint_span(a.span);
        assert_eq!(a.span.counter(), 1);
        assert_eq!(b.span.counter(), 2);
        assert_eq!(b.parent, a.span);
        let prev = p.set_ctx(a);
        assert!(prev.is_none());
        p.emit(TraceEvent::FsRead { fd: 1, len: 8 });
        p.set_ctx(prev);
        p.emit(TraceEvent::FsRead { fd: 1, len: 8 });
        let recs = p.records();
        assert_eq!(recs[0].ctx, a, "plain emits stamp the context in force");
        assert_eq!(recs[1].ctx, CauseCtx::NONE, "restored context clears the stamp");
        let lines = p.serialize();
        assert!(lines.contains("n0 fs.read fd=1 len=8 span=0.1\n"), "lines: {lines}");
    }

    #[test]
    fn state_roundtrip_preserves_causal_counters() {
        let p = plane(8);
        let ctx = p.mint_span(SpanId::NONE);
        p.set_ctx(ctx);
        p.emit(TraceEvent::FsRead { fd: 1, len: 1 });
        let st = p.export_state();
        let q = plane(8);
        q.restore_state(&st);
        assert_eq!(q.ctx(), ctx);
        assert_eq!(q.node(), p.node());
        assert_eq!(q.mint_span(SpanId::NONE).span, SpanId::new(NodeId(0), 2));
        assert_eq!(q.serialize(), p.serialize());
    }

    #[test]
    fn merge_is_total_ordered_and_argument_order_independent() {
        let build = || {
            let clock = VirtualClock::new();
            let p0 = TracePlane::with_node(Rc::clone(&clock), 16, NodeId(0));
            let p1 = TracePlane::with_node(Rc::clone(&clock), 16, NodeId(1));
            let root = p0.mint_span(SpanId::NONE);
            p0.emit_with_ctx(TraceEvent::FsJournalCommit { seq: 1 }, root);
            clock.charge(Cycles(60));
            let child = p1.mint_span(root.span);
            p1.emit_with_ctx(TraceEvent::ReplApply { seq: 1, blocks: 2 }, child);
            clock.charge(Cycles(60));
            p0.emit_with_ctx(TraceEvent::ReplAck { acked: 1 }, p0.mint_span(child.span));
            (p0, p1)
        };
        let (p0, p1) = build();
        let ab = TracePlane::merge_streams(&[&p0, &p1]).serialize();
        let ba = TracePlane::merge_streams(&[&p1, &p0]).serialize();
        assert_eq!(ab, ba, "merge is stable under argument order");
        assert_eq!(
            ab,
            "000000 @000000000000 n0 fs.journal_commit seq=1 span=0.1\n\
             000000 @000000000060 n1 repl.apply seq=1 blocks=2 span=1.1 parent=0.1\n\
             000001 @000000000120 n0 repl.ack acked=1 span=0.2 parent=1.1\n"
        );
    }

    #[test]
    #[should_panic(expected = "distinct node ids")]
    fn merge_rejects_duplicate_node_ids() {
        let clock = VirtualClock::new();
        let p0 = TracePlane::with_node(Rc::clone(&clock), 8, NodeId(0));
        let p1 = TracePlane::with_node(clock, 8, NodeId(0));
        let _ = TracePlane::merge_streams(&[&p0, &p1]);
    }

    #[test]
    #[should_panic(expected = "never opened")]
    fn merge_catches_orphan_parents_on_unwrapped_rings() {
        let clock = VirtualClock::new();
        let p0 = TracePlane::with_node(Rc::clone(&clock), 8, NodeId(0));
        let p1 = TracePlane::with_node(clock, 8, NodeId(1));
        // A child citing a parent span no merged record ever carried.
        let orphan =
            CauseCtx { span: SpanId::new(NodeId(1), 1), parent: SpanId::new(NodeId(0), 9) };
        p1.emit_with_ctx(TraceEvent::ReplApply { seq: 1, blocks: 1 }, orphan);
        let _ = TracePlane::merge_streams(&[&p0, &p1]);
    }

    #[test]
    fn post_mortem_snapshots_tail_and_vitals() {
        let p = plane(64);
        p.set_post_mortem_window(3);
        let g = p.tag("hog");
        for i in 0..5 {
            p.emit(TraceEvent::UndoPush { thread: 7, depth: i + 1 });
        }
        p.emit(TraceEvent::GraftAbort { graft: g, kind: AbortKind::CpuHog });
        p.record_post_mortem("hog", AbortKind::CpuHog, 2, 5, Cycles(999));
        let pm = p.post_mortem().expect("post-mortem stored");
        assert_eq!(pm.graft, "hog");
        assert_eq!(pm.kind, AbortKind::CpuHog);
        assert_eq!(pm.held_locks, 2);
        assert_eq!(pm.undo_depth, 5);
        assert_eq!(pm.cost, Cycles(999));
        assert_eq!(pm.tail.len(), 3, "window bounds the snapshot");
        assert_eq!(pm.lines.len(), 3);
        assert!(pm.lines[2].contains("graft.abort g=hog kind=cpu-hog"));
        let text = pm.to_string();
        assert!(text.contains("== post-mortem: graft `hog` =="));
        assert!(text.contains("abort-kind:  cpu-hog"));
        assert!(text.contains("held-locks:  2"));
        assert!(text.contains("undo-depth:  5"));
    }

    #[test]
    fn no_post_mortem_before_any_abort() {
        let p = plane(8);
        p.emit(TraceEvent::FsRead { fd: 1, len: 1 });
        assert!(p.post_mortem().is_none());
        p.record_post_mortem("x", AbortKind::Trap, 0, 0, Cycles::ZERO);
        assert!(p.post_mortem().is_some());
        p.clear_post_mortem();
        assert!(p.post_mortem().is_none());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = plane(0);
    }
}

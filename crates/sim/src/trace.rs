//! The deterministic trace plane and abort flight recorder.
//!
//! The paper's claim is not only that the kernel *survives* misbehaved
//! grafts but that every survival is *explainable*: an abort unwinds a
//! known undo stack, releases an enumerable set of locks, and falls back
//! to the default path. This module turns that story into an artifact.
//! Every instrumented subsystem emits [`TraceEvent`]s into one shared
//! [`TracePlane`] — a pre-allocated ring buffer, so the hot path never
//! touches the heap — and because the whole simulation is
//! single-threaded and seeded, the event sequence is bit-identical run
//! after run. Traces serialize to a canonical line format
//! ([`TracePlane::serialize`]) that golden tests diff directly.
//!
//! On every wrapper abort the grafting layer calls
//! [`TracePlane::record_post_mortem`], which snapshots the last N ring
//! records together with the abort's vital signs (graft, abort kind,
//! locks held, undo depth, cycle cost) into a [`PostMortem`] — the
//! flight recorder of `docs/TRACING.md`.
//!
//! Like [`crate::fault::FaultPlane`], the plane is passive and shared
//! behind `Rc` with interior mutability; subsystems thread a handle via
//! their `set_trace_plane` methods and the kernel wires everything with
//! one `attach_trace_plane` call.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::clock::{Cycles, VirtualClock};

/// Default ring capacity, in records.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default flight-recorder window: records snapshotted per post-mortem.
pub const DEFAULT_POST_MORTEM_WINDOW: usize = 32;

/// An interned graft name. Tags are assigned in first-intern order, so
/// they are deterministic for a deterministic install sequence; the
/// plane's name table maps them back for rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraftTag(pub u16);

/// How a traced VM run window ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmExitKind {
    /// The graft executed `halt`.
    Halt,
    /// Fuel exhausted; the run may resume.
    Preempt,
    /// The graft trapped.
    Trap,
}

/// Why a packet was refused admission to an RX ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedKind {
    /// The ring was at capacity (or an injected overflow said so).
    Overflow,
    /// Deterministic load shedding above the high watermark.
    Watermark,
}

impl ShedKind {
    fn label(self) -> &'static str {
        match self {
            ShedKind::Overflow => "overflow",
            ShedKind::Watermark => "watermark",
        }
    }
}

/// A packet-filter verdict, as traced (the steer target travels in the
/// separate `NetSteer` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Deliver to the port's consumer.
    Accept,
    /// Discard.
    Drop,
    /// Re-enqueue on another port's ring.
    Steer,
}

impl VerdictKind {
    fn label(self) -> &'static str {
        match self {
            VerdictKind::Accept => "accept",
            VerdictKind::Drop => "drop",
            VerdictKind::Steer => "steer",
        }
    }
}

/// Which MiSFIT sandbox check executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfiKind {
    /// Address clamp before a load/store.
    Clamp,
    /// Indirect-call target check.
    CheckCall,
}

/// Coarse abort cause carried by graft-abort events and post-mortems
/// (the sim-level mirror of the engine's `AbortedWhy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortKind {
    /// The graft trapped (memory fault, forbidden call, host error…).
    Trap,
    /// The graft exceeded its CPU-slice budget.
    CpuHog,
    /// A fired lock time-out stole the wrapper transaction.
    LockTimeout,
    /// The caller requested an abort-instead-of-commit run.
    Requested,
}

impl AbortKind {
    fn label(self) -> &'static str {
        match self {
            AbortKind::Trap => "trap",
            AbortKind::CpuHog => "cpu-hog",
            AbortKind::LockTimeout => "lock-timeout",
            AbortKind::Requested => "requested",
        }
    }
}

/// One traced occurrence. All payloads are `Copy` and fixed-size so the
/// ring buffer never allocates; graft names travel as interned
/// [`GraftTag`]s and resource kinds as their small-integer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    // -- vm ------------------------------------------------------------
    /// One fuel window of interpreted execution ended.
    VmWindow {
        /// Instructions retired in this window.
        instrs: u64,
        /// How the window ended.
        exit: VmExitKind,
    },
    /// A MiSFIT sandbox check executed.
    SfiCheck {
        /// Which check.
        kind: SfiKind,
        /// The checked instruction's pc.
        pc: u64,
    },
    // -- txn -----------------------------------------------------------
    /// A transaction began (`txn` is the new id, `depth` after push).
    TxnBegin {
        /// The owning thread.
        thread: u64,
        /// The new transaction id.
        txn: u64,
        /// Nesting depth after the begin.
        depth: u64,
    },
    /// A transaction committed.
    TxnCommit {
        /// The owning thread.
        thread: u64,
        /// The committed transaction id.
        txn: u64,
        /// True for a nested merge into the parent.
        nested: bool,
        /// Locks released (zero for nested commits).
        locks: u64,
    },
    /// A transaction aborted (undo already ran; see `UndoRun`).
    TxnAbort {
        /// The owning thread.
        thread: u64,
        /// The aborted transaction id.
        txn: u64,
        /// Locks released by the abort.
        locks: u64,
    },
    /// A transactional lock acquire was granted.
    LockAcquire {
        /// The lock.
        lock: u64,
        /// The acquiring thread.
        thread: u64,
    },
    /// A lock acquire contended; a time-out was scheduled.
    LockBlocked {
        /// The lock.
        lock: u64,
        /// The blocked waiter.
        waiter: u64,
        /// The current holder.
        holder: u64,
    },
    /// A lock time-out fired and aborted the holder's transaction.
    LockTimeout {
        /// The contended lock.
        lock: u64,
        /// The aborted holder.
        holder: u64,
    },
    /// A wrapper discovered its transaction was stolen by a fired
    /// time-out (consumed the forced-abort report).
    LockSteal {
        /// The thread whose transaction was stolen.
        thread: u64,
        /// The stolen transaction id.
        txn: u64,
    },
    /// An undo record was pushed (`depth` = records pending after push).
    UndoPush {
        /// The owning thread.
        thread: u64,
        /// Undo-stack depth after the push.
        depth: u64,
    },
    /// An abort unwound the undo stack.
    UndoRun {
        /// The owning thread.
        thread: u64,
        /// Undo operations executed (LIFO).
        ops: u64,
    },
    // -- rm ------------------------------------------------------------
    /// A resource charge was granted.
    ResGrant {
        /// The charged principal (after billing indirection).
        principal: u64,
        /// Resource kind index (see `vino_rm::ResourceKind`).
        kind: u8,
        /// Amount granted.
        amount: u64,
    },
    /// A resource release.
    ResRelease {
        /// The releasing principal (after billing indirection).
        principal: u64,
        /// Resource kind index.
        kind: u8,
        /// Amount released.
        amount: u64,
    },
    /// A resource charge was denied (genuine limit hit or injected).
    ResLimitHit {
        /// The denied principal.
        principal: u64,
        /// Resource kind index.
        kind: u8,
        /// Requested amount.
        requested: u64,
    },
    // -- fs ------------------------------------------------------------
    /// A file-system read was served.
    FsRead {
        /// The descriptor.
        fd: u64,
        /// Bytes read.
        len: u64,
    },
    /// A file-system write was served.
    FsWrite {
        /// The descriptor.
        fd: u64,
        /// Bytes written.
        len: u64,
    },
    /// A prefetch I/O was issued from a per-file queue.
    FsPrefetch {
        /// The descriptor whose queue issued.
        fd: u64,
    },
    /// A journal transaction's redo records were appended to the
    /// journal region (descriptor + payload blocks, no commit yet).
    FsJournalAppend {
        /// Journal sequence number.
        seq: u64,
        /// Home-location blocks captured in the record.
        blocks: u64,
    },
    /// A journal transaction's commit marker reached the disk — the
    /// update is now durable whatever happens next.
    FsJournalCommit {
        /// Journal sequence number.
        seq: u64,
    },
    /// A committed journal transaction was checkpointed to its
    /// home locations.
    FsCheckpoint {
        /// Journal sequence number.
        seq: u64,
        /// Home-location blocks written in place.
        blocks: u64,
    },
    /// Mount-time recovery rolled a committed journal transaction
    /// forward.
    FsRecoveryReplay {
        /// Journal sequence number replayed.
        seq: u64,
        /// Home-location blocks rewritten.
        blocks: u64,
    },
    /// Mount-time recovery discarded a torn (uncommitted) journal
    /// tail.
    FsRecoveryDiscard {
        /// Journal sequence number of the torn record.
        seq: u64,
    },
    // -- graft lifecycle -----------------------------------------------
    /// A graft was installed (loader pipeline passed).
    GraftInstall {
        /// The installed graft.
        graft: GraftTag,
    },
    /// A graft invocation began (wrapper transaction opened).
    GraftInvoke {
        /// The invoked graft.
        graft: GraftTag,
    },
    /// A graft invocation committed.
    GraftCommit {
        /// The committed graft.
        graft: GraftTag,
    },
    /// A graft invocation aborted; the graft is forcibly unloaded.
    GraftAbort {
        /// The aborted graft.
        graft: GraftTag,
        /// Why.
        kind: AbortKind,
    },
    /// The reliability manager quarantined the graft name.
    GraftQuarantine {
        /// The quarantined graft.
        graft: GraftTag,
        /// Absolute virtual-clock deadline (cycles).
        until: u64,
    },
    /// An invocation found the graft dead; the caller serves the
    /// default path instead (§3.6 fallback).
    FallbackServed {
        /// The dead graft.
        graft: GraftTag,
    },
    // -- net -----------------------------------------------------------
    /// A packet was admitted to a port's RX ring.
    NetRx {
        /// The destination port.
        port: u16,
        /// Payload length in bytes.
        len: u64,
    },
    /// A packet was refused admission (overflow or watermark shedding).
    NetShed {
        /// The destination port.
        port: u16,
        /// Why it was shed.
        kind: ShedKind,
    },
    /// The packet filter returned a verdict for one packet.
    NetVerdict {
        /// The filtered port.
        port: u16,
        /// The verdict.
        verdict: VerdictKind,
    },
    /// A steered packet hopped from one port's ring to another's.
    NetSteer {
        /// The port it left.
        from: u16,
        /// The port it joined.
        to: u16,
    },
    /// A packet exhausted its steer-hop budget and was dropped.
    NetLoopCut {
        /// The port where the cycle was cut.
        port: u16,
    },
    /// One batched filter dispatch ran (one transaction envelope).
    NetBatch {
        /// The filtered port.
        port: u16,
        /// Packets covered by the batch.
        n: u64,
    },
    // -- watch ---------------------------------------------------------
    /// A watch-plane SLO rule's windowed value crossed its threshold.
    /// The rule name travels as an interned tag (rule names are
    /// interned when the watch plane attaches its trace mirror).
    WatchAlertFiring {
        /// The firing rule's interned name.
        rule: GraftTag,
        /// The blamed principal (0 for kernel-global signals).
        principal: u64,
    },
    /// A firing watch-plane alert's value receded below threshold.
    WatchAlertResolved {
        /// The resolving rule's interned name.
        rule: GraftTag,
        /// The principal blamed at the firing edge.
        principal: u64,
    },
    /// The admission controller let a principal's install proceed.
    AdmissionAllow {
        /// The installing principal.
        principal: u64,
    },
    /// The admission controller refused a principal's install.
    AdmissionDeny {
        /// The refused principal.
        principal: u64,
        /// Absolute virtual-clock deadline of the backoff (cycles).
        until: u64,
    },
    // -- repl ------------------------------------------------------------
    /// The primary shipped one committed journal record to the replica
    /// (as `frags` sealed frames over the packet plane).
    ReplShip {
        /// Journal sequence number of the shipped record.
        seq: u64,
        /// Frames the marshalled record was fragmented into.
        frags: u64,
    },
    /// The primary consumed a cumulative ack from the replica.
    ReplAck {
        /// Highest contiguous sequence the replica has applied.
        acked: u64,
    },
    /// The replica applied one shipped record through its own journal.
    ReplApply {
        /// Journal sequence number applied.
        seq: u64,
        /// Home-location blocks the record carried.
        blocks: u64,
    },
    /// A shipped frame was lost, reordered out of reach, or failed its
    /// seal check; the window will retransmit it.
    ReplFrameDrop {
        /// Journal sequence number of the affected record.
        seq: u64,
    },
    /// The replica finished replay after primary death and was promoted
    /// to primary via `boot_from_image`.
    ReplPromote {
        /// Highest sequence applied at promotion.
        seq: u64,
    },
}

/// The subsystem a [`TraceEvent`] belongs to, for [`TraceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCategory {
    /// GraftVM interpreter events.
    Vm,
    /// Transaction/lock/undo events.
    Txn,
    /// Resource-accountant events.
    Rm,
    /// File-system events.
    Fs,
    /// Graft-lifecycle events.
    Graft,
    /// Packet-plane events.
    Net,
    /// Watch-plane alert edges and admission decisions.
    Watch,
    /// Replication-plane ship/ack/apply/promote events.
    Repl,
}

impl TraceEvent {
    /// The subsystem this event belongs to.
    pub fn category(&self) -> TraceCategory {
        use TraceEvent::*;
        match self {
            VmWindow { .. } | SfiCheck { .. } => TraceCategory::Vm,
            TxnBegin { .. }
            | TxnCommit { .. }
            | TxnAbort { .. }
            | LockAcquire { .. }
            | LockBlocked { .. }
            | LockTimeout { .. }
            | LockSteal { .. }
            | UndoPush { .. }
            | UndoRun { .. } => TraceCategory::Txn,
            ResGrant { .. } | ResRelease { .. } | ResLimitHit { .. } => TraceCategory::Rm,
            FsRead { .. }
            | FsWrite { .. }
            | FsPrefetch { .. }
            | FsJournalAppend { .. }
            | FsJournalCommit { .. }
            | FsCheckpoint { .. }
            | FsRecoveryReplay { .. }
            | FsRecoveryDiscard { .. } => TraceCategory::Fs,
            GraftInstall { .. }
            | GraftInvoke { .. }
            | GraftCommit { .. }
            | GraftAbort { .. }
            | GraftQuarantine { .. }
            | FallbackServed { .. } => TraceCategory::Graft,
            NetRx { .. }
            | NetShed { .. }
            | NetVerdict { .. }
            | NetSteer { .. }
            | NetLoopCut { .. }
            | NetBatch { .. } => TraceCategory::Net,
            WatchAlertFiring { .. }
            | WatchAlertResolved { .. }
            | AdmissionAllow { .. }
            | AdmissionDeny { .. } => TraceCategory::Watch,
            ReplShip { .. }
            | ReplAck { .. }
            | ReplApply { .. }
            | ReplFrameDrop { .. }
            | ReplPromote { .. } => TraceCategory::Repl,
        }
    }
}

/// One ring-buffer record: a sequence number, a virtual-clock stamp and
/// the event itself. `Copy`, so ring writes are plain stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic sequence number (never wraps; survives ring eviction).
    pub seq: u64,
    /// Virtual-clock time the event was emitted.
    pub at: Cycles,
    /// The event.
    pub event: TraceEvent,
}

/// Per-subsystem event counters for the plane's lifetime (evicted ring
/// records stay counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// GraftVM events.
    pub vm: u64,
    /// Transaction/lock/undo events.
    pub txn: u64,
    /// Resource-accountant events.
    pub rm: u64,
    /// File-system events.
    pub fs: u64,
    /// Graft-lifecycle events.
    pub graft: u64,
    /// Packet-plane events.
    pub net: u64,
    /// Watch-plane alert and admission events.
    pub watch: u64,
    /// Replication-plane events.
    pub repl: u64,
    /// All events emitted.
    pub total: u64,
    /// Events overwritten after the ring filled.
    pub dropped: u64,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vm={} txn={} rm={} fs={} graft={} net={} watch={} repl={} total={} dropped={}",
            self.vm,
            self.txn,
            self.rm,
            self.fs,
            self.graft,
            self.net,
            self.watch,
            self.repl,
            self.total,
            self.dropped
        )
    }
}

/// The flight-recorder snapshot taken at an abort. Owns its data (the
/// graft name is resolved, the tail is copied out of the ring), so it
/// stays meaningful however the plane evolves afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostMortem {
    /// The aborted graft's name.
    pub graft: String,
    /// Why it aborted.
    pub kind: AbortKind,
    /// Locks the wrapper transaction held (and released) at abort.
    pub held_locks: usize,
    /// Undo operations the abort executed.
    pub undo_depth: usize,
    /// Cycle cost charged for the abort (§4.5 equation).
    pub cost: Cycles,
    /// Virtual-clock time of the abort.
    pub at: Cycles,
    /// The last N trace records before (and including) the abort,
    /// oldest first.
    pub tail: Vec<TraceRecord>,
    /// The tail rendered in canonical line format (resolved names).
    pub lines: Vec<String>,
}

impl fmt::Display for PostMortem {
    /// The text format documented in `docs/TRACING.md`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== post-mortem: graft `{}` ==", self.graft)?;
        writeln!(f, "abort-kind:  {}", self.kind.label())?;
        writeln!(f, "at:          {}cyc", self.at.get())?;
        writeln!(f, "held-locks:  {}", self.held_locks)?;
        writeln!(f, "undo-depth:  {}", self.undo_depth)?;
        writeln!(f, "abort-cost:  {}cyc", self.cost.get())?;
        writeln!(f, "last {} events:", self.lines.len())?;
        for line in &self.lines {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

struct Ring {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Next overwrite slot once `buf.len() == cap`.
    head: usize,
}

impl Ring {
    fn push(&mut self, rec: TraceRecord) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(rec); // Within reserved capacity: no alloc.
            false
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    /// Records oldest → newest.
    fn ordered(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// An opaque snapshot of a [`TracePlane`]'s full mutable state: the
/// ring's records (oldest first), the sequence counter, lifetime stats,
/// the interned name table and the flight-recorder state. Captured by
/// [`TracePlane::export_state`], replanted by
/// [`TracePlane::restore_state`] so a resumed replay appends to the
/// same stream and serializes byte-identically.
#[derive(Clone)]
pub struct TraceState {
    records: Vec<TraceRecord>,
    cap: usize,
    seq: u64,
    stats: TraceStats,
    names: Vec<String>,
    post: Option<PostMortem>,
    pm_window: usize,
}

/// The shared trace plane. See the module docs.
pub struct TracePlane {
    clock: Rc<VirtualClock>,
    ring: RefCell<Ring>,
    seq: Cell<u64>,
    stats: Cell<TraceStats>,
    names: RefCell<Vec<String>>,
    tags: RefCell<HashMap<String, GraftTag>>,
    post: RefCell<Option<PostMortem>>,
    pm_window: Cell<usize>,
}

impl TracePlane {
    /// A plane with the default ring capacity, stamping events from
    /// `clock`.
    pub fn new(clock: Rc<VirtualClock>) -> Rc<TracePlane> {
        TracePlane::with_capacity(clock, DEFAULT_CAPACITY)
    }

    /// A plane whose ring holds the last `capacity` records. The ring is
    /// fully reserved here; [`emit`](Self::emit) never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(clock: Rc<VirtualClock>, capacity: usize) -> Rc<TracePlane> {
        assert!(capacity > 0, "trace ring capacity must be non-zero");
        Rc::new(TracePlane {
            clock,
            ring: RefCell::new(Ring { buf: Vec::with_capacity(capacity), cap: capacity, head: 0 }),
            seq: Cell::new(0),
            stats: Cell::new(TraceStats::default()),
            names: RefCell::new(Vec::new()),
            tags: RefCell::new(HashMap::new()),
            post: RefCell::new(None),
            pm_window: Cell::new(DEFAULT_POST_MORTEM_WINDOW),
        })
    }

    /// The clock events are stamped from.
    pub fn clock(&self) -> &Rc<VirtualClock> {
        &self.clock
    }

    /// Interns `name`, returning its stable tag. The first intern of a
    /// name allocates (install paths); later look-ups do not.
    pub fn tag(&self, name: &str) -> GraftTag {
        if let Some(t) = self.tags.borrow().get(name) {
            return *t;
        }
        let mut names = self.names.borrow_mut();
        let tag = GraftTag(u16::try_from(names.len()).expect("more than 65535 graft names"));
        names.push(name.to_string());
        self.tags.borrow_mut().insert(name.to_string(), tag);
        tag
    }

    /// The name behind `tag` (or a placeholder for a foreign tag).
    pub fn name_of(&self, tag: GraftTag) -> String {
        self.names.borrow().get(tag.0 as usize).cloned().unwrap_or_else(|| format!("?tag{}", tag.0))
    }

    /// The instrumentation point: stamps and records one event. The hot
    /// path — a counter bump, a stat bump and a ring store; no heap
    /// allocation (verified by the `trace_plane` microbench).
    pub fn emit(&self, event: TraceEvent) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let rec = TraceRecord { seq, at: self.clock.now(), event };
        let mut stats = self.stats.get();
        stats.total += 1;
        match event.category() {
            TraceCategory::Vm => stats.vm += 1,
            TraceCategory::Txn => stats.txn += 1,
            TraceCategory::Rm => stats.rm += 1,
            TraceCategory::Fs => stats.fs += 1,
            TraceCategory::Graft => stats.graft += 1,
            TraceCategory::Net => stats.net += 1,
            TraceCategory::Watch => stats.watch += 1,
            TraceCategory::Repl => stats.repl += 1,
        }
        if self.ring.borrow_mut().push(rec) {
            stats.dropped += 1;
        }
        self.stats.set(stats);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TraceStats {
        self.stats.get()
    }

    /// Events emitted so far (equals the next record's `seq`).
    pub fn len(&self) -> u64 {
        self.seq.get()
    }

    /// True when nothing was ever emitted.
    pub fn is_empty(&self) -> bool {
        self.seq.get() == 0
    }

    /// The ring's current records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.ring.borrow().ordered()
    }

    /// Sets the flight-recorder window (records per post-mortem).
    pub fn set_post_mortem_window(&self, n: usize) {
        self.pm_window.set(n.max(1));
    }

    /// Snapshots the plane's full mutable state for a checkpoint.
    pub fn export_state(&self) -> TraceState {
        TraceState {
            records: self.ring.borrow().ordered(),
            cap: self.ring.borrow().cap,
            seq: self.seq.get(),
            stats: self.stats.get(),
            names: self.names.borrow().clone(),
            post: self.post.borrow().clone(),
            pm_window: self.pm_window.get(),
        }
    }

    /// Replants a [`TraceState`] capture: the ring, counters, interned
    /// names and flight recorder resume exactly where the capture left
    /// them, so later emits continue the same stream.
    pub fn restore_state(&self, st: &TraceState) {
        let mut buf = Vec::with_capacity(st.cap);
        buf.extend_from_slice(&st.records);
        *self.ring.borrow_mut() = Ring { buf, cap: st.cap, head: 0 };
        self.seq.set(st.seq);
        self.stats.set(st.stats);
        *self.names.borrow_mut() = st.names.clone();
        let mut tags = self.tags.borrow_mut();
        tags.clear();
        for (i, name) in st.names.iter().enumerate() {
            tags.insert(name.clone(), GraftTag(i as u16));
        }
        drop(tags);
        *self.post.borrow_mut() = st.post.clone();
        self.pm_window.set(st.pm_window);
    }

    /// Takes the flight-recorder snapshot for an abort: the last
    /// window's records plus the abort's vital signs. Called by the
    /// grafting layer from its single abort exit path; the abort path
    /// may allocate (it is not the hot path). The latest post-mortem
    /// replaces any earlier one.
    pub fn record_post_mortem(
        &self,
        graft: &str,
        kind: AbortKind,
        held_locks: usize,
        undo_depth: usize,
        cost: Cycles,
    ) {
        let all = self.ring.borrow().ordered();
        let n = self.pm_window.get().min(all.len());
        let tail: Vec<TraceRecord> = all[all.len() - n..].to_vec();
        let lines = tail.iter().map(|r| self.render(r)).collect();
        *self.post.borrow_mut() = Some(PostMortem {
            graft: graft.to_string(),
            kind,
            held_locks,
            undo_depth,
            cost,
            at: self.clock.now(),
            tail,
            lines,
        });
    }

    /// The most recent post-mortem, if any abort happened.
    pub fn post_mortem(&self) -> Option<PostMortem> {
        self.post.borrow().clone()
    }

    /// Clears the stored post-mortem (tests isolating scenarios).
    pub fn clear_post_mortem(&self) {
        *self.post.borrow_mut() = None;
    }

    /// Renders one record in the canonical line format:
    /// `SEQ @CYCLES category.kind key=value…` (see `docs/TRACING.md`).
    pub fn render(&self, r: &TraceRecord) -> String {
        use TraceEvent::*;
        let body = match r.event {
            VmWindow { instrs, exit } => {
                let e = match exit {
                    VmExitKind::Halt => "halt",
                    VmExitKind::Preempt => "preempt",
                    VmExitKind::Trap => "trap",
                };
                format!("vm.window instrs={instrs} exit={e}")
            }
            SfiCheck { kind, pc } => {
                let k = match kind {
                    SfiKind::Clamp => "clamp",
                    SfiKind::CheckCall => "checkcall",
                };
                format!("vm.sfi kind={k} pc={pc}")
            }
            TxnBegin { thread, txn, depth } => {
                format!("txn.begin thread={thread} txn={txn} depth={depth}")
            }
            TxnCommit { thread, txn, nested, locks } => {
                format!("txn.commit thread={thread} txn={txn} nested={nested} locks={locks}")
            }
            TxnAbort { thread, txn, locks } => {
                format!("txn.abort thread={thread} txn={txn} locks={locks}")
            }
            LockAcquire { lock, thread } => format!("txn.lock lock={lock} thread={thread}"),
            LockBlocked { lock, waiter, holder } => {
                format!("txn.blocked lock={lock} waiter={waiter} holder={holder}")
            }
            LockTimeout { lock, holder } => {
                format!("txn.timeout lock={lock} holder={holder}")
            }
            LockSteal { thread, txn } => format!("txn.steal thread={thread} txn={txn}"),
            UndoPush { thread, depth } => format!("txn.undo-push thread={thread} depth={depth}"),
            UndoRun { thread, ops } => format!("txn.undo-run thread={thread} ops={ops}"),
            ResGrant { principal, kind, amount } => {
                format!("rm.grant principal={principal} kind={kind} amount={amount}")
            }
            ResRelease { principal, kind, amount } => {
                format!("rm.release principal={principal} kind={kind} amount={amount}")
            }
            ResLimitHit { principal, kind, requested } => {
                format!("rm.limit-hit principal={principal} kind={kind} requested={requested}")
            }
            FsRead { fd, len } => format!("fs.read fd={fd} len={len}"),
            FsWrite { fd, len } => format!("fs.write fd={fd} len={len}"),
            FsPrefetch { fd } => format!("fs.prefetch fd={fd}"),
            FsJournalAppend { seq, blocks } => {
                format!("fs.journal_append seq={seq} blocks={blocks}")
            }
            FsJournalCommit { seq } => format!("fs.journal_commit seq={seq}"),
            FsCheckpoint { seq, blocks } => format!("fs.checkpoint seq={seq} blocks={blocks}"),
            FsRecoveryReplay { seq, blocks } => {
                format!("fs.recovery_replay seq={seq} blocks={blocks}")
            }
            FsRecoveryDiscard { seq } => format!("fs.recovery_discard seq={seq}"),
            GraftInstall { graft } => format!("graft.install g={}", self.name_of(graft)),
            GraftInvoke { graft } => format!("graft.invoke g={}", self.name_of(graft)),
            GraftCommit { graft } => format!("graft.commit g={}", self.name_of(graft)),
            GraftAbort { graft, kind } => {
                format!("graft.abort g={} kind={}", self.name_of(graft), kind.label())
            }
            GraftQuarantine { graft, until } => {
                format!("graft.quarantine g={} until={until}", self.name_of(graft))
            }
            FallbackServed { graft } => format!("graft.fallback g={}", self.name_of(graft)),
            NetRx { port, len } => format!("net.rx port={port} len={len}"),
            NetShed { port, kind } => format!("net.shed port={port} kind={}", kind.label()),
            NetVerdict { port, verdict } => {
                format!("net.verdict port={port} v={}", verdict.label())
            }
            NetSteer { from, to } => format!("net.steer from={from} to={to}"),
            NetLoopCut { port } => format!("net.loop-cut port={port}"),
            NetBatch { port, n } => format!("net.batch port={port} n={n}"),
            WatchAlertFiring { rule, principal } => {
                format!("watch.firing rule={} principal={principal}", self.name_of(rule))
            }
            WatchAlertResolved { rule, principal } => {
                format!("watch.resolved rule={} principal={principal}", self.name_of(rule))
            }
            AdmissionAllow { principal } => format!("watch.admit principal={principal}"),
            AdmissionDeny { principal, until } => {
                format!("watch.deny principal={principal} until={until}")
            }
            ReplShip { seq, frags } => format!("repl.ship seq={seq} frags={frags}"),
            ReplAck { acked } => format!("repl.ack acked={acked}"),
            ReplApply { seq, blocks } => format!("repl.apply seq={seq} blocks={blocks}"),
            ReplFrameDrop { seq } => format!("repl.frame-drop seq={seq}"),
            ReplPromote { seq } => format!("repl.promote seq={seq}"),
        };
        format!("{:06} @{:012} {}", r.seq, r.at.get(), body)
    }

    /// Serializes the ring's current records (oldest first) to the
    /// canonical line format, one record per line, trailing newline.
    /// Identical seeds and call sequences yield byte-identical output.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&self.render(&r));
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for TracePlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracePlane")
            .field("len", &self.seq.get())
            .field("stats", &self.stats.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(cap: usize) -> Rc<TracePlane> {
        TracePlane::with_capacity(VirtualClock::new(), cap)
    }

    #[test]
    fn emits_are_sequenced_and_stamped() {
        let p = plane(8);
        p.clock().charge(Cycles(100));
        p.emit(TraceEvent::FsRead { fd: 3, len: 512 });
        p.clock().charge(Cycles(50));
        p.emit(TraceEvent::FsWrite { fd: 3, len: 64 });
        let recs = p.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[0].at, Cycles(100));
        assert_eq!(recs[1].seq, 1);
        assert_eq!(recs[1].at, Cycles(150));
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        // The flight-recorder satellite: wraparound at capacity.
        let p = plane(4);
        for i in 0..10 {
            p.emit(TraceEvent::FsPrefetch { fd: i });
        }
        let recs = p.records();
        assert_eq!(recs.len(), 4, "ring holds exactly its capacity");
        let fds: Vec<u64> = recs
            .iter()
            .map(|r| match r.event {
                TraceEvent::FsPrefetch { fd } => fd,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(fds, [6, 7, 8, 9], "oldest evicted first, order preserved");
        assert_eq!(recs[0].seq, 6, "sequence numbers survive eviction");
        let s = p.stats();
        assert_eq!(s.total, 10);
        assert_eq!(s.dropped, 6);
    }

    #[test]
    fn stats_count_per_category() {
        let p = plane(16);
        p.emit(TraceEvent::VmWindow { instrs: 5, exit: VmExitKind::Halt });
        p.emit(TraceEvent::LockAcquire { lock: 0, thread: 1 });
        p.emit(TraceEvent::UndoPush { thread: 1, depth: 1 });
        p.emit(TraceEvent::ResGrant { principal: 2, kind: 2, amount: 64 });
        p.emit(TraceEvent::FsRead { fd: 3, len: 10 });
        let g = p.tag("g");
        p.emit(TraceEvent::GraftCommit { graft: g });
        let s = p.stats();
        assert_eq!((s.vm, s.txn, s.rm, s.fs, s.graft), (1, 2, 1, 1, 1));
        assert_eq!(s.total, 6);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn net_events_render_and_count() {
        let p = plane(16);
        p.emit(TraceEvent::NetRx { port: 80, len: 512 });
        p.emit(TraceEvent::NetShed { port: 80, kind: ShedKind::Overflow });
        p.emit(TraceEvent::NetShed { port: 80, kind: ShedKind::Watermark });
        p.emit(TraceEvent::NetVerdict { port: 80, verdict: VerdictKind::Steer });
        p.emit(TraceEvent::NetSteer { from: 80, to: 81 });
        p.emit(TraceEvent::NetLoopCut { port: 81 });
        p.emit(TraceEvent::NetBatch { port: 80, n: 32 });
        let s = p.stats();
        assert_eq!(s.net, 7);
        assert_eq!(s.total, 7);
        let lines = p.serialize();
        assert!(lines.contains("net.rx port=80 len=512"));
        assert!(lines.contains("net.shed port=80 kind=overflow"));
        assert!(lines.contains("net.shed port=80 kind=watermark"));
        assert!(lines.contains("net.verdict port=80 v=steer"));
        assert!(lines.contains("net.steer from=80 to=81"));
        assert!(lines.contains("net.loop-cut port=81"));
        assert!(lines.contains("net.batch port=80 n=32"));
    }

    #[test]
    fn tags_are_stable_and_resolved() {
        let p = plane(8);
        let a = p.tag("alpha");
        let b = p.tag("beta");
        assert_ne!(a, b);
        assert_eq!(p.tag("alpha"), a, "re-intern returns the same tag");
        assert_eq!(p.name_of(a), "alpha");
        assert_eq!(p.name_of(GraftTag(99)), "?tag99");
    }

    #[test]
    fn serialization_is_canonical_and_deterministic() {
        let build = || {
            let p = plane(8);
            let g = p.tag("div0");
            p.clock().charge(Cycles(4242));
            p.emit(TraceEvent::GraftInvoke { graft: g });
            p.emit(TraceEvent::GraftAbort { graft: g, kind: AbortKind::Trap });
            p.serialize()
        };
        let a = build();
        assert_eq!(a, build(), "same call sequence, byte-identical trace");
        assert_eq!(
            a,
            "000000 @000000004242 graft.invoke g=div0\n\
             000001 @000000004242 graft.abort g=div0 kind=trap\n"
        );
    }

    #[test]
    fn post_mortem_snapshots_tail_and_vitals() {
        let p = plane(64);
        p.set_post_mortem_window(3);
        let g = p.tag("hog");
        for i in 0..5 {
            p.emit(TraceEvent::UndoPush { thread: 7, depth: i + 1 });
        }
        p.emit(TraceEvent::GraftAbort { graft: g, kind: AbortKind::CpuHog });
        p.record_post_mortem("hog", AbortKind::CpuHog, 2, 5, Cycles(999));
        let pm = p.post_mortem().expect("post-mortem stored");
        assert_eq!(pm.graft, "hog");
        assert_eq!(pm.kind, AbortKind::CpuHog);
        assert_eq!(pm.held_locks, 2);
        assert_eq!(pm.undo_depth, 5);
        assert_eq!(pm.cost, Cycles(999));
        assert_eq!(pm.tail.len(), 3, "window bounds the snapshot");
        assert_eq!(pm.lines.len(), 3);
        assert!(pm.lines[2].contains("graft.abort g=hog kind=cpu-hog"));
        let text = pm.to_string();
        assert!(text.contains("== post-mortem: graft `hog` =="));
        assert!(text.contains("abort-kind:  cpu-hog"));
        assert!(text.contains("held-locks:  2"));
        assert!(text.contains("undo-depth:  5"));
    }

    #[test]
    fn no_post_mortem_before_any_abort() {
        let p = plane(8);
        p.emit(TraceEvent::FsRead { fd: 1, len: 1 });
        assert!(p.post_mortem().is_none());
        p.record_post_mortem("x", AbortKind::Trap, 0, 0, Cycles::ZERO);
        assert!(p.post_mortem().is_some());
        p.clear_post_mortem();
        assert!(p.post_mortem().is_none());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = plane(0);
    }
}

//! The virtual cycle clock.
//!
//! All costs in the simulation are expressed in CPU cycles of the paper's
//! test platform (120 MHz Pentium, 8.33 ns per cycle). Subsystems hold an
//! `Rc<VirtualClock>` and charge cycles as work is performed; benchmarks
//! read elapsed cycles and convert to microseconds exactly the way the
//! paper converted cycle-counter deltas.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::rc::Rc;

/// Clock frequency of the paper's test platform (120 MHz Pentium).
pub const CYCLES_PER_US: u64 = 120;

/// A duration measured in CPU cycles.
///
/// `Cycles` is the unit every cost constant and every measurement in this
/// reproduction is expressed in. Use [`Cycles::as_us`] to convert to the
/// microseconds the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Builds a duration from microseconds at the platform clock rate.
    pub const fn from_us(us: u64) -> Cycles {
        Cycles(us * CYCLES_PER_US)
    }

    /// Builds a duration from milliseconds at the platform clock rate.
    pub const fn from_ms(ms: u64) -> Cycles {
        Cycles(ms * 1000 * CYCLES_PER_US)
    }

    /// Converts to microseconds (the unit the paper's tables use).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / CYCLES_PER_US as f64
    }

    /// Converts to milliseconds.
    pub fn as_ms(self) -> f64 {
        self.as_us() / 1000.0
    }

    /// Raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; useful when comparing two path timings.
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc ({:.1}us)", self.0, self.as_us())
    }
}

/// A monotonically advancing cycle counter shared by every subsystem.
///
/// The clock is single-threaded by design: the whole kernel simulation is
/// deterministic (see DESIGN.md §2), so interior mutability via [`Cell`]
/// suffices and keeps charging cheap.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<u64>,
}

impl VirtualClock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Rc<VirtualClock> {
        Rc::new(VirtualClock { now: Cell::new(0) })
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        Cycles(self.now.get())
    }

    /// Advances the clock, charging `c` cycles of work.
    pub fn charge(&self, c: Cycles) {
        self.now.set(self.now.get() + c.0);
    }

    /// Advances the clock by a microsecond-denominated cost.
    pub fn charge_us(&self, us: u64) {
        self.charge(Cycles::from_us(us));
    }

    /// Elapsed cycles since `start`.
    pub fn since(&self, start: Cycles) -> Cycles {
        Cycles(self.now.get() - start.0)
    }

    /// Jumps the clock forward to `t` if `t` is in the future.
    ///
    /// Used by the timer queue when the system idles until the next
    /// scheduled time-out.
    pub fn advance_to(&self, t: Cycles) {
        if t.0 > self.now.get() {
            self.now.set(t.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_us_round_trip() {
        let c = Cycles::from_us(36);
        assert_eq!(c.get(), 36 * CYCLES_PER_US);
        assert!((c.as_us() - 36.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cycles_ms() {
        let c = Cycles::from_ms(18);
        assert!((c.as_ms() - 18.0).abs() < 1e-9);
        assert!((c.as_us() - 18_000.0).abs() < 1e-9);
    }

    #[test]
    fn clock_charges_accumulate() {
        let clk = VirtualClock::new();
        assert_eq!(clk.now(), Cycles::ZERO);
        clk.charge(Cycles(100));
        clk.charge_us(2);
        assert_eq!(clk.now().get(), 100 + 2 * CYCLES_PER_US);
    }

    #[test]
    fn clock_since_and_advance_to() {
        let clk = VirtualClock::new();
        let t0 = clk.now();
        clk.charge(Cycles(50));
        assert_eq!(clk.since(t0), Cycles(50));
        clk.advance_to(Cycles(40)); // in the past: no-op
        assert_eq!(clk.now(), Cycles(50));
        clk.advance_to(Cycles(75));
        assert_eq!(clk.now(), Cycles(75));
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(300);
        let b = Cycles(120);
        assert_eq!(a + b, Cycles(420));
        assert_eq!(a - b, Cycles(180));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles(420));
    }
}

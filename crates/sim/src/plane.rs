//! Shared observability-plane plumbing.
//!
//! Every observability plane (fault, trace, metrics, profile) follows
//! the same attach contract: a single shared `Rc` handle is wired
//! through the subsystems exactly once, and a second attach is refused
//! so two planes can never interleave records on the same sites. The
//! kernel used to re-implement the "already attached" flag per plane;
//! this module centralises the error type and the one-shot slot so new
//! planes get the contract for free.

use std::cell::Cell;
use std::fmt;

/// Errors from `Kernel::attach_*_plane`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachError {
    /// A plane of this kind is already attached. Planes are wired
    /// through every subsystem at attach time; swapping one mid-run
    /// would split the record stream across two planes.
    AlreadyAttached,
}

impl fmt::Display for AttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachError::AlreadyAttached => write!(f, "a plane is already attached"),
        }
    }
}

impl std::error::Error for AttachError {}

/// A one-shot attach slot: the first [`claim`](AttachSlot::claim) wins,
/// every later claim reports [`AttachError::AlreadyAttached`].
///
/// The slot only records *that* a plane was attached — the handle
/// itself lives wherever the subsystems were wired — so it stays a
/// single `Cell<bool>` and works from `&self` attach methods.
#[derive(Debug, Default)]
pub struct AttachSlot {
    taken: Cell<bool>,
}

impl AttachSlot {
    /// An unclaimed slot.
    pub const fn new() -> AttachSlot {
        AttachSlot { taken: Cell::new(false) }
    }

    /// Claims the slot; errors if it was already claimed.
    pub fn claim(&self) -> Result<(), AttachError> {
        if self.taken.replace(true) {
            Err(AttachError::AlreadyAttached)
        } else {
            Ok(())
        }
    }

    /// True once a plane has been attached.
    pub fn is_claimed(&self) -> bool {
        self.taken.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_wins() {
        let slot = AttachSlot::new();
        assert!(!slot.is_claimed());
        assert_eq!(slot.claim(), Ok(()));
        assert!(slot.is_claimed());
        assert_eq!(slot.claim(), Err(AttachError::AlreadyAttached));
        assert_eq!(slot.claim(), Err(AttachError::AlreadyAttached));
    }

    #[test]
    fn error_displays() {
        assert_eq!(AttachError::AlreadyAttached.to_string(), "a plane is already attached");
    }
}

//! The deterministic profiling plane: cycle-exact, per-PC attribution
//! of where a graft's protection budget goes.
//!
//! The third observability plane beside [`crate::trace`] (what
//! happened) and [`crate::metrics`] (how much, per component). This
//! module answers *where, inside the graft*: every retired GraftVM
//! instruction bills its deterministic cycle cost to a
//! (graft, function, pc) key, with MiSFIT sandbox cycles
//! ([`crate::metrics::Component::Sfi`]) kept separate from the graft's
//! own work so SFI overhead shows up as its own frames. On top of the
//! per-PC ledger sit three renderings:
//!
//! - **Folded stacks** ([`ProfilePlane::folded`]): one line per call
//!   path in the `flamegraph.pl` input format
//!   (`graft;fn@0;fn@7 cycles`), with synthetic `[sfi]` leaf frames and
//!   `[txn-begin]`-style frames for the host-side envelope components.
//! - **Hot-function report** ([`ProfilePlane::render_top`]): a
//!   `vino_top`-style table of the top-N functions by self cycles.
//! - **Invocation span trees** ([`ProfilePlane::chrome_trace`]): one
//!   span per graft invocation with child spans for the transaction
//!   envelope (begin / lock-wait / undo / commit / abort), fs and net
//!   dispatch, and RM grants, exported as Chrome `chrome://tracing`
//!   JSON.
//!
//! Design discipline matches the other planes:
//!
//! - **Zero allocations on the hot path.** Per-PC tallies are
//!   pre-sized`Vec` slots ([`ProfilePlane::register_program`], install
//!   time); the call-stack tree allocates only on the first sight of a
//!   (caller, callee) edge; spans live in a fixed-capacity buffer that
//!   drops (and counts) overflow instead of growing. Proven by
//!   `cargo bench -p vino-bench --bench profile_plane`.
//! - **Deterministic.** Driven entirely by the virtual clock, so two
//!   same-seed runs render byte-identical output
//!   (`tests/profile_golden.rs`, `tests/survival.rs`).
//! - **Reconciles with the metrics ledger.** The plane is fed from
//!   exactly the same billing sites with the same bracket semantics as
//!   [`crate::metrics::MetricsPlane::charge`], so per-component sums
//!   agree *exactly* with the Table-3 attribution (asserted in
//!   `crates/bench/src/table3.rs`).
//!
//! Recording a profile never charges the clock: attaching a profile
//! plane is observation, not perturbation.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::clock::{Cycles, VirtualClock};
use crate::metrics::{Attribution, Component};

/// Interned graft-name handle, the profile twin of
/// [`crate::metrics::MetricTag`]. Interning happens at install time;
/// every hot-path call passes the `Copy` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProfTag(pub u16);

/// Maximum concurrently bracketed invocations, matching the metrics
/// plane's nest bound.
const MAX_NEST: usize = 16;

/// Default span-buffer capacity; overflow is dropped and counted.
const DEFAULT_SPAN_CAP: usize = 4096;

/// Reserved call-stack depth per graft (the engine bounds VM call
/// nesting far below this).
const STACK_RESERVE: usize = 64;

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// The kinds of spans in an invocation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One graft invocation, begin bracket to end bracket.
    Invocation,
    /// `TXN_BEGIN` inside the wrapper envelope.
    TxnBegin,
    /// Top-level or nested commit.
    TxnCommit,
    /// Time spent blocked on a contended lock (advance-to-deadline).
    LockWait,
    /// Undo logging or undo execution.
    Undo,
    /// Abort overhead including per-lock release.
    Abort,
    /// File-system dispatch indirection to a grafted policy.
    FsDispatch,
    /// Packet-plane batched filter dispatch.
    NetDispatch,
    /// A resource-manager grant (instantaneous).
    RmGrant,
}

impl SpanKind {
    /// The stable name used in Chrome-trace output.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Invocation => "invoke",
            SpanKind::TxnBegin => "txn-begin",
            SpanKind::TxnCommit => "txn-commit",
            SpanKind::LockWait => "lock-wait",
            SpanKind::Undo => "undo",
            SpanKind::Abort => "abort",
            SpanKind::FsDispatch => "fs-dispatch",
            SpanKind::NetDispatch => "net-dispatch",
            SpanKind::RmGrant => "rm-grant",
        }
    }

    /// The Chrome-trace category.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Invocation => "graft",
            SpanKind::TxnBegin
            | SpanKind::TxnCommit
            | SpanKind::LockWait
            | SpanKind::Undo
            | SpanKind::Abort => "txn",
            SpanKind::FsDispatch => "fs",
            SpanKind::NetDispatch => "net",
            SpanKind::RmGrant => "rm",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Span {
    kind: SpanKind,
    /// Interned graft tag, or `u16::MAX` for kernel-side spans.
    tag: u16,
    start: Cycles,
    dur: Cycles,
    /// For [`SpanKind::Invocation`]: true when the invocation aborted.
    aborted: bool,
}

// ---------------------------------------------------------------------------
// Call-graph nodes.
// ---------------------------------------------------------------------------

/// One node in a graft's call tree: a function (identified by its entry
/// pc) reached through a particular caller chain.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Parent node index, or `u32::MAX` for the root.
    parent: u32,
    /// Entry pc of the function this node represents (0 for the root).
    entry: u32,
    /// Self cycles billed at this node, excluding SFI.
    cycles: u64,
    /// Self SFI cycles (Clamp / CheckCall) billed at this node.
    sfi: u64,
    /// Times this node was entered (`calll`; root counts via
    /// invocations).
    enters: u64,
}

const ROOT: u32 = 0;

// ---------------------------------------------------------------------------
// Per-graft slots and invocation frames.
// ---------------------------------------------------------------------------

/// Per-graft profile state, one slot per interned tag.
#[derive(Debug)]
struct GraftProf {
    /// Program length; sizes the per-PC arrays.
    prog_len: usize,
    /// Total cycles billed at each pc (all components).
    pc_cycles: Vec<u64>,
    /// SFI cycles billed at each pc.
    pc_sfi: Vec<u64>,
    /// Instructions retired at each pc.
    pc_hits: Vec<u64>,
    /// Attributed cycles per component, merged at end-of-invocation —
    /// the mirror of the metrics ledger.
    comps: [u64; Component::COUNT],
    /// Invocations bracketed for this graft.
    invocations: u64,
    /// Instructions retired across all invocations.
    instrs: u64,
    /// Call-tree nodes; `nodes[0]` is the root.
    nodes: Vec<Node>,
    /// (parent node, callee entry pc) → node index.
    edges: HashMap<(u32, u32), u32>,
    /// Current call stack, as node indices (excluding `cur`).
    stack: Vec<u32>,
    /// The node currently executing.
    cur: u32,
}

impl GraftProf {
    fn new() -> GraftProf {
        GraftProf {
            prog_len: 0,
            pc_cycles: Vec::new(),
            pc_sfi: Vec::new(),
            pc_hits: Vec::new(),
            comps: [0; Component::COUNT],
            invocations: 0,
            instrs: 0,
            nodes: vec![Node { parent: u32::MAX, entry: 0, cycles: 0, sfi: 0, enters: 0 }],
            edges: HashMap::new(),
            stack: Vec::with_capacity(STACK_RESERVE),
            cur: ROOT,
        }
    }
}

/// One open invocation bracket on the fixed-depth stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    tag: ProfTag,
    start: Cycles,
    comps: [u64; Component::COUNT],
}

const IDLE_FRAME: Frame =
    Frame { tag: ProfTag(u16::MAX), start: Cycles(0), comps: [0; Component::COUNT] };

/// One row of the hot-function report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotFn {
    /// The graft the function belongs to.
    pub graft: String,
    /// Entry pc of the function (0 = the graft's entry function).
    pub entry: u32,
    /// Self cycles, excluding SFI.
    pub self_cycles: u64,
    /// Self SFI cycles.
    pub sfi_cycles: u64,
    /// Times the function was entered.
    pub calls: u64,
}

// ---------------------------------------------------------------------------
// The plane.
// ---------------------------------------------------------------------------

/// The shared profiling plane handle (see module docs).
///
/// Create once, wrap in `Rc`, attach with `Kernel::attach_profile_plane`
/// (or wire subsystems individually via their `set_profile_plane`).
#[derive(Debug)]
pub struct ProfilePlane {
    clock: Rc<VirtualClock>,
    grafts: RefCell<Vec<GraftProf>>,
    names: RefCell<Vec<String>>,
    tags: RefCell<HashMap<String, ProfTag>>,
    frames: RefCell<[Frame; MAX_NEST]>,
    depth: Cell<usize>,
    /// Dispatch charges awaiting the invocation they dispatch (mirrors
    /// the metrics plane's pending-indirection rule).
    pending_indirection: Cell<u64>,
    /// Charges recorded outside any invocation (kernel-side work).
    kernel_comps: Cell<[u64; Component::COUNT]>,
    spans: RefCell<Vec<Span>>,
    span_cap: usize,
    spans_dropped: Cell<u64>,
}

impl ProfilePlane {
    /// Creates a plane stamped by `clock` with default capacities.
    pub fn new(clock: Rc<VirtualClock>) -> Rc<ProfilePlane> {
        ProfilePlane::with_capacity(clock, 32, DEFAULT_SPAN_CAP)
    }

    /// Creates a plane with room for `grafts` interned names and
    /// `spans` recorded spans. The span buffer never grows: overflow is
    /// dropped and counted ([`Self::spans_dropped`]).
    pub fn with_capacity(clock: Rc<VirtualClock>, grafts: usize, spans: usize) -> Rc<ProfilePlane> {
        Rc::new(ProfilePlane {
            clock,
            grafts: RefCell::new(Vec::with_capacity(grafts)),
            names: RefCell::new(Vec::with_capacity(grafts)),
            tags: RefCell::new(HashMap::with_capacity(grafts)),
            frames: RefCell::new([IDLE_FRAME; MAX_NEST]),
            depth: Cell::new(0),
            pending_indirection: Cell::new(0),
            kernel_comps: Cell::new([0; Component::COUNT]),
            spans: RefCell::new(Vec::with_capacity(spans)),
            span_cap: spans,
            spans_dropped: Cell::new(0),
        })
    }

    // -- interning ----------------------------------------------------------

    /// Interns `name`, allocating a per-graft slot on first sight
    /// (install time).
    pub fn tag(&self, name: &str) -> ProfTag {
        if let Some(t) = self.tags.borrow().get(name) {
            return *t;
        }
        let mut names = self.names.borrow_mut();
        let t = ProfTag(names.len() as u16);
        names.push(name.to_string());
        self.grafts.borrow_mut().push(GraftProf::new());
        self.tags.borrow_mut().insert(name.to_string(), t);
        t
    }

    /// The interned name for `tag` (`?tagN` for unknown tags).
    pub fn name_of(&self, tag: ProfTag) -> String {
        self.names.borrow().get(tag.0 as usize).cloned().unwrap_or_else(|| format!("?tag{}", tag.0))
    }

    /// Sizes `tag`'s per-PC arrays for a program of `len` instructions
    /// (install time; the arrays only ever grow, so re-installs of a
    /// longer program under the same name stay in bounds).
    pub fn register_program(&self, tag: ProfTag, len: usize) {
        let mut grafts = self.grafts.borrow_mut();
        let Some(g) = grafts.get_mut(tag.0 as usize) else { return };
        if len > g.prog_len {
            g.prog_len = len;
            g.pc_cycles.resize(len, 0);
            g.pc_sfi.resize(len, 0);
            g.pc_hits.resize(len, 0);
        }
    }

    // -- hot-path recording -------------------------------------------------

    fn charge_bracketed(&self, c: Component, cost: Cycles) {
        let d = self.depth.get();
        if d > 0 {
            self.frames.borrow_mut()[d - 1].comps[c as usize] += cost.get();
        } else if c == Component::Indirection {
            self.pending_indirection.set(self.pending_indirection.get() + cost.get());
        } else {
            let mut v = self.kernel_comps.get();
            v[c as usize] += cost.get();
            self.kernel_comps.set(v);
        }
    }

    /// Attributes a host-side `cost` to component `c` of the innermost
    /// open invocation, with exactly the bracket semantics of
    /// [`crate::metrics::MetricsPlane::charge`] — pending indirection
    /// and the kernel ledger included — so the two planes reconcile.
    /// Zero-allocation.
    pub fn charge(&self, c: Component, cost: Cycles) {
        self.charge_bracketed(c, cost);
    }

    /// Bills one retired instruction: `cost` cycles of component `c`
    /// (the VM only bills [`Component::GraftFn`] and
    /// [`Component::Sfi`]) at program counter `pc` of graft `tag`.
    /// Updates the per-PC ledger, the current call-tree node, and the
    /// bracketed component attribution. Zero-allocation.
    pub fn record_pc(&self, tag: ProfTag, pc: usize, c: Component, cost: Cycles) {
        self.charge_bracketed(c, cost);
        let mut grafts = self.grafts.borrow_mut();
        let Some(g) = grafts.get_mut(tag.0 as usize) else { return };
        g.instrs += 1;
        let sfi = c == Component::Sfi;
        if pc < g.prog_len {
            g.pc_cycles[pc] += cost.get();
            g.pc_hits[pc] += 1;
            if sfi {
                g.pc_sfi[pc] += cost.get();
            }
        }
        let node = &mut g.nodes[g.cur as usize];
        if sfi {
            node.sfi += cost.get();
        } else {
            node.cycles += cost.get();
        }
    }

    /// Descends into the function at `entry` (a `calll` retired by the
    /// VM). Allocates only on the first sight of a (caller, callee)
    /// edge.
    pub fn enter_fn(&self, tag: ProfTag, entry: u32) {
        let mut grafts = self.grafts.borrow_mut();
        let Some(g) = grafts.get_mut(tag.0 as usize) else { return };
        let cur = g.cur;
        let next = match g.edges.get(&(cur, entry)) {
            Some(n) => *n,
            None => {
                let n = g.nodes.len() as u32;
                g.nodes.push(Node { parent: cur, entry, cycles: 0, sfi: 0, enters: 0 });
                g.edges.insert((cur, entry), n);
                n
            }
        };
        g.nodes[next as usize].enters += 1;
        g.stack.push(cur);
        g.cur = next;
    }

    /// Returns from the current function (a `ret` retired by the VM).
    pub fn exit_fn(&self, tag: ProfTag) {
        let mut grafts = self.grafts.borrow_mut();
        let Some(g) = grafts.get_mut(tag.0 as usize) else { return };
        g.cur = g.stack.pop().unwrap_or(ROOT);
    }

    /// Rewinds `tag`'s call stack to the root (VM reset: a fresh run
    /// starts at pc 0 with an empty call stack).
    pub fn reset_stack(&self, tag: ProfTag) {
        let mut grafts = self.grafts.borrow_mut();
        let Some(g) = grafts.get_mut(tag.0 as usize) else { return };
        g.stack.clear();
        g.cur = ROOT;
    }

    /// Opens an invocation bracket for `tag`: claims any pending
    /// dispatch charge, stamps the span start, and rewinds the call
    /// stack. Zero-allocation.
    pub fn begin_invocation(&self, tag: ProfTag) {
        let d = self.depth.get();
        assert!(d < MAX_NEST, "profile invocation nest deeper than MAX_NEST");
        let mut frame = Frame { tag, start: self.clock.now(), comps: [0; Component::COUNT] };
        frame.comps[Component::Indirection as usize] += self.pending_indirection.replace(0);
        self.frames.borrow_mut()[d] = frame;
        self.depth.set(d + 1);
        let mut grafts = self.grafts.borrow_mut();
        if let Some(g) = grafts.get_mut(tag.0 as usize) {
            g.invocations += 1;
            g.stack.clear();
            g.cur = ROOT;
        }
    }

    /// Closes the innermost invocation bracket: merges the frame's
    /// attribution into the graft ledger and records the invocation
    /// span. Zero-allocation (the span buffer is pre-sized).
    pub fn end_invocation(&self, committed: bool) {
        let d = self.depth.get();
        assert!(d > 0, "end_invocation without begin_invocation");
        self.depth.set(d - 1);
        let frame = self.frames.borrow()[d - 1];
        if let Some(g) = self.grafts.borrow_mut().get_mut(frame.tag.0 as usize) {
            for (total, add) in g.comps.iter_mut().zip(frame.comps.iter()) {
                *total += add;
            }
        }
        let now = self.clock.now();
        self.push_span(Span {
            kind: SpanKind::Invocation,
            tag: frame.tag.0,
            start: frame.start,
            dur: now.saturating_sub(frame.start),
            aborted: !committed,
        });
    }

    /// Records a dead-graft invocation refused to the fallback path:
    /// flushes any unclaimed dispatch charge to the kernel ledger
    /// (mirroring the metrics plane).
    pub fn mark_fallback(&self) {
        let pending = self.pending_indirection.replace(0);
        if pending > 0 {
            let mut v = self.kernel_comps.get();
            v[Component::Indirection as usize] += pending;
            self.kernel_comps.set(v);
        }
    }

    /// Records a child span of `kind` that just finished and lasted
    /// `dur` (subsystems charge the clock at the site, so the span
    /// covers `[now - dur, now]`). Zero-allocation.
    pub fn mark(&self, kind: SpanKind, dur: Cycles) {
        let now = self.clock.now();
        self.push_span(Span {
            kind,
            tag: self.current_tag(),
            start: now.saturating_sub(dur),
            dur,
            aborted: false,
        });
    }

    /// Records a child span of `kind` that started at `t0` and just
    /// finished. Zero-allocation.
    pub fn mark_since(&self, kind: SpanKind, t0: Cycles) {
        let now = self.clock.now();
        self.push_span(Span {
            kind,
            tag: self.current_tag(),
            start: t0,
            dur: now.saturating_sub(t0),
            aborted: false,
        });
    }

    fn current_tag(&self) -> u16 {
        let d = self.depth.get();
        if d > 0 {
            self.frames.borrow()[d - 1].tag.0
        } else {
            u16::MAX
        }
    }

    fn push_span(&self, span: Span) {
        let mut spans = self.spans.borrow_mut();
        if spans.len() < self.span_cap {
            spans.push(span);
        } else {
            self.spans_dropped.set(self.spans_dropped.get() + 1);
        }
    }

    // -- introspection ------------------------------------------------------

    /// Interned tags in intern order (install order).
    pub fn tags_in_order(&self) -> Vec<ProfTag> {
        (0..self.names.borrow().len() as u16).map(ProfTag).collect()
    }

    /// The per-component attribution ledger for `tag` — by
    /// construction equal to the metrics plane's
    /// [`crate::metrics::MetricsPlane::attribution`] for the same
    /// graft.
    pub fn attribution(&self, tag: ProfTag) -> Option<Attribution> {
        self.grafts
            .borrow()
            .get(tag.0 as usize)
            .map(|g| Attribution { cycles: g.comps, invocations: g.invocations })
    }

    /// Cycles attributed to kernel-side work outside any invocation.
    pub fn kernel_attribution(&self) -> [u64; Component::COUNT] {
        self.kernel_comps.get()
    }

    /// Instructions retired by `tag`.
    pub fn instrs_of(&self, tag: ProfTag) -> u64 {
        self.grafts.borrow().get(tag.0 as usize).map_or(0, |g| g.instrs)
    }

    /// Sums of `tag`'s per-PC ledger: (graft-fn cycles, SFI cycles,
    /// retirements). The component split reconciles exactly with the
    /// attribution ledger's [`Component::GraftFn`] / [`Component::Sfi`]
    /// rows.
    pub fn pc_totals(&self, tag: ProfTag) -> (Cycles, Cycles, u64) {
        let grafts = self.grafts.borrow();
        let Some(g) = grafts.get(tag.0 as usize) else { return (Cycles(0), Cycles(0), 0) };
        let total: u64 = g.pc_cycles.iter().sum();
        let sfi: u64 = g.pc_sfi.iter().sum();
        let hits: u64 = g.pc_hits.iter().sum();
        (Cycles(total - sfi), Cycles(sfi), hits)
    }

    /// `tag`'s per-PC cycles aggregated into buckets of `bucket` pcs:
    /// `(first_pc, total_cycles, sfi_cycles, hits)` per non-empty
    /// bucket.
    pub fn pc_buckets(&self, tag: ProfTag, bucket: usize) -> Vec<(usize, u64, u64, u64)> {
        let bucket = bucket.max(1);
        let grafts = self.grafts.borrow();
        let Some(g) = grafts.get(tag.0 as usize) else { return Vec::new() };
        let mut out = Vec::new();
        let mut pc = 0;
        while pc < g.prog_len {
            let end = (pc + bucket).min(g.prog_len);
            let cycles: u64 = g.pc_cycles[pc..end].iter().sum();
            let sfi: u64 = g.pc_sfi[pc..end].iter().sum();
            let hits: u64 = g.pc_hits[pc..end].iter().sum();
            if hits > 0 {
                out.push((pc, cycles, sfi, hits));
            }
            pc = end;
        }
        out
    }

    /// Spans dropped because the fixed span buffer was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.get()
    }

    /// Spans currently recorded.
    pub fn span_count(&self) -> usize {
        self.spans.borrow().len()
    }

    /// The top-`n` functions across all grafts by self cycles
    /// (SFI included in the ranking key, reported separately).
    pub fn top_functions(&self, n: usize) -> Vec<HotFn> {
        let names = self.names.borrow();
        let grafts = self.grafts.borrow();
        // (graft, entry) → merged totals across call-tree nodes.
        let mut merged: Vec<HotFn> = Vec::new();
        for (gi, g) in grafts.iter().enumerate() {
            let mut per_fn: HashMap<u32, (u64, u64, u64)> = HashMap::new();
            for node in &g.nodes {
                let e = per_fn.entry(node.entry).or_insert((0, 0, 0));
                e.0 += node.cycles;
                e.1 += node.sfi;
                e.2 += node.enters;
            }
            for (entry, (cycles, sfi, mut calls)) in per_fn {
                if cycles == 0 && sfi == 0 {
                    continue;
                }
                if entry == 0 {
                    calls = g.invocations;
                }
                merged.push(HotFn {
                    graft: names[gi].clone(),
                    entry,
                    self_cycles: cycles,
                    sfi_cycles: sfi,
                    calls,
                });
            }
        }
        merged.sort_by(|a, b| {
            (b.self_cycles + b.sfi_cycles, &a.graft, a.entry).cmp(&(
                a.self_cycles + a.sfi_cycles,
                &b.graft,
                b.entry,
            ))
        });
        merged.truncate(n);
        merged
    }

    // -- rendering (all off the hot path) -----------------------------------

    /// Folded-stack output in the `flamegraph.pl` input format: one
    /// `frame;frame;frame cycles` line per call path (plus `[sfi]` leaf
    /// frames and `[component]` frames for the host-side envelope), in
    /// deterministic order. Pipe through `flamegraph.pl` to get an SVG.
    pub fn folded(&self) -> String {
        let names = self.names.borrow();
        let grafts = self.grafts.borrow();
        let mut out = String::new();
        for (gi, g) in grafts.iter().enumerate() {
            let name = &names[gi];
            // Host-side envelope components as single synthetic frames.
            for c in Component::ALL {
                if c == Component::GraftFn || c == Component::Sfi {
                    continue;
                }
                let v = g.comps[c as usize];
                if v > 0 {
                    let _ = writeln!(out, "{name};[{}] {v}", c.label());
                }
            }
            // The VM call tree, depth-first with children in entry-pc
            // order.
            let mut children: Vec<Vec<u32>> = vec![Vec::new(); g.nodes.len()];
            for (i, node) in g.nodes.iter().enumerate().skip(1) {
                children[node.parent as usize].push(i as u32);
            }
            for kids in &mut children {
                kids.sort_by_key(|&i| g.nodes[i as usize].entry);
            }
            let mut path = vec![format!("{name};fn@0")];
            let mut stack = vec![(ROOT, false)];
            while let Some((node, visited)) = stack.pop() {
                if visited {
                    path.pop();
                    continue;
                }
                let n = &g.nodes[node as usize];
                if node != ROOT {
                    path.push(format!("fn@{}", n.entry));
                }
                let prefix = path.join(";");
                if n.cycles > 0 {
                    let _ = writeln!(out, "{prefix} {}", n.cycles);
                }
                if n.sfi > 0 {
                    let _ = writeln!(out, "{prefix};[sfi] {}", n.sfi);
                }
                stack.push((node, true));
                for &kid in children[node as usize].iter().rev() {
                    stack.push((kid, false));
                }
            }
        }
        let kernel = self.kernel_comps.get();
        for c in Component::ALL {
            let v = kernel[c as usize];
            if v > 0 {
                let _ = writeln!(out, "kernel;[{}] {v}", c.label());
            }
        }
        out
    }

    /// The `vino_top`-style hot-function table for the top `n`
    /// functions by self cycles.
    pub fn render_top(&self, n: usize) -> String {
        let mut out =
            String::from("graft              function     self-cycles   sfi-cycles      calls\n");
        for f in self.top_functions(n) {
            let _ = writeln!(
                out,
                "{:<18} {:<10} {:>13} {:>12} {:>10}",
                f.graft,
                format!("fn@{}", f.entry),
                f.self_cycles,
                f.sfi_cycles,
                f.calls,
            );
        }
        out
    }

    /// The invocation span trees as Chrome `chrome://tracing` JSON
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    /// Complete (`ph:"X"`) events on one track; nesting is implied by
    /// containment. Timestamps and durations are microseconds of
    /// virtual time. Deterministic: spans render in record order.
    pub fn chrome_trace(&self) -> String {
        let names = self.names.borrow();
        let spans = self.spans.borrow();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = match s.kind {
                SpanKind::Invocation => {
                    let graft = names.get(s.tag as usize).map(String::as_str).unwrap_or("?");
                    if s.aborted {
                        format!("invoke:{graft}!abort")
                    } else {
                        format!("invoke:{graft}")
                    }
                }
                kind => kind.label().to_string(),
            };
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1}}",
                escape_json(&name),
                s.kind.category(),
                s.start.as_us(),
                s.dur.as_us(),
            );
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"spansDropped\":{}}}}}\n",
            self.spans_dropped.get(),
        );
        out
    }

    /// The canonical full snapshot frozen by the golden battery: folded
    /// stacks, the hot-function table, and the Chrome trace.
    /// Byte-identical across same-seed runs.
    pub fn snapshot(&self) -> String {
        let mut out = String::from("== folded stacks ==\n");
        out.push_str(&self.folded());
        out.push_str("== hot functions ==\n");
        out.push_str(&self.render_top(10));
        out.push_str("== chrome trace ==\n");
        out.push_str(&self.chrome_trace());
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> (Rc<ProfilePlane>, Rc<VirtualClock>) {
        let clock = VirtualClock::new();
        (ProfilePlane::new(Rc::clone(&clock)), clock)
    }

    #[test]
    fn tags_intern_and_stay_stable() {
        let (pp, _) = plane();
        let a = pp.tag("ra");
        let b = pp.tag("evict");
        assert_eq!(pp.tag("ra"), a);
        assert_ne!(a, b);
        assert_eq!(pp.name_of(a), "ra");
        assert_eq!(pp.name_of(ProfTag(99)), "?tag99");
    }

    #[test]
    fn per_pc_ledger_reconciles_with_components() {
        let (pp, _) = plane();
        let t = pp.tag("g");
        pp.register_program(t, 8);
        pp.begin_invocation(t);
        pp.record_pc(t, 0, Component::GraftFn, Cycles(10));
        pp.record_pc(t, 1, Component::Sfi, Cycles(4));
        pp.record_pc(t, 1, Component::Sfi, Cycles(4));
        pp.record_pc(t, 7, Component::GraftFn, Cycles(35));
        pp.end_invocation(true);
        let (fn_c, sfi_c, hits) = pp.pc_totals(t);
        assert_eq!(fn_c, Cycles(45));
        assert_eq!(sfi_c, Cycles(8));
        assert_eq!(hits, 4);
        let a = pp.attribution(t).unwrap();
        assert_eq!(a.of(Component::GraftFn), fn_c);
        assert_eq!(a.of(Component::Sfi), sfi_c);
        assert_eq!(pp.instrs_of(t), 4);
    }

    #[test]
    fn call_tree_folds_by_path() {
        let (pp, _) = plane();
        let t = pp.tag("g");
        pp.register_program(t, 32);
        pp.begin_invocation(t);
        pp.record_pc(t, 0, Component::GraftFn, Cycles(5));
        pp.enter_fn(t, 10);
        pp.record_pc(t, 10, Component::GraftFn, Cycles(7));
        pp.record_pc(t, 11, Component::Sfi, Cycles(4));
        pp.enter_fn(t, 20);
        pp.record_pc(t, 20, Component::GraftFn, Cycles(9));
        pp.exit_fn(t);
        pp.record_pc(t, 12, Component::GraftFn, Cycles(3));
        pp.exit_fn(t);
        pp.end_invocation(true);
        let folded = pp.folded();
        assert!(folded.contains("g;fn@0 5\n"), "{folded}");
        assert!(folded.contains("g;fn@0;fn@10 10\n"), "{folded}");
        assert!(folded.contains("g;fn@0;fn@10;[sfi] 4\n"), "{folded}");
        assert!(folded.contains("g;fn@0;fn@10;fn@20 9\n"), "{folded}");
    }

    #[test]
    fn recursive_paths_get_distinct_nodes() {
        let (pp, _) = plane();
        let t = pp.tag("g");
        pp.register_program(t, 8);
        pp.begin_invocation(t);
        pp.enter_fn(t, 4);
        pp.record_pc(t, 4, Component::GraftFn, Cycles(1));
        pp.enter_fn(t, 4);
        pp.record_pc(t, 4, Component::GraftFn, Cycles(1));
        pp.exit_fn(t);
        pp.exit_fn(t);
        pp.end_invocation(true);
        let folded = pp.folded();
        assert!(folded.contains("g;fn@0;fn@4 1\n"), "{folded}");
        assert!(folded.contains("g;fn@0;fn@4;fn@4 1\n"), "{folded}");
    }

    #[test]
    fn bracket_semantics_mirror_metrics() {
        use crate::metrics::MetricsPlane;
        let clock = VirtualClock::new();
        let pp = ProfilePlane::new(Rc::clone(&clock));
        let mp = MetricsPlane::new(Rc::clone(&clock));
        let pt = pp.tag("g");
        let mt = mp.tag("g");
        pp.register_program(pt, 4);
        // Pending indirection claimed by the next bracket; kernel-side
        // charges land in the kernel ledger — on both planes alike.
        for (c, cost) in [(Component::Lock, Cycles(55)), (Component::Indirection, Cycles(120))] {
            pp.charge(c, cost);
            mp.charge(c, cost);
        }
        pp.begin_invocation(pt);
        mp.begin_invocation(mt);
        pp.record_pc(pt, 0, Component::GraftFn, Cycles(10));
        mp.charge(Component::GraftFn, Cycles(10));
        pp.charge(Component::TxnBegin, Cycles::from_us(36));
        mp.charge(Component::TxnBegin, Cycles::from_us(36));
        pp.end_invocation(true);
        mp.end_invocation(true);
        let pa = pp.attribution(pt).unwrap();
        let ma = mp.attribution(mt).unwrap();
        assert_eq!(pa, ma);
        assert_eq!(pp.kernel_attribution(), mp.kernel_attribution());
    }

    #[test]
    fn spans_record_and_cap() {
        let clock = VirtualClock::new();
        let pp = ProfilePlane::with_capacity(Rc::clone(&clock), 4, 2);
        let t = pp.tag("g");
        pp.begin_invocation(t);
        clock.charge(Cycles::from_us(36));
        pp.mark(SpanKind::TxnBegin, Cycles::from_us(36));
        clock.charge(Cycles::from_us(30));
        pp.end_invocation(true);
        assert_eq!(pp.span_count(), 2);
        assert_eq!(pp.spans_dropped(), 0);
        pp.mark(SpanKind::RmGrant, Cycles(0));
        assert_eq!(pp.span_count(), 2, "buffer is fixed-capacity");
        assert_eq!(pp.spans_dropped(), 1);
        let json = pp.chrome_trace();
        assert!(json.contains("\"name\":\"txn-begin\""), "{json}");
        assert!(json.contains("\"name\":\"invoke:g\""), "{json}");
        assert!(json.contains("\"spansDropped\":1"), "{json}");
    }

    #[test]
    fn aborted_invocations_are_named() {
        let (pp, _) = plane();
        let t = pp.tag("bad");
        pp.begin_invocation(t);
        pp.end_invocation(false);
        assert!(pp.chrome_trace().contains("invoke:bad!abort"));
    }

    #[test]
    fn top_functions_rank_by_cycles() {
        let (pp, _) = plane();
        let t = pp.tag("g");
        pp.register_program(t, 32);
        pp.begin_invocation(t);
        pp.record_pc(t, 0, Component::GraftFn, Cycles(5));
        pp.enter_fn(t, 8);
        pp.record_pc(t, 8, Component::GraftFn, Cycles(100));
        pp.record_pc(t, 9, Component::Sfi, Cycles(4));
        pp.exit_fn(t);
        pp.end_invocation(true);
        let top = pp.top_functions(10);
        assert_eq!(top[0].entry, 8);
        assert_eq!(top[0].self_cycles, 100);
        assert_eq!(top[0].sfi_cycles, 4);
        assert_eq!(top[0].calls, 1);
        assert_eq!(top[1].entry, 0);
        assert_eq!(top[1].calls, 1, "root calls = invocations");
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (pp, clock) = plane();
        let t = pp.tag("g");
        pp.register_program(t, 4);
        pp.begin_invocation(t);
        pp.record_pc(t, 0, Component::GraftFn, Cycles(10));
        clock.charge(Cycles(100));
        pp.end_invocation(true);
        assert_eq!(pp.snapshot(), pp.snapshot());
    }
}

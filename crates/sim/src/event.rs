//! A timer/event queue driven by the virtual clock.
//!
//! VINO schedules lock time-outs "on system-clock boundaries, which occur
//! every 10 ms" (§4.5). The queue stores absolute deadlines in cycles;
//! [`EventQueue::round_to_tick`] models the clock-boundary quantisation,
//! which is why the paper observes 10–20 ms of delay before a hoarding
//! transaction is timed out.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::Cycles;
use crate::costs::CLOCK_TICK;

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<T> {
    deadline: Cycles,
    seq: u64,
    id: TimerId,
    payload: T,
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deadline-ordered queue of pending timers carrying payload `T`.
#[derive(Debug, Default)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_id: u64,
    cancelled: Vec<TimerId>,
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue { heap: BinaryHeap::new(), next_id: 0, cancelled: Vec::new() }
    }

    /// Rounds a deadline up to the next 10 ms system-clock boundary, as
    /// VINO's timer wheel does (§4.5). A deadline exactly on a boundary is
    /// kept; otherwise the *next* boundary fires it, so the observed delay
    /// for a duration-`d` time-out is between `d` and `d + 10ms`.
    pub fn round_to_tick(deadline: Cycles) -> Cycles {
        let tick = CLOCK_TICK.get();
        Cycles(deadline.get().div_ceil(tick) * tick)
    }

    /// Schedules `payload` to fire at `deadline` (absolute), rounded to
    /// the system-clock tick. Returns an id usable with [`cancel`].
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn schedule(&mut self, deadline: Cycles, payload: T) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        let seq = id.0;
        self.heap.push(Reverse(Entry {
            deadline: Self::round_to_tick(deadline),
            seq,
            id,
            payload,
        }));
        id
    }

    /// Schedules at an exact deadline with no tick rounding (used by unit
    /// tests and by the fine-grained interpreter fuel timer).
    pub fn schedule_exact(&mut self, deadline: Cycles, payload: T) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        let seq = id.0;
        self.heap.push(Reverse(Entry { deadline, seq, id, payload }));
        id
    }

    /// Cancels a previously scheduled timer. Cancelling an already-fired
    /// or unknown id is a harmless no-op (lazily discarded on pop).
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.push(id);
    }

    /// Deadline of the earliest live timer, if any.
    pub fn next_deadline(&mut self) -> Option<Cycles> {
        self.drop_cancelled_head();
        self.heap.peek().map(|Reverse(e)| e.deadline)
    }

    /// Pops every timer whose deadline is `<= now`, in deadline order.
    pub fn fire_due(&mut self, now: Cycles) -> Vec<(TimerId, T)> {
        let mut out = Vec::new();
        loop {
            self.drop_cancelled_head();
            match self.heap.peek() {
                Some(Reverse(e)) if e.deadline <= now => {
                    let Reverse(e) = self.heap.pop().expect("peeked entry vanished");
                    out.push((e.id, e.payload));
                }
                _ => break,
            }
        }
        out
    }

    /// True when no live timers remain.
    pub fn is_empty(&mut self) -> bool {
        self.drop_cancelled_head();
        self.heap.is_empty()
    }

    fn drop_cancelled_head(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.contains(&e.id) {
                let id = e.id;
                self.heap.pop();
                self.cancelled.retain(|c| *c != id);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_10ms_boundaries() {
        let tick = CLOCK_TICK.get();
        assert_eq!(EventQueue::<u32>::round_to_tick(Cycles(1)).get(), tick);
        assert_eq!(EventQueue::<u32>::round_to_tick(Cycles(tick)).get(), tick);
        assert_eq!(EventQueue::<u32>::round_to_tick(Cycles(tick + 1)).get(), 2 * tick);
    }

    #[test]
    fn timeout_delay_is_between_d_and_d_plus_tick() {
        // The paper: "the delay for timing out a transaction will be
        // between 10 and 20 ms" for a 10 ms timeout.
        let d = CLOCK_TICK; // requested duration 10ms
        for start_offset in [0u64, 1, 500_000, CLOCK_TICK.get() - 1] {
            let start = Cycles(start_offset);
            let fire = EventQueue::<u32>::round_to_tick(start + d);
            let delay = fire.get() - start.get();
            assert!(delay >= d.get(), "delay {delay} below requested duration");
            assert!(delay <= d.get() + CLOCK_TICK.get(), "delay {delay} beyond d+tick");
        }
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut q = EventQueue::new();
        q.schedule_exact(Cycles(30), "c");
        q.schedule_exact(Cycles(10), "a");
        q.schedule_exact(Cycles(20), "b");
        let fired: Vec<&str> = q.fire_due(Cycles(25)).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!["a", "b"]);
        assert!(!q.is_empty());
        let fired: Vec<&str> = q.fire_due(Cycles(30)).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!["c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        let _a = q.schedule_exact(Cycles(10), 1u32);
        let _b = q.schedule_exact(Cycles(10), 2u32);
        let fired: Vec<u32> = q.fire_due(Cycles(10)).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec![1, 2]);
    }

    #[test]
    fn cancel_suppresses_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule_exact(Cycles(10), "a");
        q.schedule_exact(Cycles(20), "b");
        q.cancel(a);
        assert_eq!(q.next_deadline(), Some(Cycles(20)));
        let fired: Vec<&str> = q.fire_due(Cycles(100)).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!["b"]);
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.cancel(TimerId(99));
        assert!(q.is_empty());
    }
}

//! Deterministic pseudo-random numbers for workload generation.
//!
//! The simulation must be reproducible run-to-run (the lock time-out and
//! eviction experiments depend on exact interleavings), so the library
//! uses its own tiny SplitMix64 generator instead of seeding `rand` from
//! the environment. Benchmarks that want distributional variety seed one
//! generator per experiment id.

/// A SplitMix64 generator (Steele, Lea & Flood; public domain algorithm).
///
/// Passes BigCrush when used as a 64-bit generator and is the standard
/// seeder for other PRNGs. Two instances with the same seed produce the
/// same stream on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The raw generator state, for checkpointing. Feeding it back
    /// through [`from_state`](Self::from_state) resumes the exact
    /// stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator mid-stream from a [`state`](Self::state)
    /// capture.
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A random boolean with probability `num/den` of being true.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`, used for the paper's random-order
    /// file-read workloads (§4.1.3 reads 3000 blocks "in a random order").
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

/// A vendored xorshift64* generator: the tiny fallback that replaces
/// the external `rand` crate so the workspace builds with no crates-io
/// mirror (Marsaglia's xorshift with Vigna's multiplier; public domain).
///
/// Weaker than [`SplitMix64`] statistically but byte-for-byte
/// reproducible and dependency-free; use it where test or bench code
/// previously reached for `rand` and any deterministic stream will do.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed; a zero seed (the one fixed
    /// point of xorshift) is remapped to a fixed non-zero constant.
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value (xorshift64 step, then the `*` multiply).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A random boolean with probability `num/den` of being true.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_deterministic_and_nonzero_safe() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Zero seed must not wedge at the xorshift fixed point.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn xorshift_bounds_hold() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_values() {
        // Known-good SplitMix64 outputs for seed 0 (cross-checked against
        // the reference C implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SplitMix64::new(1234);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And not the identity (astronomically unlikely).
        assert_ne!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = SplitMix64::new(77);
        let hits = (0..100_000).filter(|_| r.chance(1, 4)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_bound_panics() {
        SplitMix64::new(1).below(0);
    }
}

//! Integration tests for the timer queue's tick-rounded scheduling path
//! (the unit tests cover `round_to_tick` and `schedule_exact`; these
//! cover `schedule`, interleaved cancellation, and clock-driven draining
//! as the transaction manager uses it).

use vino_sim::costs::CLOCK_TICK;
use vino_sim::{Cycles, EventQueue, SplitMix64, VirtualClock};

#[test]
fn schedule_rounds_to_boundaries_and_fires_in_order() {
    let mut q = EventQueue::new();
    let clock = VirtualClock::new();
    // Three timers inside the same tick all fire together on the
    // boundary, in schedule order.
    q.schedule(Cycles(100), "a");
    q.schedule(Cycles(50_000), "b");
    q.schedule(Cycles(1), "c");
    assert_eq!(q.next_deadline(), Some(Cycles(CLOCK_TICK.get())));
    clock.advance_to(Cycles(CLOCK_TICK.get() - 1));
    assert!(q.fire_due(clock.now()).is_empty(), "nothing before the boundary");
    clock.advance_to(Cycles(CLOCK_TICK.get()));
    let fired: Vec<&str> = q.fire_due(clock.now()).into_iter().map(|(_, p)| p).collect();
    assert_eq!(fired, vec!["a", "b", "c"]);
}

#[test]
fn timers_across_many_ticks() {
    let mut q = EventQueue::new();
    for i in 1..=5u64 {
        q.schedule(Cycles(i * CLOCK_TICK.get()), i);
    }
    // Drain tick by tick.
    for tick in 1..=5u64 {
        let fired = q.fire_due(Cycles(tick * CLOCK_TICK.get()));
        assert_eq!(fired.len(), 1, "tick {tick}");
        assert_eq!(fired[0].1, tick);
    }
    assert!(q.is_empty());
}

#[test]
fn cancel_between_ticks() {
    let mut q = EventQueue::new();
    let a = q.schedule(Cycles(1), "a");
    let b = q.schedule(Cycles(CLOCK_TICK.get() + 1), "b");
    q.cancel(b);
    let fired: Vec<&str> =
        q.fire_due(Cycles(3 * CLOCK_TICK.get())).into_iter().map(|(_, p)| p).collect();
    assert_eq!(fired, vec!["a"]);
    q.cancel(a); // Cancelling after firing: harmless.
    assert!(q.is_empty());
}

/// Every scheduled deadline fires on a tick boundary, no earlier than
/// requested and less than one tick late. Seeded deterministic sweep
/// (formerly a proptest).
#[test]
fn tick_rounding_bounds() {
    let mut rng = SplitMix64::new(0xE11E75);
    for _case in 0..256 {
        let n = rng.range(1, 19) as usize;
        let deadlines: Vec<u64> = (0..n).map(|_| rng.range(1, 10 * CLOCK_TICK.get() - 1)).collect();
        let mut q = EventQueue::new();
        for (i, d) in deadlines.iter().enumerate() {
            q.schedule(Cycles(*d), i);
        }
        let mut fired = Vec::new();
        let mut now = 0u64;
        while !q.is_empty() {
            now += CLOCK_TICK.get();
            for (_, i) in q.fire_due(Cycles(now)) {
                fired.push((i, now));
            }
            assert!(now < 20 * CLOCK_TICK.get(), "queue must drain");
        }
        assert_eq!(fired.len(), deadlines.len());
        for (i, fired_at) in fired {
            let want = deadlines[i];
            assert!(fired_at >= want, "timer {i} fired early");
            assert!(fired_at < want + 2 * CLOCK_TICK.get(), "timer {i} fired too late");
            assert_eq!(fired_at % CLOCK_TICK.get(), 0, "on a boundary");
        }
    }
}

//! Cost-benefit figures (§4.1.1 and §4.2.2).
//!
//! - **Read-ahead crossover**: "the application will win if the cost of
//!   the read-ahead graft is less than the time the application spends
//!   between read requests" — the paper's threshold is the 107 µs safe
//!   path (and it notes summing a 4 KB array takes 137 µs). This figure
//!   sweeps the compute time between reads and reports the net win per
//!   read of the grafted random-access application over the ungrafted
//!   one, using the full stack (disk model, buffer cache, prefetch
//!   queue, transactional graft).
//! - **Eviction break-even**: "the cost of adding the graft is 316 us,
//!   while the benefit of avoiding a page fault is approximately 18 ms
//!   [...] The graft can disagree with the victim selection
//!   approximately 57 times for each I/O that we save."

use std::rc::Rc;

use vino_core::adapters::{share, RaGraftAdapter};
use vino_dev::Disk;
use vino_fs::{Fd, FileSystem};
use vino_sim::{Cycles, SplitMix64, VirtualClock};

use crate::render::{PathTable, Row};
use crate::world::{build, Variant};
use crate::{table3, table4};

/// Blocks in the 12 MB test file (§4.1.3).
const FILE_BLOCKS: usize = 3072;
/// Reads per sweep point (the paper uses 3000; 200 keeps the full sweep
/// fast while the trimmed mean stays stable).
const READS: usize = 200;

struct RaWorld {
    fs: FileSystem,
    fd: Fd,
    clock: Rc<VirtualClock>,
    graft: Option<vino_core::adapters::SharedGraft>,
}

fn make_ra_world(grafted: bool) -> RaWorld {
    // The graft world supplies engine + instance on a fresh clock; the
    // file system shares that clock.
    let w = build(table3::RA_GRAFT_SRC, 32 * 1024, Variant::Safe, 1);
    let clock = Rc::clone(&w.clock);
    let disk = Disk::new(Rc::clone(&clock));
    let mut fs = FileSystem::format(Rc::clone(&clock), disk, 64, 8);
    fs.create("db", (FILE_BLOCKS * 4096) as u64).expect("fits");
    let fd = fs.open("db").expect("exists");
    let graft = if grafted {
        let shared = share(w.graft);
        fs.set_ra_delegate(fd, Box::new(RaGraftAdapter::new(Rc::clone(&shared))))
            .expect("fd valid");
        Some(shared)
    } else {
        None
    };
    RaWorld { fs, fd, clock, graft }
}

/// Mean elapsed µs per (read + compute) iteration over a random access
/// sequence, with the application posting its next access in the shared
/// buffer before each read (§4.1.3's methodology).
fn elapsed_per_read(grafted: bool, compute_us: u64) -> f64 {
    let mut w = make_ra_world(grafted);
    let mut rng = SplitMix64::new(0xBEEF);
    let seq: Vec<u64> = rng
        .permutation(FILE_BLOCKS)
        .into_iter()
        .take(READS + 1)
        .map(|b| (b * 4096) as u64)
        .collect();
    let t0 = w.clock.now();
    for i in 0..READS {
        let cur = seq[i];
        let next = seq[i + 1];
        if let Some(g) = &w.graft {
            // The application places "the location and size of its
            // subsequent read in the shared buffer".
            let mut inst = g.borrow_mut();
            let mem = inst.mem();
            mem.graft_write_u32(1024, 2);
            mem.graft_write_u32(1028, cur as u32);
            mem.graft_write_u32(1032, next as u32);
        }
        w.fs.read(w.fd, cur, 4096).expect("in bounds");
        // Compute between reads.
        w.clock.charge(Cycles::from_us(compute_us));
    }
    w.clock.since(t0).as_us() / READS as f64
}

/// The read-ahead crossover figure: net win per read vs compute time.
pub fn readahead_crossover() -> PathTable {
    let mut rows = Vec::new();
    let mut crossover = None;
    for compute_us in (0..=250).step_by(25) {
        let plain = elapsed_per_read(false, compute_us);
        let grafted = elapsed_per_read(true, compute_us);
        let win = plain - grafted;
        if crossover.is_none() && win > 0.0 {
            crossover = Some(compute_us);
        }
        rows.push(Row::value(format!("compute {compute_us:>3} us: net win per read (us)"), win));
    }
    let note = match crossover {
        Some(c) => format!(
            "crossover between {} and {} us of compute (paper threshold: 107 us; \
             summing a 4KB array = 137 us)",
            c.saturating_sub(25),
            c
        ),
        None => "no crossover in sweep range".to_string(),
    };
    PathTable {
        id: "E3",
        title: "§4.1.1 Read-ahead cost-benefit crossover".to_string(),
        rows,
        notes: vec![note],
    }
}

/// The eviction break-even figure.
pub fn eviction_break_even(reps: usize) -> PathTable {
    let t4 = table4::run(reps);
    let path = |label: &str| {
        t4.rows.iter().find(|r| r.label == label).and_then(|r| r.elapsed_us).expect("row")
    };
    let disagreement_cost = path("Safe path") - path("Base path");
    let fault = vino_sim::costs::PAGE_FAULT_COST.as_us();
    let ratio = fault / disagreement_cost;
    PathTable {
        id: "E4",
        title: "§4.2.2 Eviction graft break-even".to_string(),
        rows: vec![
            Row::value("Cost of a graft disagreement (us)", disagreement_cost),
            Row::value("Benefit of an avoided page fault (us)", fault),
            Row::value("Disagreements per saved I/O", ratio),
        ],
        notes: vec!["paper: 316 us per disagreement, 18 ms per fault, ratio ~57".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grafted_random_reads_beat_default_when_compute_is_ample() {
        // With 250 us of compute per read the graft wins clearly.
        let plain = elapsed_per_read(false, 250);
        let grafted = elapsed_per_read(true, 250);
        assert!(grafted < plain, "grafted {grafted:.1} us/read must beat plain {plain:.1}");
    }

    #[test]
    fn default_policy_never_prefetches_random_reads() {
        let mut w = make_ra_world(false);
        let mut rng = SplitMix64::new(1);
        for _ in 0..20 {
            let b = rng.below(FILE_BLOCKS as u64) * 4096;
            w.fs.read(w.fd, b, 4096).unwrap();
        }
        assert_eq!(w.fs.stats().prefetches_issued, 0);
    }

    #[test]
    fn grafted_policy_prefetches_each_posted_block() {
        let w = elapsed_per_read(true, 100);
        let _ = w;
        // Covered by the crossover test below via win > 0; here just
        // confirm the world wires up: a single read issues a prefetch.
        let mut world = make_ra_world(true);
        let g = world.graft.clone().unwrap();
        {
            let mut inst = g.borrow_mut();
            let mem = inst.mem();
            mem.graft_write_u32(1024, 2);
            mem.graft_write_u32(1028, 0);
            mem.graft_write_u32(1032, 8 * 4096);
        }
        world.fs.read(world.fd, 0, 4096).unwrap();
        assert_eq!(world.fs.stats().prefetches_issued, 1);
    }

    #[test]
    fn crossover_near_the_paper_threshold() {
        // Net win at 0 us compute is negative (pure overhead); at
        // 250 us it is positive. The crossover sits near the safe-path
        // cost (paper: 107 us).
        let lo = elapsed_per_read(false, 0) - elapsed_per_read(true, 0);
        let hi = elapsed_per_read(false, 250) - elapsed_per_read(true, 250);
        assert!(lo < 0.0, "win at 0 compute = {lo}");
        assert!(hi > 0.0, "win at 250 compute = {hi}");
    }

    #[test]
    fn eviction_break_even_near_57() {
        let t = eviction_break_even(5);
        let ratio = t
            .rows
            .iter()
            .find(|r| r.label == "Disagreements per saved I/O")
            .and_then(|r| r.overhead_us)
            .unwrap();
        assert!((30.0..=110.0).contains(&ratio), "ratio {ratio} (paper 57)");
    }
}

//! The debugging plane over the survival battery: deterministic storm
//! scenarios with checkpoint/restore, fault bisection, delta-debugging
//! scenario shrinking, and reproducer files (see `docs/DEBUGGING.md`).
//!
//! The storm is a distilled survival battery (`tests/survival.rs`)
//! whose every random draw is made **up front** ([`StormSpec::generate`]),
//! so execution consumes no generator state: steps can be dropped (the
//! shrinker) or the fault plane capped (the bisector) without
//! re-shuffling the remainder of the run. The zoo is restricted to
//! grafts that commit when funded, so every abort is *caused by an
//! injection* — which makes the `abort-free` invariant monotone in the
//! injection cap and therefore binary-searchable:
//!
//! - with cap `m ≥ j` (where injection `j` is the first abort-causing
//!   one) the run is identical to the uncapped run through injection
//!   `j`, so the abort happens;
//! - with cap `m < j` no injection ever fires past `m`, and the zoo
//!   cannot abort organically, so the run stays clean.

use std::rc::Rc;

use vino_core::engine::InvokeOutcome;
use vino_core::kernel::{point_names, KernelConfig};
use vino_core::reliability::ReliabilityState;
use vino_core::{AdmissionState, BillingMode, InstallError, InstallOpts, Kernel};
use vino_dev::disk::DiskImage;
use vino_fs::Fd;
use vino_misfit::SignedImage;
use vino_rm::{AccountantState, Limits, PrincipalId, ResourceKind};
use vino_sim::fault::{FaultPlane, FaultPlaneState, FaultSite};
use vino_sim::metrics::{MetricsPlane, MetricsState};
use vino_sim::trace::{TracePlane, TraceState};
use vino_sim::watch::{WatchPlane, WatchState};
use vino_sim::{render_timeline, Cycles, SplitMix64, ThreadId, TimelineOpts};
use vino_txn::locks::LockClass;
use vino_txn::TxnStats;

/// Steps in the default storm (`vino-bench bisect` et al.).
pub const DEFAULT_STEPS: usize = 64;

/// Virtual slack between a checkpoint's quiesce instant and the cycle
/// the resumed run aligns to: the restored kernel's mount + scaffold
/// rebuild must finish inside it (asserted at restore time).
const CHECKPOINT_SLACK_MS: u64 = 500;

/// Zoo entry names, in index order (reproducer files name grafts).
pub const ZOO_NAMES: [&str; 4] = ["good-kv", "alloc", "hoard", "locker"];

/// Probe-file size in blocks — deliberately bigger than the default
/// 256-block buffer cache, so storm reads keep reaching the disk.
pub const PROBE_BLOCKS: u64 = 512;

/// The named invariants a storm run is scored against, in check order.
pub const INVARIANTS: [&str; 4] =
    ["conservation", "ledger-balance", "fallback-coverage", "abort-free"];

struct ZooEntry {
    name: &'static str,
    image: SignedImage,
    /// Kernel-state slot the graft writes on commit, if any.
    slot: Option<usize>,
}

/// The storm zoo: only grafts that commit when funded, so the storm is
/// abort-free until an injection fires (the monotonicity precondition).
fn build_zoo(k: &Kernel) -> Vec<ZooEntry> {
    let z = |name: &str, src: &str| k.compile_graft(name, src).unwrap();
    vec![
        ZooEntry {
            name: "good-kv",
            image: z("good-kv", "mov r2, r1\nconst r1, 5\ncall $kv_set\nhalt r2"),
            slot: Some(5),
        },
        ZooEntry {
            name: "alloc",
            image: z("alloc", "call $kalloc\ncall $kfree\nhalt r0"),
            slot: None,
        },
        ZooEntry { name: "hoard", image: z("hoard", "call $kalloc\nhalt r0"), slot: None },
        ZooEntry {
            name: "locker",
            image: z("locker", "const r1, 0\ncall $lock\nhalt r0"),
            slot: None,
        },
    ]
}

/// The fault configuration of one storm step. Rates last for the step;
/// one-shots are armed relative to the site's visit count at step
/// entry, so dropping earlier steps (the shrinker) keeps them meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultChoice {
    /// No injection this step.
    None,
    /// Arm a one-shot VM trap `offset` visits past the next one.
    VmTrap {
        /// Visits past the next one.
        offset: u64,
    },
    /// 1-in-3 disk reads fail with a media error.
    DiskRead,
    /// 1-in-4 disk accesses stall.
    DiskStall,
    /// 1-in-2 resource charges are denied as over-limit.
    ResourceExhaust,
}

/// One fully pre-drawn storm step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormStep {
    /// Virtual ms charged before the step runs.
    pub pre_ms: u64,
    /// The step's fault configuration.
    pub fault: FaultChoice,
    /// Zoo index of the graft to install and invoke.
    pub graft: usize,
    /// The invocation argument (and `good-kv`'s committed value).
    pub arg: u64,
    /// Whether the install transfers a heap budget to the graft.
    pub funded: bool,
    /// Probe-file block driven while injection is live.
    pub read_block: u64,
}

/// A complete storm scenario: every random draw made up front, so
/// execution consumes no generator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormSpec {
    /// Seed (fault-plane stream + provenance).
    pub seed: u64,
    /// The steps, in execution order.
    pub steps: Vec<StormStep>,
}

impl StormSpec {
    /// Pre-draws an `n`-step storm from `seed`.
    pub fn generate(seed: u64, n: usize) -> StormSpec {
        let mut rng = SplitMix64::new(seed ^ 0xD1A6_D1A6);
        let steps = (0..n)
            .map(|_| {
                let fault = match rng.below(12) {
                    0..=4 | 11 => FaultChoice::None,
                    5 | 6 => FaultChoice::DiskRead,
                    7 | 8 => FaultChoice::DiskStall,
                    9 => FaultChoice::VmTrap { offset: rng.below(12) },
                    _ => FaultChoice::ResourceExhaust,
                };
                let graft = rng.below(ZOO_NAMES.len() as u64) as usize;
                StormStep {
                    pre_ms: rng.below(120),
                    fault,
                    graft,
                    arg: rng.range(1, 4096),
                    // alloc/hoard only commit when funded; the storm
                    // funds them unconditionally so every abort is
                    // injection-caused (the monotonicity precondition).
                    funded: graft == 1 || graft == 2 || rng.chance(1, 2),
                    read_block: rng.below(PROBE_BLOCKS),
                }
            })
            .collect();
        StormSpec { seed, steps }
    }
}

/// Per-run outcome counters (carried across checkpoint/restore).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Committed invocations.
    pub commits: u64,
    /// Aborted invocations (every one injection-caused, by design).
    pub aborts: u64,
    /// Installs the kernel refused (quarantine, verify).
    pub install_refusals: u64,
    /// Steps whose disarmed default-path probe read failed.
    pub fallback_failures: u64,
    /// Steps where a kernel slot diverged from the committed model.
    pub conservation_breaks: u64,
}

/// A named-invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which of [`INVARIANTS`] flipped.
    pub invariant: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

/// A full debug-plane snapshot: everything needed to resume the storm
/// from this instant instead of cycle 0. Captured at quiesced step
/// boundaries ([`DebugWorld::capture`]), consumed by
/// [`DebugWorld::restore`].
pub struct Checkpoint {
    /// Steps completed when the capture was taken.
    pub at_step: usize,
    /// The virtual cycle the resumed run aligns to (quiesce instant
    /// plus slack).
    pub cycle: Cycles,
    /// The next checkpoint deadline, so a resumed run keeps the cadence.
    pub next_cp: Cycles,
    /// Outcome counters so far.
    pub tally: Tally,
    /// The committed-value model of the kernel slots.
    pub model: [u64; 64],
    /// The kernel slots themselves.
    pub kv: [u64; 64],
    /// The persistent disk (journal quiesced first).
    pub image: DiskImage,
    /// Fault-plane stream position, site states, cap and hit count.
    pub fault: FaultPlaneState,
    /// The flight recorder: ring, stats, interned names, post-mortem.
    pub trace: TraceState,
    /// Metrics counters, attribution ledgers, latency histogram.
    pub metrics: MetricsState,
    /// The resource accountant's book.
    pub rm: AccountantState,
    /// Failure ledgers and quarantine deadlines.
    pub rel: ReliabilityState,
    /// Transaction-id counter and lifetime stats.
    pub txn: (u64, TxnStats),
    /// Watch-plane windows, firing flags, alert ring and counters.
    pub watch: WatchState,
    /// Admission-controller deny history and decision counters.
    pub admission: AdmissionState,
    /// The trace serialization at capture (byte-equality witness).
    pub trace_snapshot: String,
    /// The metrics snapshot at capture (byte-equality witness).
    pub metrics_snapshot: String,
    /// The alert-stream serialization at capture (byte-equality
    /// witness).
    pub watch_snapshot: String,
}

impl Checkpoint {
    /// One-line description for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "checkpoint @step {:>3}  cycle {:>12}  trace {:>4} lines  {} commits  {} aborts",
            self.at_step,
            self.cycle.get(),
            self.trace_snapshot.lines().count(),
            self.tally.commits,
            self.tally.aborts,
        )
    }
}

/// A booted storm world: kernel, planes, scaffolding, model, tally.
pub struct DebugWorld {
    /// The kernel under storm.
    pub k: Rc<Kernel>,
    /// The fault plane (cap, schedule, injection stream).
    pub plane: Rc<FaultPlane>,
    /// The trace plane (flight recorder, timeline substrate).
    pub tp: Rc<TracePlane>,
    /// The metrics plane.
    pub mp: Rc<MetricsPlane>,
    /// The watch plane (alert stream, admission-control substrate).
    pub wp: Rc<WatchPlane>,
    /// The installing application principal.
    pub app: PrincipalId,
    /// The battery thread.
    pub thread: ThreadId,
    /// The probe file driven while injection is live.
    pub fd: Fd,
    /// Committed-value model of the kernel slots.
    pub model: [u64; 64],
    /// Outcome counters.
    pub tally: Tally,
    next_cp: Cycles,
    zoo: Vec<ZooEntry>,
    cfg: KernelConfig,
}

impl DebugWorld {
    /// Boots a fresh storm world: kernel, planes (attached first, so
    /// scaffolding I/O is observed), app, thread, lock, zoo, probe file.
    pub fn boot(seed: u64, cfg: &KernelConfig) -> DebugWorld {
        let k = Kernel::boot_with(cfg.clone());
        let plane = FaultPlane::seeded(seed);
        k.attach_fault_plane(Rc::clone(&plane)).unwrap();
        let tp = TracePlane::with_capacity(Rc::clone(&k.clock), cfg.trace_capacity);
        tp.set_post_mortem_window(cfg.post_mortem_window);
        k.attach_trace_plane(Rc::clone(&tp)).unwrap();
        let mp = MetricsPlane::new(Rc::clone(&k.clock));
        k.attach_metrics_plane(Rc::clone(&mp)).unwrap();
        // After the trace plane, so alert edges mirror onto the timeline.
        let wp = WatchPlane::new(Rc::clone(&k.clock));
        k.attach_watch_plane(Rc::clone(&wp)).unwrap();
        let (app, thread, fd, zoo) = DebugWorld::scaffold(&k, true);
        DebugWorld {
            k,
            plane,
            tp,
            mp,
            wp,
            app,
            thread,
            fd,
            model: [0; 64],
            tally: Tally::default(),
            next_cp: Cycles::from_ms(cfg.checkpoint_interval_ms),
            zoo,
            cfg: cfg.clone(),
        }
    }

    /// The canonical scaffolding order, shared by [`boot`](Self::boot)
    /// and [`restore`](Self::restore) so principal ids, thread ids,
    /// lock handles and fds line up across a checkpoint boundary.
    fn scaffold(k: &Kernel, fresh: bool) -> (PrincipalId, ThreadId, Fd, Vec<ZooEntry>) {
        let app = k.create_app(Limits::of(&[
            (ResourceKind::KernelHeap, 1 << 30),
            (ResourceKind::Memory, 1 << 30),
        ]));
        let thread = k.spawn_thread("battery");
        let _ = k.engine.register_lock(LockClass::Buffer);
        let zoo = build_zoo(k);
        // Larger than the default buffer cache, so probe reads keep
        // missing and the disk fault sites stay hot all storm long.
        if fresh {
            k.fs.borrow_mut().create("probe", PROBE_BLOCKS * 4096).unwrap();
        }
        let fd = k.fs.borrow_mut().open("probe").unwrap();
        (app, thread, fd, zoo)
    }

    /// Captures a checkpoint at a quiesced step boundary: quiesce the
    /// kernel (journal zeroed, caches dropped, disk mechanism re-homed
    /// — its fault/metrics footprint is part of the capture), export
    /// every plane and subsystem, snapshot the disk, then advance both
    /// this run and any future resumed run to the same slack cycle.
    pub fn capture(&mut self, at_step: usize) -> Checkpoint {
        self.plane.disarm_all();
        self.k.quiesce_for_checkpoint();
        let cycle = self.k.clock.now() + Cycles::from_ms(CHECKPOINT_SLACK_MS);
        let fault = self.plane.export_state();
        let trace = self.tp.export_state();
        let metrics = self.mp.export_state();
        let rm = self.k.engine.rm.borrow().export_state();
        let rel = self.k.reliability().export_state();
        let txn = self.k.engine.txn.borrow().debug_state();
        let mut kv = [0u64; 64];
        for (slot, v) in kv.iter_mut().enumerate() {
            *v = self.k.engine.kv_read(slot);
        }
        let image = self.k.crash_image();
        self.k.clock.advance_to(cycle);
        self.next_cp = cycle + Cycles::from_ms(self.cfg.checkpoint_interval_ms);
        Checkpoint {
            at_step,
            cycle,
            next_cp: self.next_cp,
            tally: self.tally,
            model: self.model,
            kv,
            image,
            fault,
            trace,
            metrics,
            rm,
            rel,
            txn,
            watch: self.wp.export_state(),
            admission: self.k.admission().export_state(),
            trace_snapshot: self.tp.serialize(),
            metrics_snapshot: self.mp.snapshot(),
            watch_snapshot: self.wp.serialize(),
        }
    }

    /// Rebuilds a world from a checkpoint. The mount and scaffolding
    /// rebuild happen **before** any plane is attached (their I/O is
    /// invisible — the captured plane states already account for run
    /// A's scaffolding), the kernel is re-quiesced so volatile fs state
    /// matches the capture instant, subsystem states are replanted, the
    /// clock aligns to the checkpoint cycle, and the restored planes
    /// attach last.
    pub fn restore(cp: &Checkpoint, seed: u64, cfg: &KernelConfig) -> DebugWorld {
        let k = Kernel::boot_from_image(cfg.clone(), cp.image.clone())
            .expect("checkpoint image mounts clean");
        let (app, thread, fd, zoo) = DebugWorld::scaffold(&k, false);
        k.quiesce_for_checkpoint();
        k.engine.rm.borrow_mut().restore_state(&cp.rm);
        k.reliability().restore_state(&cp.rel);
        k.engine.txn.borrow_mut().restore_debug_state(cp.txn.0, cp.txn.1);
        for (slot, v) in cp.kv.iter().enumerate() {
            k.engine.kv_write(slot, *v);
        }
        assert!(
            k.clock.now() <= cp.cycle,
            "checkpoint slack too small: rebuild took {} cycles, slack ends at {}",
            k.clock.now().get(),
            cp.cycle.get()
        );
        k.clock.advance_to(cp.cycle);
        let plane = FaultPlane::seeded(seed);
        plane.restore_state(&cp.fault);
        k.attach_fault_plane(Rc::clone(&plane)).unwrap();
        let tp = TracePlane::with_capacity(Rc::clone(&k.clock), cfg.trace_capacity);
        tp.set_post_mortem_window(cfg.post_mortem_window);
        tp.restore_state(&cp.trace);
        k.attach_trace_plane(Rc::clone(&tp)).unwrap();
        let mp = MetricsPlane::new(Rc::clone(&k.clock));
        mp.restore_state(&cp.metrics);
        k.attach_metrics_plane(Rc::clone(&mp)).unwrap();
        let wp = WatchPlane::new(Rc::clone(&k.clock));
        wp.restore_state(&cp.watch);
        k.attach_watch_plane(Rc::clone(&wp)).unwrap();
        k.admission().restore_state(&cp.admission);
        DebugWorld {
            k,
            plane,
            tp,
            mp,
            wp,
            app,
            thread,
            fd,
            model: cp.model,
            tally: cp.tally,
            next_cp: cp.next_cp,
            zoo,
            cfg: cfg.clone(),
        }
    }

    /// Runs one storm step: arm the step's fault, install + invoke the
    /// graft, drive the probe file under injection, then score the
    /// named invariants (scored, not asserted, so the bisector and
    /// shrinker observe flips instead of panics — kernel-integrity
    /// leaks still panic).
    pub fn run_step(&mut self, i: usize, step: &StormStep) {
        let k = Rc::clone(&self.k);
        k.clock.charge(Cycles::from_ms(step.pre_ms));
        self.plane.disarm_all();
        match step.fault {
            FaultChoice::None => {}
            FaultChoice::VmTrap { offset } => {
                self.plane.arm(FaultSite::VmTrap, self.plane.visits(FaultSite::VmTrap) + 1 + offset)
            }
            FaultChoice::DiskRead => self.plane.set_rate(FaultSite::DiskRead, 1, 3),
            FaultChoice::DiskStall => self.plane.set_rate(FaultSite::DiskStall, 1, 4),
            FaultChoice::ResourceExhaust => self.plane.set_rate(FaultSite::ResourceExhaust, 1, 2),
        }
        let entry = &self.zoo[step.graft];
        let opts = if step.funded {
            InstallOpts {
                billing: BillingMode::Transfer(vec![(ResourceKind::KernelHeap, 8192)]),
                ..InstallOpts::default()
            }
        } else {
            InstallOpts::default()
        };
        let installed = match k.install_function_graft(
            point_names::COMPUTE_RA,
            &entry.image,
            self.app,
            self.thread,
            &opts,
        ) {
            Ok(g) => Some(g),
            Err(
                InstallError::Quarantined { until, .. }
                | InstallError::AdmissionDenied { until, .. },
            ) => {
                // Reactive (quarantine) and proactive (admission-control
                // backoff) refusals both carry a deadline: wait it out
                // and retry once. Waiting also decays the watch windows
                // that fired the alert, so a single retry usually lands.
                self.tally.install_refusals += 1;
                k.clock.advance_to(until);
                match k.install_function_graft(
                    point_names::COMPUTE_RA,
                    &entry.image,
                    self.app,
                    self.thread,
                    &opts,
                ) {
                    Ok(g) => Some(g),
                    Err(_) => {
                        self.tally.install_refusals += 1;
                        None
                    }
                }
            }
            Err(InstallError::Verify(_)) => {
                self.tally.install_refusals += 1;
                None
            }
            Err(e) => panic!("step {i} ({}): unexpected install refusal: {e}", entry.name),
        };
        if let Some(g) = installed {
            g.borrow_mut().max_slices = 16;
            let principal = g.borrow().principal;
            match g.borrow_mut().invoke([step.arg, i as u64, 0, 0]) {
                InvokeOutcome::Ok { .. } => {
                    self.tally.commits += 1;
                    if let Some(slot) = entry.slot {
                        self.model[slot] = step.arg;
                    }
                }
                InvokeOutcome::Aborted { .. } => self.tally.aborts += 1,
                InvokeOutcome::Dead => unreachable!("fresh install cannot be dead"),
            }
            k.engine.rm.borrow_mut().destroy(principal, Some(self.app));
        }
        // Drive the disk while injection is live: a failed read is a
        // legal answer, a wedged kernel is not.
        let _ = k.fs.borrow_mut().read(self.fd, step.read_block * 4096, 4096);

        // Kernel-integrity invariants: a leak here is a kernel bug, not
        // a scenario outcome.
        {
            let txn = k.engine.txn.borrow();
            assert_eq!(txn.active_txns(), 0, "step {i}: transaction leaked");
            assert_eq!(txn.lock_table().held_count(), 0, "step {i}: lock leaked");
            assert_eq!(txn.lock_table().waiter_count(), 0, "step {i}: waiter leaked");
        }
        if k.engine.kv_read(5) != self.model[5] {
            self.tally.conservation_breaks += 1;
        }
        self.plane.disarm_all();
        if k.fs.borrow_mut().read(self.fd, 0, 4096).is_err() {
            self.tally.fallback_failures += 1;
        }
    }

    fn maybe_checkpoint(&mut self, at_step: usize, on: bool, out: &mut Vec<Checkpoint>) {
        if on && self.cfg.checkpoint_interval_ms > 0 && self.k.clock.now() >= self.next_cp {
            out.push(self.capture(at_step));
        }
    }

    /// Scores the named invariants, first flip wins (see [`INVARIANTS`]).
    pub fn violation(&self) -> Option<Violation> {
        if self.tally.conservation_breaks > 0 {
            return Some(Violation {
                invariant: "conservation",
                detail: format!("{} kernel-slot divergence(s)", self.tally.conservation_breaks),
            });
        }
        let ledgered = self.k.reliability().total_aborts();
        if ledgered != self.tally.aborts {
            return Some(Violation {
                invariant: "ledger-balance",
                detail: format!("ledgers say {ledgered} aborts, battery saw {}", self.tally.aborts),
            });
        }
        if self.tally.fallback_failures > 0 {
            return Some(Violation {
                invariant: "fallback-coverage",
                detail: format!(
                    "{} disarmed default-path read(s) failed",
                    self.tally.fallback_failures
                ),
            });
        }
        if self.tally.aborts > 0 {
            return Some(Violation {
                invariant: "abort-free",
                detail: format!("{} injection-caused graft abort(s)", self.tally.aborts),
            });
        }
        None
    }
}

/// Knobs for one storm execution.
#[derive(Clone, Default)]
pub struct StormOpts {
    /// Suppress every injection past this many hits (`None` = uncapped).
    pub cap: Option<u64>,
    /// Record the ordered `(site, visit)` injection schedule.
    pub record_schedule: bool,
    /// Capture checkpoints at the config's cadence.
    pub checkpoints: bool,
    /// Kernel configuration (checkpoint cadence, flight-recorder size).
    pub cfg: KernelConfig,
}

/// The outcome of one storm execution.
pub struct StormReport {
    /// First named invariant flipped, if any.
    pub violation: Option<Violation>,
    /// Outcome counters.
    pub tally: Tally,
    /// Injections that hit (fired or cap-suppressed).
    pub injections: u64,
    /// The ordered injection schedule (empty unless recorded).
    pub schedule: Vec<(FaultSite, u64)>,
    /// The trace plane's canonical serialization.
    pub trace: String,
    /// The metrics plane's snapshot.
    pub metrics: String,
    /// The watch plane's canonical alert stream.
    pub alerts: String,
    /// The watch plane's live snapshot (firing alerts + stats).
    pub watch: String,
    /// Admission-controller decision counters.
    pub admission: vino_core::AdmissionStats,
    /// Checkpoints captured along the way.
    pub checkpoints: Vec<Checkpoint>,
}

/// Runs `spec` from cycle 0 and keeps the world (timeline rendering,
/// manual capture) alongside the captured checkpoints.
pub fn run_storm_world(spec: &StormSpec, opts: &StormOpts) -> (DebugWorld, Vec<Checkpoint>) {
    let mut w = DebugWorld::boot(spec.seed, &opts.cfg);
    w.plane.set_injection_cap(opts.cap);
    w.plane.record_schedule(opts.record_schedule);
    let mut cps = Vec::new();
    for (i, step) in spec.steps.iter().enumerate() {
        w.run_step(i, step);
        w.maybe_checkpoint(i + 1, opts.checkpoints, &mut cps);
    }
    (w, cps)
}

/// Runs `spec` from cycle 0 and reports.
pub fn run_storm(spec: &StormSpec, opts: &StormOpts) -> StormReport {
    let (w, cps) = run_storm_world(spec, opts);
    finish(w, cps)
}

/// Resumes `spec` from `cp` instead of cycle 0 and reports. With the
/// same `opts` the report's trace and metrics are byte-identical to the
/// uninterrupted run's.
pub fn resume_storm(spec: &StormSpec, cp: &Checkpoint, opts: &StormOpts) -> StormReport {
    let mut w = DebugWorld::restore(cp, spec.seed, &opts.cfg);
    let mut cps = Vec::new();
    for i in cp.at_step..spec.steps.len() {
        w.run_step(i, &spec.steps[i]);
        w.maybe_checkpoint(i + 1, opts.checkpoints, &mut cps);
    }
    finish(w, cps)
}

fn finish(w: DebugWorld, cps: Vec<Checkpoint>) -> StormReport {
    StormReport {
        violation: w.violation(),
        tally: w.tally,
        injections: w.plane.injection_hits(),
        schedule: w.plane.schedule(),
        trace: w.tp.serialize(),
        metrics: w.mp.snapshot(),
        alerts: w.wp.serialize(),
        watch: w.wp.snapshot(),
        admission: w.k.admission().stats(),
        checkpoints: cps,
    }
}

fn violates(spec: &StormSpec, cfg: &KernelConfig, cap: Option<u64>, invariant: &str) -> bool {
    let r = run_storm(spec, &StormOpts { cap, cfg: cfg.clone(), ..StormOpts::default() });
    r.violation.as_ref().map(|v| v.invariant) == Some(invariant)
}

/// The bisector's verdict: which injection first flipped the invariant.
pub struct BisectResult {
    /// The invariant the uncapped run violates.
    pub invariant: &'static str,
    /// Total injections in the uncapped run.
    pub total_injections: u64,
    /// Smallest injection cap that still violates — the culprit's
    /// 1-based position in the schedule.
    pub culprit_cap: u64,
    /// The culprit injection: fault site and site-visit number.
    pub culprit: (FaultSite, u64),
    /// Capped replays the binary search spent (≤ ⌈log₂ n⌉ + 1).
    pub replays: u64,
    /// The uncapped baseline run (schedule recorded).
    pub baseline: StormReport,
}

/// Binary-searches the ordered injection schedule for the first
/// injection that flips the baseline's violated invariant. `None` when
/// the uncapped run is clean (nothing to bisect) or nothing injected.
pub fn bisect(spec: &StormSpec, cfg: &KernelConfig) -> Option<BisectResult> {
    let baseline = run_storm(
        spec,
        &StormOpts { record_schedule: true, cfg: cfg.clone(), ..StormOpts::default() },
    );
    let invariant = baseline.violation.as_ref()?.invariant;
    let n = baseline.injections;
    if n == 0 {
        return None;
    }
    assert_eq!(n as usize, baseline.schedule.len(), "schedule must list every hit");
    // Invariant of the search: violated(lo) = false, violated(hi) = true.
    // Cap 0 fires nothing (clean by construction); cap n is the
    // baseline itself.
    let (mut lo, mut hi) = (0u64, n);
    let mut replays = 0u64;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        replays += 1;
        if violates(spec, cfg, Some(mid), invariant) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let culprit = baseline.schedule[hi as usize - 1];
    Some(BisectResult {
        invariant,
        total_injections: n,
        culprit_cap: hi,
        culprit,
        replays,
        baseline,
    })
}

/// Ground truth for the bisector's O(log n) claim: scan caps 1, 2, 3, …
/// until the invariant flips. Returns `(culprit_cap, replays)`.
pub fn linear_scan(spec: &StormSpec, cfg: &KernelConfig) -> Option<(u64, u64)> {
    let baseline = run_storm(spec, &StormOpts { cfg: cfg.clone(), ..StormOpts::default() });
    let invariant = baseline.violation.as_ref()?.invariant;
    let mut replays = 0u64;
    for cap in 1..=baseline.injections {
        replays += 1;
        if violates(spec, cfg, Some(cap), invariant) {
            return Some((cap, replays));
        }
    }
    None
}

/// The shrinker's verdict: a 1-minimal failing scenario.
pub struct ShrinkResult {
    /// The minimized spec (still violates [`invariant`](Self::invariant)).
    pub spec: StormSpec,
    /// The invariant preserved through minimization.
    pub invariant: &'static str,
    /// Replays the delta-debugging loop spent.
    pub replays: u64,
    /// Step count before minimization.
    pub original_steps: usize,
}

/// Delta-debugging (ddmin) minimization of a failing storm: drops
/// chunks of steps while the same invariant still flips, until no
/// single chunk at any granularity can be removed. `None` when the
/// full run is clean.
pub fn shrink(spec: &StormSpec, cfg: &KernelConfig) -> Option<ShrinkResult> {
    let baseline = run_storm(spec, &StormOpts { cfg: cfg.clone(), ..StormOpts::default() });
    let invariant = baseline.violation.as_ref()?.invariant;
    let still_fails = |steps: &[StormStep], replays: &mut u64| {
        *replays += 1;
        violates(&StormSpec { seed: spec.seed, steps: steps.to_vec() }, cfg, None, invariant)
    };
    let mut current = spec.steps.clone();
    let mut granularity = 2usize;
    let mut replays = 0u64;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<StormStep> =
                current[..start].iter().chain(&current[end..]).copied().collect();
            if !complement.is_empty() && still_fails(&complement, &mut replays) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    Some(ShrinkResult {
        spec: StormSpec { seed: spec.seed, steps: current },
        invariant,
        replays,
        original_steps: spec.steps.len(),
    })
}

/// Serializes a spec as a reproducer file. `parse_reproducer` of the
/// result round-trips byte-identically.
pub fn serialize_reproducer(spec: &StormSpec, invariant: &str) -> String {
    let mut out = String::new();
    out.push_str("# vino-bench debug-storm reproducer\n");
    out.push_str("version 1\n");
    out.push_str(&format!("seed {}\n", spec.seed));
    out.push_str(&format!("invariant {invariant}\n"));
    for s in &spec.steps {
        let fault = match s.fault {
            FaultChoice::None => "none".to_string(),
            FaultChoice::VmTrap { offset } => format!("vmtrap:{offset}"),
            FaultChoice::DiskRead => "diskread".to_string(),
            FaultChoice::DiskStall => "diskstall".to_string(),
            FaultChoice::ResourceExhaust => "resexhaust".to_string(),
        };
        out.push_str(&format!(
            "step pre_ms={} fault={} graft={} arg={} funded={} read_block={}\n",
            s.pre_ms, fault, ZOO_NAMES[s.graft], s.arg, s.funded as u8, s.read_block
        ));
    }
    out
}

/// Parses a reproducer file back into `(spec, invariant)`.
pub fn parse_reproducer(text: &str) -> Result<(StormSpec, String), String> {
    let mut seed = None;
    let mut invariant = None;
    let mut steps = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}", ln + 1);
        let mut it = line.split_whitespace();
        match it.next() {
            Some("version") => {
                if it.next() != Some("1") {
                    return Err(err("unsupported reproducer version"));
                }
            }
            Some("seed") => {
                let v = it.next().ok_or_else(|| err("seed needs a value"))?;
                seed = Some(v.parse().map_err(|_| err("seed must be a u64"))?);
            }
            Some("invariant") => {
                let v = it.next().ok_or_else(|| err("invariant needs a name"))?;
                invariant = Some(v.to_string());
            }
            Some("step") => {
                let mut step = StormStep {
                    pre_ms: 0,
                    fault: FaultChoice::None,
                    graft: 0,
                    arg: 1,
                    funded: false,
                    read_block: 0,
                };
                for kv in it {
                    let (key, val) =
                        kv.split_once('=').ok_or_else(|| err("step fields are key=value"))?;
                    match key {
                        "pre_ms" => {
                            step.pre_ms = val.parse().map_err(|_| err("bad pre_ms"))?;
                        }
                        "fault" => {
                            step.fault = match val.split_once(':') {
                                Some(("vmtrap", off)) => FaultChoice::VmTrap {
                                    offset: off.parse().map_err(|_| err("bad vmtrap offset"))?,
                                },
                                Some(_) => return Err(err("unknown fault")),
                                None => match val {
                                    "none" => FaultChoice::None,
                                    "diskread" => FaultChoice::DiskRead,
                                    "diskstall" => FaultChoice::DiskStall,
                                    "resexhaust" => FaultChoice::ResourceExhaust,
                                    _ => return Err(err("unknown fault")),
                                },
                            };
                        }
                        "graft" => {
                            step.graft = ZOO_NAMES
                                .iter()
                                .position(|n| *n == val)
                                .ok_or_else(|| err("unknown graft"))?;
                        }
                        "arg" => step.arg = val.parse().map_err(|_| err("bad arg"))?,
                        "funded" => {
                            step.funded = match val {
                                "0" => false,
                                "1" => true,
                                _ => return Err(err("funded must be 0 or 1")),
                            };
                        }
                        "read_block" => {
                            step.read_block = val.parse().map_err(|_| err("bad read_block"))?;
                        }
                        _ => return Err(err("unknown step field")),
                    }
                }
                steps.push(step);
            }
            _ => return Err(err("unknown directive")),
        }
    }
    let seed = seed.ok_or("missing seed line")?;
    let invariant = invariant.ok_or("missing invariant line")?;
    Ok((StormSpec { seed, steps }, invariant))
}

/// Runs `spec` and renders its trace as an ASCII timeline.
pub fn storm_timeline(spec: &StormSpec, cfg: &KernelConfig, topts: &TimelineOpts) -> String {
    let opts = StormOpts { cfg: cfg.clone(), ..StormOpts::default() };
    let (w, _) = run_storm_world(spec, &opts);
    render_timeline(&w.tp, topts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_generation_is_deterministic_and_pure() {
        let a = StormSpec::generate(7, 32);
        let b = StormSpec::generate(7, 32);
        assert_eq!(a, b);
        assert!(a.steps.iter().any(|s| s.fault != FaultChoice::None), "some step injects");
    }

    #[test]
    fn reproducer_round_trips_byte_identically() {
        let spec = StormSpec::generate(11, 24);
        let text = serialize_reproducer(&spec, "abort-free");
        let (parsed, inv) = parse_reproducer(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(inv, "abort-free");
        assert_eq!(serialize_reproducer(&parsed, &inv), text);
    }

    #[test]
    fn reproducer_rejects_garbage() {
        assert!(parse_reproducer("bogus directive").is_err());
        assert!(parse_reproducer("version 2").is_err());
        assert!(parse_reproducer("seed 1\nstep fault=warp").is_err());
        assert!(parse_reproducer("seed 1\nstep graft=no-such").is_err());
        // Missing invariant line.
        assert!(parse_reproducer("seed 1\n").is_err());
    }
}

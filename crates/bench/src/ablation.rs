//! Design-choice ablations beyond the paper's tables.
//!
//! - **Global eviction policy** (A1): §4.2 notes traditional kernels
//!   use "some variant of the clock algorithm"; VINO's level-1 policy
//!   is itself a choice. This ablation drives both implementations with
//!   the same workload mix and compares fault counts.
//! - **Lock time-out sweep** (A2): §4.5 — "We currently schedule
//!   time-outs on system-clock boundaries, which occur every 10 ms.
//!   [...] This is obviously too coarse grain for some resources, and
//!   we expect to experimentally determine a more appropriate timing as
//!   the system matures." The sweep measures, for a hoarding lock
//!   holder, how long a waiter stalls as a function of the configured
//!   class time-out — exposing the 10 ms quantisation floor.

use std::rc::Rc;

use vino_mem::{GlobalPolicy, MemorySystem};
use vino_sim::{SplitMix64, ThreadId, VirtualClock};
use vino_txn::locks::LockClass;
use vino_txn::manager::TxnManager;

use crate::render::{PathTable, Row};

/// Faults incurred by a hot-set + scan workload under `policy`. The
/// workload is fixed (8 hot pages, a 768-page cold universe) so fault
/// counts are comparable across capacities.
pub fn eviction_faults(policy: GlobalPolicy, capacity: usize, rounds: usize) -> u64 {
    let mut m = MemorySystem::with_policy(VirtualClock::new(), capacity, policy);
    let vas = m.create_vas();
    let mut rng = SplitMix64::new(0xA11A);
    for _ in 0..rounds {
        // Hot set, touched every round.
        for hot in 0..8u64 {
            m.touch(vas, hot);
        }
        // Cold random traffic over a fixed universe.
        for _ in 0..64 {
            m.touch(vas, 1000 + rng.below(768));
        }
    }
    m.stats().faults
}

/// The A1 ablation table.
pub fn eviction_policy() -> PathTable {
    let mut rows = Vec::new();
    for cap in [16usize, 64, 256] {
        let lru = eviction_faults(GlobalPolicy::Lru, cap, 20);
        let clock = eviction_faults(GlobalPolicy::Clock, cap, 20);
        rows.push(Row::value(format!("LRU faults,   {cap} frames"), lru as f64));
        rows.push(Row::value(format!("Clock faults, {cap} frames"), clock as f64));
    }
    PathTable {
        id: "A1",
        title: "Ablation: global eviction policy (LRU vs clock)".to_string(),
        rows,
        notes: vec!["same hot-set + scan workload; the two level-1 policies the level-2 \
             graft hook composes with (§4.2)"
            .into()],
    }
}

/// For a hoarding holder and a waiter, the waiter's stall time (µs)
/// until it acquires a lock of the given time-out class.
pub fn waiter_stall_us(timeout_us: u32) -> f64 {
    let clock = VirtualClock::new();
    let mut m = TxnManager::new(Rc::clone(&clock));
    let lock = m.create_lock(LockClass::Custom(timeout_us));
    let hoarder = ThreadId(1);
    let waiter = ThreadId(2);
    m.begin(hoarder);
    m.lock(lock, hoarder);
    let t0 = clock.now();
    let (ok, _) = m.lock_blocking(lock, waiter, 5);
    assert!(ok, "waiter must eventually acquire");
    clock.since(t0).as_us()
}

/// The A2 sweep table.
pub fn lock_timeout_sweep() -> PathTable {
    let mut rows = Vec::new();
    for timeout_us in [100u32, 1_000, 5_000, 10_000, 50_000, 200_000] {
        let stall = waiter_stall_us(timeout_us);
        rows.push(Row::value(format!("timeout {:>6} us -> waiter stall (us)", timeout_us), stall));
    }
    PathTable {
        id: "A2",
        title: "Ablation: lock time-out vs waiter stall (§4.5)".to_string(),
        rows,
        notes: vec!["time-outs quantise to 10 ms clock ticks: sub-tick time-outs all stall \
             ~one tick; past the tick the stall tracks the configured value + up to \
             one tick (the paper's 10-20 ms observation)"
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_policies_complete_the_workload() {
        let lru = eviction_faults(GlobalPolicy::Lru, 32, 10);
        let clock = eviction_faults(GlobalPolicy::Clock, 32, 10);
        assert!(lru > 0 && clock > 0);
        // More memory ⇒ fewer faults, under both policies.
        assert!(eviction_faults(GlobalPolicy::Lru, 256, 10) < lru);
        assert!(eviction_faults(GlobalPolicy::Clock, 256, 10) < clock);
    }

    #[test]
    fn sub_tick_timeouts_floor_at_one_tick() {
        // 100 us and 5 ms time-outs both stall ~10 ms: the paper's
        // quantisation complaint, measured.
        let t100us = waiter_stall_us(100);
        let t5ms = waiter_stall_us(5_000);
        assert!((9_000.0..=21_000.0).contains(&t100us), "stall {t100us}");
        assert!((9_000.0..=21_000.0).contains(&t5ms), "stall {t5ms}");
    }

    #[test]
    fn long_timeouts_track_configured_value() {
        let t200ms = waiter_stall_us(200_000);
        assert!(
            (200_000.0..=215_000.0).contains(&t200ms),
            "stall {t200ms} should be ~200ms + <=1 tick"
        );
        // Monotone in the configured time-out.
        assert!(waiter_stall_us(50_000) < t200ms);
    }
}

//! §3.3 MiSFIT micro-overheads (experiment E2).
//!
//! Verifies the paper's two per-instruction claims by measurement:
//!
//! - "The cost of this protection is two to five cycles per load or
//!   store" — measured as the instrumented-minus-raw cycle delta of a
//!   store-dense loop, divided by the access count.
//! - "Through the use of a sparse open hash table we find our average
//!   cost is ten to fifteen cycles per indirect function call" —
//!   measured as probe count × probe cost over a populated table.

use std::rc::Rc;

use vino_core::hostfn;
use vino_misfit::{instrument, CallableTable};
use vino_sim::{costs, VirtualClock};
use vino_vm::interp::{NullKernel, Vm};
use vino_vm::isa::{HostFnId, Program};
use vino_vm::mem::{AddressSpace, Protection};

use crate::render::{PathTable, Row};

/// A load/store-dense loop over `n` words.
fn mem_loop(n: u32) -> Program {
    let src = format!(
        "
        const r2, 0
        const r3, {n}
        loop:
        bgeu r2, r3, done
        loadw r5, [r1+0]
        addi r5, r5, 1
        storew r5, [r1+0]
        addi r1, r1, 4
        addi r2, r2, 1
        jmp loop
        done: halt r0
        "
    );
    vino_vm::assemble("memloop", &src, &hostfn::symbols()).expect("assembles")
}

fn run_cycles(prog: &Program, prot: Protection, seg: usize) -> (u64, u64) {
    let clock = VirtualClock::new();
    let mem = AddressSpace::new(seg, 64, prot);
    let base = mem.seg_base();
    let mut vm = Vm::new(mem);
    vm.regs[1] = base;
    let mut fuel = 10_000_000;
    let exit = vm.run(prog, &mut NullKernel, &Rc::clone(&clock), &mut fuel);
    assert!(matches!(exit, vino_vm::interp::Exit::Halted(_)), "{exit:?}");
    (clock.now().get(), vm.stats.loads + vm.stats.stores)
}

/// Measured per-access SFI overhead in cycles.
pub fn per_access_cycles() -> f64 {
    let n = 512u32;
    let raw = mem_loop(n);
    let (inst, stats) = instrument(&raw).expect("instruments");
    let (raw_cycles, accesses) = run_cycles(&raw, Protection::Unprotected, 8192);
    let (sfi_cycles, _) = run_cycles(&inst, Protection::Sfi, 8192);
    assert_eq!(accesses, 2 * n as u64);
    let _ = stats;
    // Subtract the one-off prologue clamp.
    (sfi_cycles - raw_cycles - costs::SFI_CLAMP_CYCLES) as f64 / accesses as f64
}

/// Measured average indirect-call check cost in cycles over a populated
/// callable table.
pub fn per_indirect_call_cycles() -> f64 {
    let mut table = CallableTable::new();
    for (id, name) in hostfn::GRAFT_CALLABLE {
        table.register(*id, *name);
    }
    // Populate further, as a grown kernel would.
    for i in 0..200u32 {
        table.register(HostFnId(1000 + i), format!("kfn{i}"));
    }
    // Probe every callable id many times.
    for _ in 0..50 {
        for (id, _) in hostfn::GRAFT_CALLABLE {
            assert!(table.contains(*id));
        }
        for i in 0..200u32 {
            assert!(table.contains(HostFnId(1000 + i)));
        }
    }
    table.avg_probes() * costs::HASH_PROBE_CYCLES as f64
}

/// Runs the experiment and renders it.
pub fn run() -> PathTable {
    let per_access = per_access_cycles();
    let per_call = per_indirect_call_cycles();
    PathTable {
        id: "E2",
        title: "§3.3 MiSFIT micro-overheads".to_string(),
        rows: vec![
            Row::value("Per load/store (cycles)", per_access),
            Row::value("Per indirect call check (cycles)", per_call),
        ],
        notes: vec!["paper: 2-5 cycles per load/store; 10-15 cycles per indirect call".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_access_in_two_to_five_cycles() {
        let c = per_access_cycles();
        assert!((2.0..=5.0).contains(&c), "per-access {c}");
    }

    #[test]
    fn per_indirect_call_in_ten_to_fifteen_cycles() {
        let c = per_indirect_call_cycles();
        assert!((10.0..=15.0).contains(&c), "per-call {c}");
    }
}

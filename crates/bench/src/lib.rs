//! The benchmark harness: regenerates every table and figure in the
//! paper's evaluation (§4) plus the §6 lock-manager ablation.
//!
//! Methodology follows §4: each measurement path is run repeatedly, the
//! top and bottom 10 % of samples are dropped, and the trimmed mean in
//! microseconds is reported (the virtual clock *is* the cycle counter,
//! so dispersion is zero unless a path is intrinsically variable — the
//! paper's §4 caveats about cache effects and the page daemon apply to
//! their hardware, not the model).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table3`] | Table 3 — read-ahead graft overhead |
//! | [`table4`] | Table 4 — page-eviction graft overhead |
//! | [`table5`] | Table 5 — scheduling graft overhead |
//! | [`table6`] | Table 6 — encryption graft overhead |
//! | [`table7`] | Table 7 — graft abort costs |
//! | [`equation`] | §4.5 — the abort-cost equation `35µs + 10L + cG` |
//! | [`misfit_micro`] | §3.3 — per-load/store and per-call SFI costs |
//! | [`lockfig`] | Figures 4/5 — policy-encapsulation indirection cost |
//! | [`benefit`] | §4.1.1 / §4.2.2 — cost-benefit crossover figures |
//! | [`ablation`] | design-choice ablations: eviction policy, time-out sweep |
//! | [`tracecount`] | trace-plane event census (observability tripwire) |
//! | [`netfilter`] | packet-filter path census + batched-dispatch sweep |
//! | [`profdiff`] | differential profile gate (cost-model drift tripwire) |
//! | [`debug`] | debugging plane: checkpoint/restore, bisect, shrink, timelines |

pub mod ablation;
pub mod benefit;
pub mod census;
pub mod debug;
pub mod equation;
pub mod lockfig;
pub mod misfit_micro;
pub mod netfilter;
pub mod profdiff;
pub mod render;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod tracecount;
pub mod world;

pub use render::{PathTable, Row};

/// Runs every experiment and renders the full report.
pub fn full_report(reps: usize) -> String {
    let mut out = String::new();
    out.push_str(&table3::run(reps).render());
    out.push('\n');
    out.push_str(&table4::run(reps).render());
    out.push('\n');
    out.push_str(&table5::run(reps).render());
    out.push('\n');
    out.push_str(&table6::run(reps).render());
    out.push('\n');
    out.push_str(&table7::run(reps).render());
    out.push('\n');
    out.push_str(&equation::run().render());
    out.push('\n');
    out.push_str(&misfit_micro::run().render());
    out.push('\n');
    out.push_str(&lockfig::run(reps).render());
    out.push('\n');
    out.push_str(&benefit::readahead_crossover().render());
    out.push('\n');
    out.push_str(&benefit::eviction_break_even(reps).render());
    out.push('\n');
    out.push_str(&ablation::eviction_policy().render());
    out.push('\n');
    out.push_str(&ablation::lock_timeout_sweep().render());
    out.push('\n');
    out.push_str(&netfilter::run(reps).render());
    out.push('\n');
    out.push_str(&tracecount::run().render());
    out
}

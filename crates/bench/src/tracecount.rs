//! Trace-plane event census: per-subsystem [`vino_sim::trace::TraceStats`]
//! for a canonical traced workload, printed alongside the paper tables.
//!
//! Not a paper artifact — an observability check. The workload is a
//! fixed mix of one committing and one trapping graft, so the counters
//! double as a coarse regression tripwire: if a subsystem's event count
//! moves, someone changed what that subsystem does per invocation (or
//! stopped/started tracing it). The fine-grained version of the same
//! tripwire is the golden-trace battery (`tests/trace_golden.rs`).

use std::rc::Rc;

use vino_core::engine::InvokeOutcome;
use vino_sim::trace::TracePlane;

use crate::render::{PathTable, Row};
use crate::world::{build, Variant};

/// Invocations of each graft in the census workload.
const INVOKES: usize = 16;

/// Runs the census workload and renders the counters.
pub fn run() -> PathTable {
    let committer = build("mov r0, r1\nhalt r0", 4096, Variant::Safe, 0);
    let tp = TracePlane::with_capacity(Rc::clone(&committer.clock), 4096);
    committer.engine.set_trace_plane(Rc::clone(&tp));
    committer.engine.txn.borrow_mut().set_trace_plane(Rc::clone(&tp));
    committer.engine.rm.borrow_mut().set_trace_plane(Rc::clone(&tp));
    // Instances bind the plane at install time, so build them after the
    // attach; the committer above pre-dates it and goes untraced at the
    // VM layer — rebuild a traced pair on the shared engine instead.
    let mk = |src: &str| {
        let prog = vino_vm::asm::assemble("census", src, &vino_core::hostfn::symbols()).unwrap();
        crate::world::instance_from(&committer.engine, prog, 4096, Variant::Safe)
    };
    let mut good = mk("mov r0, r1\nhalt r0");
    let mut bad = mk("const r1, 0\ndiv r0, r1, r1\nhalt r0");

    for i in 0..INVOKES {
        assert!(matches!(good.invoke([i as u64, 0, 0, 0]), InvokeOutcome::Ok { .. }));
        bad.revive();
        assert!(matches!(bad.invoke([0; 4]), InvokeOutcome::Aborted { .. }));
    }

    let s = tp.stats();
    PathTable {
        id: "TR",
        title: format!("Trace-plane event census ({INVOKES} commits + {INVOKES} aborts)"),
        rows: vec![
            Row::value("vm events", s.vm as f64),
            Row::value("txn events", s.txn as f64),
            Row::value("rm events", s.rm as f64),
            Row::value("fs events", s.fs as f64),
            Row::value("graft events", s.graft as f64),
            Row::value("total emitted", s.total as f64),
            Row::value("dropped (ring wrap)", s.dropped as f64),
        ],
        notes: vec!["counts are event totals, not µs; see docs/TRACING.md".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_are_consistent_and_deterministic() {
        let a = run();
        let b = run();
        assert_eq!(a.render(), b.render(), "census must be deterministic");
        let total = a.rows.iter().find(|r| r.label == "total emitted").unwrap();
        let sum: f64 = a
            .rows
            .iter()
            .filter(|r| r.label.ends_with("events"))
            .filter_map(|r| r.overhead_us)
            .sum();
        assert_eq!(sum, total.overhead_us.unwrap(), "subsystem counts sum to total");
        assert!(total.overhead_us.unwrap() > 0.0, "workload emitted events");
    }
}

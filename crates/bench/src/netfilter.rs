//! Packet-filter path overhead — the Table 3 census applied to the
//! `net/packet-filter` graft point, plus the batched-dispatch sweep.
//!
//! The measured quantity is one packet's trip through the filter
//! decision: header marshalled into the graft segment, a checksum over
//! the payload prefix, and a drop-odd-source verdict. The six levels
//! mirror Table 3 (base / VINO / null / unsafe / safe / abort); the
//! sweep then re-runs the safe path through
//! [`vino_core::engine::GraftInstance::invoke_batch`] at increasing
//! batch sizes, showing the transaction envelope (begin + commit,
//! 66 us) amortizing across the batch — the packet plane's whole case
//! for batched dispatch.

use vino_core::engine::{BatchOutcome, CommitMode};
use vino_sim::{costs, Cycles, VirtualClock};
use vino_vm::mem::AddressSpace;

use crate::render::{PathTable, Row};
use crate::world::{build, measure, Variant, World};

/// The filter under test: checksum the first eight payload words, then
/// drop packets with an odd source address. Args: r1 = port, r2 = len,
/// r3 = src, r4 = dst; payload at segment offset 1024.
pub const FILTER_SRC: &str = "
    call $shared_base
    addi r5, r0, 1024    ; payload prefix
    const r6, 0          ; checksum acc
    const r7, 0          ; word index
    const r8, 8
    const r10, 0
sum:
    bgeu r7, r8, done
    loadw r9, [r5+0]
    add r6, r6, r9
    addi r5, r5, 4
    addi r7, r7, 1
    jmp sum
done:
    andi r9, r3, 1       ; odd source?
    bne r9, r10, toss
    const r2, 0
    halt r2              ; accept
toss:
    const r2, 1
    halt r2              ; drop
";

/// Batch sizes for the amortization sweep.
pub const BATCH_SWEEP: [usize; 4] = [1, 8, 32, 128];

/// Marshals one synthetic packet for run `i` of a batch: the header
/// contract of `vino-net` (`packet::header`) plus an 8-word payload.
fn marshal(i: usize, mem: &mut AddressSpace) -> [u64; 4] {
    let src = i as u32;
    let _ = mem.graft_write_u32(0, 80); // port
    let _ = mem.graft_write_u32(4, 0); // proto
    let _ = mem.graft_write_u32(8, 32); // len
    let _ = mem.graft_write_u32(12, src);
    let _ = mem.graft_write_u32(16, 0xDEAD); // dst
    for w in 0..8u32 {
        let _ = mem.graft_write_u32(1024 + 4 * w as usize, w);
    }
    [80, 32, src as u64, 0xDEAD]
}

fn filter_world(variant: Variant) -> World {
    build(FILTER_SRC, 8192, variant, 0)
}

/// One un-batched filtered packet: indirection + marshal + invoke.
fn one_packet(w: &mut World, clock: &std::rc::Rc<VirtualClock>, mode: CommitMode) {
    clock.charge(Cycles(costs::INDIRECTION_CYCLES));
    let args = marshal(0, w.graft.mem());
    let _ = w.graft.invoke_mode(args, mode);
}

/// The native accept-all default filter — the un-graftable base path.
fn base_decide(clock: &std::rc::Rc<VirtualClock>) {
    clock.charge(Cycles(60));
}

/// Runs the census and the batch sweep, rendering one table.
pub fn run(reps: usize) -> PathTable {
    let base = measure(reps, VirtualClock::new, |_, clock| base_decide(clock));
    let vino = measure(reps, VirtualClock::new, |_, clock| {
        clock.charge(Cycles(costs::INDIRECTION_CYCLES));
        base_decide(clock);
    });
    let null = measure(
        reps,
        || build("halt r0", 8192, Variant::Safe, 0),
        |w, clock| {
            clock.charge(Cycles(costs::INDIRECTION_CYCLES));
            let _ = w.graft.invoke([80, 32, 0, 0xDEAD]);
        },
    );
    let unsafe_ = measure(
        reps,
        || filter_world(Variant::Unsafe),
        |w, clock| one_packet(w, clock, CommitMode::Commit),
    );
    let safe = measure(
        reps,
        || filter_world(Variant::Safe),
        |w, clock| one_packet(w, clock, CommitMode::Commit),
    );
    let abort = measure(
        reps,
        || filter_world(Variant::Safe),
        |w, clock| one_packet(w, clock, CommitMode::AbortAtEnd),
    );

    let begin = costs::TXN_BEGIN.as_us();
    let commit = costs::TXN_COMMIT.as_us();
    let mut rows = vec![
        Row::path("Base path (accept-all)", base.mean),
        Row::component("Indirection cost", vino.mean - base.mean),
        Row::path("VINO path", vino.mean),
        Row::component("Transaction begin", begin),
        Row::component("Null graft cost", null.mean - vino.mean - begin - commit),
        Row::component("Transaction commit", commit),
        Row::path("Null path", null.mean),
        Row::component("Filter function", unsafe_.mean - null.mean),
        Row::path("Unsafe path", unsafe_.mean),
        Row::component("MiSFIT overhead", safe.mean - unsafe_.mean),
        Row::path("Safe path", safe.mean),
        Row::component("Abort cost (additional)", abort.mean - safe.mean),
        Row::path("Abort path", abort.mean),
    ];

    // The amortization sweep: per-packet cost of the safe path when the
    // wrapper transaction covers n packets at a time.
    let mut per_packet = Vec::new();
    for n in BATCH_SWEEP {
        let s = measure(
            reps,
            || filter_world(Variant::Safe),
            |w, clock| {
                clock.charge(Cycles(costs::INDIRECTION_CYCLES));
                let out = w.graft.invoke_batch(n, marshal);
                assert!(matches!(out, BatchOutcome::Ok { .. }));
            },
        );
        let us = s.mean / n as f64;
        per_packet.push((n, us));
        rows.push(Row::path(format!("Batched safe path (n={n}, per packet)"), us));
    }

    let win = per_packet[0].1 - per_packet.iter().find(|(n, _)| *n == 32).unwrap().1;
    PathTable {
        id: "NF",
        title: "Packet-Filter Path Overhead".to_string(),
        rows,
        notes: vec![
            format!(
                "txn envelope {}+{} us amortizes over the batch; n=32 saves {win:.1} us/packet vs n=1",
                begin, commit
            ),
            "verdicts: accept / drop / steer, decoded by the plane's result check".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_census_matches_table3_shape() {
        let t = run(20);
        let path = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .and_then(|r| r.elapsed_us)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let base = path("Base path (accept-all)");
        let vino = path("VINO path");
        let null = path("Null path");
        let unsafe_ = path("Unsafe path");
        let safe = path("Safe path");
        let abort = path("Abort path");
        assert!(base < vino && vino < null && null < unsafe_ && unsafe_ < safe && safe < abort);
        assert!(base < 2.0);
        assert!((vino - base - 1.0).abs() < 0.5, "indirection ~1us");
        assert!((60.0..80.0).contains(&null), "null {null}");
    }

    #[test]
    fn batching_amortizes_the_envelope() {
        let t = run(20);
        let per = |n: usize| {
            t.rows
                .iter()
                .find(|r| r.label == format!("Batched safe path (n={n}, per packet)"))
                .and_then(|r| r.elapsed_us)
                .unwrap()
        };
        let (p1, p8, p32, p128) = (per(1), per(8), per(32), per(128));
        assert!(p1 > p8 && p8 > p32 && p32 > p128, "monotone in batch size");
        // The acceptance bar: a measurable per-packet win at n >= 32.
        // Envelope is 66 us; at n=32 all but ~2 us of it amortizes away.
        assert!(p1 - p32 > 50.0, "n=32 win {:.1} us", p1 - p32);
        // Beyond the envelope, the residual per-packet cost is the
        // filter itself — n=128 gains little over n=32.
        assert!(p32 - p128 < 3.0, "diminishing returns past n=32");
    }
}

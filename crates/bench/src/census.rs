//! The machine-readable bench census: `vino-bench census [--json]`.
//!
//! Three sweeps, each also emitted as a `BENCH_<name>.json` file when
//! `--json` is passed (hand-rolled serialization — the census has no
//! dependency beyond `std`):
//!
//! - `netfilter` — µs/packet for the batched safe filter path across
//!   the amortization sweep ([`netfilter::BATCH_SWEEP`]), extracted
//!   from the same [`crate::render::PathTable`] the paper-table run
//!   renders.
//! - `planes` — wall-clock ns/op for the observability hot paths:
//!   trace emit (with and without a causal context), span minting, and
//!   a metrics counter bump. These are host measurements, not virtual
//!   cycles, so the JSON is a snapshot rather than a golden.
//! - `repl_window` — the replication window sweep: shipped frames,
//!   retransmissions, drops, and drain rounds to convergence at each
//!   window size over a lossy wire, all in deterministic virtual time.

use std::rc::Rc;
use std::time::Instant;

use vino_repl::{ReplConfig, ReplHarness};
use vino_sim::clock::VirtualClock;
use vino_sim::fault::FaultSite;
use vino_sim::metrics::{Counter, MetricsPlane};
use vino_sim::trace::{CauseCtx, SpanId, TraceEvent, TracePlane};

use crate::netfilter;

/// One emitted census: a table for stdout and a JSON document.
#[derive(Debug, Clone)]
pub struct Census {
    /// Short name — the JSON lands in `BENCH_<name>.json`.
    pub name: &'static str,
    /// Human-readable rendering.
    pub text: String,
    /// The JSON document.
    pub json: String,
}

impl Census {
    /// The file name the `--json` flag writes.
    pub fn json_file(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }
}

/// A minimal JSON writer: objects of string/number pairs inside one
/// `rows` array. Numbers are emitted as-is; strings are quoted with
/// the only escapes our labels can need.
fn json_doc(name: &str, unit: &str, rows: &[Vec<(&str, String)>]) -> String {
    let mut out = format!("{{\n  \"name\": \"{name}\",\n  \"unit\": \"{unit}\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        for (j, (k, v)) in row.iter().enumerate() {
            out.push_str(&format!("\"{k}\": {v}"));
            if j + 1 < row.len() {
                out.push_str(", ");
            }
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// The µs/packet batch-amortization census, from the same measurement
/// run that renders the packet-filter paper table.
pub fn netfilter_census(reps: usize) -> Census {
    let table = netfilter::run(reps);
    let mut rows = Vec::new();
    let mut text = String::from(
        "batch | us/packet (safe filter path)\n------+------------------------------\n",
    );
    for r in &table.rows {
        let Some(rest) = r.label.strip_prefix("Batched safe path (n=") else { continue };
        let Some(n) = rest.split(',').next().and_then(|n| n.parse::<usize>().ok()) else {
            continue;
        };
        let us = r.elapsed_us.expect("batch rows are path rows");
        text.push_str(&format!("{n:>5} | {us:.3}\n"));
        rows.push(vec![("batch", n.to_string()), ("us_per_packet", format!("{us:.3}"))]);
    }
    assert_eq!(rows.len(), netfilter::BATCH_SWEEP.len(), "sweep rows missing from the table");
    Census { name: "netfilter", text, json: json_doc("netfilter", "us_per_packet", &rows) }
}

/// Wall-clock ns/op for one hot-path closure.
fn ns_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    // One warmup pass keeps first-touch allocation out of the clock.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The observability hot-path census: ns per trace emit / span mint /
/// counter bump, measured in host time.
pub fn planes_census() -> Census {
    const ITERS: u64 = 200_000;
    let clock = VirtualClock::new();
    // Capacity beyond ITERS would defeat the ring; a small ring keeps
    // the bench honest about the steady-state (evicting) emit path.
    let tp = TracePlane::with_capacity(Rc::clone(&clock), 1 << 12);
    let metrics = MetricsPlane::new(Rc::clone(&clock));
    let ctx = tp.mint_span(SpanId::NONE);
    let mut ops: Vec<(&str, f64)> = Vec::new();
    ops.push(("trace_emit", ns_per_op(ITERS, || tp.emit(TraceEvent::NetRx { port: 80, len: 64 }))));
    ops.push((
        "trace_emit_with_ctx",
        ns_per_op(ITERS, || tp.emit_with_ctx(TraceEvent::NetRx { port: 80, len: 64 }, ctx)),
    ));
    ops.push((
        "mint_span",
        ns_per_op(ITERS, || {
            let c = tp.mint_span(ctx.span);
            std::hint::black_box(c);
        }),
    ));
    ops.push((
        "ctx_wire_roundtrip",
        ns_per_op(ITERS, || {
            let bytes = ctx.to_bytes();
            std::hint::black_box(CauseCtx::from_bytes(&bytes));
        }),
    ));
    ops.push(("metrics_inc", ns_per_op(ITERS, || metrics.inc(Counter::ReplShips))));
    let mut text = String::from("op                   | ns/op (host wall clock)\n---------------------+------------------------\n");
    let mut rows = Vec::new();
    for (op, ns) in &ops {
        text.push_str(&format!("{op:<20} | {ns:.1}\n"));
        rows.push(vec![("op", json_str(op)), ("ns", format!("{ns:.1}"))]);
    }
    Census { name: "planes", text, json: json_doc("planes", "ns_per_op", &rows) }
}

/// One window-sweep row over a lossy wire, drained to convergence in
/// deterministic virtual time.
fn repl_window_row(seed: u64, steps: usize, window: u64) -> (u64, u64, u64, u64, u64) {
    let mut h = ReplHarness::new(seed, ReplConfig { window, ..Default::default() });
    let plane = Rc::clone(h.fault_plane());
    plane.set_rate(FaultSite::ReplShipDrop, 1, 5);
    plane.set_rate(FaultSite::ReplAckLoss, 1, 5);
    let report = h.run(steps);
    plane.set_rate(FaultSite::ReplShipDrop, 0, 1);
    plane.set_rate(FaultSite::ReplAckLoss, 0, 1);
    let mut drain_rounds = 0u64;
    while h.lag() > 0 {
        h.ship_round();
        drain_rounds += 1;
        assert!(drain_rounds <= 1024, "a healed wire must drain");
    }
    (report.shipped, report.retransmits, report.dropped, drain_rounds, h.acked())
}

/// The replication window sweep census.
pub fn repl_window_census(seed: u64, steps: usize) -> Census {
    let mut text = String::from(
        "window | shipped | retransmits | dropped | drain rounds | acked\n-------+---------+-------------+---------+--------------+------\n",
    );
    let mut rows = Vec::new();
    for window in [1u64, 2, 4, 8, 16] {
        let (shipped, retransmits, dropped, drain, acked) = repl_window_row(seed, steps, window);
        text.push_str(&format!(
            "{window:>6} | {shipped:>7} | {retransmits:>11} | {dropped:>7} | {drain:>12} | {acked:>5}\n"
        ));
        rows.push(vec![
            ("window", window.to_string()),
            ("shipped", shipped.to_string()),
            ("retransmits", retransmits.to_string()),
            ("dropped", dropped.to_string()),
            ("drain_rounds", drain.to_string()),
            ("acked", acked.to_string()),
        ]);
    }
    Census { name: "repl_window", text, json: json_doc("repl_window", "records", &rows) }
}

/// Runs all three censuses.
pub fn run_all(reps: usize, seed: u64, steps: usize) -> Vec<Census> {
    vec![netfilter_census(reps), planes_census(), repl_window_census(seed, steps)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfilter_census_has_one_row_per_sweep_point() {
        let c = netfilter_census(3);
        assert_eq!(c.name, "netfilter");
        for n in netfilter::BATCH_SWEEP {
            assert!(c.json.contains(&format!("\"batch\": {n}")), "missing n={n}:\n{}", c.json);
        }
        assert!(c.json_file() == "BENCH_netfilter.json");
    }

    #[test]
    fn planes_census_measures_every_hot_path() {
        let c = planes_census();
        for op in
            ["trace_emit", "trace_emit_with_ctx", "mint_span", "ctx_wire_roundtrip", "metrics_inc"]
        {
            assert!(c.json.contains(&format!("\"op\": \"{op}\"")), "missing {op}:\n{}", c.json);
        }
    }

    #[test]
    fn repl_window_census_is_deterministic() {
        let a = repl_window_census(0xBE9C, 6);
        let b = repl_window_census(0xBE9C, 6);
        assert_eq!(a.json, b.json, "virtual-time census must replay byte-identically");
        assert!(a.json.contains("\"window\": 16"));
    }

    #[test]
    fn json_doc_shape_is_valid_enough() {
        let doc = json_doc("x", "u", &[vec![("a", "1".into())], vec![("a", "2".into())]]);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches("{\"a\"").count(), 2);
        assert_eq!(doc.matches("},").count(), 1);
    }
}

//! Shared measurement machinery: building graft instances on the three
//! protection variants and timing closures against the virtual clock
//! with the paper's trimmed-mean methodology.

use std::rc::Rc;

use vino_core::engine::{GraftEngine, GraftInstance};
use vino_core::hostfn;
use vino_misfit::{MisfitTool, SigningKey};
use vino_sim::metrics::MetricsPlane;
use vino_sim::profile::ProfilePlane;
use vino_sim::stats::{trimmed_summary, Summary};
use vino_sim::{ThreadId, VirtualClock};
use vino_txn::locks::LockClass;
use vino_vm::asm::assemble;
use vino_vm::isa::Program;
use vino_vm::mem::{AddressSpace, Protection};

/// How a benchmark graft is protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// MiSFIT-instrumented, SFI address space — the "safe path".
    Safe,
    /// Raw code, unprotected address space — the "unsafe path".
    Unsafe,
}

/// A freshly built measurement world: one engine, one graft instance.
pub struct World {
    /// The engine (clock, transactions, resources).
    pub engine: Rc<GraftEngine>,
    /// The instance under test.
    pub graft: GraftInstance,
    /// The clock (shortcut for `engine.clock`).
    pub clock: Rc<VirtualClock>,
}

/// The thread benchmark grafts run on.
pub const BENCH_THREAD: ThreadId = ThreadId(1);

/// Builds a world around `src`, registering `locks` engine locks first
/// (so the graft's lock handle 0 is always valid).
pub fn build(src: &str, seg_size: usize, variant: Variant, locks: usize) -> World {
    let clock = VirtualClock::new();
    let engine = GraftEngine::new(Rc::clone(&clock));
    for _ in 0..locks {
        engine.register_lock(LockClass::SharedBuffer);
    }
    let prog = assemble("bench-graft", src, &hostfn::symbols()).expect("bench graft assembles");
    let graft = instance_from(&engine, prog, seg_size, variant);
    World { engine, graft, clock }
}

/// [`build`] with a metrics plane wired through the engine's
/// subsystems *before* the instance is created, so the instance interns
/// its tag and its VM attributes instruction charges. Used by the
/// runtime-attribution reconciliation tests (`docs/METRICS.md`).
pub fn build_metered(
    src: &str,
    seg_size: usize,
    variant: Variant,
    locks: usize,
) -> (World, Rc<MetricsPlane>) {
    let clock = VirtualClock::new();
    let plane = MetricsPlane::new(Rc::clone(&clock));
    let engine = GraftEngine::new(Rc::clone(&clock));
    engine.txn.borrow_mut().set_metrics_plane(Rc::clone(&plane));
    engine.rm.borrow_mut().set_metrics_plane(Rc::clone(&plane));
    engine.reliability.borrow_mut().set_metrics_plane(Rc::clone(&plane));
    engine.set_metrics_plane(Rc::clone(&plane));
    for _ in 0..locks {
        engine.register_lock(LockClass::SharedBuffer);
    }
    let prog = assemble("bench-graft", src, &hostfn::symbols()).expect("bench graft assembles");
    let graft = instance_from(&engine, prog, seg_size, variant);
    (World { engine, graft, clock }, plane)
}

/// [`build_metered`] plus a profile plane, wired the same way (before
/// the instance is created, so the VM bills per-PC cycles and the
/// wrapper brackets invocations). Used by the profile reconciliation
/// tests and the differential profile gate (`docs/PROFILING.md`).
pub fn build_profiled(
    src: &str,
    seg_size: usize,
    variant: Variant,
    locks: usize,
) -> (World, Rc<MetricsPlane>, Rc<ProfilePlane>) {
    let clock = VirtualClock::new();
    let plane = MetricsPlane::new(Rc::clone(&clock));
    let profile = ProfilePlane::new(Rc::clone(&clock));
    let engine = GraftEngine::new(Rc::clone(&clock));
    engine.txn.borrow_mut().set_metrics_plane(Rc::clone(&plane));
    engine.rm.borrow_mut().set_metrics_plane(Rc::clone(&plane));
    engine.reliability.borrow_mut().set_metrics_plane(Rc::clone(&plane));
    engine.set_metrics_plane(Rc::clone(&plane));
    engine.txn.borrow_mut().set_profile_plane(Rc::clone(&profile));
    engine.rm.borrow_mut().set_profile_plane(Rc::clone(&profile));
    engine.set_profile_plane(Rc::clone(&profile));
    for _ in 0..locks {
        engine.register_lock(LockClass::SharedBuffer);
    }
    let prog = assemble("bench-graft", src, &hostfn::symbols()).expect("bench graft assembles");
    let graft = instance_from(&engine, prog, seg_size, variant);
    (World { engine, graft, clock }, plane, profile)
}

/// Builds an instance from an already-assembled program, running it
/// through the real tool + loader pipeline for the chosen variant.
pub fn instance_from(
    engine: &Rc<GraftEngine>,
    prog: Program,
    seg_size: usize,
    variant: Variant,
) -> GraftInstance {
    let tool = MisfitTool::new(SigningKey::from_passphrase("bench"));
    let (image, protection) = match variant {
        Variant::Safe => {
            let (img, _) = tool.process(&prog).expect("instrumentation");
            (img, Protection::Sfi)
        }
        Variant::Unsafe => (tool.seal(&prog), Protection::Unprotected),
    };
    let loaded = tool.verify_and_decode(&image).expect("fresh image verifies");
    let principal = engine.rm.borrow_mut().create_graft_principal();
    let mem = AddressSpace::new(seg_size, 4096, protection);
    GraftInstance::new(Rc::clone(engine), loaded, mem, BENCH_THREAD, principal)
}

/// Measures `op` `reps` times, each against a fresh state produced by
/// `mk`, returning the trimmed summary of per-rep elapsed microseconds.
pub fn measure<S>(
    reps: usize,
    mut mk: impl FnMut() -> S,
    mut op: impl FnMut(&mut S, &Rc<VirtualClock>),
) -> Summary
where
    S: HasClock,
{
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut state = mk();
        let clock = state.clock();
        let t0 = clock.now();
        op(&mut state, &clock);
        samples.push(clock.since(t0).as_us());
    }
    trimmed_summary(&samples).expect("reps > 0")
}

/// Anything that exposes the virtual clock it charges.
pub trait HasClock {
    /// The clock used by this state.
    fn clock(&self) -> Rc<VirtualClock>;
}

impl HasClock for World {
    fn clock(&self) -> Rc<VirtualClock> {
        Rc::clone(&self.clock)
    }
}

impl HasClock for Rc<VirtualClock> {
    fn clock(&self) -> Rc<VirtualClock> {
        Rc::clone(self)
    }
}

impl<T> HasClock for (T, Rc<VirtualClock>) {
    fn clock(&self) -> Rc<VirtualClock> {
        Rc::clone(&self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_core::engine::InvokeOutcome;

    #[test]
    fn build_and_invoke_both_variants() {
        for v in [Variant::Safe, Variant::Unsafe] {
            let mut w = build("halt r1", 4096, v, 1);
            match w.graft.invoke([42, 0, 0, 0]) {
                InvokeOutcome::Ok { result, .. } => assert_eq!(result, 42),
                other => panic!("{v:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn safe_variant_is_instrumented() {
        let w_safe = build("loadw r0, [r1+0]\nhalt r0", 4096, Variant::Safe, 0);
        let w_raw = build("loadw r0, [r1+0]\nhalt r0", 4096, Variant::Unsafe, 0);
        // The instrumented program is longer (sandbox sequence), so its
        // cycle cost is higher on identical work.
        let mut ws = w_safe;
        let mut wr = w_raw;
        let base = ws.graft.mem_ref().seg_base();
        let t0 = ws.clock.now();
        ws.graft.invoke([base, 0, 0, 0]);
        let safe_cost = ws.clock.since(t0);
        let base_r = wr.graft.mem_ref().seg_base();
        let t0 = wr.clock.now();
        wr.graft.invoke([base_r, 0, 0, 0]);
        let raw_cost = wr.clock.since(t0);
        assert!(safe_cost > raw_cost);
    }

    #[test]
    fn measure_is_deterministic() {
        let s = measure(
            20,
            || build("halt r0", 1024, Variant::Safe, 0),
            |w, _| {
                w.graft.invoke([0; 4]);
            },
        );
        assert!(s.std_dev < 1e-9, "identical worlds must time identically");
        assert!(s.mean > 60.0, "at least begin+commit envelope");
    }
}

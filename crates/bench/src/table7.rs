//! Table 7 — graft abort costs (§4.5).
//!
//! "For each of the grafts described above, we measured the cost of
//! aborting the null path as well as the full grafted path. [...] the
//! difference between the two columns is a function of the number and
//! complexity of the undo functions and the number of locks that must
//! be released."
//!
//! The abort *operation* cost is measured directly: the transaction
//! manager's [`vino_txn::manager::AbortReport::cost`] is exactly
//! `abort overhead + unlock cost + undo cost`.

use vino_core::engine::{CommitMode, InvokeOutcome};
use vino_sim::stats::trimmed_summary;

use crate::render::{PathTable, Row};
use crate::world::{build, Variant, World};
use crate::{table3, table4, table5, table6};

/// One graft's abort-cost pair.
#[derive(Debug, Clone, Copy)]
pub struct AbortPair {
    /// Abort cost of the null path (µs).
    pub null_abort: f64,
    /// Abort cost of the full grafted path (µs).
    pub full_abort: f64,
}

fn abort_cost_of(mut mk: impl FnMut() -> World, args: [u64; 4], reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut w = mk();
        match w.graft.invoke_mode(args, CommitMode::AbortAtEnd) {
            InvokeOutcome::Aborted { report, .. } => samples.push(report.cost.as_us()),
            other => panic!("abort path must abort, got {other:?}"),
        }
    }
    trimmed_summary(&samples).expect("reps > 0").mean
}

fn null_world() -> World {
    build("mov r0, r1\nhalt r0", 4096, Variant::Safe, 0)
}

/// Measures the four grafts' abort pairs.
pub fn pairs(reps: usize) -> Vec<(&'static str, AbortPair)> {
    let null = abort_cost_of(null_world, [0; 4], reps);

    let read_ahead = abort_cost_of(
        || {
            let mut w = build(table3::RA_GRAFT_SRC, 8192, Variant::Safe, 1);
            let mem = w.graft.mem();
            mem.graft_write_u32(1024, 16);
            for i in 0..16 {
                mem.graft_write_u32(1028 + 4 * i, (i as u32) * 4096);
            }
            mem.graft_write_u32(0, 8 * 4096);
            w
        },
        [8 * 4096, 4096, 0, 1 << 24],
        reps,
    );

    let eviction = abort_cost_of(
        || {
            let mut w = build(table4::EVICT_GRAFT_SRC, 8192, Variant::Safe, 1);
            let mem = w.graft.mem();
            mem.graft_write_u32(0, 100);
            mem.graft_write_u32(4, table4::FOOTPRINT_PAGES as u32);
            for i in 0..table4::FOOTPRINT_PAGES {
                mem.graft_write_u32(8 + 4 * i, 100 + i as u32);
            }
            mem.graft_write_u32(4096, table4::PINNED as u32);
            for (i, p) in [100u32, 150, 200, 250].iter().enumerate() {
                mem.graft_write_u32(4100 + 4 * i, *p);
            }
            for i in 0..table4::FOOTPRINT_PAGES {
                mem.graft_write_u32(5120 + 4 * i, (i >= table4::FIRST_CLEAN) as u32);
            }
            w
        },
        [100, table4::FOOTPRINT_PAGES as u64, 0, 0],
        reps,
    );

    let scheduling = abort_cost_of(
        || {
            let mut w = build(table5::SCHED_GRAFT_SRC, 4096, Variant::Safe, 1);
            let mem = w.graft.mem();
            mem.graft_write_u32(0, 1);
            mem.graft_write_u32(4, table5::PROC_LIST as u32);
            for i in 0..table5::PROC_LIST {
                mem.graft_write_u32(8 + 4 * i, 1 + i as u32);
            }
            w
        },
        [1, table5::PROC_LIST as u64, 0, 0],
        reps,
    );

    let encryption = abort_cost_of(
        || build(table6::ENCRYPT_GRAFT_SRC, 32 * 1024, Variant::Safe, 0),
        {
            let w = build(table6::ENCRYPT_GRAFT_SRC, 32 * 1024, Variant::Safe, 0);
            let base = w.graft.mem_ref().seg_base();
            [base + 4096, base + 4096 + 8192, 8192, 0]
        },
        reps,
    );

    vec![
        ("Read-Ahead", AbortPair { null_abort: null, full_abort: read_ahead }),
        ("Page Eviction", AbortPair { null_abort: null, full_abort: eviction }),
        ("Scheduling", AbortPair { null_abort: null, full_abort: scheduling }),
        ("Encryption", AbortPair { null_abort: null, full_abort: encryption }),
    ]
}

/// Runs the experiment and renders Table 7.
pub fn run(reps: usize) -> PathTable {
    let ps = pairs(reps);
    let mut rows = Vec::new();
    for (name, p) in &ps {
        rows.push(Row::path(format!("{name} (null abort)"), p.null_abort));
        rows.push(Row::path(format!("{name} (full abort)"), p.full_abort));
    }
    PathTable {
        id: "T7",
        title: "Table 7. Graft Abort Costs".to_string(),
        rows,
        notes: vec![
            "paper: Read-Ahead 32/45, Page Eviction 38/50, Scheduling 33/45, Encryption 36/36"
                .into(),
            "full - null = 10 us per lock held + undo work (§4.5)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_sim::costs;

    #[test]
    fn table7_shape_matches_paper() {
        let ps = pairs(5);
        let by_name: std::collections::HashMap<&str, AbortPair> = ps.iter().copied().collect();
        let null = by_name["Read-Ahead"].null_abort;
        // Null abort = the bare abort overhead (paper 32-38 us).
        assert!((32.0..=38.0).contains(&null), "null abort {null}");
        // Grafts holding one lock abort 10 us dearer (paper: 45 vs 32).
        let ra = by_name["Read-Ahead"].full_abort;
        assert!(
            (ra - null - costs::ABORT_UNLOCK.as_us()).abs() < 2.0,
            "read-ahead full abort {ra} vs null {null}"
        );
        // The encryption graft holds no locks and logs no undo: its
        // full abort equals the null abort (paper: 36/36).
        let enc = by_name["Encryption"];
        assert!((enc.full_abort - enc.null_abort).abs() < 1.0, "encryption {enc:?}");
        // "the full abort cost is only 0% to 40% more than the null
        // abort cost" (§4.5).
        for (name, p) in &ps {
            let ratio = p.full_abort / p.null_abort;
            assert!((1.0..=1.45).contains(&ratio), "{name}: full/null = {ratio}");
        }
    }
}

//! Table rendering in the paper's format: alternating "path" rows with
//! elapsed times and indented incremental-overhead component rows.

/// One table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label, e.g. "Base path" or "Transaction begin".
    pub label: String,
    /// Overhead column (µs) — component rows.
    pub overhead_us: Option<f64>,
    /// Elapsed-time column (µs) — path rows.
    pub elapsed_us: Option<f64>,
}

impl Row {
    /// A path row (elapsed-time column).
    pub fn path(label: impl Into<String>, elapsed_us: f64) -> Row {
        Row { label: label.into(), overhead_us: None, elapsed_us: Some(elapsed_us) }
    }

    /// A component row (overhead column, indented).
    pub fn component(label: impl Into<String>, overhead_us: f64) -> Row {
        Row { label: label.into(), overhead_us: Some(overhead_us), elapsed_us: None }
    }

    /// A free-form numeric row rendered in the overhead column.
    pub fn value(label: impl Into<String>, v: f64) -> Row {
        Row::component(label, v)
    }
}

/// A rendered experiment: identifier, title, rows and footnotes.
#[derive(Debug, Clone)]
pub struct PathTable {
    /// Short id, e.g. "T3".
    pub id: &'static str,
    /// Title, e.g. "Table 3. Read-ahead Graft Overhead".
    pub title: String,
    /// Rows in display order.
    pub rows: Vec<Row>,
    /// Footnotes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl PathTable {
    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = 66usize;
        out.push_str(&format!("[{}] {}\n", self.id, self.title));
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!("{:<40} {:>11} {:>12}\n", "", "Overhead", "Elapsed"));
        out.push_str(&format!("{:<40} {:>11} {:>12}\n", "", "(us)", "time (us)"));
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for r in &self.rows {
            let (label, indent) = if r.overhead_us.is_some() && r.elapsed_us.is_none() {
                (format!("  {}", r.label), true)
            } else {
                (r.label.clone(), false)
            };
            let _ = indent;
            let ov = r.overhead_us.map_or(String::new(), |v| format!("{v:.1}"));
            let el = r.elapsed_us.map_or(String::new(), |v| format!("{v:.1}"));
            out.push_str(&format!("{label:<40} {ov:>11} {el:>12}\n"));
        }
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paths_and_components() {
        let t = PathTable {
            id: "T0",
            title: "Demo".to_string(),
            rows: vec![
                Row::path("Base path", 0.5),
                Row::component("Indirection cost", 1.0),
                Row::path("VINO path", 1.5),
            ],
            notes: vec!["example".to_string()],
        };
        let s = t.render();
        assert!(s.contains("[T0] Demo"));
        assert!(s.contains("Base path"));
        assert!(s.contains("  Indirection cost"));
        assert!(s.contains("1.5"));
        assert!(s.contains("note: example"));
    }
}

//! Figures 4/5 ablation — the cost of policy encapsulation (§6).
//!
//! "This implementation encapsulates each policy decision at the cost of
//! a level of indirection at each decision point. On our system,
//! function calls typically cost approximately 35 cycles; these add up
//! remarkably quickly."
//!
//! Measures `get_lock` on the conventional (Figure 4) and the
//! policy-encapsulated (Figure 5) lock managers, on the granted path
//! (one decision point) and the queued path (two), plus a release storm
//! showing the promotion-loop indirection.

use std::rc::Rc;

use vino_core::lockmgr::{Mode, PolicyLockMgr, SimpleLockMgr, Waiter};
use vino_sim::{costs, ThreadId, VirtualClock};

use crate::render::{PathTable, Row};
use crate::world::measure;

fn sh(t: u64) -> Waiter {
    Waiter { thread: ThreadId(t), mode: Mode::Shared }
}
fn ex(t: u64) -> Waiter {
    Waiter { thread: ThreadId(t), mode: Mode::Exclusive }
}

/// Runs the ablation and renders it.
pub fn run(reps: usize) -> PathTable {
    // Granted path.
    let simple_grant = measure(
        reps,
        || (SimpleLockMgr::new(), VirtualClock::new()),
        |(m, c), _| {
            m.get_lock(c, 1, sh(1));
        },
    );
    let policy_grant = measure(
        reps,
        || {
            let c = VirtualClock::new();
            let m = PolicyLockMgr::new(
                Rc::clone(&c),
                PolicyLockMgr::reader_priority(),
                PolicyLockMgr::fifo(),
            );
            (m, c)
        },
        |(m, _), _| {
            m.get_lock(1, sh(1));
        },
    );
    // Queued path (holder conflicts).
    let simple_queue = measure(
        reps,
        || {
            let c = VirtualClock::new();
            let mut m = SimpleLockMgr::new();
            m.get_lock(&c, 1, ex(1));
            (m, c)
        },
        |(m, c), _| {
            m.get_lock(c, 1, ex(2));
        },
    );
    let policy_queue = measure(
        reps,
        || {
            let c = VirtualClock::new();
            let mut m = PolicyLockMgr::new(
                Rc::clone(&c),
                PolicyLockMgr::reader_priority(),
                PolicyLockMgr::fifo(),
            );
            m.get_lock(1, ex(1));
            (m, c)
        },
        |(m, _), _| {
            m.get_lock(1, ex(2));
        },
    );
    // Release storm: exclusive holder releases over 8 shared waiters;
    // the encapsulated manager pays one grant-policy call per waiter.
    let simple_release = measure(
        reps,
        || {
            let c = VirtualClock::new();
            let mut m = SimpleLockMgr::new();
            m.get_lock(&c, 1, ex(1));
            for t in 2..10 {
                m.get_lock(&c, 1, sh(t));
            }
            (m, c)
        },
        |(m, c), _| {
            m.release(c, 1, ThreadId(1));
        },
    );
    let policy_release = measure(
        reps,
        || {
            let c = VirtualClock::new();
            let mut m = PolicyLockMgr::new(
                Rc::clone(&c),
                PolicyLockMgr::reader_priority(),
                PolicyLockMgr::fifo(),
            );
            m.get_lock(1, ex(1));
            for t in 2..10 {
                m.get_lock(1, sh(t));
            }
            (m, c)
        },
        |(m, _), _| {
            m.release(1, ThreadId(1));
        },
    );

    let cyc = |us: f64| us * 120.0;
    PathTable {
        id: "F45",
        title: "Figures 4/5. Lock-manager policy encapsulation cost".to_string(),
        rows: vec![
            Row::value("Figure 4 get_lock, granted (cycles)", cyc(simple_grant.mean)),
            Row::value("Figure 5 get_lock, granted (cycles)", cyc(policy_grant.mean)),
            Row::value("  encapsulation cost (cycles)", cyc(policy_grant.mean - simple_grant.mean)),
            Row::value("Figure 4 get_lock, queued (cycles)", cyc(simple_queue.mean)),
            Row::value("Figure 5 get_lock, queued (cycles)", cyc(policy_queue.mean)),
            Row::value("  encapsulation cost (cycles)", cyc(policy_queue.mean - simple_queue.mean)),
            Row::value("Figure 4 release w/ 8 waiters (cycles)", cyc(simple_release.mean)),
            Row::value("Figure 5 release w/ 8 waiters (cycles)", cyc(policy_release.mean)),
            Row::value(
                "  encapsulation cost (cycles)",
                cyc(policy_release.mean - simple_release.mean),
            ),
        ],
        notes: vec![
            format!(
                "one decision point = one ~{}-cycle call (paper: 'approximately 35 cycles')",
                costs::CALL_CYCLES
            ),
            "the encapsulated manager can express writer-priority and writers-first \
             policies Figure 4 cannot (see vino_core::lockmgr tests)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encapsulation_costs_one_call_per_decision() {
        let t = run(10);
        let v = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .and_then(|r| r.overhead_us)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let granted_f4 = v("Figure 4 get_lock, granted (cycles)");
        let granted_f5 = v("Figure 5 get_lock, granted (cycles)");
        assert!((granted_f5 - granted_f4 - 35.0).abs() < 1.0);
        let queued_f4 = v("Figure 4 get_lock, queued (cycles)");
        let queued_f5 = v("Figure 5 get_lock, queued (cycles)");
        assert!((queued_f5 - queued_f4 - 70.0).abs() < 1.0);
        // Release over 8 waiters: 8-9 policy calls.
        let rel_f4 = v("Figure 4 release w/ 8 waiters (cycles)");
        let rel_f5 = v("Figure 5 release w/ 8 waiters (cycles)");
        let delta = rel_f5 - rel_f4;
        assert!(delta >= 8.0 * 35.0 - 1.0, "release delta {delta}");
    }
}

//! Table 4 — page-eviction graft overhead (§4.2.2).
//!
//! "We tested our sample page eviction graft with an application that
//! has a 2MB data footprint of which a few pages are performance
//! critical. The application and graft share a region of memory in
//! which the application places the page numbers of those pages it
//! wishes to retain in memory. During page out, the graft checks the
//! globally selected victim to ensure that it is not one of the pages
//! listed by the application. If it is, the graft scans the list of
//! pages that it is allowed to evict, returning the first page it finds
//! that is not on its list of important pages."
//!
//! "For both unsafe and safe paths, the graft overrules the default
//! victim selection" — the worlds below arrange for the global victim
//! to be a pinned page so the graft must scan and overrule. The graft
//! prefers *clean* non-pinned pages (no write-back), which is why the
//! scan runs deep into the 512-page footprint like the paper's 160 µs
//! graft function.

use std::rc::Rc;

use vino_core::engine::CommitMode;
use vino_sim::costs;
use vino_sim::{Cycles, VirtualClock};

use crate::render::{PathTable, Row};
use crate::world::{build, measure, Variant, World};

/// 2 MB footprint at 4 KB pages.
pub const FOOTPRINT_PAGES: usize = 512;
/// Performance-critical (pinned) pages the application lists.
pub const PINNED: usize = 4;
/// Index of the first clean (evictable without write-back) page.
pub const FIRST_CLEAN: usize = 200;

/// The eviction graft. Shared layout: header `{victim, count}` at 0/4,
/// resident page-id list from 8, pinned list `{count, ids...}` at 4096,
/// per-index clean flags at 5120. Membership tests go through an
/// `is_pinned` subroutine — the paper's "collection class" method-call
/// overhead ("function calls typically cost approximately 35 cycles;
/// these add up remarkably quickly").
pub const EVICT_GRAFT_SRC: &str = "
    mov r8, r1           ; victim page id
    mov r11, r2          ; resident count
    const r1, 0          ; pinned-list shared-region lock
    call $lock
    call $shared_base
    mov r5, r0
    addi r12, r5, 4096   ; pinned list
    loadw r13, [r12+0]   ; pinned count
    addi r12, r12, 4
    mov r1, r8
    calll is_pinned
    const r4, 0
    beq r0, r4, accept   ; victim not pinned: accept it
    ; Scan for the first non-pinned, clean page.
    addi r6, r5, 8       ; resident ids
    addi r7, r5, 5120    ; clean flags
    const r9, 0
scan:
    bgeu r9, r11, accept
    loadw r1, [r6+0]
    calll is_pinned
    const r4, 0
    bne r0, r4, next     ; pinned: skip
    loadw r3, [r7+0]
    const r4, 1
    beq r3, r4, take     ; clean: evict this one
next:
    addi r6, r6, 4
    addi r7, r7, 4
    addi r9, r9, 1
    jmp scan
take:
    loadw r0, [r6+0]
    halt r0
accept:
    mov r0, r8
    halt r0

is_pinned:              ; r1 = page id -> r0 = 1 if pinned else 0
    const r10, 0
ploop:
    bgeu r10, r13, pno
    muli r2, r10, 4
    add r2, r2, r12
    loadw r3, [r2+0]
    beq r3, r1, pyes
    addi r10, r10, 1
    jmp ploop
pyes:
    const r0, 1
    ret
pno:
    const r0, 0
    ret
";

/// Builds a world where the victim is pinned so the graft overrules.
fn make_world(variant: Variant) -> World {
    let mut w = build(EVICT_GRAFT_SRC, 8192, variant, 1);
    let mem = w.graft.mem();
    // Resident list: page ids 100..100+FOOTPRINT, oldest first.
    mem.graft_write_u32(0, 100); // victim = page 100 (pinned!)
    mem.graft_write_u32(4, FOOTPRINT_PAGES as u32);
    for i in 0..FOOTPRINT_PAGES {
        mem.graft_write_u32(8 + 4 * i, 100 + i as u32);
    }
    // Pinned list: a few critical pages, including the victim.
    mem.graft_write_u32(4096, PINNED as u32);
    for (i, page) in [100u32, 150, 200, 250].iter().enumerate() {
        mem.graft_write_u32(4100 + 4 * i, *page);
    }
    // Clean flags: everything before FIRST_CLEAN is dirty.
    for i in 0..FOOTPRINT_PAGES {
        mem.graft_write_u32(5120 + 4 * i, (i >= FIRST_CLEAN) as u32);
    }
    w
}

fn invoke_args() -> [u64; 4] {
    [100, FOOTPRINT_PAGES as u64, 0, 0]
}

/// The surrounding page-out machinery (victim selection + queue work).
fn base_machinery(clock: &Rc<VirtualClock>) {
    clock.charge(costs::EVICT_MACHINERY);
    clock.charge(Cycles(costs::INSTR_CYCLES * 40));
}

/// Runs the experiment and renders Table 4.
pub fn run(reps: usize) -> PathTable {
    let base = measure(reps, VirtualClock::new, |_, c| base_machinery(c));
    let vino = measure(reps, VirtualClock::new, |_, c| {
        base_machinery(c);
        c.charge(Cycles(costs::INDIRECTION_CYCLES));
        c.charge(costs::RESULT_CHECK);
    });
    let null = measure(
        reps,
        || build("mov r0, r1\nhalt r0", 8192, Variant::Safe, 0),
        |w, c| {
            base_machinery(c);
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke(invoke_args());
            c.charge(costs::RESULT_CHECK);
        },
    );
    let unsafe_ = measure(
        reps,
        || make_world(Variant::Unsafe),
        |w, c| {
            base_machinery(c);
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke(invoke_args());
            // Overrule: verification plus the Cao LRU-slot swap.
            c.charge(costs::RESULT_CHECK);
            c.charge(costs::RESULT_CHECK);
        },
    );
    let safe = measure(
        reps,
        || make_world(Variant::Safe),
        |w, c| {
            base_machinery(c);
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke(invoke_args());
            c.charge(costs::RESULT_CHECK);
            c.charge(costs::RESULT_CHECK);
        },
    );
    let abort = measure(
        reps,
        || make_world(Variant::Safe),
        |w, c| {
            base_machinery(c);
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke_mode(invoke_args(), CommitMode::AbortAtEnd);
            // Abort falls back to the original victim: "results checking
            // and list manipulation are simplified" (Table 4 caption).
            c.charge(costs::RESULT_CHECK);
        },
    );

    let begin = costs::TXN_BEGIN.as_us();
    let commit = costs::TXN_COMMIT.as_us();
    PathTable {
        id: "T4",
        title: "Table 4. Page Eviction Graft Overhead".to_string(),
        rows: vec![
            Row::path("Base path", base.mean),
            Row::component("Indirection cost", vino.mean - base.mean - 2.0),
            Row::component("Results checking", 2.0),
            Row::path("VINO path", vino.mean),
            Row::component("Transaction begin", begin),
            Row::component("Null graft cost", null.mean - vino.mean - begin - commit),
            Row::component("Transaction commit", commit),
            Row::component("Incremental overhead", null.mean - vino.mean),
            Row::path("Null path", null.mean),
            Row::component("Lock overhead", costs::TXN_LOCK_ACQUIRE.as_us()),
            Row::component(
                "Graft function",
                unsafe_.mean - null.mean - 2.0 - costs::TXN_LOCK_ACQUIRE.as_us(),
            ),
            Row::component("Results checking (swap)", 2.0),
            Row::component("Incremental overhead", unsafe_.mean - null.mean),
            Row::path("Unsafe path", unsafe_.mean),
            Row::component("MiSFIT overhead", safe.mean - unsafe_.mean),
            Row::path("Safe path", safe.mean),
            Row::component("Abort cost (additional)", abort.mean - safe.mean),
            Row::path("Abort path", abort.mean),
        ],
        notes: vec![
            "paper: base 39 / VINO 40 / null 130 / unsafe 329 / safe 355 / abort 348 us".into(),
            format!(
                "graft disagreement cost (safe - base) = {:.1} us (paper: 316 us); \
                 benefit of an avoided 18 ms fault: {:.0} disagreements per saved I/O (paper: 57)",
                safe.mean - base.mean,
                costs::PAGE_FAULT_COST.as_us() / (safe.mean - base.mean)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(t: &PathTable, label: &str) -> f64 {
        t.rows.iter().find(|r| r.label == label).and_then(|r| r.elapsed_us).unwrap()
    }

    #[test]
    fn table4_shape_matches_paper() {
        let t = run(20);
        let base = path(&t, "Base path");
        let vino = path(&t, "VINO path");
        let null = path(&t, "Null path");
        let unsafe_ = path(&t, "Unsafe path");
        let safe = path(&t, "Safe path");
        let abort = path(&t, "Abort path");
        assert!(base < vino && vino < null && null < unsafe_ && unsafe_ < safe);
        // Paper: base 39, vino 40, null 130.
        assert!((30.0..50.0).contains(&base), "base {base}");
        assert!((100.0..160.0).contains(&null), "null {null}");
        // "the cost of victim selection increases by an order of
        // magnitude" when the graft disagrees.
        assert!(safe > 5.0 * base, "safe {safe} vs base {base}");
        // MiSFIT overhead noticeable for this scan-heavy graft
        // (paper: 26 us).
        let misfit = safe - unsafe_;
        assert!((5.0..80.0).contains(&misfit), "misfit {misfit}");
        // Abort path close to (paper: slightly below) the safe path.
        assert!((abort - safe).abs() < 25.0, "abort {abort} vs safe {safe}");
    }

    #[test]
    fn graft_overrules_to_first_clean_unpinned() {
        let mut w = make_world(Variant::Safe);
        match w.graft.invoke(invoke_args()) {
            vino_core::engine::InvokeOutcome::Ok { result, .. } => {
                assert_eq!(result, 100 + FIRST_CLEAN as u64, "first clean non-pinned page");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn graft_accepts_unpinned_victim() {
        let mut w = make_world(Variant::Safe);
        w.graft.mem().graft_write_u32(0, 333);
        match w.graft.invoke([333, FOOTPRINT_PAGES as u64, 0, 0]) {
            vino_core::engine::InvokeOutcome::Ok { result, .. } => assert_eq!(result, 333),
            other => panic!("{other:?}"),
        }
    }
}

//! Table 3 — read-ahead graft overhead (§4.1.3).
//!
//! "We tested the read-ahead graft by reading three thousand four
//! kilobyte blocks in a random order from a twelve megabyte file. Each
//! time the application code issued a read request to the open file
//! object, it also placed the location and size of its subsequent read
//! in the shared buffer so that it could be prefetched."
//!
//! The measured quantity is the `compute-ra` decision path: from the
//! open-file object's dispatch to the policy's return. The graft locks
//! the shared buffer, scans the application-posted access pattern for
//! the current offset, and submits the following entry for prefetch.

use vino_core::engine::CommitMode;
use vino_sim::costs;
use vino_sim::Cycles;

use crate::render::{PathTable, Row};
use crate::world::{build, measure, Variant, World};

/// The read-ahead graft: scan the shared pattern buffer (§4.1.2) for
/// the current offset and prefetch the entry that follows it.
pub const RA_GRAFT_SRC: &str = "
    const r1, 0          ; shared-buffer lock handle
    call $lock
    call $shared_base
    mov r5, r0
    loadw r8, [r5+0]     ; request header: current offset
    addi r6, r5, 1024    ; application pattern buffer
    loadw r7, [r6+0]     ; entry count
    addi r6, r6, 4
    const r9, 0
scan:
    bgeu r9, r7, miss
    loadw r10, [r6+0]
    beq r10, r8, found
    addi r6, r6, 4
    addi r9, r9, 1
    jmp scan
found:
    loadw r1, [r6+4]     ; the next access: prefetch it
    const r2, 4096
    call $ra_submit
miss:
    const r1, 0
    call $unlock         ; two-phase locking defers this to commit
    halt r0
";

/// Pattern-buffer entries the application posts.
const PATTERN_LEN: usize = 16;
/// Index within the pattern the current request matches.
const MATCH_AT: usize = 8;

fn make_world(variant: Variant) -> World {
    let mut w = build(RA_GRAFT_SRC, 8192, variant, 1);
    // The application posts its access pattern in the shared buffer.
    let mem = w.graft.mem();
    mem.graft_write_u32(1024, PATTERN_LEN as u32);
    for i in 0..PATTERN_LEN {
        mem.graft_write_u32(1028 + 4 * i, (i as u32) * 4096);
    }
    // Request header: the current read offset.
    mem.graft_write_u32(0, (MATCH_AT as u32) * 4096);
    w
}

/// The native (un-graftable) next-block computation of the base path.
fn base_compute(clock: &std::rc::Rc<vino_sim::VirtualClock>) {
    // Selecting the next sequential block: a handful of arithmetic on
    // the open-file fields — the paper measures 0.5 us.
    clock.charge(Cycles(60));
}

/// Runs the experiment and renders Table 3.
pub fn run(reps: usize) -> PathTable {
    let base = measure(reps, vino_sim::VirtualClock::new, |_, clock| base_compute(clock));
    let vino = measure(reps, vino_sim::VirtualClock::new, |_, clock| {
        clock.charge(Cycles(costs::INDIRECTION_CYCLES));
        base_compute(clock);
    });
    let null = measure(
        reps,
        || build("halt r0", 8192, Variant::Safe, 1),
        |w, clock| {
            clock.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke([MATCH_AT as u64 * 4096, 4096, 0, 1 << 24]);
        },
    );
    let unsafe_ = measure(
        reps,
        || make_world(Variant::Unsafe),
        |w, clock| {
            clock.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke([MATCH_AT as u64 * 4096, 4096, 0, 1 << 24]);
        },
    );
    let safe = measure(
        reps,
        || make_world(Variant::Safe),
        |w, clock| {
            clock.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke([MATCH_AT as u64 * 4096, 4096, 0, 1 << 24]);
        },
    );
    let abort = measure(
        reps,
        || make_world(Variant::Safe),
        |w, clock| {
            clock.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke_mode([MATCH_AT as u64 * 4096, 4096, 0, 1 << 24], CommitMode::AbortAtEnd);
        },
    );

    let begin = costs::TXN_BEGIN.as_us();
    let commit = costs::TXN_COMMIT.as_us();
    let lock = costs::TXN_LOCK_ACQUIRE.as_us();
    PathTable {
        id: "T3",
        title: "Table 3. Read-ahead Graft Overhead".to_string(),
        rows: vec![
            Row::path("Base path", base.mean),
            Row::component("Indirection cost", vino.mean - base.mean),
            Row::path("VINO path", vino.mean),
            Row::component("Transaction begin", begin),
            Row::component("Null graft cost", null.mean - vino.mean - begin - commit),
            Row::component("Transaction commit", commit),
            Row::component("Incremental overhead", null.mean - vino.mean),
            Row::path("Null path", null.mean),
            Row::component("Lock overhead", lock),
            Row::component("Graft function", unsafe_.mean - null.mean - lock),
            Row::component("Incremental overhead", unsafe_.mean - null.mean),
            Row::path("Unsafe path", unsafe_.mean),
            Row::component("MiSFIT overhead", safe.mean - unsafe_.mean),
            Row::path("Safe path", safe.mean),
            Row::component("Abort cost (additional)", abort.mean - safe.mean),
            Row::path("Abort path", abort.mean),
        ],
        notes: vec![
            format!("paper: base 0.5 / VINO 1.5 / null 67 / unsafe 104 / safe 107 / abort 108 us"),
            format!(
                "grafting overhead (safe - VINO) = {:.1} us (paper: 105.5 us)",
                safe.mean - vino.mean
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_matches_paper() {
        let t = run(30);
        let path = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .and_then(|r| r.elapsed_us)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let base = path("Base path");
        let vino = path("VINO path");
        let null = path("Null path");
        let unsafe_ = path("Unsafe path");
        let safe = path("Safe path");
        let abort = path("Abort path");
        // Monotone path ordering.
        assert!(base < vino && vino < null && null < unsafe_ && unsafe_ < safe && safe < abort);
        // Paper anchors (loose bands — shape, not exact numbers).
        assert!(base < 2.0, "base {base}");
        assert!((vino - base - 1.0).abs() < 0.5, "indirection ~1us");
        assert!((60.0..80.0).contains(&null), "null {null} (paper 67)");
        assert!((90.0..125.0).contains(&unsafe_), "unsafe {unsafe_} (paper 104)");
        assert!((90.0..130.0).contains(&safe), "safe {safe} (paper 107)");
        // MiSFIT overhead small for this sparse-access graft.
        assert!(safe - unsafe_ < 8.0, "misfit {}", safe - unsafe_);
        // Abort adds ~ (35 - 30) + 10 * 1 lock.
        let extra = abort - safe;
        assert!((10.0..20.0).contains(&extra), "abort extra {extra}");
    }

    /// The tentpole acceptance check: the metrics plane's *runtime*
    /// per-invocation overhead attribution for the Table 3 read-ahead
    /// workload must reconcile with the measured safe-path figure in
    /// `EXPERIMENTS.md` (102.5 us) within 1% — and decompose the
    /// measured clock delta exactly, cycle for cycle.
    #[test]
    fn metrics_attribution_reconciles_with_measured_safe_path() {
        use crate::world::build_metered;
        use vino_core::engine::InvokeOutcome;
        use vino_sim::metrics::Component;

        let (mut w, mp) = build_metered(RA_GRAFT_SRC, 8192, Variant::Safe, 1);
        let mem = w.graft.mem();
        mem.graft_write_u32(1024, PATTERN_LEN as u32);
        for i in 0..PATTERN_LEN {
            mem.graft_write_u32(1028 + 4 * i, (i as u32) * 4096);
        }
        mem.graft_write_u32(0, (MATCH_AT as u32) * 4096);

        let reps = 100u64;
        let t0 = w.clock.now();
        for _ in 0..reps {
            // The dispatch indirection, charged at the call site as in
            // `run` above; the plane holds it pending and attributes it
            // to the invocation it dispatches.
            let cost = Cycles(costs::INDIRECTION_CYCLES);
            w.clock.charge(cost);
            mp.charge(Component::Indirection, cost);
            let out = w.graft.invoke([MATCH_AT as u64 * 4096, 4096, 0, 1 << 24]);
            assert!(matches!(out, InvokeOutcome::Ok { .. }), "{out:?}");
        }
        let measured = w.clock.since(t0);
        let tag = mp.tag("bench-graft");
        let attr = mp.attribution(tag).expect("interned at install");
        assert_eq!(attr.invocations, reps);

        // Exact decomposition: every cycle the workload charged is
        // attributed to exactly one component.
        assert_eq!(
            attr.total(),
            measured,
            "attribution must decompose the measured clock delta exactly"
        );

        // Reconciles with the EXPERIMENTS.md Table 3 measured column
        // (safe path: 102.5 us) within 1%.
        let per_invocation_us = attr.total_per_invocation_us();
        let expected = 102.5;
        assert!(
            (per_invocation_us - expected).abs() / expected < 0.01,
            "runtime attribution {per_invocation_us:.2} us/invocation vs measured {expected}"
        );

        // The envelope components are the paper's constants, exactly.
        assert!((attr.per_invocation_us(Component::TxnBegin) - 36.0).abs() < 1e-9);
        assert!((attr.per_invocation_us(Component::TxnCommit) - 30.0).abs() < 1e-9);
        assert!((attr.per_invocation_us(Component::Lock) - 33.0).abs() < 1e-9);
        assert!((attr.per_invocation_us(Component::Indirection) - 1.0).abs() < 1e-9);
        // Read-ahead needs no semantic result check (bad extents are
        // clipped by validation), so that row is zero — as in Table 3.
        assert_eq!(attr.of(Component::ResultCheck), Cycles(0));
        // What remains is the graft function itself plus MiSFIT.
        assert!(attr.of(Component::GraftFn) > Cycles(0));
        assert!(attr.of(Component::Sfi) > Cycles(0));
    }

    /// The profile plane's per-PC ledger must agree *exactly* — cycle
    /// for cycle, component for component — with the metrics plane's
    /// Table-3 attribution for the same run. Both planes watch the same
    /// charge sites with the same bracket semantics, so any divergence
    /// is a billing bug in one of them.
    #[test]
    fn profile_ledger_reconciles_with_metrics_attribution() {
        use crate::world::build_profiled;
        use vino_core::engine::InvokeOutcome;
        use vino_sim::metrics::Component;

        let (mut w, mp, pp) = build_profiled(RA_GRAFT_SRC, 8192, Variant::Safe, 1);
        let mem = w.graft.mem();
        mem.graft_write_u32(1024, PATTERN_LEN as u32);
        for i in 0..PATTERN_LEN {
            mem.graft_write_u32(1028 + 4 * i, (i as u32) * 4096);
        }
        mem.graft_write_u32(0, (MATCH_AT as u32) * 4096);

        let reps = 100u64;
        let t0 = w.clock.now();
        for _ in 0..reps {
            let cost = Cycles(costs::INDIRECTION_CYCLES);
            w.clock.charge(cost);
            mp.charge(Component::Indirection, cost);
            pp.charge(Component::Indirection, cost);
            let out = w.graft.invoke([MATCH_AT as u64 * 4096, 4096, 0, 1 << 24]);
            assert!(matches!(out, InvokeOutcome::Ok { .. }), "{out:?}");
        }
        let measured = w.clock.since(t0);

        let mtag = mp.tag("bench-graft");
        let ptag = pp.tag("bench-graft");
        let ma = mp.attribution(mtag).expect("metrics interned");
        let pa = pp.attribution(ptag).expect("profile interned");

        // Component-for-component equality between the two ledgers, and
        // both decompose the measured clock delta exactly.
        assert_eq!(pa, ma, "profile and metrics attribution must agree exactly");
        assert_eq!(pa.total(), measured);
        assert_eq!(pp.kernel_attribution(), mp.kernel_attribution());

        // The per-PC arrays are a third, finer-grained decomposition of
        // the same cycles: summed, they must equal the attribution's
        // VM-billed rows (GraftFn and Sfi) exactly — and the hit count
        // must equal the retired-instruction count.
        let (graft_fn, sfi, hits) = pp.pc_totals(ptag);
        assert_eq!(graft_fn, pa.of(Component::GraftFn));
        assert_eq!(sfi, pa.of(Component::Sfi));
        assert_eq!(hits, pp.instrs_of(ptag));
        assert!(hits > 0);
    }
}

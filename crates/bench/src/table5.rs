//! Table 5 — scheduling graft overhead (§4.3).
//!
//! "Our example schedule-delegate graft scans a process list of 64
//! entries, examines each (to determine if one of the other processes
//! should be run instead) and then returns its own ID. [...] The base
//! path measurement includes the time to select the next process to
//! run, switch to it, and switch back (including switching VM contexts
//! twice). [...] Each iteration of the loop that walks the 64-element
//! process list takes about 0.5 us, primarily because our collection
//! class implementation is not well-optimized."
//!
//! The per-entry `examine` is a subroutine call (the unoptimized
//! collection-class accessor, ~35 cycles a call).

use std::rc::Rc;
use vino_core::adapters::{share, SchedGraftAdapter};
use vino_core::engine::CommitMode;
use vino_sched::Scheduler;
use vino_sim::{costs, VirtualClock};

use crate::render::{PathTable, Row};
use crate::world::{build, measure, HasClock, Variant, World};

/// Process-list entries the graft scans.
pub const PROC_LIST: usize = 64;

/// The schedule-delegate graft: lock the process list, examine all 64
/// entries through the collection accessor, return the chosen id.
pub const SCHED_GRAFT_SRC: &str = "
    mov r8, r1           ; the kernel's chosen thread id
    const r1, 0          ; process-list lock handle
    call $lock
    call $shared_base
    mov r5, r0
    loadw r7, [r5+4]     ; runnable count
    addi r6, r5, 8
    const r9, 0
scan:
    bgeu r9, r7, done
    calll examine
    addi r6, r6, 4
    addi r9, r9, 1
    jmp scan
done:
    mov r0, r8           ; run myself
    halt r0

examine:                 ; the collection-class entry accessor
    loadw r10, [r6+0]
    loadw r11, [r6+0]    ; a second field access (state inspection)
    ret
";

/// A world whose scheduler has the chosen thread plus a 64-entry list.
struct SchedWorld {
    world: World,
    sched: Scheduler,
}

impl HasClock for SchedWorld {
    fn clock(&self) -> Rc<VirtualClock> {
        self.world.clock()
    }
}

fn make_sched_world(variant: Variant, mode: CommitMode) -> SchedWorld {
    // One graft world; the scheduler shares its clock.
    let world = build(SCHED_GRAFT_SRC, 4096, variant, 1);
    let mut sched = Scheduler::new(world.clock());
    let delegated = sched.spawn("delegated");
    for i in 0..PROC_LIST - 1 {
        sched.spawn(format!("p{i}"));
    }
    // Attach through the real adapter.
    let shared = share(build_instance_like(&world, variant));
    let mut adapter = SchedGraftAdapter::new(shared);
    adapter.mode = mode;
    sched.set_delegate(delegated, Box::new(adapter));
    SchedWorld { world, sched }
}

fn build_instance_like(w: &World, variant: Variant) -> vino_core::engine::GraftInstance {
    // Rebuild the graft program on the *same* engine/clock as `w` so
    // both charge one clock.
    let prog =
        vino_vm::asm::assemble("sched-graft", SCHED_GRAFT_SRC, &vino_core::hostfn::symbols())
            .expect("assembles");
    crate::world::instance_from(&w.engine, prog, 4096, variant)
}

/// Runs the experiment and renders Table 5.
pub fn run(reps: usize) -> PathTable {
    // Base: two switches, no delegates.
    let base = measure(
        reps,
        || {
            let clock = VirtualClock::new();
            let mut s = Scheduler::new(Rc::clone(&clock));
            for i in 0..PROC_LIST {
                s.spawn(format!("p{i}"));
            }
            (s, clock)
        },
        |(s, _), _| {
            s.pick_and_switch();
            s.pick_and_switch();
        },
    );

    // VINO path: a native delegate that returns the chosen id —
    // indirection + valid-id hash probe + two switches.
    let vino = measure(
        reps,
        || {
            let clock = VirtualClock::new();
            let mut s = Scheduler::new(Rc::clone(&clock));
            let first = s.spawn("delegated");
            for i in 0..PROC_LIST - 1 {
                s.spawn(format!("p{i}"));
            }
            s.set_delegate(first, Box::new(|snap: &vino_sched::SchedSnapshot<'_>| snap.chosen));
            (s, clock)
        },
        |(s, _), _| {
            s.pick_and_switch();
            s.pick_and_switch();
        },
    );

    // Graft paths: the delegate runs a graft through the adapter.
    let graft_path = |variant: Variant, mode: CommitMode| {
        measure(
            reps,
            move || make_sched_world(variant, mode),
            |sw, _| {
                sw.sched.pick_and_switch();
                sw.sched.pick_and_switch();
            },
        )
    };
    // Null path: null graft through the adapter, committing.
    let null = measure(
        reps,
        || {
            let world = build("mov r0, r1\nhalt r0", 4096, Variant::Safe, 1);
            let mut sched = Scheduler::new(world.clock());
            let delegated = sched.spawn("delegated");
            for i in 0..PROC_LIST - 1 {
                sched.spawn(format!("p{i}"));
            }
            let inst = build_null_instance(&world);
            sched.set_delegate(delegated, Box::new(SchedGraftAdapter::new(share(inst))));
            SchedWorld { world, sched }
        },
        |sw, _| {
            sw.sched.pick_and_switch();
            sw.sched.pick_and_switch();
        },
    );
    let unsafe_ = graft_path(Variant::Unsafe, CommitMode::Commit);
    let safe = graft_path(Variant::Safe, CommitMode::Commit);
    let abort = graft_path(Variant::Safe, CommitMode::AbortAtEnd);

    let begin = costs::TXN_BEGIN.as_us();
    let commit = costs::TXN_COMMIT.as_us();
    let lock = costs::TXN_LOCK_ACQUIRE.as_us();
    PathTable {
        id: "T5",
        title: "Table 5. Scheduling Graft Overhead".to_string(),
        rows: vec![
            Row::path("Base path (two switches)", base.mean),
            Row::component("Indirection cost", vino.mean - base.mean),
            Row::path("VINO path", vino.mean),
            Row::component("Transaction begin", begin),
            Row::component("Null graft cost", null.mean - vino.mean - begin - commit),
            Row::component("Transaction commit", commit),
            Row::component("Incremental overhead", null.mean - vino.mean),
            Row::path("Null path", null.mean),
            Row::component("Lock overhead", lock),
            Row::component("Graft function", unsafe_.mean - null.mean - lock),
            Row::component("Incremental overhead", unsafe_.mean - null.mean),
            Row::path("Unsafe path", unsafe_.mean),
            Row::component("MiSFIT overhead", safe.mean - unsafe_.mean),
            Row::path("Safe path", safe.mean),
            Row::component("Abort cost (additional)", abort.mean - safe.mean),
            Row::path("Abort path", abort.mean),
        ],
        notes: vec![
            "paper: base 54 / VINO 55 / null 131 / unsafe 203 / safe 208 / abort 211 us".into(),
            format!(
                "fixed txn+lock overhead vs a process-switch pair: {:.1}x (paper: ~2x); \
                 safe path is {:.1}% of a 10 ms timeslice (paper: ~2%)",
                (null.mean - vino.mean + lock) / base.mean,
                100.0 * safe.mean / 10_000.0
            ),
        ],
    }
}

fn build_null_instance(w: &World) -> vino_core::engine::GraftInstance {
    let prog = vino_vm::asm::assemble("null", "mov r0, r1\nhalt r0", &vino_core::hostfn::symbols())
        .expect("assembles");
    crate::world::instance_from(&w.engine, prog, 4096, Variant::Safe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(t: &PathTable, label: &str) -> f64 {
        t.rows.iter().find(|r| r.label == label).and_then(|r| r.elapsed_us).unwrap()
    }

    #[test]
    fn table5_shape_matches_paper() {
        let t = run(10);
        let base = path(&t, "Base path (two switches)");
        let vino = path(&t, "VINO path");
        let null = path(&t, "Null path");
        let unsafe_ = path(&t, "Unsafe path");
        let safe = path(&t, "Safe path");
        let abort = path(&t, "Abort path");
        assert!(base < vino && vino < null && null < unsafe_ && unsafe_ < safe && safe < abort);
        // Base: exactly two context switches (54 us).
        assert!((base - 54.0).abs() < 2.0, "base {base}");
        // Null: + txn envelope (paper 131).
        assert!((110.0..150.0).contains(&null), "null {null}");
        // The fixed transaction + lock cost alone exceeds the base path
        // (the paper's headline for this table).
        assert!(null - vino + 33.0 > base, "txn+lock {} vs base {base}", null - vino + 33.0);
        // Safe path a small fraction of a 10 ms timeslice.
        assert!(safe < 0.05 * 10_000.0, "safe {safe}");
    }
}

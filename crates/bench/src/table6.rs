//! Table 6 — encryption (stream) graft overhead (§4.4).
//!
//! "Our sample graft is passed an 8KB input data buffer block and an 8KB
//! output buffer. The graft encrypts the data into the output buffer and
//! returns. This graft [...] offers nearly the worst case of software
//! fault isolation overhead, because it consists almost entirely of load
//! and store instructions."
//!
//! Base path: the in-kernel `bcopy` of 8 KB. The graft paths replace the
//! hardware copy with the xor-encrypting software loop.

use vino_core::engine::CommitMode;
use vino_sim::{costs, Cycles, VirtualClock};

use crate::render::{PathTable, Row};
use crate::world::{build, measure, Variant, World};

/// Stream payload: "an 8KB input data buffer block" (§4.4).
pub const PAYLOAD: usize = 8192;

/// Words in the payload (the platform's 4-byte words).
const WORDS: u64 = (PAYLOAD / 4) as u64;

/// The xor-encryption stream graft: word-at-a-time load/xor/store from
/// the input buffer (r1) to the output buffer (r2), length r3 bytes.
pub const ENCRYPT_GRAFT_SRC: &str = "
    const r5, 0x5A5A5A5A  ; the key
    add r3, r1, r3        ; end of input
loop:
    bgeu r1, r3, done
    loadw r7, [r1+0]
    xor r7, r7, r5
    storew r7, [r2+0]
    addi r1, r1, 4
    addi r2, r2, 4
    jmp loop
done:
    halt r0
";

/// Input buffer offset within the graft segment.
const IN_OFF: usize = 4096;
/// Output buffer offset.
const OUT_OFF: usize = 4096 + PAYLOAD;

fn make_world(variant: Variant) -> World {
    let mut w = build(ENCRYPT_GRAFT_SRC, 32 * 1024, variant, 0);
    let mem = w.graft.mem();
    let data: Vec<u8> = (0..PAYLOAD).map(|i| (i * 31 % 251) as u8).collect();
    mem.graft_bytes_mut(IN_OFF, PAYLOAD).expect("segment sized").copy_from_slice(&data);
    w
}

fn invoke_args(w: &World) -> [u64; 4] {
    let base = w.graft.mem_ref().seg_base();
    [base + IN_OFF as u64, base + OUT_OFF as u64, PAYLOAD as u64, 0]
}

/// The kernel `bcopy` of the payload (hardware copy instruction).
fn charge_bcopy(clock: &std::rc::Rc<VirtualClock>) {
    clock.charge(Cycles(costs::BCOPY_CYCLES_PER_WORD * WORDS));
}

/// L1 misses over the 8 KB buffer once the transaction machinery has
/// evicted it (the paper measures +24 us on the null path).
fn charge_l1(clock: &std::rc::Rc<VirtualClock>) {
    let lines = (PAYLOAD / 32) as u64;
    clock.charge(Cycles(costs::L1_MISS_CYCLES * lines));
}

/// Runs the experiment and renders Table 6.
pub fn run(reps: usize) -> PathTable {
    let base = measure(reps, VirtualClock::new, |_, c| charge_bcopy(c));
    let vino = measure(reps, VirtualClock::new, |_, c| {
        c.charge(Cycles(costs::INDIRECTION_CYCLES));
        charge_bcopy(c);
    });
    let null = measure(
        reps,
        || build("halt r0", 1024, Variant::Safe, 0),
        |w, c| {
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            w.graft.invoke([0; 4]);
            charge_bcopy(c);
            charge_l1(c);
        },
    );
    let unsafe_ = measure(
        reps,
        || make_world(Variant::Unsafe),
        |w, c| {
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            let args = invoke_args(w);
            w.graft.invoke(args);
            charge_l1(c);
        },
    );
    let safe = measure(
        reps,
        || make_world(Variant::Safe),
        |w, c| {
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            let args = invoke_args(w);
            w.graft.invoke(args);
            charge_l1(c);
        },
    );
    let abort = measure(
        reps,
        || make_world(Variant::Safe),
        |w, c| {
            c.charge(Cycles(costs::INDIRECTION_CYCLES));
            let args = invoke_args(w);
            w.graft.invoke_mode(args, CommitMode::AbortAtEnd);
            charge_l1(c);
        },
    );

    let begin = costs::TXN_BEGIN.as_us();
    let commit = costs::TXN_COMMIT.as_us();
    PathTable {
        id: "T6",
        title: "Table 6. Encryption Graft Overhead".to_string(),
        rows: vec![
            Row::path("Base path (bcopy 8KB)", base.mean),
            Row::path("VINO path", vino.mean),
            Row::component("Transaction begin", begin),
            Row::component("Transaction commit", commit),
            Row::component("L1 cache miss time", null.mean - vino.mean - begin - commit),
            Row::component("Incremental overhead", null.mean - vino.mean),
            Row::path("Null path", null.mean),
            Row::component("Graft function", unsafe_.mean - null.mean),
            Row::path("Unsafe path", unsafe_.mean),
            Row::component("MiSFIT overhead", safe.mean - unsafe_.mean),
            Row::path("Safe path", safe.mean),
            Row::component("Abort cost (additional)", abort.mean - safe.mean),
            Row::path("Abort path", abort.mean),
        ],
        notes: vec![
            "paper: base 105 / VINO 105 / null 193 / unsafe 359 / safe 546 / abort 550 us".into(),
            format!(
                "safe path = {:.1}x bcopy (paper: 5.2x); MiSFIT overhead = {:.0}% of the graft \
                 function (paper: >100%)",
                safe.mean / base.mean,
                100.0 * (safe.mean - unsafe_.mean) / (unsafe_.mean - null.mean + base.mean)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vino_core::engine::InvokeOutcome;

    fn path(t: &PathTable, label: &str) -> f64 {
        t.rows.iter().find(|r| r.label == label).and_then(|r| r.elapsed_us).unwrap()
    }

    #[test]
    fn table6_shape_matches_paper() {
        let t = run(10);
        let base = path(&t, "Base path (bcopy 8KB)");
        let null = path(&t, "Null path");
        let unsafe_ = path(&t, "Unsafe path");
        let safe = path(&t, "Safe path");
        let abort = path(&t, "Abort path");
        assert!(base < null && null < unsafe_ && unsafe_ < safe && safe < abort);
        // bcopy of 8 KB ~ 100 us on the 1996 memory system.
        assert!((80.0..130.0).contains(&base), "base {base}");
        // The worst case for SFI: MiSFIT overhead comparable to the
        // graft function itself (paper: 187 us on a 166 us function).
        let graft_fn = unsafe_ - null;
        let misfit = safe - unsafe_;
        assert!(misfit > 0.7 * graft_fn, "misfit {misfit} vs graft {graft_fn}");
        // Safe path is several times a straight bcopy (paper: 5.2x).
        assert!(safe / base > 2.5, "safe/base {}", safe / base);
        // Abort barely more than commit (paper +4 us).
        assert!((abort - safe) < 12.0, "abort delta {}", abort - safe);
    }

    #[test]
    fn encryption_is_correct_and_symmetric() {
        let mut w = make_world(Variant::Safe);
        let args = invoke_args(&w);
        match w.graft.invoke(args) {
            InvokeOutcome::Ok { .. } => {}
            other => panic!("{other:?}"),
        }
        let mem = w.graft.mem_ref();
        let input = mem.graft_bytes(IN_OFF, PAYLOAD).unwrap().to_vec();
        let output = mem.graft_bytes(OUT_OFF, PAYLOAD).unwrap().to_vec();
        for (i, (a, b)) in input.chunks(4).zip(output.chunks(4)).enumerate() {
            let x = u32::from_le_bytes(a.try_into().unwrap());
            let y = u32::from_le_bytes(b.try_into().unwrap());
            assert_eq!(x ^ 0x5A5A_5A5A, y, "word {i}");
        }
    }

    #[test]
    fn sfi_and_raw_produce_identical_ciphertext() {
        let mut ws = make_world(Variant::Safe);
        let mut wr = make_world(Variant::Unsafe);
        let args_s = invoke_args(&ws);
        let args_r = invoke_args(&wr);
        ws.graft.invoke(args_s);
        wr.graft.invoke(args_r);
        assert_eq!(
            ws.graft.mem_ref().graft_bytes(OUT_OFF, PAYLOAD),
            wr.graft.mem_ref().graft_bytes(OUT_OFF, PAYLOAD)
        );
    }
}

//! The §4.5 abort-cost equation: `35 µs + 10L + cG`.
//!
//! "The total abort time is represented by the equation: abort
//! overhead + unlock cost + undo cost. The abort overheads we measured
//! ranged from 32-38us, and we measured the cost of releasing a lock
//! at 10 us per lock. The undo cost should be somewhat less than the
//! actual cost of running the graft [...] where L is the number of
//! locks to be released, G is the cost of the graft, and c is a
//! constant less than one."
//!
//! This experiment sweeps L (locks held) and G (graft forward cost) and
//! recovers the intercept, the per-lock slope, and c by least squares.

use std::rc::Rc;

use vino_sim::stats::linear_fit;
use vino_sim::{costs, Cycles, ThreadId, VirtualClock};
use vino_txn::locks::LockClass;
use vino_txn::manager::{AbortReason, TxnManager};

use crate::render::{PathTable, Row};

const T: ThreadId = ThreadId(1);

/// Abort cost (µs) of a transaction holding `locks` locks whose undo
/// work costs `undo_us`.
pub fn abort_cost(locks: usize, undo_us: u64) -> f64 {
    let clock = VirtualClock::new();
    let mut m = TxnManager::new(Rc::clone(&clock));
    let ids: Vec<_> = (0..locks).map(|_| m.create_lock(LockClass::Buffer)).collect();
    m.begin(T);
    for id in &ids {
        m.lock(*id, T);
    }
    if undo_us > 0 {
        m.log_undo(T, "work", Cycles::from_us(undo_us), || {}).expect("in txn");
    }
    let report = m.abort(T, AbortReason::Explicit).expect("in txn");
    report.cost.as_us()
}

/// Sweep results: (intercept µs, per-lock slope µs, c).
pub fn fit() -> (f64, f64, f64) {
    // Sweep L at G = 0.
    let lock_points: Vec<(f64, f64)> = (0..=8).map(|l| (l as f64, abort_cost(l, 0))).collect();
    let (intercept, per_lock) = linear_fit(&lock_points).expect("two points");

    // Sweep G at L = 0: abort(G) = 35 + undo(G); undo = c*G by the
    // paper's model. Our undo records carry their own cost; the engine
    // prices them at UNDO_COST_FACTOR of the forward cost, so measure
    // through a graft-like run: undo_us = c * G.
    let c = costs::UNDO_COST_FACTOR;
    let g_points: Vec<(f64, f64)> = (0..=10)
        .map(|i| {
            let g_us = (i * 50) as f64;
            let undo = (g_us * c) as u64;
            (g_us, abort_cost(0, undo))
        })
        .collect();
    let (_, c_fit) = linear_fit(&g_points).expect("two points");
    (intercept, per_lock, c_fit)
}

/// Runs the experiment and renders the fit.
pub fn run() -> PathTable {
    let (intercept, per_lock, c) = fit();
    let mut rows = vec![
        Row::value("Fitted abort overhead (us)", intercept),
        Row::value("Fitted unlock cost per lock (us)", per_lock),
        Row::value("Fitted undo factor c", c),
    ];
    for l in [0usize, 2, 4, 8] {
        rows.push(Row::path(format!("Measured abort, L={l}, G=0"), abort_cost(l, 0)));
    }
    PathTable {
        id: "E1",
        title: "§4.5 Abort-cost equation: 35us + 10L + cG".to_string(),
        rows,
        notes: vec!["paper: overhead 32-38 us, 10 us/lock, c < 1".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_constants_recovered() {
        let (intercept, per_lock, c) = fit();
        assert!((32.0..=38.0).contains(&intercept), "intercept {intercept}");
        assert!((per_lock - 10.0).abs() < 0.5, "per-lock {per_lock}");
        assert!(c > 0.0 && c < 1.0, "c = {c}");
    }

    #[test]
    fn abort_cost_monotone_in_locks_and_undo() {
        assert!(abort_cost(3, 0) > abort_cost(1, 0));
        assert!(abort_cost(0, 100) > abort_cost(0, 10));
    }
}
